(* xks — command-line XML keyword search.

   Subcommands:
     search   run a keyword query against an XML file
     stats    show document/index statistics and top words
     shred    dump the relational tables (label/element/value)
     gen      emit a synthetic DBLP-like or XMark-like corpus
     index    build and persist an inverted index
     sql      keyword lookup through the relational path
     serve    overload-safe HTTP search over a Unix-domain socket

   Exit codes (also in the man pages): 2 = XML parse error, 3 =
   ingestion limit or query budget error, 4 = corrupt index file,
   5 = serving-socket setup failure. *)

open Cmdliner

let exit_parse_error = 2
let exit_limit_error = 3
let exit_corrupt_index = 4
let exit_socket_error = 5

let exits =
  Cmd.Exit.info exit_parse_error ~doc:"on a malformed XML document."
  :: Cmd.Exit.info exit_limit_error
       ~doc:
         "when an ingestion limit (depth, attributes, text bytes, nodes) or \
          a query budget is exceeded."
  :: Cmd.Exit.info exit_corrupt_index
       ~doc:"on a corrupt, truncated or unreadable index file."
  :: Cmd.Exit.info exit_socket_error
       ~doc:"when the serving socket cannot be set up."
  :: Cmd.Exit.defaults

let die code msg =
  prerr_endline msg;
  exit code

let engine_of_file path =
  try Xks_core.Engine.of_file path with
  | e when Xks_xml.Parser.error_to_string e <> None ->
      (match Xks_xml.Parser.error_to_string e with
      | Some msg -> die exit_parse_error msg
      | None -> assert false)
  | e when Xks_robust.Limits.error_to_string e <> None ->
      (match Xks_robust.Limits.error_to_string e with
      | Some msg -> die exit_limit_error msg
      | None -> assert false)
  | Sys_error msg -> die exit_parse_error msg

let doc_of_file path =
  try Xks_xml.Parser.parse_file path with
  | e when Xks_xml.Parser.error_to_string e <> None ->
      (match Xks_xml.Parser.error_to_string e with
      | Some msg -> die exit_parse_error msg
      | None -> assert false)
  | e when Xks_robust.Limits.error_to_string e <> None ->
      (match Xks_robust.Limits.error_to_string e with
      | Some msg -> die exit_limit_error msg
      | None -> assert false)
  | Sys_error msg -> die exit_parse_error msg

(* Load a persisted index against [file]'s document; [repair] rebuilds
   from the document instead of failing on corruption. *)
let engine_of_index ~repair idx_path file =
  let doc = doc_of_file file in
  if repair then
    Xks_core.Engine.of_index
      (Xks_index.Persist.load_or_rebuild idx_path doc)
  else
    match Xks_index.Persist.load idx_path doc with
    | idx -> Xks_core.Engine.of_index idx
    | exception Failure msg -> die exit_corrupt_index msg
    | exception Sys_error msg -> die exit_corrupt_index msg

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"XML document to search.")

(* --- search --- *)

let algorithm_conv =
  Arg.enum
    [
      ("validrtf", Xks_core.Engine.Validrtf);
      ("maxmatch", Xks_core.Engine.Maxmatch);
      ("maxmatch-original", Xks_core.Engine.Maxmatch_original);
    ]

(* One query per line; '#' lines and blank lines are skipped. *)
let read_batch_file path =
  let ic =
    try open_in path with Sys_error msg -> die Cmd.Exit.cli_error ("xks: " ^ msg)
  in
  let queries = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          if line <> "" && line.[0] <> '#' then
            match
              String.split_on_char ' ' line
              |> List.filter (fun w -> w <> "")
            with
            | [] -> ()
            | ws -> queries := ws :: !queries
        done
      with End_of_file -> ());
  List.rev !queries

let search_cmd =
  let keywords =
    Arg.(
      value
      & pos_right 0 string []
      & info [] ~docv:"KEYWORD"
          ~doc:"Query keywords (omit when $(b,--batch) is given).")
  in
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Xks_core.Engine.Validrtf
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:
            "Algorithm: $(b,validrtf) (default), $(b,maxmatch) (revised) or \
             $(b,maxmatch-original) (SLCA only).")
  in
  let rank_conv =
    let parse = function
      | "heuristic" -> Ok `Heuristic
      | "bm25" -> Ok `Bm25
      | "doc" -> Ok `Doc
      | s -> Error (`Msg (Printf.sprintf "unknown rank mode %S" s))
    in
    let print fmt (r : Xks_core.Engine.rank_mode) =
      Format.pp_print_string fmt
        (match r with
        | `Heuristic -> "heuristic"
        | `Bm25 -> "bm25"
        | `Doc -> "doc")
    in
    Arg.conv (parse, print)
  in
  let rank =
    Arg.(
      value
      & opt rank_conv `Heuristic
      & info [ "rank" ] ~docv:"MODE"
          ~doc:
            "Hit ordering: $(b,heuristic) (default, structural score), \
             $(b,bm25) (BM25 over posting statistics) or $(b,doc) \
             (document order).")
  in
  let top_k =
    Arg.(
      value
      & opt (some int) None
      & info [ "top-k" ] ~docv:"K"
          ~doc:
            "Retrieve only the best $(docv) results.  With \
             $(b,--rank bm25) the engine scores fragments during the \
             traversal and terminates the scan early once no unseen \
             fragment can enter the top $(docv); otherwise the ranked \
             list is truncated.")
  in
  let xml_out =
    Arg.(value & flag & info [ "x"; "xml" ] ~doc:"Print fragments as XML.")
  in
  let exact_cid =
    Arg.(
      value & flag
      & info [ "exact-cid" ]
          ~doc:
            "Use exact tree content sets instead of the paper's (min, max) \
             approximation when pruning.")
  in
  let limit =
    Arg.(
      value & opt int 10
      & info [ "n"; "limit" ] ~docv:"N" ~doc:"Show at most $(docv) results.")
  in
  let snippets =
    Arg.(
      value & flag
      & info [ "s"; "snippets" ]
          ~doc:"Show a query-biased snippet under each result.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Show, for every node of each raw RTF, which pruning rule \
             kept or discarded it.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for the query.  On exhaustion the engine \
             degrades to a cheaper algorithm (ValidRTF, revised MaxMatch, \
             SLCA-only) instead of running on; a note is printed when \
             results are degraded.")
  in
  let max_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:
            "Visited-node budget for the query; degrades like \
             $(b,--timeout-ms) on exhaustion.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Trace the query and print per-stage timings, pipeline \
             counters and degradation events to stderr.")
  in
  let trace_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~docv:"FILE"
          ~doc:
            "Write the query trace (stage spans, counters, degradation \
             events) to $(docv) as JSON.")
  in
  let batch_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:
            "Run every query in $(docv) (one query per line, keywords \
             separated by spaces; blank lines and $(b,#) comments are \
             skipped) instead of a single positional query.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "With $(b,--batch): fan the queries out over $(docv) worker \
             domains (1 = sequential on the calling domain).")
  in
  let cache_mb =
    Arg.(
      value & opt int 0
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "With $(b,--batch): front the queries with a sharded LRU \
             result cache of roughly $(docv) MB (0, the default, disables \
             caching).  Repeated queries in the batch are answered from \
             the cache.")
  in
  let run file ws algorithm rank top_k xml_out exact_cid limit snippets explain
      timeout_ms max_nodes index_path repair stats_flag trace_json batch_file
      jobs cache_mb =
    let engine =
      match index_path with
      | Some idx_path -> engine_of_index ~repair idx_path file
      | None -> engine_of_file file
    in
    (match (timeout_ms, max_nodes) with
    | Some ms, _ when ms < 0 ->
        die Cmd.Exit.cli_error "xks: --timeout-ms must be non-negative"
    | _, Some n when n < 0 ->
        die Cmd.Exit.cli_error "xks: --max-nodes must be non-negative"
    | _ -> ());
    (match top_k with
    | Some k when k < 1 -> die Cmd.Exit.cli_error "xks: --top-k must be >= 1"
    | Some _ | None -> ());
    if jobs < 1 then die Cmd.Exit.cli_error "xks: --jobs must be >= 1";
    if cache_mb < 0 then
      die Cmd.Exit.cli_error "xks: --cache-mb must be non-negative";
    let budget =
      if timeout_ms = None && max_nodes = None then None
      else
        Some
          (Xks_robust.Budget.create ?deadline_ms:timeout_ms
             ?max_nodes:max_nodes ())
    in
    let cid_mode =
      if exact_cid then Xks_index.Cid.Exact else Xks_index.Cid.Approx
    in
    match batch_file with
    | Some path ->
        if ws <> [] then
          die Cmd.Exit.cli_error
            "xks: --batch and positional keywords are mutually exclusive";
        let queries = read_batch_file path in
        if queries = [] then
          die Cmd.Exit.cli_error ("xks: no queries in " ^ path);
        let cache =
          if cache_mb > 0 then
            Some
              (Xks_exec.Cache.create ~max_bytes:(cache_mb * 1024 * 1024) ())
          else None
        in
        let budget_spec =
          if timeout_ms = None && max_nodes = None then None
          else Some { Xks_exec.Exec.deadline_ms = timeout_ms; max_nodes }
        in
        let trace =
          if stats_flag then Some (Xks_trace.Trace.create ()) else None
        in
        Xks_trace.Trace.set_current trace;
        let results =
          try
            if jobs > 1 then
              Xks_exec.Pool.with_pool ~size:jobs (fun pool ->
                  Xks_exec.Exec.search_batch_results ~pool ?cache ~algorithm
                    ~rank ?k:top_k ~cid_mode ?budget:budget_spec engine
                    queries)
            else
              Xks_exec.Exec.search_batch_results ?cache ~algorithm ~rank
                ?k:top_k ~cid_mode ?budget:budget_spec engine queries
          with Xks_exec.Pool.Task_error e -> raise e
        in
        Xks_trace.Trace.set_current None;
        List.iteri
          (fun qi ws ->
            let result = results.(qi) in
            let hits = result.Xks_core.Engine.hits in
            Printf.printf "%d result(s) for \"%s\"\n" (List.length hits)
              (String.concat " " ws);
            (match result.Xks_core.Engine.degraded with
            | Some reason ->
                Printf.printf "   (degraded: %s)\n"
                  (Xks_robust.Budget.reason_to_string reason)
            | None -> ());
            List.iteri
              (fun i (hit : Xks_core.Engine.hit) ->
                if i < limit then begin
                  Printf.printf "-- #%d score %.2f %s\n" (i + 1)
                    hit.Xks_core.Engine.score
                    (if hit.Xks_core.Engine.is_slca then "(slca)" else "(lca)");
                  print_string (Xks_core.Engine.render ~xml:xml_out engine hit)
                end)
              hits)
          queries;
        (match cache with
        | Some c when stats_flag ->
            let s = Xks_exec.Cache.stats c in
            Printf.eprintf
              "cache: %d hit(s), %d miss(es), %d eviction(s), %d live \
               entry(ies) (~%d bytes)\n"
              s.Xks_exec.Cache.hits s.Xks_exec.Cache.misses
              s.Xks_exec.Cache.evictions s.Xks_exec.Cache.entries
              s.Xks_exec.Cache.bytes
        | _ -> ());
        (match trace with
        | Some t when stats_flag -> prerr_string (Xks_trace.Trace.summary t)
        | _ -> ())
    | None ->
    if ws = [] then
      die Cmd.Exit.cli_error "xks: expected keywords or --batch FILE";
    let trace =
      if stats_flag || trace_json <> None then
        Some (Xks_trace.Trace.create ())
      else None
    in
    Xks_trace.Trace.set_current trace;
    (* Terms containing ':' use the labeled-search extension. *)
    let labeled = List.exists (fun w -> String.contains w ':') ws in
    if labeled && (rank <> `Heuristic || top_k <> None) then
      die Cmd.Exit.cli_error
        "xks: --rank/--top-k are not supported with labeled (:) terms";
    let result =
      if labeled then
        {
          Xks_core.Engine.hits = Xks_core.Labeled.search ~algorithm engine ws;
          degraded = None;
        }
      else
        Xks_core.Engine.search_result ~algorithm ~rank ?k:top_k ~cid_mode
          ?budget engine ws
    in
    Xks_trace.Trace.set_current None;
    let hits = result.Xks_core.Engine.hits in
    (* [search_result] keeps the degradation signal even when the hit
       list is empty; report it either way. *)
    (match result.Xks_core.Engine.degraded with
    | Some reason ->
        Printf.eprintf
          "note: query %s exhausted; results degraded to a cheaper algorithm\n"
          (Xks_robust.Budget.reason_to_string reason)
    | None -> ());
    (match trace with
    | None -> ()
    | Some t ->
        if stats_flag then prerr_string (Xks_trace.Trace.summary t);
        (match trace_json with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc
                  (Xks_trace.Json.to_string (Xks_trace.Trace.to_json t));
                output_char oc '\n')));
    let query =
      if labeled then Xks_core.Labeled.query (Xks_core.Engine.index engine) ws
      else Xks_core.Query.make (Xks_core.Engine.index engine) ws
    in
    Printf.printf "%d result(s) for \"%s\"\n" (List.length hits)
      (String.concat " " ws);
    if hits = [] && not labeled then
      List.iter
        (fun (w, correction) ->
          match correction with
          | Some better -> Printf.printf "no \"%s\" — did you mean \"%s\"?\n" w better
          | None -> ())
        (Xks_index.Suggest.correct_query (Xks_core.Engine.index engine) ws);
    List.iteri
      (fun i (hit : Xks_core.Engine.hit) ->
        if i < limit then begin
          Printf.printf "-- #%d score %.2f %s\n" (i + 1)
            hit.Xks_core.Engine.score
            (if hit.Xks_core.Engine.is_slca then "(slca)" else "(lca)");
          print_string (Xks_core.Engine.render ~xml:xml_out engine hit);
          if snippets then
            Printf.printf "   %s\n"
              (Xks_core.Snippet.of_fragment query hit.Xks_core.Engine.fragment);
          if explain then begin
            let info =
              Xks_core.Node_info.construct ~cid_mode query
                hit.Xks_core.Engine.rtf
            in
            let decisions =
              match algorithm with
              | Xks_core.Engine.Validrtf ->
                  Xks_core.Explain.valid_contributor info
              | Xks_core.Engine.Maxmatch | Xks_core.Engine.Maxmatch_original ->
                  Xks_core.Explain.contributor info
            in
            print_string
              (Xks_core.Explain.render (Xks_core.Engine.doc engine) decisions)
          end
        end)
      hits
  in
  let index_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "index" ] ~docv:"IDX"
          ~doc:
            "Load the inverted index from $(docv) (written by $(b,xks \
             index)) instead of re-indexing the document.  A corrupt or \
             truncated file exits with code 4 unless $(b,--repair) is \
             given.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "With $(b,--index): on corruption, rebuild the index from the \
             document (and re-save it) instead of failing.")
  in
  Cmd.v
    (Cmd.info "search" ~exits
       ~doc:"Run an XML keyword query and print fragments.")
    Term.(
      const run $ file_arg $ keywords $ algorithm $ rank $ top_k $ xml_out
      $ exact_cid $ limit $ snippets $ explain $ timeout_ms $ max_nodes
      $ index_path $ repair $ stats_flag $ trace_json $ batch_file $ jobs
      $ cache_mb)

(* --- stats --- *)

let stats_cmd =
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Show the $(docv) most frequent words.")
  in
  let run file top =
    let engine = engine_of_file file in
    print_endline (Xks_core.Engine.stats engine);
    let idx = Xks_core.Engine.index engine in
    List.iter
      (fun (w, c) -> Printf.printf "%8d  %s\n" c w)
      (Xks_index.Inverted.top_words idx top)
  in
  Cmd.v
    (Cmd.info "stats" ~exits ~doc:"Document and index statistics.")
    Term.(const run $ file_arg $ top)

(* --- index --- *)

let index_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"IDX" ~doc:"Index output path.")
  in
  let run file out =
    match Xks_index.Stream_index.save_file ~input:file ~output:out () with
    | words -> Printf.printf "wrote %s (%d distinct words)\n" out words
    | exception e when Xks_xml.Sax.error_to_string e <> None ->
        (match Xks_xml.Sax.error_to_string e with
        | Some msg -> die exit_parse_error msg
        | None -> assert false)
    | exception e when Xks_robust.Limits.error_to_string e <> None ->
        (match Xks_robust.Limits.error_to_string e with
        | Some msg -> die exit_limit_error msg
        | None -> assert false)
    | exception Sys_error msg -> die exit_parse_error msg
  in
  Cmd.v
    (Cmd.info "index" ~exits
       ~doc:
         "Stream-index an XML file and persist the checksummed inverted \
          index (reload it with $(b,xks search --index)).")
    Term.(const run $ file_arg $ out)

(* --- shred --- *)

let shred_cmd =
  let run file =
    let doc = Xks_xml.Parser.parse_file file in
    let tables = Xks_index.Shredder.shred doc in
    let nl, ne, nv = Xks_index.Shredder.row_count tables in
    Printf.printf "label table (%d rows):\n" nl;
    List.iter
      (fun r ->
        Printf.printf "  %3d %s\n" r.Xks_index.Shredder.label_id
          r.Xks_index.Shredder.label_name)
      tables.Xks_index.Shredder.labels;
    Printf.printf "element table: %d rows\nvalue table: %d rows\n" ne nv
  in
  Cmd.v
    (Cmd.info "shred" ~exits
       ~doc:"Shred a document into the paper's relational tables.")
    Term.(const run $ file_arg)

(* --- gen --- *)

let gen_cmd =
  let dataset =
    Arg.(
      required
      & pos 0
          (some
             (Arg.enum
                [
                  ("dblp", `Dblp); ("xmark-std", `Xmark Xks_datagen.Xmark_gen.Standard);
                  ("xmark1", `Xmark Xks_datagen.Xmark_gen.Data1);
                  ("xmark2", `Xmark Xks_datagen.Xmark_gen.Data2);
                ]))
          None
      & info [] ~docv:"DATASET"
          ~doc:"One of $(b,dblp), $(b,xmark-std), $(b,xmark1), $(b,xmark2).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let size =
    Arg.(
      value & opt int 0
      & info [ "size" ] ~docv:"N"
          ~doc:
            "Size knob: DBLP entries (default 12000) or XMark items per \
             region at standard scale (default 60).")
  in
  let run dataset out seed size =
    let doc =
      match dataset with
      | `Dblp ->
          let d = Xks_datagen.Dblp_gen.default_config in
          let entries = if size > 0 then size else d.Xks_datagen.Dblp_gen.entries in
          Xks_datagen.Dblp_gen.generate
            ~config:{ d with seed; entries } ()
      | `Xmark sz ->
          let d = Xks_datagen.Xmark_gen.default_config in
          let items = if size > 0 then size else d.Xks_datagen.Xmark_gen.items in
          Xks_datagen.Xmark_gen.generate ~config:{ d with seed; items } sz
    in
    Xks_xml.Writer.to_file out doc;
    Printf.printf "wrote %s (%d nodes)\n" out (Xks_xml.Tree.size doc)
  in
  Cmd.v
    (Cmd.info "gen" ~exits ~doc:"Generate a synthetic corpus as an XML file.")
    Term.(const run $ dataset $ out $ seed $ size)

(* --- sql --- *)

let sql_cmd =
  let keyword =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"KEYWORD" ~doc:"Keyword to look up in the value table.")
  in
  let run file keyword =
    let doc = Xks_xml.Parser.parse_file file in
    let store = Xks_index.Rel_store.of_doc doc in
    let result =
      Xks_relational.Plan.select ~distinct:true ~order_by:[ "id" ]
        ~columns:[ "id"; "dewey"; "label"; "attribute" ]
        ~where:
          (Xks_relational.Plan.Eq
             ( "keyword",
               Xks_relational.Value.text (Xks_xml.Tokenizer.normalize keyword) ))
        (Xks_index.Rel_store.value_table store)
    in
    Format.printf "%a" Xks_relational.Plan.pp_result result
  in
  Cmd.v
    (Cmd.info "sql" ~exits
       ~doc:
         "Answer a keyword lookup through the relational (shredded-table) \
          path, as the paper's platform does.")
    Term.(const run $ file_arg $ keyword)

(* --- serve --- *)

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix-domain socket to serve on.  A stale socket file left by \
             a previous run is replaced; any other file at $(docv) is an \
             error (exit code 5).")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains = in-flight request budget (default: one per \
             available core).")
  in
  let queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admitted connections allowed to wait for a worker (default \
             2×workers).  Connections beyond workers+queue are shed with \
             503 + Retry-After — the server never buffers unboundedly.")
  in
  let timeout_ms =
    Arg.(
      value & opt int 200
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request budget deadline; slow queries degrade down the \
             algorithm ladder and the response is tagged. 0 disables.")
  in
  let max_nodes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:"Per-request visited-node budget.")
  in
  let idle_ms =
    Arg.(
      value & opt int 5000
      & info [ "idle-ms" ] ~docv:"MS"
          ~doc:"Keep-alive idle timeout awaiting a request's first byte.")
  in
  let read_ms =
    Arg.(
      value & opt int 2000
      & info [ "read-ms" ] ~docv:"MS"
          ~doc:"Total timeout for reading one request.")
  in
  let write_ms =
    Arg.(
      value & opt int 2000
      & info [ "write-ms" ] ~docv:"MS"
          ~doc:"Timeout for writing one response.")
  in
  let drain_ms =
    Arg.(
      value & opt int 2000
      & info [ "drain-ms" ] ~docv:"MS"
          ~doc:
            "Graceful-shutdown drain budget: on SIGTERM/SIGINT the server \
             stops accepting and waits this long for in-flight connections \
             before cutting them.")
  in
  let cache_mb =
    Arg.(
      value & opt int 8
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:"Result-cache budget (0 disables caching).")
  in
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Xks_core.Engine.Validrtf
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:"Default algorithm (per-request override via ?algorithm=).")
  in
  let index_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "index" ] ~docv:"IDX"
          ~doc:"Serve from a persisted index instead of re-indexing.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:"With $(b,--index): rebuild on corruption instead of failing.")
  in
  let run file socket workers queue timeout_ms max_nodes idle_ms read_ms
      write_ms drain_ms cache_mb algorithm index_path repair =
    if workers < 0 then die Cmd.Exit.cli_error "xks: --workers must be >= 0";
    if timeout_ms < 0 then
      die Cmd.Exit.cli_error "xks: --timeout-ms must be non-negative";
    (match queue with
    | Some q when q < 0 ->
        die Cmd.Exit.cli_error "xks: --queue must be non-negative"
    | _ -> ());
    let engine =
      match index_path with
      | Some idx_path -> engine_of_index ~repair idx_path file
      | None -> engine_of_file file
    in
    let workers =
      if workers > 0 then workers else Xks_exec.Pool.default_size ()
    in
    let queue = match queue with Some q -> q | None -> 2 * workers in
    let cfg =
      {
        (Xks_serve.Server.default_config ~socket_path:socket ()) with
        workers;
        queue;
        deadline_ms = (if timeout_ms > 0 then Some timeout_ms else None);
        max_nodes;
        idle_timeout_ms = idle_ms;
        read_timeout_ms = read_ms;
        write_timeout_ms = write_ms;
        drain_timeout_ms = drain_ms;
        cache_mb;
        algorithm;
        log = prerr_endline;
      }
    in
    let srv =
      try Xks_serve.Server.create cfg engine with
      | Unix.Unix_error (err, _, _) ->
          die exit_socket_error
            (Printf.sprintf "xks: cannot bind %s: %s" socket
               (Unix.error_message err))
      | Failure msg -> die exit_socket_error ("xks: " ^ msg)
    in
    let stop _ = Xks_serve.Server.request_shutdown srv in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Printf.eprintf "xks: serving %s on %s (workers=%d queue=%d)\n%!" file
      socket workers queue;
    Xks_serve.Server.run srv
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Serve keyword search over a Unix-domain socket with bounded \
          admission, per-request budgets and graceful shutdown on \
          SIGTERM/SIGINT.")
    Term.(
      const run $ file_arg $ socket $ workers $ queue $ timeout_ms $ max_nodes
      $ idle_ms $ read_ms $ write_ms $ drain_ms $ cache_mb $ algorithm
      $ index_path $ repair)

(* Escaped exceptions must never reach the user as raw backtraces: map
   the structured ones to their documented exit codes, anything else to
   cmdliner's internal-error code. *)
let () =
  let doc = "XML keyword search with meaningful relaxed tightest fragments" in
  let info = Cmd.info "xks" ~version:"1.0.0" ~doc ~exits in
  let group =
    Cmd.group info
      [
        search_cmd; stats_cmd; shred_cmd; gen_cmd; index_cmd; sql_cmd;
        serve_cmd;
      ]
  in
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception e ->
      let code, msg =
        match Xks_xml.Parser.error_to_string e with
        | Some msg -> (exit_parse_error, msg)
        | None -> (
            match Xks_xml.Sax.error_to_string e with
            | Some msg -> (exit_parse_error, msg)
            | None -> (
                match Xks_robust.Limits.error_to_string e with
                | Some msg -> (exit_limit_error, msg)
                | None -> (
                    match e with
                    | Xks_robust.Budget.Exhausted reason ->
                        ( exit_limit_error,
                          "query budget exhausted: "
                          ^ Xks_robust.Budget.reason_to_string reason )
                    | Failure msg
                      when String.length msg >= 8
                           && String.sub msg 0 8 = "Persist:" ->
                        (exit_corrupt_index, msg)
                    | Sys_error msg -> (exit_parse_error, msg)
                    | e ->
                        ( Cmd.Exit.internal_error,
                          "internal error: " ^ Printexc.to_string e ))))
      in
      die code ("xks: " ^ msg)
