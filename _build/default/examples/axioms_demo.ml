(* Demonstrate the four axiomatic XKS properties on live edits: grow a
   small catalogue, extend a query, and watch the checkers confirm
   monotonicity and consistency for ValidRTF.

     dune exec examples/axioms_demo.exe
*)

module Tree = Xks_xml.Tree
module Axioms = Xks_core.Axioms

let report title (r : Axioms.report) =
  Printf.printf "%-22s %s   results %d -> %d\n" title
    (if r.Axioms.ok then "holds" else "VIOLATED")
    r.Axioms.results_before r.Axioms.results_after;
  List.iter (fun line -> Printf.printf "    %s\n" line) r.Axioms.offending

let () =
  let run = Xks_core.Validrtf.run in
  let doc =
    Xks_xml.Parser.parse_string
      "<store><dvd><title>space opera</title><genre>opera</genre></dvd><dvd><title>space \
       walk</title></dvd><cd><title>opera hits</title></cd></store>"
  in
  print_endline "document: a small media store";
  print_endline "query: {space, opera}\n";
  let query = [ "space"; "opera" ] in

  (* Data edits: append a matching DVD, then an unrelated CD. *)
  let with_match =
    Axioms.append_subtree doc ~parent_id:0
      (Tree.elem "dvd" [ Tree.elem ~text:"space opera returns" "title" [] ])
  in
  report "data monotonicity"
    (Axioms.data_monotonicity ~run ~before:doc ~after:with_match ~query);
  report "data consistency"
    (Axioms.data_consistency ~run ~before:doc ~after:with_match ~query);

  let with_noise =
    Axioms.append_subtree doc ~parent_id:0
      (Tree.elem "cd" [ Tree.elem ~text:"silence" "title" [] ])
  in
  report "data mono (noise)"
    (Axioms.data_monotonicity ~run ~before:doc ~after:with_noise ~query);
  report "data cons (noise)"
    (Axioms.data_consistency ~run ~before:doc ~after:with_noise ~query);

  (* Query edits: narrow the query with one more keyword. *)
  report "query monotonicity"
    (Axioms.query_monotonicity ~run ~doc ~query ~extra:"walk");
  report "query consistency"
    (Axioms.query_consistency ~run ~doc ~query ~extra:"walk");

  print_newline ();
  print_endline
    "The same audit runs over hundreds of random documents and edits in\n\
     `dune runtest` (test/test_axioms.ml), for ValidRTF and MaxMatch."
