(* Extension showcase: labeled query terms, query-biased snippets,
   ElemRank-weighted ranking and index persistence working together on a
   small catalogue.

     dune exec examples/snippet_search.exe
*)

module Engine = Xks_core.Engine
module Labeled = Xks_core.Labeled
module Snippet = Xks_core.Snippet
module Elemrank = Xks_core.Elemrank

let catalogue =
  "<catalog>\
   <book><title>The XML Handbook</title>\
   <summary>a practical tour of xml modelling and keyword search over \
   document trees</summary></book>\
   <book><title>Streams and Trees</title>\
   <summary>stream processing with tree automata, with a short xml \
   appendix</summary></book>\
   <article><title>Keyword Search Engines</title>\
   <summary>ranking keyword search results for semi structured \
   data</summary></article>\
   </catalog>"

let () =
  let engine = Engine.of_string catalogue in
  Printf.printf "indexed: %s\n\n" (Engine.stats engine);

  (* Plain keyword search with snippets. *)
  let query = [ "xml"; "keyword"; "search" ] in
  Printf.printf "query: %s\n" (String.concat " " query);
  let result = Engine.run engine query in
  let q = result.Xks_core.Pipeline.query in
  List.iteri
    (fun i frag ->
      Printf.printf "  %d. %s\n" (i + 1) (Snippet.of_fragment q frag))
    result.Xks_core.Pipeline.fragments;

  (* The same query restricted to titles. *)
  print_newline ();
  let terms = [ "title:keyword"; "title:search" ] in
  Printf.printf "labeled query: %s\n" (String.concat " " terms);
  List.iter
    (fun (hit : Engine.hit) ->
      print_string (Engine.render engine hit))
    (Labeled.search engine terms);

  (* Structural prior: which elements does ElemRank consider central? *)
  print_newline ();
  let prior = Elemrank.compute (Engine.doc engine) in
  print_endline "most central elements (ElemRank):";
  List.iter
    (fun (id, score) ->
      let node = Xks_xml.Tree.node (Engine.doc engine) id in
      Printf.printf "  %-10s %.4f\n"
        (Xks_xml.Tree.label_name (Engine.doc engine) node)
        score)
    (Elemrank.top prior 3);

  (* Phrase search: quoted terms must be consecutive. *)
  print_newline ();
  let pidx = Xks_index.Positional.build (Engine.doc engine) in
  let phrase = [ "\"keyword search\"" ] in
  Printf.printf "phrase query: %s\n" (String.concat " " phrase);
  List.iter
    (fun (hit : Engine.hit) -> print_string (Engine.render engine hit))
    (Xks_core.Phrase.search engine pidx phrase);

  (* Path-scoped search: keywords restricted to a structural scope. *)
  print_newline ();
  Printf.printf "scoped query: //book + [xml]\n";
  List.iter
    (fun (hit : Engine.hit) -> print_string (Engine.render engine hit))
    (Xks_core.Scoped.search engine ~path:"//book" [ "xml" ]);

  (* Suggestions when a keyword is misspelled. *)
  print_newline ();
  List.iter
    (fun (w, correction) ->
      match correction with
      | Some better -> Printf.printf "did you mean: %s -> %s\n" w better
      | None -> ())
    (Xks_index.Suggest.correct_query (Engine.index engine)
       [ "xlm"; "keyword" ]);

  (* Persist the index and reopen it. *)
  let path = Filename.temp_file "xks_demo" ".idx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xks_index.Persist.save path (Engine.index engine);
      let reopened = Xks_index.Persist.load path (Engine.doc engine) in
      let again = Xks_core.Validrtf.run reopened query in
      Printf.printf "\nreloaded index from %s: %d result(s), identical to %d\n"
        (Filename.basename path)
        (List.length again.Xks_core.Pipeline.fragments)
        (List.length result.Xks_core.Pipeline.fragments))
