(* Bibliography search: generate a DBLP-shaped corpus, run keyword
   queries from the command line (or a default workload), and compare
   what ValidRTF and MaxMatch return.

     dune exec examples/dblp_search.exe -- xml keyword search
     dune exec examples/dblp_search.exe            # default workload
*)

module Engine = Xks_core.Engine
module Dblp = Xks_datagen.Dblp_gen
module Metrics = Xks_metrics.Metrics

let default_queries =
  [
    [ "keyword"; "similarity" ];
    [ "xml"; "query"; "efficient" ];
    [ "henry"; "automata" ];
    [ "vldb"; "tree"; "dynamic" ];
  ]

let show_top engine query =
  Printf.printf "query: %s\n" (String.concat " " query);
  let hits = Engine.search engine query in
  Printf.printf "  %d results\n" (List.length hits);
  (match hits with
  | top :: _ ->
      Printf.printf "  top hit (score %.2f):\n" top.Engine.score;
      print_string
        (String.concat ""
           (List.map
              (fun line -> "    " ^ line ^ "\n")
              (String.split_on_char '\n' (String.trim (Engine.render engine top)))))
  | [] -> ());
  (* Effectiveness vs the MaxMatch baseline on the same query. *)
  let validrtf = Engine.run ~algorithm:Engine.Validrtf engine query in
  let maxmatch = Engine.run ~algorithm:Engine.Maxmatch engine query in
  let m = Metrics.compare_results ~validrtf ~maxmatch in
  Format.printf "  vs MaxMatch: %a@." Metrics.pp m

let () =
  let config = { Dblp.default_config with entries = 3000 } in
  Printf.printf "generating DBLP-like corpus (%d entries)...\n%!"
    config.Dblp.entries;
  let doc = Dblp.generate ~config () in
  let engine = Engine.of_doc doc in
  Printf.printf "indexed: %s\n\n" (Engine.stats engine);
  let queries =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as words) -> [ words ]
    | _ -> default_queries
  in
  List.iter (show_top engine) queries
