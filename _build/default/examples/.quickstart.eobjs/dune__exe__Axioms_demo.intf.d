examples/axioms_demo.mli:
