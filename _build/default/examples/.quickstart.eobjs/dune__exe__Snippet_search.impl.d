examples/snippet_search.ml: Filename Fun List Printf String Sys Xks_core Xks_index Xks_xml
