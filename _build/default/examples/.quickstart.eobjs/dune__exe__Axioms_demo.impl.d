examples/axioms_demo.ml: List Printf Xks_core Xks_xml
