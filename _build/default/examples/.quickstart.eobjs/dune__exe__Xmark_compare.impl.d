examples/xmark_compare.ml: List Printf String Xks_core Xks_datagen Xks_metrics
