examples/dblp_search.ml: Array Format List Printf String Sys Xks_core Xks_datagen Xks_metrics
