examples/quickstart.mli:
