examples/snippet_search.mli:
