examples/xmark_compare.mli:
