examples/quickstart.ml: List Printf String Xks_core Xks_datagen
