(* xks — command-line XML keyword search.

   Subcommands:
     search   run a keyword query against an XML file
     stats    show document/index statistics and top words
     shred    dump the relational tables (label/element/value)
     gen      emit a synthetic DBLP-like or XMark-like corpus
*)

open Cmdliner

let engine_of_file path =
  try Xks_core.Engine.of_file path with
  | e when Xks_xml.Parser.error_to_string e <> None ->
      (match Xks_xml.Parser.error_to_string e with
      | Some msg ->
          prerr_endline msg;
          exit 2
      | None -> assert false)
  | Sys_error msg ->
      prerr_endline msg;
      exit 2

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"XML document to search.")

(* --- search --- *)

let algorithm_conv =
  Arg.enum
    [
      ("validrtf", Xks_core.Engine.Validrtf);
      ("maxmatch", Xks_core.Engine.Maxmatch);
      ("maxmatch-original", Xks_core.Engine.Maxmatch_original);
    ]

let search_cmd =
  let keywords =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"KEYWORD" ~doc:"Query keywords.")
  in
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Xks_core.Engine.Validrtf
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:
            "Algorithm: $(b,validrtf) (default), $(b,maxmatch) (revised) or \
             $(b,maxmatch-original) (SLCA only).")
  in
  let xml_out =
    Arg.(value & flag & info [ "x"; "xml" ] ~doc:"Print fragments as XML.")
  in
  let exact_cid =
    Arg.(
      value & flag
      & info [ "exact-cid" ]
          ~doc:
            "Use exact tree content sets instead of the paper's (min, max) \
             approximation when pruning.")
  in
  let limit =
    Arg.(
      value & opt int 10
      & info [ "n"; "limit" ] ~docv:"N" ~doc:"Show at most $(docv) results.")
  in
  let snippets =
    Arg.(
      value & flag
      & info [ "s"; "snippets" ]
          ~doc:"Show a query-biased snippet under each result.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Show, for every node of each raw RTF, which pruning rule \
             kept or discarded it.")
  in
  let run file ws algorithm xml_out exact_cid limit snippets explain =
    let engine = engine_of_file file in
    let cid_mode =
      if exact_cid then Xks_index.Cid.Exact else Xks_index.Cid.Approx
    in
    (* Terms containing ':' use the labeled-search extension. *)
    let labeled = List.exists (fun w -> String.contains w ':') ws in
    let hits =
      if labeled then Xks_core.Labeled.search ~algorithm engine ws
      else Xks_core.Engine.search ~algorithm ~cid_mode engine ws
    in
    let query =
      if labeled then Xks_core.Labeled.query (Xks_core.Engine.index engine) ws
      else Xks_core.Query.make (Xks_core.Engine.index engine) ws
    in
    Printf.printf "%d result(s) for \"%s\"\n" (List.length hits)
      (String.concat " " ws);
    if hits = [] && not labeled then
      List.iter
        (fun (w, correction) ->
          match correction with
          | Some better -> Printf.printf "no \"%s\" — did you mean \"%s\"?\n" w better
          | None -> ())
        (Xks_index.Suggest.correct_query (Xks_core.Engine.index engine) ws);
    List.iteri
      (fun i (hit : Xks_core.Engine.hit) ->
        if i < limit then begin
          Printf.printf "-- #%d score %.2f %s\n" (i + 1)
            hit.Xks_core.Engine.score
            (if hit.Xks_core.Engine.is_slca then "(slca)" else "(lca)");
          print_string (Xks_core.Engine.render ~xml:xml_out engine hit);
          if snippets then
            Printf.printf "   %s\n"
              (Xks_core.Snippet.of_fragment query hit.Xks_core.Engine.fragment);
          if explain then begin
            let info =
              Xks_core.Node_info.construct ~cid_mode query
                hit.Xks_core.Engine.rtf
            in
            let decisions =
              match algorithm with
              | Xks_core.Engine.Validrtf ->
                  Xks_core.Explain.valid_contributor info
              | Xks_core.Engine.Maxmatch | Xks_core.Engine.Maxmatch_original ->
                  Xks_core.Explain.contributor info
            in
            print_string
              (Xks_core.Explain.render (Xks_core.Engine.doc engine) decisions)
          end
        end)
      hits
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Run an XML keyword query and print fragments.")
    Term.(
      const run $ file_arg $ keywords $ algorithm $ xml_out $ exact_cid $ limit
      $ snippets $ explain)

(* --- stats --- *)

let stats_cmd =
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Show the $(docv) most frequent words.")
  in
  let run file top =
    let engine = engine_of_file file in
    print_endline (Xks_core.Engine.stats engine);
    let idx = Xks_core.Engine.index engine in
    List.iter
      (fun (w, c) -> Printf.printf "%8d  %s\n" c w)
      (Xks_index.Inverted.top_words idx top)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Document and index statistics.")
    Term.(const run $ file_arg $ top)

(* --- shred --- *)

let shred_cmd =
  let run file =
    let doc = Xks_xml.Parser.parse_file file in
    let tables = Xks_index.Shredder.shred doc in
    let nl, ne, nv = Xks_index.Shredder.row_count tables in
    Printf.printf "label table (%d rows):\n" nl;
    List.iter
      (fun r ->
        Printf.printf "  %3d %s\n" r.Xks_index.Shredder.label_id
          r.Xks_index.Shredder.label_name)
      tables.Xks_index.Shredder.labels;
    Printf.printf "element table: %d rows\nvalue table: %d rows\n" ne nv
  in
  Cmd.v
    (Cmd.info "shred"
       ~doc:"Shred a document into the paper's relational tables.")
    Term.(const run $ file_arg)

(* --- gen --- *)

let gen_cmd =
  let dataset =
    Arg.(
      required
      & pos 0
          (some
             (Arg.enum
                [
                  ("dblp", `Dblp); ("xmark-std", `Xmark Xks_datagen.Xmark_gen.Standard);
                  ("xmark1", `Xmark Xks_datagen.Xmark_gen.Data1);
                  ("xmark2", `Xmark Xks_datagen.Xmark_gen.Data2);
                ]))
          None
      & info [] ~docv:"DATASET"
          ~doc:"One of $(b,dblp), $(b,xmark-std), $(b,xmark1), $(b,xmark2).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let size =
    Arg.(
      value & opt int 0
      & info [ "size" ] ~docv:"N"
          ~doc:
            "Size knob: DBLP entries (default 12000) or XMark items per \
             region at standard scale (default 60).")
  in
  let run dataset out seed size =
    let doc =
      match dataset with
      | `Dblp ->
          let d = Xks_datagen.Dblp_gen.default_config in
          let entries = if size > 0 then size else d.Xks_datagen.Dblp_gen.entries in
          Xks_datagen.Dblp_gen.generate
            ~config:{ d with seed; entries } ()
      | `Xmark sz ->
          let d = Xks_datagen.Xmark_gen.default_config in
          let items = if size > 0 then size else d.Xks_datagen.Xmark_gen.items in
          Xks_datagen.Xmark_gen.generate ~config:{ d with seed; items } sz
    in
    Xks_xml.Writer.to_file out doc;
    Printf.printf "wrote %s (%d nodes)\n" out (Xks_xml.Tree.size doc)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic corpus as an XML file.")
    Term.(const run $ dataset $ out $ seed $ size)

(* --- sql --- *)

let sql_cmd =
  let keyword =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"KEYWORD" ~doc:"Keyword to look up in the value table.")
  in
  let run file keyword =
    let doc = Xks_xml.Parser.parse_file file in
    let store = Xks_index.Rel_store.of_doc doc in
    let result =
      Xks_relational.Plan.select ~distinct:true ~order_by:[ "id" ]
        ~columns:[ "id"; "dewey"; "label"; "attribute" ]
        ~where:
          (Xks_relational.Plan.Eq
             ( "keyword",
               Xks_relational.Value.text (Xks_xml.Tokenizer.normalize keyword) ))
        (Xks_index.Rel_store.value_table store)
    in
    Format.printf "%a" Xks_relational.Plan.pp_result result
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:
         "Answer a keyword lookup through the relational (shredded-table) \
          path, as the paper's platform does.")
    Term.(const run $ file_arg $ keyword)

let () =
  let doc = "XML keyword search with meaningful relaxed tightest fragments" in
  let info = Cmd.info "xks" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ search_cmd; stats_cmd; shred_cmd; gen_cmd; sql_cmd ]))
