(* Binary index persistence: round-trips, format validation. *)

module Inverted = Xks_index.Inverted
module Persist = Xks_index.Persist

let with_temp f =
  let path = Filename.temp_file "xks_persist" ".idx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let sample_doc () = Xks_datagen.Paper_fixtures.publications ()

let test_roundtrip () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  with_temp (fun path ->
      Persist.save path idx;
      let idx' = Persist.load path doc in
      Alcotest.(check int) "vocabulary size" (Inverted.vocabulary_size idx)
        (Inverted.vocabulary_size idx');
      List.iter
        (fun w ->
          Alcotest.(check (list int))
            ("posting of " ^ w)
            (Array.to_list (Inverted.posting idx w))
            (Array.to_list (Inverted.posting idx' w));
          Alcotest.(check int)
            ("occurrences of " ^ w)
            (Inverted.occurrence_count idx w)
            (Inverted.occurrence_count idx' w))
        (Inverted.vocabulary idx))

let test_loaded_index_searches () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  with_temp (fun path ->
      Persist.save path idx;
      let idx' = Persist.load path doc in
      let run idx = Xks_core.Validrtf.run idx Xks_datagen.Paper_fixtures.q2 in
      let frags r = List.map Xks_core.Fragment.members_list r.Xks_core.Pipeline.fragments in
      Alcotest.(check (list (list int)))
        "same search results" (frags (run idx)) (frags (run idx')))

let test_rejects_garbage () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "not an index";
      close_out oc;
      match Persist.load path (sample_doc ()) with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "garbage accepted")

let test_rejects_wrong_document () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  with_temp (fun path ->
      Persist.save path idx;
      let tiny = Xks_xml.Parser.parse_string "<a/>" in
      match Persist.load path tiny with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "mismatched document accepted")

let test_dump_of_table_inverse () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  let rows = Persist.dump idx in
  let idx' = Persist.of_table doc rows in
  Alcotest.(check bool) "rows round-trip" true (Persist.dump idx' = rows)

let test_of_table_validation () =
  let doc = sample_doc () in
  let bad_order = [ ("w", 2, [| 3; 1 |]) ] in
  (match Persist.of_table doc bad_order with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unsorted posting accepted");
  let bad_range = [ ("w", 1, [| 10_000 |]) ] in
  match Persist.of_table doc bad_range with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "out-of-range id accepted"

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"persistence round-trip on random documents"
    ~count:100 ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let idx = Inverted.build doc in
      let idx' = Persist.of_table doc (Persist.dump idx) in
      Persist.dump idx = Persist.dump idx')

let tests =
  [
    Alcotest.test_case "round-trip through a file" `Quick test_roundtrip;
    Alcotest.test_case "loaded index searches identically" `Quick
      test_loaded_index_searches;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
    Alcotest.test_case "rejects a mismatched document" `Quick
      test_rejects_wrong_document;
    Alcotest.test_case "dump/of_table inverse" `Quick test_dump_of_table_inverse;
    Alcotest.test_case "of_table validation" `Quick test_of_table_validation;
    Helpers.qtest prop_roundtrip_random;
  ]
