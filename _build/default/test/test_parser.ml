module Parser = Xks_xml.Parser
module Tree = Xks_xml.Tree
module Writer = Xks_xml.Writer

let parse = Parser.parse_string

let label doc dewey = Tree.label_name doc (Tree.node doc (Helpers.id_at doc dewey))
let text doc dewey = (Tree.node doc (Helpers.id_at doc dewey)).Tree.text

let test_minimal () =
  let doc = parse "<a/>" in
  Alcotest.(check int) "one node" 1 (Tree.size doc);
  Alcotest.(check string) "label" "a" (label doc "0")

let test_nested () =
  let doc = parse "<a><b>hello</b><c attr='v'>world</c></a>" in
  Alcotest.(check int) "three nodes" 3 (Tree.size doc);
  Alcotest.(check string) "b text" "hello" (text doc "0.0");
  Alcotest.(check string) "c text" "world" (text doc "0.1");
  Alcotest.(check (list (pair string string)))
    "attributes" [ ("attr", "v") ]
    (Tree.node doc (Helpers.id_at doc "0.1")).Tree.attrs

let test_declaration_comment_pi () =
  let doc =
    parse
      "<?xml version=\"1.0\"?><!-- c --><?pi data?><root><!-- inner \
       --><a/></root><!-- after -->"
  in
  Alcotest.(check string) "root" "root" (label doc "0");
  Alcotest.(check int) "two nodes" 2 (Tree.size doc)

let test_doctype () =
  let doc = parse "<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [<!ENTITY x \"y\">]><dblp/>" in
  Alcotest.(check string) "root" "dblp" (label doc "0")

let test_entities () =
  let doc = parse "<a>x &amp; y &lt;z&gt; &quot;q&quot; &#65;&#x42;</a>" in
  Alcotest.(check string) "decoded" "x & y <z> \"q\" AB" (text doc "0")

let test_cdata () =
  let doc = parse "<a><![CDATA[<raw> & text]]></a>" in
  Alcotest.(check string) "cdata kept verbatim" "<raw> & text" (text doc "0")

let test_whitespace_trim () =
  let doc = parse "<a>\n   padded text \t </a>" in
  Alcotest.(check string) "trimmed" "padded text" (text doc "0")

let test_mixed_content_flattened () =
  let doc = parse "<a>pre<b/>post</a>" in
  Alcotest.(check string) "concatenated" "prepost" (text doc "0");
  Alcotest.(check int) "child survives" 2 (Tree.size doc)

let check_error input =
  match parse input with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.failf "expected a parse error for %S" input

let test_errors () =
  List.iter check_error
    [
      ""; "<a>"; "<a></b>"; "<a attr></a>"; "<a 'v'/>"; "<a/><b/>";
      "text only"; "<a>&undefined;</a>"; "<a><b></a></b>"; "< a/>";
      "<a><![CDATA[x]]</a>";
    ]

let test_error_position () =
  match parse "<a>\n<b></c>\n</a>" with
  | exception Parser.Error { line; _ } ->
      Alcotest.(check int) "line number" 2 line
  | _ -> Alcotest.fail "expected a parse error"

let test_error_to_string () =
  (match Parser.error_to_string (Failure "x") with
  | None -> ()
  | Some _ -> Alcotest.fail "non-parser exception");
  match parse "<a>" with
  | exception e ->
      Alcotest.(check bool) "renders" true (Parser.error_to_string e <> None)
  | _ -> Alcotest.fail "expected failure"

let test_file_roundtrip () =
  let doc = Xks_datagen.Paper_fixtures.publications () in
  let path = Filename.temp_file "xks_test" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.to_file path doc;
      let doc' = Parser.parse_file path in
      Alcotest.(check string)
        "file round-trip" (Writer.to_string doc) (Writer.to_string doc'))

(* Round trip: write then parse gives the same rendering. *)
let prop_roundtrip =
  QCheck2.Test.make ~name:"write/parse round-trip" ~count:200
    ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let s = Writer.to_string doc in
      let doc' = parse s in
      Writer.to_string doc' = s)

let prop_roundtrip_compact =
  QCheck2.Test.make ~name:"compact write/parse round-trip" ~count:200
    ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let s = Writer.to_string ~indent:0 doc in
      let doc' = parse s in
      Writer.to_string ~indent:0 doc' = s)

let tests =
  [
    Alcotest.test_case "minimal document" `Quick test_minimal;
    Alcotest.test_case "nested elements and attributes" `Quick test_nested;
    Alcotest.test_case "declaration, comments, PIs" `Quick test_declaration_comment_pi;
    Alcotest.test_case "doctype with internal subset" `Quick test_doctype;
    Alcotest.test_case "entity references" `Quick test_entities;
    Alcotest.test_case "CDATA" `Quick test_cdata;
    Alcotest.test_case "whitespace trimming" `Quick test_whitespace_trim;
    Alcotest.test_case "mixed content" `Quick test_mixed_content_flattened;
    Alcotest.test_case "malformed inputs are rejected" `Quick test_errors;
    Alcotest.test_case "error carries the position" `Quick test_error_position;
    Alcotest.test_case "error rendering" `Quick test_error_to_string;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Helpers.qtest prop_roundtrip;
    Helpers.qtest prop_roundtrip_compact;
  ]
