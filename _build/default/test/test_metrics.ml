(* CFR / APR / APR' / Max APR (Section 5.1). *)

module Metrics = Xks_metrics.Metrics
module Engine = Xks_core.Engine

let metrics_for xml query =
  let engine = Engine.of_string xml in
  let validrtf = Engine.run ~algorithm:Engine.Validrtf engine query in
  let maxmatch = Engine.run ~algorithm:Engine.Maxmatch engine query in
  Metrics.compare_results ~validrtf ~maxmatch

let test_identical_results () =
  (* Distinct keyword sets per sibling: both algorithms agree. *)
  let m = metrics_for "<r><a>w1</a><b>w2</b></r>" [ "w1"; "w2" ] in
  Alcotest.(check int) "lcas" 1 m.Metrics.lca_count;
  Alcotest.(check (float 1e-9)) "cfr" 1.0 m.Metrics.cfr;
  Alcotest.(check (float 1e-9)) "apr" 0.0 m.Metrics.apr;
  Alcotest.(check (float 1e-9)) "max apr" 0.0 m.Metrics.max_apr

let test_validrtf_prunes_more () =
  (* Q4-style redundancy: MaxMatch keeps the duplicate, ValidRTF prunes
     2 of the 9 fragment nodes. *)
  let m =
    metrics_for
      "<team><name>grizzlies</name><players><player><pos>forward</pos></player><player><pos>guard</pos></player><player><pos>forward</pos></player></players></team>"
      [ "grizzlies"; "pos" ]
  in
  Alcotest.(check int) "one lca" 1 m.Metrics.lca_count;
  Alcotest.(check (float 1e-9)) "cfr 0" 0.0 m.Metrics.cfr;
  Alcotest.(check (float 1e-3)) "apr = 2/9" (2.0 /. 9.0) m.Metrics.apr;
  Alcotest.(check (float 1e-3)) "max apr = apr (single)" m.Metrics.apr m.Metrics.max_apr;
  Alcotest.(check (float 1e-9)) "apr' drops the extreme" 0.0 m.Metrics.apr'

let test_validrtf_keeps_more () =
  (* False-positive case: ValidRTF keeps a node MaxMatch drops; fragments
     differ but ValidRTF discards nothing, so APR stays 0 while CFR < 1. *)
  let m =
    metrics_for "<r><t>w1</t><abs>w1 w2</abs><z>w3</z></r>"
      [ "w1"; "w2"; "w3" ]
  in
  Alcotest.(check (float 1e-9)) "cfr" 0.0 m.Metrics.cfr;
  Alcotest.(check (float 1e-9)) "apr" 0.0 m.Metrics.apr

let test_mismatched_lcas_rejected () =
  let engine = Engine.of_string "<r><a>w1</a><b>w1 w2</b></r>" in
  let validrtf = Engine.run ~algorithm:Engine.Validrtf engine [ "w1"; "w2" ] in
  let original =
    Engine.run ~algorithm:Engine.Maxmatch_original engine [ "w1" ]
  in
  Alcotest.check_raises "different LCA sets"
    (Invalid_argument "Metrics.compare_results: different LCA sets")
    (fun () -> ignore (Metrics.compare_results ~validrtf ~maxmatch:original))

let test_empty_results () =
  let m = metrics_for "<r><a>w1</a></r>" [ "w1"; "w9" ] in
  Alcotest.(check int) "no lcas" 0 m.Metrics.lca_count;
  Alcotest.(check (float 1e-9)) "cfr 1 by convention" 1.0 m.Metrics.cfr

(* Properties over random documents. *)

let gen_case = QCheck2.Gen.pair Helpers.gen_doc Helpers.gen_query

let print_case (doc, ws) =
  Printf.sprintf "query=%s doc=%s" (String.concat "," ws) (Helpers.print_doc doc)

let metrics_of (doc, ws) =
  let engine = Engine.of_doc doc in
  let validrtf = Engine.run ~algorithm:Engine.Validrtf engine ws in
  let maxmatch = Engine.run ~algorithm:Engine.Maxmatch engine ws in
  Metrics.compare_results ~validrtf ~maxmatch

let prop_ranges =
  QCheck2.Test.make ~name:"metric ranges: 0 <= APR' <= MaxAPR < 1, CFR in [0,1]"
    ~count:300 ~print:print_case gen_case (fun case ->
      let m = metrics_of case in
      m.Metrics.cfr >= 0.0
      && m.Metrics.cfr <= 1.0
      && m.Metrics.apr >= 0.0
      && m.Metrics.apr' >= 0.0
      && m.Metrics.apr' <= m.Metrics.max_apr +. 1e-9
      && m.Metrics.max_apr < 1.0
      && m.Metrics.common <= m.Metrics.lca_count)

let prop_cfr_one_iff_all_common =
  QCheck2.Test.make ~name:"CFR = 1 iff every fragment is common" ~count:300
    ~print:print_case gen_case (fun case ->
      let m = metrics_of case in
      (abs_float (m.Metrics.cfr -. 1.0) < 1e-9)
      = (m.Metrics.common = m.Metrics.lca_count))

let tests =
  [
    Alcotest.test_case "identical results" `Quick test_identical_results;
    Alcotest.test_case "ValidRTF prunes more" `Quick test_validrtf_prunes_more;
    Alcotest.test_case "ValidRTF keeps more" `Quick test_validrtf_keeps_more;
    Alcotest.test_case "mismatched LCA sets rejected" `Quick test_mismatched_lcas_rejected;
    Alcotest.test_case "empty results" `Quick test_empty_results;
    Helpers.qtest prop_ranges;
    Helpers.qtest prop_cfr_one_iff_all_common;
  ]
