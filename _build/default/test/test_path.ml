(* The XPath subset and path-scoped keyword search. *)

module Path = Xks_xml.Path
module Tree = Xks_xml.Tree
module Scoped = Xks_core.Scoped
module Engine = Xks_core.Engine

let doc () =
  Xks_xml.Parser.parse_string
    "<site><regions><europe><item id='i1'><name>clock</name><price>10</price></item><item \
     id='i2'><name>globe</name></item></europe><asia><item \
     id='i3'><name>clock</name></item></asia></regions><people><person \
     id='p1'><name>ada</name></person></people></site>"

let eval doc s = Helpers.deweys_of doc (Path.eval_ids doc (Path.parse s))

let test_child_steps () =
  let d = doc () in
  Alcotest.(check (list string)) "root" [ "0" ] (eval d "/site");
  Alcotest.(check (list string)) "nested" [ "0.0.0" ] (eval d "/site/regions/europe");
  Alcotest.(check (list string)) "wrong root" [] (eval d "/nope");
  Alcotest.(check (list string)) "wildcard"
    [ "0.0.0"; "0.0.1" ]
    (eval d "/site/regions/*")

let test_descendant_steps () =
  let d = doc () in
  Alcotest.(check (list string)) "all items"
    [ "0.0.0.0"; "0.0.0.1"; "0.0.1.0" ]
    (eval d "//item");
  Alcotest.(check (list string)) "names everywhere"
    [ "0.0.0.0.0"; "0.0.0.1.0"; "0.0.1.0.0"; "0.1.0.0" ]
    (eval d "//name");
  Alcotest.(check (list string)) "scoped descendants"
    [ "0.0.0.0.0"; "0.0.0.1.0"; "0.0.1.0.0" ]
    (eval d "/site/regions//name")

let test_predicates () =
  let d = doc () in
  Alcotest.(check (list string)) "attr equality" [ "0.0.0.1" ] (eval d "//item[@id='i2']");
  Alcotest.(check (list string)) "attr presence"
    [ "0.0.0.0"; "0.0.0.1"; "0.0.1.0" ]
    (eval d "//item[@id]");
  Alcotest.(check (list string)) "child text"
    [ "0.0.0.0"; "0.0.1.0" ]
    (eval d "//item[name='clock']");
  Alcotest.(check (list string)) "self text"
    [ "0.0.0.0.0"; "0.0.1.0.0" ]
    (eval d "//item/name[.='clock']");
  Alcotest.(check (list string)) "position is per parent"
    [ "0.0.0.1" ]
    (eval d "/site/regions/europe/item[2]");
  Alcotest.(check (list string)) "position under //"
    [ "0.0.0.0"; "0.0.1.0" ]
    (eval d "//item[1]");
  Alcotest.(check (list string)) "stacked predicates" [ "0.0.0.0" ]
    (eval d "//item[@id='i1'][name='clock']")

let test_parse_errors () =
  List.iter
    (fun s ->
      match Path.parse s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed path %S" s)
    [ ""; "a/b"; "/"; "//"; "/a["; "/a[]"; "/a[@]"; "/a[@x="; "/a[0]"; "/a[x=']" ]

let test_to_string_roundtrip () =
  List.iter
    (fun s ->
      let p = Path.parse s in
      Alcotest.(check string) s s (Path.to_string p);
      Alcotest.(check string) "reparse is stable" s
        (Path.to_string (Path.parse (Path.to_string p))))
    [
      "/site/regions"; "//item[@id='i2']"; "//item[name='clock'][2]";
      "/site//*[@id]"; "//name[.='ada']";
    ]

(* --- scoped keyword search --- *)

let test_scoped_search () =
  let engine = Engine.of_doc (doc ()) in
  (* Unscoped: "clock" hits items in both regions. *)
  let all = Engine.search engine [ "clock" ] in
  Alcotest.(check int) "two clocks" 2 (List.length all);
  (* Scoped to asia: only the asian item remains. *)
  let scoped = Scoped.search engine ~path:"/site/regions/asia" [ "clock" ] in
  let d = Engine.doc engine in
  Alcotest.(check (list string)) "asia only" [ "0.0.1.0.0" ]
    (List.map
       (fun (h : Engine.hit) ->
         Helpers.dewey_str d h.Engine.fragment.Xks_core.Fragment.root)
       scoped)

let test_scoped_pipeline_semantics () =
  (* Scoping changes the LCA computation consistently: restricting to
     the europe subtree turns the cross-region LCA into a per-item one. *)
  let engine = Engine.of_doc (doc ()) in
  let q = Scoped.query (Engine.index engine) ~path:"//europe" [ "clock"; "globe" ] in
  let lcas = Xks_lca.Indexed_stack.elca q.Xks_core.Query.doc q.Xks_core.Query.postings in
  Helpers.check_ids (Engine.doc engine) "lca inside the scope" [ "0.0.0" ] lcas

let test_scope_without_matches () =
  let engine = Engine.of_doc (doc ()) in
  Alcotest.(check int) "no people clocks" 0
    (List.length (Scoped.search engine ~path:"//people" [ "clock" ]))

let prop_scoped_subset =
  QCheck2.Test.make ~name:"scoped results are a subset of unscoped results"
    ~count:200
    ~print:(fun (doc, ws) ->
      Printf.sprintf "query=%s doc=%s" (String.concat "," ws)
        (Helpers.print_doc doc))
    QCheck2.Gen.(pair Helpers.gen_doc Helpers.gen_query)
    (fun (doc, ws) ->
      let idx = Xks_index.Inverted.build doc in
      let base = Xks_core.Query.make idx ws in
      let scoped_postings =
        Scoped.restrict_postings doc ~scope:[ 0 ] base.Xks_core.Query.postings
      in
      (* Scoping to the whole document changes nothing. *)
      scoped_postings = base.Xks_core.Query.postings)

let tests =
  [
    Alcotest.test_case "child steps" `Quick test_child_steps;
    Alcotest.test_case "descendant steps" `Quick test_descendant_steps;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "to_string round-trip" `Quick test_to_string_roundtrip;
    Alcotest.test_case "scoped search" `Quick test_scoped_search;
    Alcotest.test_case "scoped pipeline semantics" `Quick test_scoped_pipeline_semantics;
    Alcotest.test_case "scope without matches" `Quick test_scope_without_matches;
    Helpers.qtest prop_scoped_subset;
  ]
