(* Long-running differential stress test, independent of `dune runtest`:
   larger random documents, wider alphabets, every algorithm checked
   against every other.

     dune exec test/stress/stress.exe -- [iterations] [seed]

   Exits non-zero and prints the offending document on the first
   disagreement. *)

module Tree = Xks_xml.Tree
module Rng = Xks_datagen.Rng

let labels = [| "a"; "b"; "c"; "d"; "e"; "f" |]
let words = [| "w0"; "w1"; "w2"; "w3"; "w4"; "w5"; "w6"; "w7" |]

(* A random document of up to [max_nodes] nodes, denser and deeper than
   the unit-test generator. *)
let random_doc rng max_nodes =
  let budget = ref (2 + Rng.int rng (max_nodes - 1)) in
  let rec build depth =
    decr budget;
    let n_children =
      if depth > 8 || !budget <= 0 then 0
      else Rng.int rng (min 5 (max 1 !budget))
    in
    let children = List.init n_children (fun _ -> build (depth + 1)) in
    let text =
      match Rng.int rng 4 with
      | 0 -> ""
      | 1 -> Rng.pick rng words
      | 2 -> Rng.pick rng words ^ " " ^ Rng.pick rng words
      | _ ->
          String.concat " "
            (List.init (1 + Rng.int rng 3) (fun _ -> Rng.pick rng words))
    in
    Tree.elem ~text (Rng.pick rng labels) children
  in
  Tree.build (build 0)

let random_query rng =
  let arity = 1 + Rng.int rng 4 in
  List.sort_uniq compare (List.init arity (fun _ -> Rng.pick rng words))

let check name ok doc query =
  if not ok then begin
    Printf.eprintf "STRESS FAILURE: %s\nquery: %s\ndocument:\n%s\n" name
      (String.concat " " query)
      (Xks_xml.Writer.to_string doc);
    exit 1
  end

let run_case rng max_nodes =
  let doc = random_doc rng max_nodes in
  let query = random_query rng in
  let idx = Xks_index.Inverted.build doc in
  let q = Xks_core.Query.make idx query in
  let ps = q.Xks_core.Query.postings in
  (* LCA layer: all implementations agree. *)
  let slca_ile = Xks_lca.Slca.indexed_lookup_eager doc ps in
  check "scan eager = ILE" (Xks_lca.Scan_eager.slca doc ps = slca_ile) doc query;
  check "stack slca = ILE" (Xks_lca.Stack_algos.slca doc ps = slca_ile) doc query;
  check "multiway = ILE" (Xks_lca.Multiway.slca doc ps = slca_ile) doc query;
  check "tree-scan slca = ILE" (Xks_lca.Tree_scan.slca doc ps = slca_ile) doc query;
  let elca_is = Xks_lca.Indexed_stack.elca doc ps in
  check "stack elca = indexed stack" (Xks_lca.Stack_algos.elca doc ps = elca_is)
    doc query;
  check "tree-scan elca = indexed stack" (Xks_lca.Tree_scan.elca doc ps = elca_is)
    doc query;
  (* SQL path agrees with the inverted index. *)
  let store = Xks_index.Rel_store.of_doc doc in
  check "sql postings"
    (Xks_index.Rel_store.postings_via_sql store
       (Array.to_list q.Xks_core.Query.keywords)
    = ps)
    doc query;
  (* Streaming index agrees with the tree index. *)
  check "stream index"
    (Xks_index.Stream_index.rows_of_string (Xks_xml.Writer.to_string doc)
    = Xks_index.Persist.dump idx)
    doc query;
  (* Pipeline invariants. *)
  let validrtf = Xks_core.Validrtf.run_query q in
  let maxmatch = Xks_core.Maxmatch.run_revised_query q in
  check "same lcas"
    (validrtf.Xks_core.Pipeline.lcas = maxmatch.Xks_core.Pipeline.lcas)
    doc query;
  check "lcas = elcas" (validrtf.Xks_core.Pipeline.lcas = elca_is) doc query;
  List.iter2
    (fun rtf frag ->
      let info = Xks_core.Node_info.construct q rtf in
      let again = Xks_core.Prune.valid_contributor info in
      check "pruning deterministic" (Xks_core.Fragment.equal frag again) doc query;
      let explained =
        List.filter Xks_core.Explain.kept (Xks_core.Explain.valid_contributor info)
        |> List.map (fun (d : Xks_core.Explain.decision) -> d.Xks_core.Explain.node)
      in
      check "explain agrees"
        (explained = Xks_core.Fragment.members_list frag)
        doc query)
    validrtf.Xks_core.Pipeline.rtfs validrtf.Xks_core.Pipeline.fragments;
  (* Metrics stay in range. *)
  let m = Xks_metrics.Metrics.compare_results ~validrtf ~maxmatch in
  check "metric ranges"
    (m.Xks_metrics.Metrics.cfr >= 0.0
    && m.Xks_metrics.Metrics.cfr <= 1.0
    && m.Xks_metrics.Metrics.max_apr < 1.0
    && m.Xks_metrics.Metrics.apr' >= 0.0)
    doc query;
  (* Round-trip the document through the writer and parser. *)
  let s = Xks_xml.Writer.to_string doc in
  check "parse/write round-trip"
    (Xks_xml.Writer.to_string (Xks_xml.Parser.parse_string s) = s)
    doc query

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2000
  in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let rng = Rng.create seed in
  for i = 1 to iterations do
    let max_nodes = 10 + Rng.int rng 190 in
    run_case rng max_nodes;
    if i mod 500 = 0 then Printf.printf "%d/%d cases ok\n%!" i iterations
  done;
  Printf.printf "stress: %d cases, no disagreement (seed %d)\n" iterations seed
