module Dewey = Xks_xml.Dewey

let d = Dewey.of_list

let test_roundtrip_string () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Dewey.to_string (Dewey.of_string s)))
    [ "0"; "0.0"; "0.2.0.3.0"; "0.10.255" ]

let test_of_string_invalid () =
  List.iter
    (fun s ->
      Alcotest.check_raises s (Invalid_argument "Dewey.of_string") (fun () ->
          ignore (Dewey.of_string s)))
    [ ""; "1"; "0.-1"; "0.a"; "0..1" ]

let test_root () =
  Alcotest.(check int) "depth of root" 0 (Dewey.depth Dewey.root);
  Alcotest.(check string) "root renders as 0" "0" (Dewey.to_string Dewey.root)

let test_child_parent () =
  let c = Dewey.child (d [ 2; 0 ]) 3 in
  Alcotest.(check string) "child" "0.2.0.3" (Dewey.to_string c);
  (match Dewey.parent c with
  | Some p -> Alcotest.(check string) "parent" "0.2.0" (Dewey.to_string p)
  | None -> Alcotest.fail "parent of non-root");
  Alcotest.(check bool) "root has no parent" true (Dewey.parent Dewey.root = None)

let test_preorder_compare () =
  (* Ancestors precede descendants; siblings compare by rank. *)
  Alcotest.(check bool) "ancestor < descendant" true (Dewey.compare (d [ 2 ]) (d [ 2; 0 ]) < 0);
  Alcotest.(check bool) "left < right" true (Dewey.compare (d [ 1; 5 ]) (d [ 2 ]) < 0);
  Alcotest.(check bool) "deep left < shallow right" true
    (Dewey.compare (d [ 1; 5; 9 ]) (d [ 2 ]) < 0);
  Alcotest.(check int) "equal" 0 (Dewey.compare (d [ 1; 2 ]) (d [ 1; 2 ]))

let test_ancestry () =
  Alcotest.(check bool) "strict ancestor" true (Dewey.is_ancestor (d [ 2 ]) (d [ 2; 0; 3 ]));
  Alcotest.(check bool) "self is not strict" false (Dewey.is_ancestor (d [ 2 ]) (d [ 2 ]));
  Alcotest.(check bool) "self is ancestor-or-self" true
    (Dewey.is_ancestor_or_self (d [ 2 ]) (d [ 2 ]));
  Alcotest.(check bool) "sibling is not ancestor" false
    (Dewey.is_ancestor (d [ 1 ]) (d [ 2; 0 ]));
  Alcotest.(check bool) "root is ancestor of all" true
    (Dewey.is_ancestor Dewey.root (d [ 0 ]))

let test_lca () =
  let check a b expected =
    Alcotest.(check string)
      (Printf.sprintf "lca %s %s" (Dewey.to_string (d a)) (Dewey.to_string (d b)))
      expected
      (Dewey.to_string (Dewey.lca (d a) (d b)))
  in
  check [ 2; 0; 1 ] [ 2; 0; 3; 0 ] "0.2.0";
  check [ 2; 0 ] [ 2; 0; 3 ] "0.2.0";
  check [ 0 ] [ 2 ] "0";
  check [ 1; 1 ] [ 1; 1 ] "0.1.1";
  Alcotest.(check int) "lca_depth" 2 (Dewey.lca_depth (d [ 2; 0; 1 ]) (d [ 2; 0; 3 ]))

let test_lca_list () =
  Alcotest.(check string) "lca of three" "0.2"
    (Dewey.to_string (Dewey.lca_list [ d [ 2; 0; 1 ]; d [ 2; 1 ]; d [ 2; 0 ] ]));
  Alcotest.check_raises "empty list" (Invalid_argument "Dewey.lca_list: empty list")
    (fun () -> ignore (Dewey.lca_list []))

let test_prefix_component () =
  let x = d [ 4; 2; 7 ] in
  Alcotest.(check string) "prefix 2" "0.4.2" (Dewey.to_string (Dewey.prefix x 2));
  Alcotest.(check string) "prefix 0 is root" "0" (Dewey.to_string (Dewey.prefix x 0));
  Alcotest.(check int) "component" 7 (Dewey.component x 2)

let gen_dewey =
  QCheck2.Gen.(map Dewey.of_list (list_size (int_range 0 6) (int_range 0 5)))

let prop_compare_total_order =
  QCheck2.Test.make ~name:"compare is antisymmetric and transitive-ish"
    ~count:500
    QCheck2.Gen.(triple gen_dewey gen_dewey gen_dewey)
    (fun (a, b, c) ->
      let ab = Dewey.compare a b and ba = Dewey.compare b a in
      (compare ab 0 = compare 0 ba)
      && ((not (Dewey.compare a b < 0 && Dewey.compare b c < 0))
          || Dewey.compare a c < 0))

let prop_lca_is_common_ancestor =
  QCheck2.Test.make ~name:"lca is an ancestor-or-self of both" ~count:500
    QCheck2.Gen.(pair gen_dewey gen_dewey)
    (fun (a, b) ->
      let l = Dewey.lca a b in
      Dewey.is_ancestor_or_self l a && Dewey.is_ancestor_or_self l b)

let prop_lca_deepest =
  QCheck2.Test.make ~name:"no deeper common ancestor than the lca" ~count:500
    QCheck2.Gen.(pair gen_dewey gen_dewey)
    (fun (a, b) ->
      let l = Dewey.lca a b in
      (* Any strictly deeper prefix of [a] is not an ancestor of [b]. *)
      Dewey.depth l = Dewey.depth a
      ||
      let deeper = Dewey.prefix a (Dewey.depth l + 1) in
      not (Dewey.is_ancestor_or_self deeper b))

let prop_ancestor_iff_prefix_compare =
  QCheck2.Test.make ~name:"ancestor-or-self agrees with lca_depth" ~count:500
    QCheck2.Gen.(pair gen_dewey gen_dewey)
    (fun (a, b) ->
      Dewey.is_ancestor_or_self a b
      = (Dewey.lca_depth a b = Dewey.depth a && Dewey.depth a <= Dewey.depth b))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"to_string/of_string round-trip" ~count:500
    gen_dewey (fun d ->
      Dewey.equal d (Dewey.of_string (Dewey.to_string d)))

let prop_lca_laws =
  QCheck2.Test.make ~name:"lca: commutative, associative, idempotent"
    ~count:500
    QCheck2.Gen.(triple gen_dewey gen_dewey gen_dewey)
    (fun (a, b, c) ->
      Dewey.equal (Dewey.lca a b) (Dewey.lca b a)
      && Dewey.equal (Dewey.lca a (Dewey.lca b c)) (Dewey.lca (Dewey.lca a b) c)
      && Dewey.equal (Dewey.lca a a) a)

let tests =
  [
    Alcotest.test_case "string round-trip" `Quick test_roundtrip_string;
    Alcotest.test_case "of_string rejects malformed input" `Quick test_of_string_invalid;
    Alcotest.test_case "root" `Quick test_root;
    Alcotest.test_case "child and parent" `Quick test_child_parent;
    Alcotest.test_case "preorder comparison" `Quick test_preorder_compare;
    Alcotest.test_case "ancestry tests" `Quick test_ancestry;
    Alcotest.test_case "lca" `Quick test_lca;
    Alcotest.test_case "lca of a list" `Quick test_lca_list;
    Alcotest.test_case "prefix and component" `Quick test_prefix_component;
    Helpers.qtest prop_compare_total_order;
    Helpers.qtest prop_lca_is_common_ancestor;
    Helpers.qtest prop_lca_deepest;
    Helpers.qtest prop_ancestor_iff_prefix_compare;
    Helpers.qtest prop_string_roundtrip;
    Helpers.qtest prop_lca_laws;
  ]
