(* Pruning explanations: each Definition-4 rule pinned to nodes, and
   agreement with the actual pruning. *)

module Explain = Xks_core.Explain
module Prune = Xks_core.Prune
module Node_info = Xks_core.Node_info
module Query = Xks_core.Query
module Rtf = Xks_core.Rtf
module Fragment = Xks_core.Fragment

let setup xml ws =
  let doc = Xks_xml.Parser.parse_string xml in
  let q = Query.make (Xks_index.Inverted.build doc) ws in
  let lcas = Xks_lca.Indexed_stack.elca q.doc q.postings in
  let rtf = List.hd (Rtf.get_rtfs q lcas) in
  (doc, Node_info.construct q rtf)

let reason_at doc decisions dewey =
  let id = Helpers.id_at doc dewey in
  match List.find_opt (fun (d : Explain.decision) -> d.Explain.node = id) decisions with
  | Some d -> d.Explain.reason
  | None -> Alcotest.failf "no decision for %s" dewey

let test_rules_pinned () =
  let doc, info =
    setup
      "<r><t>w1</t><p><x>w1</x></p><p>w1 w2 alpha</p><p>w1 w2 alpha</p><p>w1 \
       w2 beta</p><q>w3</q></r>"
      [ "w1"; "w2"; "w3" ]
  in
  let d = Explain.valid_contributor info in
  Alcotest.(check bool) "root" true (reason_at doc d "0" = Explain.Kept_root);
  Alcotest.(check bool) "rule 1 (t)" true
    (reason_at doc d "0.0" = Explain.Kept_unique_label);
  Alcotest.(check bool) "rule 1 (q)" true
    (reason_at doc d "0.5" = Explain.Kept_unique_label);
  (* p group: 0.1 {w1} covered by 0.2 {w1,w2}; 0.2 kept maximal; 0.3
     duplicates 0.2; 0.4 same keywords, distinct content. *)
  Alcotest.(check bool) "rule 2a discard" true
    (reason_at doc d "0.1" = Explain.Discarded_covered (Helpers.id_at doc "0.2"));
  Alcotest.(check bool) "descendant of a discard" true
    (reason_at doc d "0.1.0"
    = Explain.Discarded_with_ancestor (Helpers.id_at doc "0.1"));
  Alcotest.(check bool) "rule 2a keep" true
    (reason_at doc d "0.2" = Explain.Kept_maximal);
  Alcotest.(check bool) "rule 2b discard" true
    (reason_at doc d "0.3" = Explain.Discarded_duplicate (Helpers.id_at doc "0.2"));
  Alcotest.(check bool) "rule 2b keep" true
    (reason_at doc d "0.4" = Explain.Kept_distinct_content)

let test_contributor_label_blind () =
  let doc, info =
    setup "<r><t>w1</t><abs>w1 w2</abs><z>w3</z></r>" [ "w1"; "w2"; "w3" ]
  in
  let d = Explain.contributor info in
  Alcotest.(check bool) "t discarded across labels" true
    (reason_at doc d "0.0" = Explain.Discarded_covered (Helpers.id_at doc "0.1"));
  let dv = Explain.valid_contributor info in
  Alcotest.(check bool) "valid contributor keeps it" true
    (reason_at doc dv "0.0" = Explain.Kept_unique_label)

(* The Definition-4 vs Algorithm-1 pseudocode divergence: content
   features are compared only among equal keyword sets. *)
let test_cid_scoped_per_keyword_set () =
  (* Same label, different (maximal, incomparable) keyword sets, equal
     content features: both survive under Definition 4. *)
  let doc, info =
    setup "<r><p>w1 aa zz</p><p>w2 aa zz</p>w3</r>" [ "w1"; "w2"; "w3" ]
  in
  let d = Explain.valid_contributor info in
  Alcotest.(check bool) "first kept" true
    (reason_at doc d "0.0" = Explain.Kept_maximal);
  Alcotest.(check bool) "second kept despite equal cid" true
    (reason_at doc d "0.1" = Explain.Kept_maximal)

let test_render () =
  let doc, info = setup "<r><a>w1</a><b>w2</b></r>" [ "w1"; "w2" ] in
  let s = Explain.render doc (Explain.valid_contributor info) in
  Alcotest.(check bool) "mentions rule 1" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> l = "0.0 (a): kept: unique label among its siblings (rule 1)") lines)

(* Agreement with Prune on random inputs. *)
let prop_explain_matches_prune =
  QCheck2.Test.make ~name:"explanations agree with the pruning" ~count:300
    ~print:(fun (doc, ws) ->
      Printf.sprintf "query=%s doc=%s" (String.concat "," ws)
        (Helpers.print_doc doc))
    QCheck2.Gen.(pair Helpers.gen_doc Helpers.gen_query)
    (fun (doc, ws) ->
      let q = Query.make (Xks_index.Inverted.build doc) ws in
      let lcas = Xks_lca.Indexed_stack.elca q.doc q.postings in
      List.for_all
        (fun rtf ->
          let info = Node_info.construct q rtf in
          let agree explain prune =
            let kept_ids =
              List.filter Explain.kept (explain info)
              |> List.map (fun (d : Explain.decision) -> d.Explain.node)
            in
            kept_ids = Fragment.members_list (prune info)
          in
          agree Explain.valid_contributor Prune.valid_contributor
          && agree Explain.contributor Prune.contributor)
        (Rtf.get_rtfs q lcas))

let prop_every_rtf_node_decided =
  QCheck2.Test.make ~name:"one decision per raw-RTF node" ~count:200
    ~print:(fun (doc, ws) ->
      Printf.sprintf "query=%s doc=%s" (String.concat "," ws)
        (Helpers.print_doc doc))
    QCheck2.Gen.(pair Helpers.gen_doc Helpers.gen_query)
    (fun (doc, ws) ->
      let q = Query.make (Xks_index.Inverted.build doc) ws in
      let lcas = Xks_lca.Indexed_stack.elca q.doc q.postings in
      List.for_all
        (fun rtf ->
          let info = Node_info.construct q rtf in
          let decided =
            List.map (fun (d : Explain.decision) -> d.Explain.node)
              (Explain.valid_contributor info)
          in
          let raw = Fragment.members_list (Prune.keep_all info) in
          decided = raw)
        (Rtf.get_rtfs q lcas))

let tests =
  [
    Alcotest.test_case "each rule pinned to a node" `Quick test_rules_pinned;
    Alcotest.test_case "contributor is label-blind" `Quick test_contributor_label_blind;
    Alcotest.test_case "cid comparison scoped per keyword set" `Quick
      test_cid_scoped_per_keyword_set;
    Alcotest.test_case "rendering" `Quick test_render;
    Helpers.qtest prop_explain_matches_prune;
    Helpers.qtest prop_every_rtf_node_decided;
  ]
