module Tokenizer = Xks_xml.Tokenizer
module Stopwords = Xks_xml.Stopwords

let words = Alcotest.(check (list string))

let test_basic () =
  words "simple split" [ "xml"; "keyword"; "search" ]
    (Tokenizer.words "XML keyword search");
  words "punctuation" [ "liu"; "ranking"; "engines" ]
    (Tokenizer.words "Liu: ranking... engines!");
  words "digits kept" [ "edbt"; "2009" ] (Tokenizer.words "EDBT 2009")

let test_stopwords_dropped () =
  words "stop words removed" [ "skyline"; "query" ]
    (Tokenizer.words "the skyline of a query");
  words "kept on demand" [ "the"; "skyline"; "of"; "a"; "query" ]
    (Tokenizer.words ~keep_stopwords:true "the skyline of a query")

let test_empty_and_separators () =
  words "empty" [] (Tokenizer.words "");
  words "only separators" [] (Tokenizer.words " ,;-\t\n");
  words "hyphenated names split" [ "chi"; "wing"; "wong" ]
    (Tokenizer.words "Chi-Wing Wong")

let test_word_set () =
  words "sorted and deduplicated" [ "keyword"; "xml" ]
    (Tokenizer.word_set "XML keyword xml KEYWORD")

let test_normalize () =
  Alcotest.(check string) "lowercase" "xml" (Tokenizer.normalize "XML")

let test_stopword_list () =
  Alcotest.(check bool) "the" true (Stopwords.is_stopword "the");
  Alcotest.(check bool) "xml" false (Stopwords.is_stopword "xml");
  Alcotest.(check bool) "list is self-consistent" true
    (List.for_all Stopwords.is_stopword (Stopwords.all ()))

let prop_words_are_normalized =
  QCheck2.Test.make ~name:"all produced words are lowercase alphanumeric"
    ~count:300
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 60))
    (fun s ->
      List.for_all
        (fun w ->
          w <> ""
          && String.for_all
               (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
               w)
        (Tokenizer.words s))

let prop_word_set_sorted =
  QCheck2.Test.make ~name:"word_set is sorted and duplicate-free" ~count:300
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 60))
    (fun s ->
      let ws = Tokenizer.word_set s in
      List.sort_uniq String.compare ws = ws)

let tests =
  [
    Alcotest.test_case "basic splitting" `Quick test_basic;
    Alcotest.test_case "stop words" `Quick test_stopwords_dropped;
    Alcotest.test_case "empty and separators" `Quick test_empty_and_separators;
    Alcotest.test_case "word_set" `Quick test_word_set;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "stop word list" `Quick test_stopword_list;
    Helpers.qtest prop_words_are_normalized;
    Helpers.qtest prop_word_set_sorted;
  ]
