(* The relational substrate (tables, plans) and the Section 5.2 shredded
   store built on it. *)

module Value = Xks_relational.Value
module Table = Xks_relational.Table
module Plan = Xks_relational.Plan
module Rel_store = Xks_index.Rel_store

let people () =
  let t =
    Table.create ~indexed:[ "city" ] ~name:"people" [ "name"; "city"; "age" ]
  in
  Table.insert_all t
    [
      [| Value.text "ada"; Value.text "london"; Value.int 36 |];
      [| Value.text "alan"; Value.text "london"; Value.int 41 |];
      [| Value.text "grace"; Value.text "boston"; Value.int 85 |];
      [| Value.text "edsger"; Value.text "austin"; Value.int 72 |];
    ];
  t

let names r = List.map (fun row -> Value.to_string row.(0)) r.Plan.rows

(* --- values --- *)

let test_value_order () =
  Alcotest.(check bool) "int < text" true
    (Value.compare (Value.int 5) (Value.text "a") < 0);
  Alcotest.(check int) "int order" (-1) (Value.compare (Value.int 1) (Value.int 2));
  Alcotest.(check string) "to_string" "5" (Value.to_string (Value.int 5));
  Alcotest.check_raises "as_int on text" (Invalid_argument "Value.as_int: text cell")
    (fun () -> ignore (Value.as_int (Value.text "x")))

(* --- tables --- *)

let test_table_basics () =
  let t = people () in
  Alcotest.(check int) "row count" 4 (Table.row_count t);
  Alcotest.(check (list string)) "columns" [ "name"; "city"; "age" ] (Table.columns t);
  Alcotest.(check bool) "index present" true (Table.has_index t "city");
  Alcotest.(check bool) "no index" false (Table.has_index t "name");
  Alcotest.(check int) "column position" 2 (Table.column_index t "age")

let test_table_lookup () =
  let t = people () in
  let by_index = Table.lookup t ~column:"city" (Value.text "london") in
  Alcotest.(check int) "indexed lookup" 2 (List.length by_index);
  let by_scan = Table.lookup t ~column:"name" (Value.text "grace") in
  Alcotest.(check int) "scan lookup" 1 (List.length by_scan);
  Alcotest.(check int) "miss" 0
    (List.length (Table.lookup t ~column:"city" (Value.text "paris")))

let test_table_validation () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Table.create: duplicate column") (fun () ->
      ignore (Table.create ~name:"t" [ "a"; "a" ]));
  Alcotest.check_raises "unknown indexed column"
    (Invalid_argument "Table.create: unknown indexed column") (fun () ->
      ignore (Table.create ~indexed:[ "b" ] ~name:"t" [ "a" ]));
  let t = Table.create ~name:"t" [ "a" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.insert: arity mismatch")
    (fun () -> Table.insert t [||])

(* --- plans --- *)

let test_select_where_order () =
  let r =
    Plan.select
      ~where:(Plan.Gt ("age", Value.int 40))
      ~order_by:[ "name" ] ~columns:[ "name" ] (people ())
  in
  Alcotest.(check (list string)) "filter + sort" [ "alan"; "edsger"; "grace" ]
    (names r)

let test_select_indexed_path () =
  (* Equality on the indexed column must produce the same rows as the
     scan path (plus residual predicate). *)
  let t = people () in
  let where = Plan.And (Plan.Eq ("city", Value.text "london"), Plan.Ge ("age", Value.int 40)) in
  let indexed = Plan.select ~where ~columns:[ "name" ] t in
  Alcotest.(check (list string)) "index + residual" [ "alan" ] (names indexed)

let test_limit_distinct () =
  let r =
    Plan.select ~distinct:true ~order_by:[ "city" ] ~columns:[ "city" ]
      (people ())
  in
  Alcotest.(check (list string)) "distinct cities"
    [ "austin"; "boston"; "london" ]
    (names r);
  let r = Plan.select ~limit:2 ~columns:[ "name" ] (people ()) in
  Alcotest.(check int) "limit" 2 (List.length r.Plan.rows)

let test_hash_join () =
  let cities =
    Table.create ~name:"cities" [ "city_name"; "country" ]
  in
  Table.insert_all cities
    [
      [| Value.text "london"; Value.text "uk" |];
      [| Value.text "boston"; Value.text "usa" |];
    ];
  let plan =
    Plan.Project
      ( [ "name"; "country" ],
        Plan.Hash_join
          { left = Scan (people ()); right = Scan cities; on = ("city", "city_name") } )
  in
  let r = Plan.run plan in
  Alcotest.(check int) "matched rows" 3 (List.length r.Plan.rows);
  let pairs =
    List.map
      (fun row -> (Value.to_string row.(0), Value.to_string row.(1)))
      r.Plan.rows
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "join content"
    [ ("ada", "uk"); ("alan", "uk"); ("grace", "usa") ]
    pairs

let test_unknown_column_rejected () =
  Alcotest.check_raises "unknown column"
    (Invalid_argument "Plan: unknown column nope") (fun () ->
      ignore (Plan.select ~columns:[ "nope" ] (people ())))

let test_pp_result () =
  let r = Plan.select ~columns:[ "name"; "age" ] (people ()) in
  let s = Format.asprintf "%a" Plan.pp_result r in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name")

(* --- the shredded store --- *)

let store_and_doc () =
  let doc = Xks_datagen.Paper_fixtures.publications () in
  (Rel_store.of_doc doc, doc)

let test_store_tables () =
  let store, doc = store_and_doc () in
  Alcotest.(check int) "one element row per node"
    (Xks_xml.Tree.size doc)
    (Table.row_count (Rel_store.element_table store));
  Alcotest.(check bool) "label rows" true
    (Table.row_count (Rel_store.label_table store) > 0);
  Alcotest.(check bool) "value rows" true
    (Table.row_count (Rel_store.value_table store) > 0)

let test_sql_postings_match_inverted () =
  let store, doc = store_and_doc () in
  let idx = Xks_index.Inverted.build doc in
  List.iter
    (fun w ->
      Alcotest.(check (list int))
        ("postings of " ^ w)
        (Array.to_list (Xks_index.Inverted.posting idx w))
        (Array.to_list (Rel_store.keyword_node_ids store w)))
    [ "liu"; "keyword"; "xml"; "title"; "vldb"; "skyline"; "nosuchword" ]

let test_label_path_and_id () =
  let store, doc = store_and_doc () in
  let article = (Xks_xml.Tree.node doc (Helpers.id_at doc "0.2.0")).Xks_xml.Tree.dewey in
  let path = Rel_store.label_path store article in
  Alcotest.(check int) "path length = depth + 1" 3 (List.length path);
  (match Rel_store.label_id store "article" with
  | Some id -> Alcotest.(check int) "last path entry is the node's label" id
      (List.nth path 2)
  | None -> Alcotest.fail "article label missing");
  Alcotest.(check bool) "unknown label" true (Rel_store.label_id store "zzz" = None)

let test_full_pipeline_via_sql () =
  (* Algorithm 1 with getKeywordNodes served by the relational store. *)
  let store, doc = store_and_doc () in
  let postings = Rel_store.postings_via_sql store Xks_datagen.Paper_fixtures.q2 in
  let lcas = Xks_lca.Indexed_stack.elca doc postings in
  Helpers.check_ids doc "same LCAs as the inverted-index path"
    [ "0.2.0"; "0.2.0.3.0" ] lcas

let prop_sql_postings_agree =
  QCheck2.Test.make ~name:"SQL postings = inverted index on random docs"
    ~count:100 ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let store = Rel_store.of_doc doc in
      let idx = Xks_index.Inverted.build doc in
      List.for_all
        (fun w ->
          Rel_store.keyword_node_ids store w = Xks_index.Inverted.posting idx w)
        (Array.to_list Helpers.words))

let tests =
  [
    Alcotest.test_case "value ordering" `Quick test_value_order;
    Alcotest.test_case "table basics" `Quick test_table_basics;
    Alcotest.test_case "table lookup" `Quick test_table_lookup;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "select + where + order" `Quick test_select_where_order;
    Alcotest.test_case "indexed select path" `Quick test_select_indexed_path;
    Alcotest.test_case "limit and distinct" `Quick test_limit_distinct;
    Alcotest.test_case "hash join" `Quick test_hash_join;
    Alcotest.test_case "unknown columns rejected" `Quick test_unknown_column_rejected;
    Alcotest.test_case "result rendering" `Quick test_pp_result;
    Alcotest.test_case "shredded store tables" `Quick test_store_tables;
    Alcotest.test_case "SQL postings = inverted index" `Quick
      test_sql_postings_match_inverted;
    Alcotest.test_case "label path and id" `Quick test_label_path_and_id;
    Alcotest.test_case "pipeline via the SQL path" `Quick test_full_pipeline_via_sql;
    Helpers.qtest prop_sql_postings_agree;
  ]
