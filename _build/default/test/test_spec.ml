(* The executable Definition 1/2 oracle, cross-validated against getRTF
   over the Indexed Stack LCAs (the paper's Section 4.3(1) claim). *)

module Query = Xks_core.Query
module Spec = Xks_core.Spec
module Rtf = Xks_core.Rtf

let query_of xml ws =
  let doc = Xks_xml.Parser.parse_string xml in
  Query.make (Xks_index.Inverted.build doc) ws

let test_ectq_singletons () =
  (* One node per keyword: ECTQ is the single combination. *)
  let q = query_of "<r><a>w1</a><b>w2</b></r>" [ "w1"; "w2" ] in
  Alcotest.(check int) "|ECTQ|" 1 (List.length (Spec.ectq q))

let test_ectq_counts_overlap () =
  (* D1 = {x}, D2 = {x, y}: (2^1-1)*(2^2-1) = 3 raw combinations but
     unions collapse to {x} and {x,y} twice -> 3 distinct? {x}, {x,y},
     {x} u {y} = {x,y} -> 2 distinct. *)
  let q = query_of "<r><a>w1 w2</a><b>w2</b></r>" [ "w1"; "w2" ] in
  Alcotest.(check int) "|ECTQ| after union dedup" 2 (List.length (Spec.ectq q))

let test_partitions_empty_when_no_match () =
  let q = query_of "<r><a>w1</a></r>" [ "w1"; "w9" ] in
  Alcotest.(check int) "no partitions" 0 (List.length (Spec.rtf_partitions q))

let test_size_guard () =
  (* 15 occurrences of one keyword exceed the per-list bound. *)
  let many =
    "<r>" ^ String.concat "" (List.init 15 (fun _ -> "<a>w1</a>")) ^ "<b>w2</b></r>"
  in
  let q = query_of many [ "w1"; "w2" ] in
  Alcotest.check_raises "guard"
    (Invalid_argument "Spec: input too large for the brute-force oracle")
    (fun () -> ignore (Spec.rtf_partitions q))

(* The central claim of Section 4.3(1): Definition 2 partitions = getRTF
   over ELCA nodes.  Property testing revealed the claim is not exact:
   Algorithm 1 dispatches a keyword node to its deepest ELCA
   {e ancestor}, while Definition 2's rule 3 admits a node only when its
   deepest full container {e is} the partition's LCA.  The two differ
   exactly on keyword nodes whose deepest full container is a non-ELCA
   node (Definition 2 then assigns them to no partition; Algorithm 1
   hoists them to the enclosing ELCA).  EXPERIMENTS.md discusses the
   discrepancy; the precise relationship is what we test. *)
let agree (q : Query.t) =
  let spec = Spec.rtf_partitions q in
  let lcas = Xks_lca.Indexed_stack.elca q.doc q.postings in
  let fc_is id lca =
    match Xks_lca.Probe.fc q.doc q.postings (Xks_xml.Tree.node q.doc id) with
    | Some f -> f.Xks_xml.Tree.id = lca
    | None -> false
  in
  let rtfs =
    Rtf.get_rtfs q lcas
    |> List.filter_map (fun (rtf : Rtf.t) ->
           let owned =
             List.filter
               (fun id -> fc_is id rtf.lca)
               (Array.to_list rtf.knodes)
           in
           if owned = [] then None else Some (rtf.lca, owned))
  in
  spec = rtfs

let test_hoisted_node_regression () =
  (* Shrunk counterexample found by the property below: the middle "a"
     node (w1) has a non-ELCA deepest full container (itself), so
     Definition 2 assigns it to no partition while Algorithm 1 hoists it
     into the root's RTF. *)
  let q =
    query_of "<a>w1 w2<a>w1<a><a>w1 w2</a></a></a></a>" [ "w1"; "w2" ]
  in
  let spec = Spec.rtf_partitions q in
  let lcas = Xks_lca.Indexed_stack.elca q.doc q.postings in
  let rtfs = Rtf.get_rtfs q lcas in
  Alcotest.(check (list (pair int (list int))))
    "Definition 2 drops the hoisted node"
    [ (0, [ 0 ]); (3, [ 3 ]) ]
    spec;
  Alcotest.(check (list (list int)))
    "Algorithm 1 keeps it"
    [ [ 0; 1 ]; [ 3 ] ]
    (List.map (fun (r : Rtf.t) -> Array.to_list r.knodes) rtfs);
  Alcotest.(check bool) "relationship holds" true (agree q)

let test_agreement_nested () =
  let q =
    query_of "<r><m><c>w1 w2</c><t>w2</t></m><d>w1</d></r>" [ "w1"; "w2" ]
  in
  Alcotest.(check bool) "oracle agrees with getRTF" true (agree q)

let small_doc_gen =
  (* Very small documents keep the exponential oracle tractable. *)
  QCheck2.Gen.(
    map Xks_xml.Tree.build
    @@ sized_size (int_range 1 8)
    @@ fix (fun self n ->
           let label = oneofa [| "a"; "b" |] in
           let text = oneofa [| ""; "w1"; "w2"; "w1 w2" |] in
           if n <= 1 then map2 (fun l t -> Xks_xml.Tree.elem ~text:t l []) label text
           else
             bind (int_range 1 3) (fun c ->
                 map3
                   (fun l t children -> Xks_xml.Tree.elem ~text:t l children)
                   label text
                   (list_size (return c) (self ((n - 1) / c))))))

(* Keep the exponential oracle tractable: skip documents where the raw
   combination count gets large. *)
let oracle_feasible (q : Query.t) =
  Array.for_all (fun s -> Array.length s <= 6) q.postings
  && Array.fold_left (fun acc s -> acc * ((1 lsl Array.length s) - 1)) 1 q.postings
     <= 2000

let prop_spec_agrees_with_getrtf =
  QCheck2.Test.make
    ~name:"Definition 2 partitions = getRTF over Indexed Stack LCAs"
    ~count:150
    ~print:(fun doc -> Helpers.print_doc doc)
    small_doc_gen
    (fun doc ->
      let idx = Xks_index.Inverted.build doc in
      let q = Query.make idx [ "w1"; "w2" ] in
      (not (oracle_feasible q)) || agree q)

let prop_spec_lcas_are_elcas =
  QCheck2.Test.make ~name:"Definition 2 LCAs = ELCA set" ~count:150
    ~print:(fun doc -> Helpers.print_doc doc)
    small_doc_gen
    (fun doc ->
      let idx = Xks_index.Inverted.build doc in
      let q = Query.make idx [ "w1"; "w2" ] in
      if not (oracle_feasible q) then true
      else
        let spec_lcas = List.map fst (Spec.rtf_partitions q) in
        let elcas =
          if Query.has_results q then
            Xks_lca.Indexed_stack.elca q.doc q.postings
          else []
        in
        (* Every Definition-2 partition is rooted at an ELCA; ELCAs whose
           partition would be empty cannot occur (each ELCA owns its
           witnesses). *)
        spec_lcas = elcas)

let tests =
  [
    Alcotest.test_case "ECTQ with singleton lists" `Quick test_ectq_singletons;
    Alcotest.test_case "ECTQ union deduplication" `Quick test_ectq_counts_overlap;
    Alcotest.test_case "no partitions without matches" `Quick test_partitions_empty_when_no_match;
    Alcotest.test_case "size guard" `Quick test_size_guard;
    Alcotest.test_case "hoisted-node regression" `Quick test_hoisted_node_regression;
    Alcotest.test_case "nested agreement" `Quick test_agreement_nested;
    Helpers.qtest prop_spec_agrees_with_getrtf;
    Helpers.qtest prop_spec_lcas_are_elcas;
  ]
