(* XML serialization: escaping, layout modes, fragments. *)

module Writer = Xks_xml.Writer
module Tree = Xks_xml.Tree

let test_escaping () =
  Alcotest.(check string) "text" "a &amp;&lt; b &gt;"
    (Writer.escape_text "a &< b >");
  Alcotest.(check string) "attr quotes" "say &quot;hi&quot;"
    (Writer.escape_attr "say \"hi\"");
  Alcotest.(check string) "text keeps quotes" "say \"hi\""
    (Writer.escape_text "say \"hi\"")

let test_escaped_roundtrip () =
  let doc =
    Tree.build
      (Tree.elem
         ~attrs:[ ("a", "1 < 2 \"quoted\" & more") ]
         ~text:"x & y < z" "root" [])
  in
  let doc' = Xks_xml.Parser.parse_string (Writer.to_string doc) in
  let root = Tree.root doc' in
  Alcotest.(check string) "text survives" "x & y < z" root.Tree.text;
  Alcotest.(check (list (pair string string)))
    "attr survives"
    [ ("a", "1 < 2 \"quoted\" & more") ]
    root.Tree.attrs

let test_layout_modes () =
  let doc = Tree.build (Tree.elem "a" [ Tree.elem ~text:"x" "b" [] ]) in
  let pretty = Writer.to_string doc in
  Alcotest.(check bool) "pretty has newlines" true (String.contains pretty '\n');
  let compact = Writer.to_string ~indent:0 ~declaration:false doc in
  Alcotest.(check string) "compact" "<a><b>x</b></a>" compact;
  Alcotest.(check bool) "declaration present by default" true
    (String.length pretty > 5 && String.sub pretty 0 5 = "<?xml");
  let bare = Writer.to_string ~declaration:false doc in
  Alcotest.(check bool) "declaration suppressed" true (bare.[0] = '<' && bare.[1] = 'a')

let test_self_closing () =
  let doc = Tree.build (Tree.elem "a" [ Tree.elem "empty" [] ]) in
  let s = Writer.to_string ~indent:0 ~declaration:false doc in
  Alcotest.(check string) "self-closing form" "<a><empty/></a>" s

let test_subtree_to_string () =
  let doc =
    Tree.build (Tree.elem "a" [ Tree.elem "b" [ Tree.elem ~text:"t" "c" [] ] ])
  in
  let b = Tree.node doc 1 in
  let s = Writer.subtree_to_string ~indent:0 doc b in
  Alcotest.(check string) "subtree only" "<b><c>t</c></b>" s

let test_fragment_to_xml_parses () =
  (* Fragment.to_xml emits well-formed XML for any pruned fragment. *)
  let engine = Xks_core.Engine.of_doc (Xks_datagen.Paper_fixtures.publications ()) in
  let hits = Xks_core.Engine.search engine Xks_datagen.Paper_fixtures.q3 in
  List.iter
    (fun (h : Xks_core.Engine.hit) ->
      let xml = Xks_core.Engine.render ~xml:true engine h in
      match Xks_xml.Parser.parse_string xml with
      | _ -> ())
    hits;
  Alcotest.(check bool) "all fragments parse" true (hits <> [])

let prop_escape_text_roundtrip =
  QCheck2.Test.make ~name:"escaped text survives parsing" ~count:300
    QCheck2.Gen.(string_size ~gen:printable (int_range 1 40))
    (fun s ->
      (* Leading/trailing whitespace is trimmed by the content model;
         compare trimmed. *)
      let t = String.trim s in
      QCheck2.assume (t <> "" && not (String.contains t '\r'));
      let doc = Tree.build (Tree.elem ~text:t "a" []) in
      let doc' = Xks_xml.Parser.parse_string (Writer.to_string ~indent:0 doc) in
      String.equal (Tree.root doc').Tree.text t)

let tests =
  [
    Alcotest.test_case "escaping" `Quick test_escaping;
    Alcotest.test_case "escaped round-trip" `Quick test_escaped_roundtrip;
    Alcotest.test_case "layout modes" `Quick test_layout_modes;
    Alcotest.test_case "self-closing elements" `Quick test_self_closing;
    Alcotest.test_case "subtree rendering" `Quick test_subtree_to_string;
    Alcotest.test_case "fragment XML parses" `Quick test_fragment_to_xml_parses;
    Helpers.qtest prop_escape_text_roundtrip;
  ]
