module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey

let sample () =
  Tree.build
    (Tree.elem "r"
       [
         Tree.elem ~text:"one two" "ax" [];
         Tree.elem "b"
           [ Tree.elem ~text:"three" "ax" []; Tree.elem ~attrs:[ ("kk", "four") ] "c" [] ];
       ])

let test_ids_are_preorder () =
  let doc = sample () in
  let ids = Tree.fold (fun acc n -> n.Tree.id :: acc) [] doc in
  Alcotest.(check (list int)) "dense preorder ids" [ 4; 3; 2; 1; 0 ] ids;
  Tree.iter
    (fun n ->
      let by_dewey = Tree.find_by_dewey doc n.Tree.dewey in
      Alcotest.(check bool) "dewey lookup finds the node" true
        (match by_dewey with Some m -> m.Tree.id = n.Tree.id | None -> false))
    doc

let test_subtree_ranges () =
  let doc = sample () in
  let b = Tree.node doc (Helpers.id_at doc "0.1") in
  Alcotest.(check int) "subtree end of b" 4 b.Tree.subtree_end;
  Alcotest.(check bool) "in_subtree" true
    (Tree.in_subtree ~root:b (Tree.node doc (Helpers.id_at doc "0.1.1")));
  Alcotest.(check bool) "not in_subtree" false
    (Tree.in_subtree ~root:b (Tree.node doc (Helpers.id_at doc "0.0")))

let test_parents () =
  let doc = sample () in
  let leaf = Tree.node doc (Helpers.id_at doc "0.1.0") in
  (match Tree.parent_node doc leaf with
  | Some p -> Alcotest.(check string) "parent" "b" (Tree.label_name doc p)
  | None -> Alcotest.fail "leaf has a parent");
  Alcotest.(check bool) "root has no parent" true
    (Tree.parent_node doc (Tree.root doc) = None)

let test_content_words () =
  let doc = sample () in
  let words id = Tree.content_words doc (Tree.node doc (Helpers.id_at doc id)) in
  Alcotest.(check (list string)) "label + text" [ "ax"; "one"; "two" ] (words "0.0");
  Alcotest.(check (list string)) "attrs included" [ "c"; "four"; "kk" ] (words "0.1.1");
  Alcotest.(check bool) "node_matches" true
    (Tree.node_matches doc (Tree.node doc (Helpers.id_at doc "0.0")) "two")

let test_insert_subtree () =
  let doc = sample () in
  let doc' =
    Tree.insert_subtree doc
      ~parent_id:(Helpers.id_at doc "0.1")
      ~pos:1
      (Tree.elem ~text:"five" "d" [])
  in
  Alcotest.(check int) "one more node" (Tree.size doc + 1) (Tree.size doc');
  Alcotest.(check string) "inserted at 0.1.1" "d"
    (Tree.label_name doc' (Tree.node doc' (Helpers.id_at doc' "0.1.1")));
  Alcotest.(check string) "old 0.1.1 shifted to 0.1.2" "c"
    (Tree.label_name doc' (Tree.node doc' (Helpers.id_at doc' "0.1.2")))

let test_insert_invalid () =
  let doc = sample () in
  Alcotest.check_raises "bad pos" (Invalid_argument "Tree.insert_subtree: pos")
    (fun () ->
      ignore
        (Tree.insert_subtree doc ~parent_id:0 ~pos:99 (Tree.elem "x" [])))

let test_delete_subtree () =
  let doc = sample () in
  let doc' = Tree.delete_subtree doc ~id:(Helpers.id_at doc "0.1") in
  Alcotest.(check int) "subtree removed" 2 (Tree.size doc');
  Alcotest.check_raises "cannot delete the root"
    (Invalid_argument "Tree.delete_subtree: id") (fun () ->
      ignore (Tree.delete_subtree doc ~id:0))

let test_builder_roundtrip () =
  let doc = sample () in
  let doc' = Tree.build (Tree.to_builder doc) in
  Alcotest.(check string)
    "identical rendering"
    (Xks_xml.Writer.to_string doc)
    (Xks_xml.Writer.to_string doc')

let prop_subtree_end_matches_range =
  QCheck2.Test.make ~name:"subtree_end = id + subtree size - 1" ~count:200
    ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let rec size (n : Tree.node) =
        Array.fold_left (fun acc c -> acc + size c) 1 n.Tree.children
      in
      Tree.fold
        (fun acc n -> acc && n.Tree.subtree_end = n.Tree.id + size n - 1)
        true doc)

let prop_dewey_order_is_id_order =
  QCheck2.Test.make ~name:"dewey order agrees with id order" ~count:200
    ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      Tree.fold
        (fun acc a ->
          acc
          && Tree.fold
               (fun acc b ->
                 acc
                 && compare (Dewey.compare a.Tree.dewey b.Tree.dewey) 0
                    = compare (compare a.Tree.id b.Tree.id) 0)
               true doc)
        true doc)

let prop_parent_pointers =
  QCheck2.Test.make ~name:"parent pointers match dewey parents" ~count:200
    ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      Tree.fold
        (fun acc n ->
          acc
          &&
          match Tree.parent_node doc n with
          | None -> n.Tree.id = 0
          | Some p -> (
              match Dewey.parent n.Tree.dewey with
              | Some d -> Dewey.equal d p.Tree.dewey
              | None -> false))
        true doc)

let tests =
  [
    Alcotest.test_case "preorder ids and dewey lookup" `Quick test_ids_are_preorder;
    Alcotest.test_case "subtree ranges" `Quick test_subtree_ranges;
    Alcotest.test_case "parent navigation" `Quick test_parents;
    Alcotest.test_case "content words" `Quick test_content_words;
    Alcotest.test_case "insert_subtree" `Quick test_insert_subtree;
    Alcotest.test_case "insert_subtree validation" `Quick test_insert_invalid;
    Alcotest.test_case "delete_subtree" `Quick test_delete_subtree;
    Alcotest.test_case "builder round-trip" `Quick test_builder_roundtrip;
    Helpers.qtest prop_subtree_end_matches_range;
    Helpers.qtest prop_dewey_order_is_id_order;
    Helpers.qtest prop_parent_pointers;
  ]
