(* LCA substrate: unit tests on hand-built trees plus property tests
   cross-validating the four implementations (brute-force definition,
   bottom-up tree scan, Indexed Lookup Eager, Indexed Stack) on random
   documents. *)

module Tree = Xks_xml.Tree
module Tree_scan = Xks_lca.Tree_scan
module Naive = Xks_lca.Naive
module Slca = Xks_lca.Slca
module Indexed_stack = Xks_lca.Indexed_stack
module Probe = Xks_lca.Probe

let doc_and_postings xml query =
  let doc = Xks_xml.Parser.parse_string xml in
  (doc, Helpers.postings_for doc query)

(* XRank-style example: nested full containers exercise the exclusion. *)
let nested_xml =
  "<r><m><c>w1 w2</c><t>w2</t></m><d>w1</d></r>"

let test_nested_elca () =
  (* Full containers are r, m and c, but only c is an ELCA: m's w1 is
     inside c, and r's only w2 witnesses (t, c) are inside m. *)
  let doc, ps = doc_and_postings nested_xml [ "w1"; "w2" ] in
  Helpers.check_ids doc "tree scan" [ "0.0.0" ] (Tree_scan.elca doc ps);
  Helpers.check_ids doc "naive" [ "0.0.0" ] (Naive.elca doc ps);
  Helpers.check_ids doc "indexed stack" [ "0.0.0" ] (Indexed_stack.elca doc ps);
  Helpers.check_ids doc "full containers" [ "0"; "0.0"; "0.0.0" ]
    (Tree_scan.full_containers doc ps);
  Helpers.check_ids doc "slca" [ "0.0.0" ] (Slca.indexed_lookup_eager doc ps);
  Helpers.check_ids doc "scan eager" [ "0.0.0" ] (Xks_lca.Scan_eager.slca doc ps);
  Helpers.check_ids doc "stack slca" [ "0.0.0" ] (Xks_lca.Stack_algos.slca doc ps);
  Helpers.check_ids doc "stack elca" [ "0.0.0" ] (Xks_lca.Stack_algos.elca doc ps)

let test_root_elca () =
  (* Root regains ELCA status when it has its own free witnesses. *)
  let doc, ps =
    doc_and_postings "<r><m><c>w1 w2</c><t>w2</t></m><d>w1</d><e>w2</e></r>"
      [ "w1"; "w2" ]
  in
  Helpers.check_ids doc "elca" [ "0"; "0.0.0" ] (Tree_scan.elca doc ps);
  Helpers.check_ids doc "indexed stack" [ "0"; "0.0.0" ] (Indexed_stack.elca doc ps)

let test_single_keyword () =
  (* For k = 1 every occurrence is an ELCA; the SLCAs are the minimal
     occurrences. *)
  let doc, ps =
    doc_and_postings "<r>w1<a>w1<b>w1</b></a><c>x</c></r>" [ "w1" ]
  in
  Helpers.check_ids doc "elcas" [ "0"; "0.0"; "0.0.0" ] (Indexed_stack.elca doc ps);
  Helpers.check_ids doc "slca" [ "0.0.0" ] (Slca.indexed_lookup_eager doc ps);
  Helpers.check_ids doc "scan eager" [ "0.0.0" ] (Xks_lca.Scan_eager.slca doc ps);
  Helpers.check_ids doc "stack slca" [ "0.0.0" ] (Xks_lca.Stack_algos.slca doc ps);
  Helpers.check_ids doc "stack elca" [ "0"; "0.0"; "0.0.0" ]
    (Xks_lca.Stack_algos.elca doc ps)

let test_no_match () =
  let doc, ps = doc_and_postings "<r><a>w1</a></r>" [ "w1"; "w9" ] in
  Alcotest.(check (list int)) "no elca" [] (Indexed_stack.elca doc ps);
  Alcotest.(check (list int)) "no slca" [] (Slca.indexed_lookup_eager doc ps);
  Alcotest.(check (list int)) "no tree-scan elca" [] (Tree_scan.elca doc ps)

let test_keyword_on_inner_node () =
  (* Labels are content too: an inner node can be a keyword node. *)
  let doc, ps = doc_and_postings "<w1><a>w2</a></w1>" [ "w1"; "w2" ] in
  Helpers.check_ids doc "root is the elca" [ "0" ] (Indexed_stack.elca doc ps)

let test_probe_fc () =
  let doc, ps = doc_and_postings nested_xml [ "w1"; "w2" ] in
  let fc_of dewey =
    match Probe.fc doc ps (Tree.node doc (Helpers.id_at doc dewey)) with
    | Some n -> Xks_xml.Dewey.to_string n.Tree.dewey
    | None -> "none"
  in
  Alcotest.(check string) "fc of c is c" "0.0.0" (fc_of "0.0.0");
  Alcotest.(check string) "fc of t is m" "0.0" (fc_of "0.0.1");
  Alcotest.(check string) "fc of d is root" "0" (fc_of "0.1")

let test_probe_ancestor_at () =
  let doc, _ = doc_and_postings nested_xml [ "w1" ] in
  let n = Tree.node doc (Helpers.id_at doc "0.0.1") in
  Alcotest.(check string) "depth 1" "0.0"
    (Xks_xml.Dewey.to_string (Probe.ancestor_at doc n 1).Tree.dewey);
  Alcotest.(check string) "depth 0" "0"
    (Xks_xml.Dewey.to_string (Probe.ancestor_at doc n 0).Tree.dewey)

let test_smallest_list () =
  Alcotest.(check int) "picks the shortest" 1
    (Probe.smallest_list_index [| [| 1; 2; 3 |]; [| 4 |]; [| 5; 6 |] |])

(* --- Cross-validation properties. --- *)

let gen_case = QCheck2.Gen.pair Helpers.gen_doc Helpers.gen_query

let print_case (doc, q) =
  Printf.sprintf "query=%s doc=%s" (String.concat "," q) (Helpers.print_doc doc)

let prop pairs name f =
  QCheck2.Test.make ~name ~count:pairs ~print:print_case gen_case f

let prop_elca_implementations_agree =
  prop 400 "indexed stack = tree scan = brute force (ELCA)" (fun (doc, q) ->
      let ps = Helpers.postings_for doc q in
      let a = Indexed_stack.elca doc ps in
      let b = Tree_scan.elca doc ps in
      let c = Naive.elca doc ps in
      a = b && b = c)

let prop_slca_implementations_agree =
  prop 400 "indexed lookup eager = tree scan = brute force (SLCA)"
    (fun (doc, q) ->
      let ps = Helpers.postings_for doc q in
      let a = Slca.indexed_lookup_eager doc ps in
      let b = Tree_scan.slca doc ps in
      let c = Naive.slca doc ps in
      a = b && b = c)

let prop_slca_variants_agree =
  prop 400 "scan eager = stack = multiway = indexed lookup eager (SLCA)"
    (fun (doc, q) ->
      let ps = Helpers.postings_for doc q in
      let a = Slca.indexed_lookup_eager doc ps in
      let b = Xks_lca.Scan_eager.slca doc ps in
      let c = Xks_lca.Stack_algos.slca doc ps in
      let d = Xks_lca.Multiway.slca doc ps in
      a = b && b = c && c = d)

let prop_elca_stack_agrees =
  prop 400 "stack ELCA = indexed stack ELCA" (fun (doc, q) ->
      let ps = Helpers.postings_for doc q in
      Xks_lca.Stack_algos.elca doc ps = Indexed_stack.elca doc ps)

let prop_full_containers_agree =
  prop 300 "tree scan = brute force (full containers)" (fun (doc, q) ->
      let ps = Helpers.postings_for doc q in
      Tree_scan.full_containers doc ps = Naive.full_containers doc ps)

let prop_slca_subset_elca =
  prop 300 "SLCA is a subset of ELCA" (fun (doc, q) ->
      let ps = Helpers.postings_for doc q in
      let elcas = Indexed_stack.elca doc ps in
      List.for_all (fun s -> List.mem s elcas) (Slca.indexed_lookup_eager doc ps))

let prop_elca_subset_full_containers =
  prop 300 "ELCAs are full containers" (fun (doc, q) ->
      let ps = Helpers.postings_for doc q in
      let fcs = Tree_scan.full_containers doc ps in
      List.for_all (fun e -> List.mem e fcs) (Indexed_stack.elca doc ps))

let prop_elca_subset_lca_closure =
  prop 150 "ELCAs are classic LCAs of witness tuples" (fun (doc, q) ->
      let ps = Helpers.postings_for doc q in
      (* Keep the witness enumeration tractable. *)
      if Array.exists (fun s -> Array.length s > 6) ps then true
      else
        let lcas = Naive.lca_of_witnesses doc ps in
        List.for_all (fun e -> List.mem e lcas) (Indexed_stack.elca doc ps))

let prop_fc_is_deepest_full_container =
  prop 300 "fc is the deepest full container of a node" (fun (doc, q) ->
      let ps = Helpers.postings_for doc q in
      let fcs = Naive.full_containers doc ps in
      Tree.fold
        (fun acc n ->
          acc
          &&
          let expected =
            (* deepest full-container ancestor-or-self by brute force *)
            List.filter
              (fun f ->
                let fn = Tree.node doc f in
                Xks_xml.Dewey.is_ancestor_or_self fn.Tree.dewey n.Tree.dewey)
              fcs
            |> List.fold_left (fun _ f -> Some f) None
          in
          match (Probe.fc doc ps n, expected) with
          | None, None -> true
          | Some f, Some e -> f.Tree.id = e
          | Some _, None | None, Some _ -> false)
        true doc)

let tests =
  [
    Alcotest.test_case "nested full containers" `Quick test_nested_elca;
    Alcotest.test_case "root with free witnesses" `Quick test_root_elca;
    Alcotest.test_case "single keyword" `Quick test_single_keyword;
    Alcotest.test_case "keyword with no occurrence" `Quick test_no_match;
    Alcotest.test_case "inner keyword node" `Quick test_keyword_on_inner_node;
    Alcotest.test_case "fc probe" `Quick test_probe_fc;
    Alcotest.test_case "ancestor_at" `Quick test_probe_ancestor_at;
    Alcotest.test_case "smallest list index" `Quick test_smallest_list;
    Helpers.qtest prop_elca_implementations_agree;
    Helpers.qtest prop_slca_implementations_agree;
    Helpers.qtest prop_slca_variants_agree;
    Helpers.qtest prop_elca_stack_agrees;
    Helpers.qtest prop_full_containers_agree;
    Helpers.qtest prop_slca_subset_elca;
    Helpers.qtest prop_elca_subset_full_containers;
    Helpers.qtest prop_elca_subset_lca_closure;
    Helpers.qtest prop_fc_is_deepest_full_container;
  ]
