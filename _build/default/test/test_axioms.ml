(* The four axiomatic properties (data/query monotonicity and
   consistency; Liu & Chen VLDB'08, claimed for ValidRTF by the paper's
   Section 4.3(2)).

   What the reproduction actually establishes — and what we assert:
   - both monotonicity properties hold for all three algorithms over
     thousands of random append-only edits;
   - both consistency properties hold for the original (SLCA-based)
     MaxMatch, the setting Liu & Chen proved them in;
   - for the all-LCA algorithms (ValidRTF, revised MaxMatch) data
     consistency is violated on rare inputs: an insertion can demote an
     interesting LCA node, hoisting its keyword nodes into the enclosing
     RTF, whose pruning outcome then changes without containing any
     inserted node.  A deterministic counterexample is kept below, and a
     seeded audit asserts the violation stays rare (< 1%).  EXPERIMENTS.md
     discusses the finding. *)

module Tree = Xks_xml.Tree
module Axioms = Xks_core.Axioms

let validrtf idx ws = Xks_core.Validrtf.run idx ws
let maxmatch idx ws = Xks_core.Maxmatch.run_revised idx ws
let maxmatch_original idx ws = Xks_core.Maxmatch.run_original idx ws

let base () =
  Xks_xml.Parser.parse_string
    "<lib><book><t>w1</t><abs>w2</abs></book><book><t>w1</t></book></lib>"

let test_data_monotonicity_insert_match () =
  let before = Tree.build (Tree.to_builder (base ())) in
  let after =
    Axioms.append_subtree before ~parent_id:0
      (Tree.elem "book" [ Tree.elem ~text:"w1 w2" "t" [] ])
  in
  let r =
    Axioms.data_monotonicity ~run:validrtf ~before ~after ~query:[ "w1"; "w2" ]
  in
  Alcotest.(check bool) "holds" true r.Axioms.ok;
  Alcotest.(check bool) "result count grew" true
    (r.Axioms.results_after > r.Axioms.results_before)

let test_query_monotonicity () =
  let doc = base () in
  let r =
    Axioms.query_monotonicity ~run:validrtf ~doc ~query:[ "w1" ] ~extra:"w2"
  in
  Alcotest.(check bool) "holds" true r.Axioms.ok;
  Alcotest.(check int) "w1 alone: every occurrence" 2 r.Axioms.results_before;
  Alcotest.(check int) "w1 w2: single result" 1 r.Axioms.results_after

let test_data_consistency () =
  let before = base () in
  let after =
    Axioms.append_subtree before ~parent_id:0
      (Tree.elem "book" [ Tree.elem ~text:"w1 w2" "t" [] ])
  in
  let r =
    Axioms.data_consistency ~run:validrtf ~before ~after ~query:[ "w1"; "w2" ]
  in
  Alcotest.(check bool) "holds" true r.Axioms.ok

let test_query_consistency () =
  let doc = base () in
  let r =
    Axioms.query_consistency ~run:validrtf ~doc ~query:[ "w1" ] ~extra:"w2"
  in
  Alcotest.(check bool) "holds" true r.Axioms.ok

let test_append_subtree_preserves_deweys () =
  let before = base () in
  let after = Axioms.append_subtree before ~parent_id:0 (Tree.elem "x" []) in
  Tree.iter
    (fun (n : Tree.node) ->
      match Tree.find_by_dewey after n.Tree.dewey with
      | Some m ->
          Alcotest.(check string)
            "same label at same dewey"
            (Tree.label_name before n)
            (Tree.label_name after m)
      | None -> Alcotest.fail "existing dewey disappeared")
    before

(* The known counterexample to data consistency under all-LCA semantics:
   inserting <a>w1</a> under 0.2 makes 0.2 a full container, so the
   root's RTF loses 0.2's keyword nodes; without them, node 0.3 is no
   longer covered by 0.2's keyword set and reappears in the root
   fragment, which displays it anew yet contains no inserted node. *)
let test_known_consistency_counterexample () =
  let doc =
    Xks_xml.Parser.parse_string
      "<a><a><a><a/><a/></a></a><a><a>w1</a><a>w3</a><a/></a><a>w3 \
       w0<a/><a/><a>w2 w0</a></a><a>w2<a><a/></a></a></a>"
  in
  let after =
    Axioms.append_subtree doc ~parent_id:(Helpers.id_at doc "0.2")
      (Tree.elem ~text:"w1" "a" [])
  in
  let query = [ "w1"; "w2"; "w3" ] in
  let r_revised =
    Axioms.data_consistency ~run:maxmatch ~before:doc ~after ~query
  in
  Alcotest.(check bool) "all-LCA semantics violates data consistency" false
    r_revised.Axioms.ok;
  let r_original =
    Axioms.data_consistency ~run:maxmatch_original ~before:doc ~after ~query
  in
  Alcotest.(check bool) "SLCA semantics satisfies it here" true
    r_original.Axioms.ok

(* --- Randomised monotonicity properties (no violation ever observed;
   asserted outright). --- *)

let gen_case =
  QCheck2.Gen.(
    tup4 Helpers.gen_doc Helpers.gen_query (int_range 0 1000)
      Helpers.gen_doc_sized)

let print_case (doc, ws, pick, extra) =
  Printf.sprintf "query=%s parent=%d doc=%s extra=%s" (String.concat "," ws)
    (pick mod Tree.size doc) (Helpers.print_doc doc)
    (Helpers.print_doc (Tree.build extra))

let prop_monotonicity name run =
  QCheck2.Test.make ~name ~count:150 ~print:print_case gen_case
    (fun (doc, ws, pick, extra) ->
      let parent_id = pick mod Tree.size doc in
      let after = Axioms.append_subtree doc ~parent_id extra in
      let dm = Axioms.data_monotonicity ~run ~before:doc ~after ~query:ws in
      let qm = Axioms.query_monotonicity ~run ~doc ~query:ws ~extra:"w0" in
      dm.Axioms.ok && qm.Axioms.ok)

let prop_validrtf_monotonicity =
  prop_monotonicity "ValidRTF: data and query monotonicity" validrtf

let prop_maxmatch_monotonicity =
  prop_monotonicity "revised MaxMatch: data and query monotonicity" maxmatch

let prop_original_all_axioms =
  QCheck2.Test.make ~name:"original MaxMatch: all four axioms" ~count:150
    ~print:print_case gen_case (fun (doc, ws, pick, extra) ->
      let parent_id = pick mod Tree.size doc in
      let after = Axioms.append_subtree doc ~parent_id extra in
      let run = maxmatch_original in
      (Axioms.data_monotonicity ~run ~before:doc ~after ~query:ws).Axioms.ok
      && (Axioms.data_consistency ~run ~before:doc ~after ~query:ws).Axioms.ok
      && (Axioms.query_monotonicity ~run ~doc ~query:ws ~extra:"w0").Axioms.ok
      && (Axioms.query_consistency ~run ~doc ~query:ws ~extra:"w0").Axioms.ok)

(* --- Seeded consistency audit for the all-LCA algorithms: violations
   exist but must stay rare (deterministic, so `dune runtest` is
   stable). --- *)

let consistency_audit name run () =
  let cases = 400 in
  let violations = ref 0 in
  for seed = 1 to cases do
    let rand = Random.State.make [| seed |] in
    let doc = QCheck2.Gen.generate1 ~rand Helpers.gen_doc in
    let extra = QCheck2.Gen.generate1 ~rand Helpers.gen_doc_sized in
    let ws = QCheck2.Gen.generate1 ~rand Helpers.gen_query in
    let parent_id = Random.State.int rand (Tree.size doc) in
    let after = Axioms.append_subtree doc ~parent_id extra in
    if
      not
        ((Axioms.data_consistency ~run ~before:doc ~after ~query:ws).Axioms.ok
        && (Axioms.query_consistency ~run ~doc ~query:ws ~extra:"w0").Axioms.ok)
    then incr violations
  done;
  if !violations * 100 >= cases then
    Alcotest.failf "%s: %d/%d consistency violations (expected rare)" name
      !violations cases

let tests =
  [
    Alcotest.test_case "data monotonicity" `Quick test_data_monotonicity_insert_match;
    Alcotest.test_case "query monotonicity" `Quick test_query_monotonicity;
    Alcotest.test_case "data consistency" `Quick test_data_consistency;
    Alcotest.test_case "query consistency" `Quick test_query_consistency;
    Alcotest.test_case "append preserves existing deweys" `Quick
      test_append_subtree_preserves_deweys;
    Alcotest.test_case "known all-LCA consistency counterexample" `Quick
      test_known_consistency_counterexample;
    Helpers.qtest prop_validrtf_monotonicity;
    Helpers.qtest prop_maxmatch_monotonicity;
    Helpers.qtest prop_original_all_axioms;
    Alcotest.test_case "consistency audit: ValidRTF" `Quick
      (consistency_audit "ValidRTF" validrtf);
    Alcotest.test_case "consistency audit: revised MaxMatch" `Quick
      (consistency_audit "revised MaxMatch" maxmatch);
  ]
