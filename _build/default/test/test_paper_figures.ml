(* Golden tests: the paper's worked examples (Figures 2, 3, 4 and
   Examples 3-7) on the reconstructed Figure 1 data. *)

module Fixtures = Xks_datagen.Paper_fixtures
module Engine = Xks_core.Engine
module Pipeline = Xks_core.Pipeline
module Tree = Xks_xml.Tree
open Helpers

let publications = lazy (Fixtures.publications ())
let team = lazy (Fixtures.team ())

let pub_engine = lazy (Engine.of_doc (Lazy.force publications))
let team_engine = lazy (Engine.of_doc (Lazy.force team))

let run_validrtf engine q = Engine.run ~algorithm:Engine.Validrtf engine q
let run_maxmatch engine q = Engine.run ~algorithm:Engine.Maxmatch engine q

(* --- Figure 1(a) sanity: the keyword-node sets of Example 6 (Q3). --- *)

let test_q3_keyword_nodes () =
  let doc = Lazy.force publications in
  let idx = Engine.index (Lazy.force pub_engine) in
  let posting w = Array.to_list (Xks_index.Inverted.posting idx w) in
  check_ids doc "D1 (vldb)" [ "0.0" ] (posting "vldb");
  check_ids doc "D2 (title)" [ "0.0"; "0.2.0.1"; "0.2.1.1" ] (posting "title");
  let xks = [ "0.2.0.1"; "0.2.0.2"; "0.2.0.3.0" ] in
  check_ids doc "D3 (xml)" xks (posting "xml");
  check_ids doc "D4 (keyword)" xks (posting "keyword");
  check_ids doc "D5 (search)" xks (posting "search")

(* --- Example 3: keyword-node sets for Q2 = "liu keyword". --- *)

let test_q2_keyword_nodes () =
  let doc = Lazy.force publications in
  let idx = Engine.index (Lazy.force pub_engine) in
  let posting w = Array.to_list (Xks_index.Inverted.posting idx w) in
  check_ids doc "D1 (liu)" [ "0.2.0.0.0.0"; "0.2.0.3.0" ] (posting "liu");
  check_ids doc "D2 (keyword)"
    [ "0.2.0.1"; "0.2.0.2"; "0.2.0.3.0" ]
    (posting "keyword")

(* --- Q2: SLCA vs LCA (Figures 2(a), 2(b); Examples 1, 3, 4). --- *)

let test_q2_lcas () =
  let doc = Lazy.force publications in
  let result = run_validrtf (Lazy.force pub_engine) Fixtures.q2 in
  check_ids doc "interesting LCA nodes" [ "0.2.0"; "0.2.0.3.0" ] result.Pipeline.lcas;
  let q = result.Pipeline.query in
  let slcas = Xks_lca.Slca.indexed_lookup_eager q.doc q.postings in
  check_ids doc "SLCA" [ "0.2.0.3.0" ] slcas

let test_q2_partitions () =
  (* Example 4: the two RTF partitions are {r} and {n, t, a}. *)
  let doc = Lazy.force publications in
  let result = run_validrtf (Lazy.force pub_engine) Fixtures.q2 in
  match result.Pipeline.rtfs with
  | [ rtf1; rtf2 ] ->
      check_ids doc "partition of 0.2.0"
        [ "0.2.0.0.0.0"; "0.2.0.1"; "0.2.0.2" ]
        (Array.to_list rtf1.Xks_core.Rtf.knodes);
      check_ids doc "partition of 0.2.0.3.0" [ "0.2.0.3.0" ]
        (Array.to_list rtf2.Xks_core.Rtf.knodes)
  | rtfs -> Alcotest.failf "expected 2 RTFs, got %d" (List.length rtfs)

let test_q2_fragments () =
  let doc = Lazy.force publications in
  let result = run_validrtf (Lazy.force pub_engine) Fixtures.q2 in
  match result.Pipeline.fragments with
  | [ lca_frag; slca_frag ] ->
      (* Figure 2(b): the LCA-related fragment for Q2. *)
      check_fragment doc "figure 2(b)"
        [
          "0.2.0"; "0.2.0.0"; "0.2.0.0.0"; "0.2.0.0.0.0"; "0.2.0.1"; "0.2.0.2";
        ]
        lca_frag;
      (* Figure 2(a): the SLCA-based fragment is the ref node alone. *)
      check_fragment doc "figure 2(a)" [ "0.2.0.3.0" ] slca_frag
  | frags -> Alcotest.failf "expected 2 fragments, got %d" (List.length frags)

(* --- Q3: the running example (Figures 2(c), 2(d); Examples 6, 7). --- *)

let test_q3_lca () =
  let doc = Lazy.force publications in
  let result = run_validrtf (Lazy.force pub_engine) Fixtures.q3 in
  check_ids doc "only LCA is the root" [ "0" ] result.Pipeline.lcas

let test_q3_raw_rtf () =
  (* Figure 2(c): the raw fragment rooted at 0 (Publications). *)
  let doc = Lazy.force publications in
  let result = run_validrtf (Lazy.force pub_engine) Fixtures.q3 in
  let q = result.Pipeline.query in
  match result.Pipeline.rtfs with
  | [ rtf ] ->
      check_fragment doc "figure 2(c)"
        [
          "0"; "0.0"; "0.2"; "0.2.0"; "0.2.0.1"; "0.2.0.2"; "0.2.0.3";
          "0.2.0.3.0"; "0.2.1"; "0.2.1.1";
        ]
        (Xks_core.Rtf.raw_fragment q rtf)
  | rtfs -> Alcotest.failf "expected 1 RTF, got %d" (List.length rtfs)

let test_q3_meaningful_rtf () =
  (* Figure 2(d): ValidRTF prunes article 0.2.1 (covered keyword set) but
     keeps the distinct-label children of 0.2.0. *)
  let doc = Lazy.force publications in
  let result = run_validrtf (Lazy.force pub_engine) Fixtures.q3 in
  match result.Pipeline.fragments with
  | [ frag ] ->
      check_fragment doc "figure 2(d)"
        [
          "0"; "0.0"; "0.2"; "0.2.0"; "0.2.0.1"; "0.2.0.2"; "0.2.0.3";
          "0.2.0.3.0";
        ]
        frag
  | frags -> Alcotest.failf "expected 1 fragment, got %d" (List.length frags)

let test_q3_node_info () =
  (* Figure 4(b)/(c): kList of "0.2 (Articles)" is 01111 (key number 15)
     and its cID spans the articles' contents; the two article children
     form one label group with chkList [8; 15]. *)
  let doc = Lazy.force publications in
  let result = run_validrtf (Lazy.force pub_engine) Fixtures.q3 in
  let q = result.Pipeline.query in
  let rtf = List.hd result.Pipeline.rtfs in
  let info_tree = Xks_core.Node_info.construct q rtf in
  let info =
    match Xks_core.Node_info.info_of info_tree (id_at doc "0.2") with
    | Some i -> i
    | None -> Alcotest.fail "no info for 0.2"
  in
  Alcotest.(check int) "key number of 0.2" 15 (info.Xks_core.Node_info.klist :> int);
  (match Xks_core.Node_info.label_groups info with
  | [ g ] ->
      Alcotest.(check int) "counter" 2 g.Xks_core.Node_info.counter;
      Alcotest.(check (array int)) "chkList" [| 8; 15 |] g.Xks_core.Node_info.chklist
  | gs -> Alcotest.failf "expected 1 label group, got %d" (List.length gs));
  (* Section 4.1's cID example: the title node 0.2.0.1 has cID
     (keyword, xml). *)
  let title_info =
    match Xks_core.Node_info.info_of info_tree (id_at doc "0.2.0.1") with
    | Some i -> i
    | None -> Alcotest.fail "no info for 0.2.0.1"
  in
  Alcotest.(check string)
    "cID of 0.2.0.1" "(keyword, xml)"
    (Format.asprintf "%a" Xks_index.Cid.pp title_info.Xks_core.Node_info.cid)

(* --- Q1: the false positive problem (Figures 3(b), 3(c)). --- *)

let test_q1_false_positive () =
  let doc = Lazy.force publications in
  let engine = Lazy.force pub_engine in
  let fig3b =
    [
      "0.2.1"; "0.2.1.0"; "0.2.1.0.0"; "0.2.1.0.0.0"; "0.2.1.0.1";
      "0.2.1.0.1.0"; "0.2.1.1"; "0.2.1.2";
    ]
  in
  (let v = run_validrtf engine Fixtures.q1 in
   check_ids doc "unique LCA 0.2.1" [ "0.2.1" ] v.Pipeline.lcas;
   match v.Pipeline.fragments with
   | [ frag ] -> check_fragment doc "ValidRTF keeps the title (fig 3(b))" fig3b frag
   | frags -> Alcotest.failf "expected 1 fragment, got %d" (List.length frags));
  let m = run_maxmatch engine Fixtures.q1 in
  match m.Pipeline.fragments with
  | [ frag ] ->
      (* Figure 3(c): MaxMatch wrongly discards the title node. *)
      check_fragment doc "MaxMatch discards the title (fig 3(c))"
        (List.filter (fun d -> d <> "0.2.1.1") fig3b)
        frag
  | frags -> Alcotest.failf "expected 1 fragment, got %d" (List.length frags)

(* --- Q4: the redundancy problem (Figure 3(d)). --- *)

let test_q4_redundancy () =
  let doc = Lazy.force team in
  let engine = Lazy.force team_engine in
  let fig3d =
    [ "0"; "0.0"; "0.1"; "0.1.0"; "0.1.0.1"; "0.1.1"; "0.1.1.1"; "0.1.2"; "0.1.2.1" ]
  in
  (let m = run_maxmatch engine Fixtures.q4 in
   check_ids doc "unique LCA is the team root" [ "0" ] m.Pipeline.lcas;
   match m.Pipeline.fragments with
   | [ frag ] ->
       (* MaxMatch keeps both "forward" players. *)
       check_fragment doc "MaxMatch keeps duplicates (fig 3(d))" fig3d frag
   | frags -> Alcotest.failf "expected 1 fragment, got %d" (List.length frags));
  let v = run_validrtf engine Fixtures.q4 in
  match v.Pipeline.fragments with
  | [ frag ] ->
      (* ValidRTF drops the duplicated forward player 0.1.2. *)
      check_fragment doc "ValidRTF drops the duplicate forward"
        (List.filter (fun d -> d <> "0.1.2" && d <> "0.1.2.1") fig3d)
        frag
  | frags -> Alcotest.failf "expected 1 fragment, got %d" (List.length frags)

(* --- Q5: the positive example both mechanisms agree on (Figure 3(a)). --- *)

let test_q5_positive () =
  let doc = Lazy.force team in
  let engine = Lazy.force team_engine in
  let expected = [ "0.1.0"; "0.1.0.0"; "0.1.0.1" ] in
  let check name result =
    match result.Pipeline.fragments with
    | [ frag ] -> check_fragment doc name expected frag
    | frags -> Alcotest.failf "expected 1 fragment, got %d" (List.length frags)
  in
  let v = run_validrtf engine Fixtures.q5 in
  check_ids doc "LCA is player 0.1.0" [ "0.1.0" ] v.Pipeline.lcas;
  check "ValidRTF (fig 3(a))" v;
  check "MaxMatch (fig 3(a))" (run_maxmatch engine Fixtures.q5)

(* --- Original (SLCA-only) MaxMatch on the paper data. --- *)

let test_original_maxmatch_q2 () =
  (* The VLDB'08 baseline sees only the SLCA fragment of Figure 2(a);
     the interesting LCA node "0.2.0 (article)" is lost — the deficiency
     the paper's introduction illustrates. *)
  let doc = Lazy.force publications in
  let result =
    Engine.run ~algorithm:Engine.Maxmatch_original (Lazy.force pub_engine)
      Fixtures.q2
  in
  check_ids doc "SLCA only" [ "0.2.0.3.0" ] result.Pipeline.lcas;
  match result.Pipeline.fragments with
  | [ frag ] -> check_fragment doc "figure 2(a) only" [ "0.2.0.3.0" ] frag
  | frags -> Alcotest.failf "expected 1 fragment, got %d" (List.length frags)

let test_all_algorithms_agree_on_q5 () =
  (* Q5 has a single SLCA = single ELCA; all three algorithms coincide. *)
  let doc = Lazy.force team in
  let engine = Lazy.force team_engine in
  let frags algorithm =
    (Engine.run ~algorithm engine Fixtures.q5).Pipeline.fragments
    |> List.map Xks_core.Fragment.members_list
  in
  ignore doc;
  let v = frags Engine.Validrtf in
  Alcotest.(check bool) "revised agrees" true (frags Engine.Maxmatch = v);
  Alcotest.(check bool) "original agrees" true
    (frags Engine.Maxmatch_original = v)

(* --- The ECTQ cardinality claim of Example 3. --- *)

let test_example3_ectq_cardinality () =
  let engine = Lazy.force pub_engine in
  let q = Xks_core.Query.make (Engine.index engine) Fixtures.q2 in
  Alcotest.(check int) "|ECTQ| = 11 (not 21)" 11
    (List.length (Xks_core.Spec.ectq q))

(* --- Example 4 via the executable Definition 2. --- *)

let test_example4_spec_partitions () =
  let doc = Lazy.force publications in
  let engine = Lazy.force pub_engine in
  let q = Xks_core.Query.make (Engine.index engine) Fixtures.q2 in
  let parts = Xks_core.Spec.rtf_partitions q in
  match parts with
  | [ (l1, p1); (l2, p2) ] ->
      check_ids doc "first partition LCA" [ "0.2.0" ] [ l1 ];
      check_ids doc "first partition" [ "0.2.0.0.0.0"; "0.2.0.1"; "0.2.0.2" ] p1;
      check_ids doc "second partition LCA" [ "0.2.0.3.0" ] [ l2 ];
      check_ids doc "second partition" [ "0.2.0.3.0" ] p2
  | ps -> Alcotest.failf "expected 2 RTF partitions, got %d" (List.length ps)

let tests =
  [
    Alcotest.test_case "Q3 keyword nodes (example 6)" `Quick test_q3_keyword_nodes;
    Alcotest.test_case "Q2 keyword nodes (example 3)" `Quick test_q2_keyword_nodes;
    Alcotest.test_case "Q2 LCAs: SLCA vs LCA" `Quick test_q2_lcas;
    Alcotest.test_case "Q2 partitions (example 4)" `Quick test_q2_partitions;
    Alcotest.test_case "Q2 fragments (figures 2a, 2b)" `Quick test_q2_fragments;
    Alcotest.test_case "Q3 unique LCA" `Quick test_q3_lca;
    Alcotest.test_case "Q3 raw RTF (figure 2c)" `Quick test_q3_raw_rtf;
    Alcotest.test_case "Q3 meaningful RTF (figure 2d)" `Quick test_q3_meaningful_rtf;
    Alcotest.test_case "Q3 node data structure (figure 4)" `Quick test_q3_node_info;
    Alcotest.test_case "Q1 false positive fixed (figures 3b, 3c)" `Quick test_q1_false_positive;
    Alcotest.test_case "Q4 redundancy fixed (figure 3d)" `Quick test_q4_redundancy;
    Alcotest.test_case "Q5 positive example (figure 3a)" `Quick test_q5_positive;
    Alcotest.test_case "original MaxMatch sees only the SLCA (Q2)" `Quick
      test_original_maxmatch_q2;
    Alcotest.test_case "all algorithms agree on Q5" `Quick
      test_all_algorithms_agree_on_q5;
    Alcotest.test_case "ECTQ cardinality (example 3)" `Quick test_example3_ectq_cardinality;
    Alcotest.test_case "Definition 2 oracle (example 4)" `Quick test_example4_spec_partitions;
  ]
