(* getRTF: keyword-node dispatch and raw fragment construction. *)

module Tree = Xks_xml.Tree
module Rtf = Xks_core.Rtf
module Query = Xks_core.Query
module Fragment = Xks_core.Fragment

let query_of xml ws =
  let doc = Xks_xml.Parser.parse_string xml in
  (doc, Query.make (Xks_index.Inverted.build doc) ws)

let elcas (q : Query.t) = Xks_lca.Indexed_stack.elca q.doc q.postings

let test_dispatch_to_deepest () =
  (* Both the ref-like node and the outer article are LCAs; the shared
     keyword node goes to the deepest one. *)
  let doc, q =
    query_of "<r><art><n>w1</n><t>w2</t><ref>w1 w2</ref></art></r>"
      [ "w1"; "w2" ]
  in
  let rtfs = Rtf.get_rtfs q (elcas q) in
  let knodes rtf = Helpers.deweys_of doc (Array.to_list rtf.Rtf.knodes) in
  match rtfs with
  | [ outer; inner ] ->
      Alcotest.(check (list string)) "outer partition" [ "0.0.0"; "0.0.1" ]
        (knodes outer);
      Alcotest.(check (list string)) "inner partition" [ "0.0.2" ] (knodes inner)
  | l -> Alcotest.failf "expected 2 RTFs, got %d" (List.length l)

let test_orphan_keyword_nodes_dropped () =
  (* w1 at 0.1 sits under no LCA (the root is not an ELCA because its only
     w2 witnesses are inside the full container 0.0). *)
  let doc, q =
    query_of "<r><m><c>w1 w2</c><t>w2</t></m><d>w1</d></r>" [ "w1"; "w2" ]
  in
  let rtfs = Rtf.get_rtfs q (elcas q) in
  match rtfs with
  | [ rtf ] ->
      Helpers.check_ids doc "only the SLCA partition" [ "0.0.0" ]
        (Array.to_list rtf.Rtf.knodes);
      Helpers.check_ids doc "lca" [ "0.0.0" ] [ rtf.Rtf.lca ]
  | l -> Alcotest.failf "expected 1 RTF, got %d" (List.length l)

let test_raw_fragment_paths () =
  let doc, q =
    query_of "<r><a><b><c>w1</c></b></a><d>w2</d></r>" [ "w1"; "w2" ]
  in
  let rtfs = Rtf.get_rtfs q (elcas q) in
  match rtfs with
  | [ rtf ] ->
      Helpers.check_fragment doc "paths up to the root"
        [ "0"; "0.0"; "0.0.0"; "0.0.0.0"; "0.1" ]
        (Rtf.raw_fragment q rtf)
  | l -> Alcotest.failf "expected 1 RTF, got %d" (List.length l)

let test_keyword_node_ids_union () =
  let _, q = query_of "<r><a>w1 w2</a><b>w2</b></r>" [ "w1"; "w2" ] in
  Alcotest.(check (list int)) "union, deduplicated" [ 1; 2 ]
    (Array.to_list (Rtf.keyword_node_ids q))

(* Properties on random documents. *)

let gen_case = QCheck2.Gen.pair Helpers.gen_doc Helpers.gen_query

let print_case (doc, ws) =
  Printf.sprintf "query=%s doc=%s" (String.concat "," ws) (Helpers.print_doc doc)

let make_query doc ws = Query.make (Xks_index.Inverted.build doc) ws

let prop_partitions_disjoint_and_assigned_deepest =
  QCheck2.Test.make ~name:"dispatch: disjoint, deepest LCA ancestor"
    ~count:300 ~print:print_case gen_case (fun (doc, ws) ->
      let q = make_query doc ws in
      let lcas = elcas q in
      let rtfs = Rtf.get_rtfs q lcas in
      let seen = Hashtbl.create 16 in
      List.for_all
        (fun rtf ->
          Array.for_all
            (fun kn ->
              let fresh = not (Hashtbl.mem seen kn) in
              Hashtbl.add seen kn ();
              let lca_node = Tree.node doc rtf.Rtf.lca in
              let kn_node = Tree.node doc kn in
              let is_anc =
                Xks_xml.Dewey.is_ancestor_or_self lca_node.Tree.dewey
                  kn_node.Tree.dewey
              in
              (* No deeper LCA is also an ancestor. *)
              let deepest =
                List.for_all
                  (fun other ->
                    other = rtf.Rtf.lca
                    || (let o = Tree.node doc other in
                        not
                          (Xks_xml.Dewey.is_ancestor_or_self o.Tree.dewey
                             kn_node.Tree.dewey))
                    || Xks_xml.Dewey.is_ancestor_or_self
                         (Tree.node doc other).Tree.dewey lca_node.Tree.dewey)
                  lcas
              in
              fresh && is_anc && deepest)
            rtf.Rtf.knodes)
        rtfs)

let prop_every_rtf_covers_query =
  QCheck2.Test.make ~name:"every RTF partition covers all keywords"
    ~count:300 ~print:print_case gen_case (fun (doc, ws) ->
      let q = make_query doc ws in
      let rtfs = Rtf.get_rtfs q (elcas q) in
      List.for_all
        (fun rtf ->
          let mask =
            Array.fold_left
              (fun acc kn -> Xks_index.Klist.union acc (Query.node_klist q kn))
              Xks_index.Klist.empty rtf.Rtf.knodes
          in
          Xks_index.Klist.is_full ~k:(Query.k q) mask)
        rtfs)

let prop_raw_fragment_connected =
  QCheck2.Test.make ~name:"raw fragments are connected at their root"
    ~count:300 ~print:print_case gen_case (fun (doc, ws) ->
      let q = make_query doc ws in
      let rtfs = Rtf.get_rtfs q (elcas q) in
      List.for_all
        (fun rtf ->
          let frag = Rtf.raw_fragment q rtf in
          List.for_all
            (fun id ->
              id = rtf.Rtf.lca
              || Fragment.mem frag (Tree.node doc id).Tree.parent)
            (Fragment.members_list frag))
        rtfs)

let tests =
  [
    Alcotest.test_case "dispatch to the deepest LCA" `Quick test_dispatch_to_deepest;
    Alcotest.test_case "orphan keyword nodes dropped" `Quick test_orphan_keyword_nodes_dropped;
    Alcotest.test_case "raw fragment paths" `Quick test_raw_fragment_paths;
    Alcotest.test_case "keyword node union" `Quick test_keyword_node_ids_union;
    Helpers.qtest prop_partitions_disjoint_and_assigned_deepest;
    Helpers.qtest prop_every_rtf_covers_query;
    Helpers.qtest prop_raw_fragment_connected;
  ]
