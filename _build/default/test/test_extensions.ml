(* Extensions beyond the paper: snippets, labeled terms, ElemRank
   structural ranking. *)

module Engine = Xks_core.Engine
module Query = Xks_core.Query
module Snippet = Xks_core.Snippet
module Labeled = Xks_core.Labeled
module Elemrank = Xks_core.Elemrank
module Tree = Xks_xml.Tree

let engine_of = Engine.of_string

(* --- snippets --- *)

let snippet_for engine query =
  let result = Engine.run engine query in
  let q = result.Xks_core.Pipeline.query in
  match result.Xks_core.Pipeline.fragments with
  | frag :: _ -> Snippet.of_fragment q frag
  | [] -> Alcotest.fail "expected a fragment"

let test_snippet_basic () =
  let engine =
    engine_of
      "<r><doc><t>the quick brown fox jumps over the lazy dog</t><u>unrelated \
       words entirely</u></doc></r>"
  in
  let s = snippet_for engine [ "fox" ] in
  Alcotest.(check string) "window with highlight"
    "the quick brown [fox] jumps over the ..." s

let test_snippet_multi_keyword () =
  let engine =
    engine_of "<r><a>alpha beta gamma</a><b>delta epsilon zeta</b></r>"
  in
  let s = snippet_for engine [ "beta"; "epsilon" ] in
  Alcotest.(check string) "two windows joined"
    "alpha [beta] gamma ... delta [epsilon] zeta" s

let test_snippet_label_match () =
  (* Keyword matched by an element label falls back to label rendering. *)
  let engine = engine_of "<r><title>some text here</title><x>other</x></r>" in
  let s = snippet_for engine [ "title" ] in
  Alcotest.(check string) "label fallback" "[title]: some text here" s

let test_snippet_custom_highlight () =
  let engine = engine_of "<r><a>just one keyword here</a></r>" in
  let result = Engine.run engine [ "keyword" ] in
  let q = result.Xks_core.Pipeline.query in
  let frag = List.hd result.Xks_core.Pipeline.fragments in
  let s =
    Snippet.of_fragment ~window:1 ~highlight:(fun w -> "<b>" ^ w ^ "</b>") q frag
  in
  Alcotest.(check string) "custom" "... one <b>keyword</b> here" s

let test_snippet_dedups_identical_windows () =
  (* Two keywords matching the same node only through its label and
     attribute name produce the same label-fallback piece under an
     erasing highlight; the snippet must show it once. *)
  let engine = engine_of "<r><ab cd=\"x\">text</ab><z>other</z></r>" in
  let result = Engine.run engine [ "ab"; "cd" ] in
  let q = result.Xks_core.Pipeline.query in
  let frag = List.hd result.Xks_core.Pipeline.fragments in
  let s = Snippet.of_fragment ~highlight:(fun _ -> "*") q frag in
  Alcotest.(check string) "identical pieces deduplicated" "*: text" s

(* --- labeled terms --- *)

let library =
  "<lib><book><title>xml handbook</title><note>xml notes</note></book><book><title>cooking</title><note>xml \
   recipes</note></book></lib>"

let test_parse_term () =
  let t = Labeled.parse_term "Title:XML" in
  Alcotest.(check (option string)) "label" (Some "title") t.Labeled.label;
  Alcotest.(check string) "keyword" "xml" t.Labeled.keyword;
  let bare = Labeled.parse_term "XML" in
  Alcotest.(check (option string)) "bare" None bare.Labeled.label;
  let label_only = Labeled.parse_term "title:" in
  Alcotest.(check string) "label-only keyword" "" label_only.Labeled.keyword;
  Alcotest.check_raises "empty" (Invalid_argument "Labeled.parse_term: malformed term ")
    (fun () -> ignore (Labeled.parse_term ""))

let test_labeled_posting () =
  let engine = engine_of library in
  let idx = Engine.index engine in
  let doc = Engine.doc engine in
  let ids term = Helpers.deweys_of doc (Array.to_list (Labeled.posting idx (Labeled.parse_term term))) in
  Alcotest.(check (list string)) "bare keyword"
    [ "0.0.0"; "0.0.1"; "0.1.1" ] (ids "xml");
  Alcotest.(check (list string)) "label restricted" [ "0.0.0" ] (ids "title:xml");
  Alcotest.(check (list string)) "label only" [ "0.0.0"; "0.1.0" ] (ids "title:");
  Alcotest.(check (list string)) "unknown label" [] (ids "nope:xml")

let test_labeled_search_narrows () =
  let engine = engine_of library in
  let broad = Engine.search engine [ "xml"; "cooking" ] in
  let narrow = Labeled.search engine [ "note:xml"; "cooking" ] in
  (* Bare: the cooking book's own note mentions xml -> its book is an
     SLCA.  Restricting xml to notes keeps the same shape here; but
     restricting to titles must push the result up. *)
  let titled = Labeled.search engine [ "title:xml"; "cooking" ] in
  let root_of hits =
    List.map
      (fun (h : Engine.hit) -> Helpers.dewey_str (Engine.doc engine) h.Engine.fragment.Xks_core.Fragment.root)
      hits
  in
  Alcotest.(check (list string)) "bare query" [ "0.1" ] (root_of broad);
  Alcotest.(check (list string)) "note-restricted" [ "0.1" ] (root_of narrow);
  Alcotest.(check (list string)) "title-restricted climbs to the lib root"
    [ "0" ] (root_of titled)

let test_labeled_no_results () =
  let engine = engine_of library in
  Alcotest.(check int) "no hit" 0
    (List.length (Labeled.search engine [ "title:recipes" ]))

(* --- ElemRank --- *)

let test_elemrank_sums_to_one () =
  let doc = Xks_datagen.Paper_fixtures.publications () in
  let pr = Elemrank.compute doc in
  let total =
    Tree.fold (fun acc n -> acc +. Elemrank.score pr n.Tree.id) 0.0 doc
  in
  Alcotest.(check (float 1e-6)) "normalised" 1.0 total

let test_elemrank_hub_beats_leaf () =
  let doc =
    Xks_xml.Parser.parse_string
      "<r><hub><a/><b/><c/><d/><e/></hub><leaf/></r>"
  in
  let pr = Elemrank.compute doc in
  let hub = Elemrank.score pr (Helpers.id_at doc "0.0") in
  let leaf = Elemrank.score pr (Helpers.id_at doc "0.1") in
  Alcotest.(check bool) "hub scores higher" true (hub > leaf)

let test_elemrank_top () =
  let doc = Xks_xml.Parser.parse_string "<r><hub><a/><b/><c/></hub></r>" in
  let pr = Elemrank.compute doc in
  match Elemrank.top pr 1 with
  | [ (id, _) ] -> Alcotest.(check int) "hub on top" (Helpers.id_at doc "0.0") id
  | _ -> Alcotest.fail "expected one row"

let test_rank_with_prior () =
  let engine =
    engine_of
      "<db><item><name>w1 w2</name></item><other>w1</other><misc>w2</misc></db>"
  in
  let result = Engine.run engine [ "w1"; "w2" ] in
  let prior = Elemrank.compute (Engine.doc engine) in
  let ranked = Xks_core.Ranking.rank_with_prior prior result in
  Alcotest.(check int) "same cardinality"
    (List.length result.Xks_core.Pipeline.fragments)
    (List.length ranked);
  List.iter
    (fun (s : Xks_core.Ranking.scored) ->
      Alcotest.(check bool) "positive scores" true (s.Xks_core.Ranking.score > 0.0))
    ranked

(* --- TF-IDF --- *)

let test_idf_monotone () =
  let engine =
    engine_of "<r><a>rare common</a><b>common</b><c>common</c></r>"
  in
  let t = Xks_core.Tfidf.build (Engine.index engine) in
  Alcotest.(check bool) "rarer word has higher idf" true
    (Xks_core.Tfidf.idf t "rare" > Xks_core.Tfidf.idf t "common");
  Alcotest.(check bool) "idf positive" true (Xks_core.Tfidf.idf t "common" > 0.0);
  Alcotest.(check bool) "case-insensitive" true
    (Xks_core.Tfidf.idf t "RARE" = Xks_core.Tfidf.idf t "rare")

let test_tfidf_rank_prefers_rare () =
  (* Two results for a single-keyword query: the compact fragment with
     the occurrence outranks the larger one. *)
  let engine =
    engine_of
      "<db><x>rare</x><big><p1>rare</p1><p2>pad</p2><p3>pad</p3><p4>pad</p4></big></db>"
  in
  let result = Engine.run engine [ "rare" ] in
  let t = Xks_core.Tfidf.build (Engine.index engine) in
  let ranked = Xks_core.Tfidf.rank t result in
  (match ranked with
  | first :: _ ->
      Alcotest.(check string) "compact fragment first" "0.0"
        (Helpers.dewey_str (Engine.doc engine)
           first.Xks_core.Ranking.fragment.Xks_core.Fragment.root)
  | [] -> Alcotest.fail "expected results");
  List.iter
    (fun (s : Xks_core.Ranking.scored) ->
      Alcotest.(check bool) "positive" true (s.Xks_core.Ranking.score > 0.0))
    ranked

let test_singleton_document () =
  let doc = Xks_xml.Parser.parse_string "<only/>" in
  let pr = Elemrank.compute doc in
  Alcotest.(check (float 1e-9)) "lone node keeps all mass" 1.0
    (Elemrank.score pr 0)

let tests =
  [
    Alcotest.test_case "snippet: window and highlight" `Quick test_snippet_basic;
    Alcotest.test_case "snippet: multiple keywords" `Quick test_snippet_multi_keyword;
    Alcotest.test_case "snippet: label fallback" `Quick test_snippet_label_match;
    Alcotest.test_case "snippet: custom highlight" `Quick test_snippet_custom_highlight;
    Alcotest.test_case "snippet: window dedup" `Quick test_snippet_dedups_identical_windows;
    Alcotest.test_case "labeled: parse" `Quick test_parse_term;
    Alcotest.test_case "labeled: postings" `Quick test_labeled_posting;
    Alcotest.test_case "labeled: search narrows" `Quick test_labeled_search_narrows;
    Alcotest.test_case "labeled: no results" `Quick test_labeled_no_results;
    Alcotest.test_case "elemrank: normalisation" `Quick test_elemrank_sums_to_one;
    Alcotest.test_case "elemrank: hubs beat leaves" `Quick test_elemrank_hub_beats_leaf;
    Alcotest.test_case "elemrank: top" `Quick test_elemrank_top;
    Alcotest.test_case "elemrank: singleton document" `Quick test_singleton_document;
    Alcotest.test_case "tfidf: idf monotonicity" `Quick test_idf_monotone;
    Alcotest.test_case "tfidf: ranking prefers compact" `Quick test_tfidf_rank_prefers_rare;
    Alcotest.test_case "ranking with structural prior" `Quick test_rank_with_prior;
  ]
