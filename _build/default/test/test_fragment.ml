(* Fragment values: construction, membership, diffs, rendering. *)

module Fragment = Xks_core.Fragment
module Tree = Xks_xml.Tree

let doc () =
  Xks_xml.Parser.parse_string "<r><a><x>one</x><y>two</y></a><b>three</b></r>"

let test_make_normalises () =
  let f = Fragment.make ~root:0 ~members:[ 3; 1; 3; 2 ] in
  Alcotest.(check (list int)) "sorted, deduplicated, root added"
    [ 0; 1; 2; 3 ]
    (Fragment.members_list f);
  Alcotest.(check int) "size" 4 (Fragment.size f)

let test_membership_and_equality () =
  let f = Fragment.make ~root:1 ~members:[ 2; 3 ] in
  Alcotest.(check bool) "mem" true (Fragment.mem f 2);
  Alcotest.(check bool) "not mem" false (Fragment.mem f 4);
  let g = Fragment.make ~root:1 ~members:[ 3; 2 ] in
  Alcotest.(check bool) "order-insensitive equality" true (Fragment.equal f g);
  let h = Fragment.make ~root:1 ~members:[ 2 ] in
  Alcotest.(check bool) "different sets differ" false (Fragment.equal f h)

let test_diff_count () =
  let f = Fragment.make ~root:0 ~members:[ 1; 2; 3 ] in
  let g = Fragment.make ~root:0 ~members:[ 2 ] in
  Alcotest.(check int) "f - g" 2 (Fragment.diff_count f g);
  Alcotest.(check int) "g - f" 0 (Fragment.diff_count g f)

let test_render_structure () =
  let d = doc () in
  let f = Fragment.make ~root:1 ~members:[ 2; 3 ] in
  Alcotest.(check string) "indented tree view"
    "0.0 (a)\n  0.0.0 (x) 'one'\n  0.0.1 (y) 'two'\n"
    (Fragment.render d f)

let test_render_skips_non_members () =
  let d = doc () in
  let f = Fragment.make ~root:1 ~members:[ 3 ] in
  Alcotest.(check string) "only the member child"
    "0.0 (a)\n  0.0.1 (y) 'two'\n"
    (Fragment.render d f)

let test_to_xml () =
  let d = doc () in
  let f = Fragment.make ~root:1 ~members:[ 2 ] in
  Alcotest.(check string) "xml view" "<a>\n  <x>one</x>\n</a>\n"
    (Fragment.to_xml d f)

let tests =
  [
    Alcotest.test_case "make normalises" `Quick test_make_normalises;
    Alcotest.test_case "membership and equality" `Quick test_membership_and_equality;
    Alcotest.test_case "diff count" `Quick test_diff_count;
    Alcotest.test_case "render" `Quick test_render_structure;
    Alcotest.test_case "render skips non-members" `Quick test_render_skips_non_members;
    Alcotest.test_case "to_xml" `Quick test_to_xml;
  ]
