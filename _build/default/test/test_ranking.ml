(* The ranking score and its orderings. *)

module Ranking = Xks_core.Ranking
module Engine = Xks_core.Engine
module Query = Xks_core.Query
module Fragment = Xks_core.Fragment
module Rtf = Xks_core.Rtf

let result_of xml ws =
  let engine = Engine.of_string xml in
  Engine.run engine ws

let test_deeper_root_scores_higher () =
  (* Same fragment shape at different depths: the deeper LCA wins. *)
  let r =
    result_of "<db><wrap><item>w1 w2</item></wrap><item>w1 w2</item></db>"
      [ "w1"; "w2" ]
  in
  let q = r.Xks_core.Pipeline.query in
  let scores =
    List.map2 (Ranking.score q) r.Xks_core.Pipeline.rtfs
      r.Xks_core.Pipeline.fragments
  in
  match (r.Xks_core.Pipeline.lcas, scores) with
  | [ _deep; _shallow ], [ s_deep; s_shallow ] ->
      (* lcas in document order: 0.0.0 (depth 2) then 0.1 (depth 1). *)
      Alcotest.(check bool) "deeper first" true (s_deep > s_shallow)
  | _ -> Alcotest.fail "expected two results"

let test_density_matters () =
  (* A fragment padded with structural nodes scores below a compact one
     with the same keyword nodes. *)
  let r =
    result_of
      "<db><a><deep><deeper><k>w1 w2</k></deeper></deep></a></db>"
      [ "w1"; "w2" ]
  in
  let q = r.Xks_core.Pipeline.query in
  let rtf = List.hd r.Xks_core.Pipeline.rtfs in
  let compact = List.hd r.Xks_core.Pipeline.fragments in
  let padded =
    Fragment.make ~root:rtf.Rtf.lca
      ~members:(List.init 5 Fun.id (* the whole chain *))
  in
  Alcotest.(check bool) "compact beats padded" true
    (Ranking.score q rtf compact >= Ranking.score q rtf padded)

let test_rank_is_sorted_and_stable () =
  let r =
    result_of
      "<db><x><i>w1 w2</i></x><y><i>w1 w2</i></y><z><i>w1 w2</i></z></db>"
      [ "w1"; "w2" ]
  in
  let ranked = Ranking.rank r in
  let scores = List.map (fun (s : Ranking.scored) -> s.Ranking.score) ranked in
  Alcotest.(check (list (float 1e-9))) "descending"
    (List.sort (Fun.flip compare) scores)
    scores;
  (* Equal scores: document order of the roots. *)
  let roots = List.map (fun (s : Ranking.scored) -> s.Ranking.rtf.Rtf.lca) ranked in
  Alcotest.(check (list int)) "ties in document order"
    (List.sort compare roots) roots

let test_score_positive () =
  let r = result_of "<r><a>w1</a></r>" [ "w1" ] in
  let q = r.Xks_core.Pipeline.query in
  List.iter2
    (fun rtf frag ->
      Alcotest.(check bool) "positive" true (Ranking.score q rtf frag > 0.0))
    r.Xks_core.Pipeline.rtfs r.Xks_core.Pipeline.fragments

let prop_rank_preserves_multiset =
  QCheck2.Test.make ~name:"rank returns every fragment exactly once"
    ~count:200
    ~print:(fun (doc, ws) ->
      Printf.sprintf "query=%s doc=%s" (String.concat "," ws)
        (Helpers.print_doc doc))
    QCheck2.Gen.(pair Helpers.gen_doc Helpers.gen_query)
    (fun (doc, ws) ->
      let engine = Engine.of_doc doc in
      let r = Engine.run engine ws in
      let ranked = Ranking.rank r in
      List.sort compare
        (List.map (fun (s : Ranking.scored) -> s.Ranking.rtf.Rtf.lca) ranked)
      = List.sort compare r.Xks_core.Pipeline.lcas)

let tests =
  [
    Alcotest.test_case "deeper roots score higher" `Quick test_deeper_root_scores_higher;
    Alcotest.test_case "density matters" `Quick test_density_matters;
    Alcotest.test_case "rank is sorted, ties stable" `Quick test_rank_is_sorted_and_stable;
    Alcotest.test_case "scores are positive" `Quick test_score_positive;
    Helpers.qtest prop_rank_preserves_multiset;
  ]
