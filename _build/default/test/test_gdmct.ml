(* GDMCT-style connecting trees. *)

module Gdmct = Xks_core.Gdmct
module Query = Xks_core.Query
module Fragment = Xks_core.Fragment
module Tree = Xks_xml.Tree

let query_of xml ws =
  let doc = Xks_xml.Parser.parse_string xml in
  (doc, Query.make (Xks_index.Inverted.build doc) ws)

let test_basic_mct () =
  let doc, q =
    query_of "<r><a><x>w1</x><y>w2</y></a><b>w1</b></r>" [ "w1"; "w2" ]
  in
  let results = Gdmct.search q in
  (* Connecting trees exist at 'a' (x + y) and at the root (b + a's y,
     or shallower witnesses). *)
  (match results with
  | [ top; inner ] ->
      Helpers.check_ids doc "roots" [ "0" ] [ top.Gdmct.root ];
      Helpers.check_ids doc "inner root" [ "0.0" ] [ inner.Gdmct.root ];
      Helpers.check_fragment doc "inner tree"
        [ "0.0"; "0.0.0"; "0.0.1" ]
        inner.Gdmct.fragment;
      Alcotest.(check int) "inner edges" 2 inner.Gdmct.edges
  | l -> Alcotest.failf "expected 2 results, got %d" (List.length l));
  ()

let test_threshold_drops_large_trees () =
  let doc, q =
    query_of
      "<r><deep><d1><d2><d3><d4>w1</d4></d3></d2></d1></deep><w>w2</w></r>"
      [ "w1"; "w2" ]
  in
  ignore doc;
  Alcotest.(check int) "tight threshold drops the tree" 0
    (List.length (Gdmct.search ~max_edges:3 q));
  Alcotest.(check int) "loose threshold keeps it" 1
    (List.length (Gdmct.search ~max_edges:10 q))

let test_no_results_without_matches () =
  let _, q = query_of "<r><a>w1</a></r>" [ "w1"; "w9" ] in
  Alcotest.(check int) "empty" 0 (List.length (Gdmct.search q))

let gen_case = QCheck2.Gen.pair Helpers.gen_doc Helpers.gen_query

let print_case (doc, ws) =
  Printf.sprintf "query=%s doc=%s" (String.concat "," ws) (Helpers.print_doc doc)

let prop_roots_are_full_containers =
  QCheck2.Test.make ~name:"MCT roots are full containers" ~count:300
    ~print:print_case gen_case (fun (doc, ws) ->
      let q = Query.make (Xks_index.Inverted.build doc) ws in
      let fcs = Xks_lca.Tree_scan.full_containers doc q.Query.postings in
      List.for_all
        (fun (r : Gdmct.result) -> List.mem r.Gdmct.root fcs)
        (Gdmct.search q))

let prop_trees_connected_and_bounded =
  QCheck2.Test.make ~name:"MCTs are connected and within the threshold"
    ~count:300 ~print:print_case gen_case (fun (doc, ws) ->
      let q = Query.make (Xks_index.Inverted.build doc) ws in
      List.for_all
        (fun (r : Gdmct.result) ->
          r.Gdmct.edges <= 10
          && r.Gdmct.edges = Fragment.size r.Gdmct.fragment - 1
          && List.for_all
               (fun id ->
                 id = r.Gdmct.root
                 || Fragment.mem r.Gdmct.fragment (Tree.node doc id).Tree.parent)
               (Fragment.members_list r.Gdmct.fragment))
        (Gdmct.search q))

let prop_mct_not_larger_than_rtf =
  QCheck2.Test.make
    ~name:"an MCT never exceeds the raw RTF rooted at the same node"
    ~count:300 ~print:print_case gen_case (fun (doc, ws) ->
      let q = Query.make (Xks_index.Inverted.build doc) ws in
      let validrtf = Xks_core.Validrtf.run_query q in
      let raw_by_root =
        List.map
          (fun (rtf : Xks_core.Rtf.t) ->
            (rtf.Xks_core.Rtf.lca, Xks_core.Rtf.raw_fragment q rtf))
          validrtf.Xks_core.Pipeline.rtfs
      in
      List.for_all
        (fun (r : Gdmct.result) ->
          match List.assoc_opt r.Gdmct.root raw_by_root with
          | Some raw -> Fragment.size r.Gdmct.fragment <= Fragment.size raw
          | None -> true (* MCT at a non-ELCA root has no RTF to compare *))
        (Gdmct.search q))

let tests =
  [
    Alcotest.test_case "basic connecting trees" `Quick test_basic_mct;
    Alcotest.test_case "size threshold" `Quick test_threshold_drops_large_trees;
    Alcotest.test_case "no matches" `Quick test_no_results_without_matches;
    Helpers.qtest prop_roots_are_full_containers;
    Helpers.qtest prop_trees_connected_and_bounded;
    Helpers.qtest prop_mct_not_larger_than_rtf;
  ]
