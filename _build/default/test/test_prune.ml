(* Valid-contributor and contributor pruning over hand-built RTFs. *)

module Tree = Xks_xml.Tree
module Query = Xks_core.Query
module Rtf = Xks_core.Rtf
module Node_info = Xks_core.Node_info
module Prune = Xks_core.Prune
module Fragment = Xks_core.Fragment

let setup ?cid_mode xml ws =
  let doc = Xks_xml.Parser.parse_string xml in
  let q = Query.make (Xks_index.Inverted.build doc) ws in
  let lcas = Xks_lca.Indexed_stack.elca q.doc q.postings in
  let rtf = List.hd (Rtf.get_rtfs q lcas) in
  (doc, Node_info.construct ?cid_mode q rtf)

let test_rule1_unique_label_kept () =
  (* A unique-labelled child survives even with a covered keyword set
     (w3 keeps the root as the only full container). *)
  let doc, info =
    setup "<r><t>w1</t><abs>w1 w2</abs><z>w3</z></r>" [ "w1"; "w2"; "w3" ]
  in
  Helpers.check_fragment doc "all children kept" [ "0"; "0.0"; "0.1"; "0.2" ]
    (Prune.valid_contributor info);
  (* The label-blind contributor discards the covered child. *)
  Helpers.check_fragment doc "contributor discards t" [ "0"; "0.1"; "0.2" ]
    (Prune.contributor info)

let test_rule2a_covered_same_label_discarded () =
  let doc, info =
    setup "<r><p>w1</p><p>w1 w2</p><q>w3</q></r>" [ "w1"; "w2"; "w3" ]
  in
  Helpers.check_fragment doc "covered same-label child discarded"
    [ "0"; "0.1"; "0.2" ]
    (Prune.valid_contributor info)

let test_rule2b_duplicate_content_discarded () =
  (* Equal keyword sets and equal contents: keep one representative. *)
  let doc, info =
    setup "<r><p>w1 alpha</p><p>w1 alpha</p><p>w1 beta</p>w2</r>"
      [ "w1"; "w2" ]
  in
  Helpers.check_fragment doc "one duplicate dropped" [ "0"; "0.0"; "0.2" ]
    (Prune.valid_contributor info);
  (* Contributor keeps all three (equal keyword sets never cover
     strictly). *)
  Helpers.check_fragment doc "contributor keeps all"
    [ "0"; "0.0"; "0.1"; "0.2" ]
    (Prune.contributor info)

let test_rule2b_distinct_content_kept () =
  let doc, info =
    setup "<r><p>w1 alpha</p><p>w1 beta</p>w2</r>" [ "w1"; "w2" ]
  in
  Helpers.check_fragment doc "distinct contents all kept"
    [ "0"; "0.0"; "0.1" ]
    (Prune.valid_contributor info)

let test_discard_removes_subtree () =
  let doc, info =
    setup "<r><p><x>w1</x></p><p>w1 w2</p><q>w3</q></r>" [ "w1"; "w2"; "w3" ]
  in
  Helpers.check_fragment doc "whole covered subtree gone"
    [ "0"; "0.1"; "0.2" ]
    (Prune.valid_contributor info)

let test_cid_collision_vs_exact () =
  (* (min,max) cannot tell {a..z, m} from {a..z, q}: approx mode drops a
     sibling that exact mode keeps — the paper's acknowledged
     approximation (footnote 6) and our A1 ablation. *)
  let xml = "<r><p>w1 aa zz mm</p><p>w1 aa zz qq</p>w2</r>" in
  let doc, info_approx = setup xml [ "w1"; "w2" ] in
  Helpers.check_fragment doc "approx conflates" [ "0"; "0.0" ]
    (Prune.valid_contributor info_approx);
  let _, info_exact = setup ~cid_mode:Xks_index.Cid.Exact xml [ "w1"; "w2" ] in
  Helpers.check_fragment doc "exact keeps both" [ "0"; "0.0"; "0.1" ]
    (Prune.valid_contributor info_exact)

let test_keep_all_is_raw () =
  let doc, info =
    setup "<r><p>w1</p><p>w1 w2</p><q>w3</q></r>" [ "w1"; "w2"; "w3" ]
  in
  Helpers.check_fragment doc "keep_all = raw RTF" [ "0"; "0.0"; "0.1"; "0.2" ]
    (Prune.keep_all info)

(* Properties. *)

let gen_case = QCheck2.Gen.pair Helpers.gen_doc Helpers.gen_query

let print_case (doc, ws) =
  Printf.sprintf "query=%s doc=%s" (String.concat "," ws) (Helpers.print_doc doc)

let infos_of doc ws =
  let q = Query.make (Xks_index.Inverted.build doc) ws in
  let lcas = Xks_lca.Indexed_stack.elca q.doc q.postings in
  List.map (fun rtf -> (q, rtf, Node_info.construct q rtf)) (Rtf.get_rtfs q lcas)

let prop_pruned_is_subset_of_raw =
  QCheck2.Test.make ~name:"pruned fragments are subsets of the raw RTF"
    ~count:300 ~print:print_case gen_case (fun (doc, ws) ->
      List.for_all
        (fun (_, _, info) ->
          let raw = Prune.keep_all info in
          let sub frag =
            List.for_all (Fragment.mem raw) (Fragment.members_list frag)
          in
          sub (Prune.valid_contributor info) && sub (Prune.contributor info))
        (infos_of doc ws))

let prop_pruned_still_covers_query =
  QCheck2.Test.make
    ~name:"valid-contributor pruning keeps every keyword represented"
    ~count:300 ~print:print_case gen_case (fun (doc, ws) ->
      List.for_all
        (fun ((q : Query.t), _, info) ->
          let frag = Prune.valid_contributor info in
          let mask =
            List.fold_left
              (fun acc id -> Xks_index.Klist.union acc (Query.node_klist q id))
              Xks_index.Klist.empty
              (Fragment.members_list frag)
          in
          Xks_index.Klist.is_full ~k:(Query.k q) mask)
        (infos_of doc ws))

let prop_pruned_connected =
  QCheck2.Test.make ~name:"pruned fragments remain connected" ~count:300
    ~print:print_case gen_case (fun (doc, ws) ->
      List.for_all
        (fun (_, (rtf : Rtf.t), info) ->
          let check frag =
            List.for_all
              (fun id ->
                id = rtf.Rtf.lca
                || Fragment.mem frag (Tree.node doc id).Tree.parent)
              (Fragment.members_list frag)
          in
          check (Prune.valid_contributor info) && check (Prune.contributor info))
        (infos_of doc ws))

let prop_root_always_kept =
  QCheck2.Test.make ~name:"the RTF root survives pruning" ~count:300
    ~print:print_case gen_case (fun (doc, ws) ->
      List.for_all
        (fun (_, (rtf : Rtf.t), info) ->
          Fragment.mem (Prune.valid_contributor info) rtf.Rtf.lca)
        (infos_of doc ws))

let tests =
  [
    Alcotest.test_case "rule 1: unique label kept" `Quick test_rule1_unique_label_kept;
    Alcotest.test_case "rule 2a: covered same-label discarded" `Quick
      test_rule2a_covered_same_label_discarded;
    Alcotest.test_case "rule 2b: duplicate content discarded" `Quick
      test_rule2b_duplicate_content_discarded;
    Alcotest.test_case "rule 2b: distinct content kept" `Quick
      test_rule2b_distinct_content_kept;
    Alcotest.test_case "discard removes the subtree" `Quick test_discard_removes_subtree;
    Alcotest.test_case "cid approximation vs exact" `Quick test_cid_collision_vs_exact;
    Alcotest.test_case "keep_all" `Quick test_keep_all_is_raw;
    Helpers.qtest prop_pruned_is_subset_of_raw;
    Helpers.qtest prop_pruned_still_covers_query;
    Helpers.qtest prop_pruned_connected;
    Helpers.qtest prop_root_always_kept;
  ]
