test/test_spec.ml: Alcotest Array Helpers List QCheck2 String Xks_core Xks_index Xks_lca Xks_xml
