test/test_extensions.ml: Alcotest Array Helpers List Xks_core Xks_datagen Xks_xml
