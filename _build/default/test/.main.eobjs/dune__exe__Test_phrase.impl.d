test/test_phrase.ml: Alcotest Array Helpers List QCheck2 Xks_core Xks_index Xks_util Xks_xml
