test/test_persist.ml: Alcotest Array Filename Fun Helpers List QCheck2 Sys Xks_core Xks_datagen Xks_index Xks_xml
