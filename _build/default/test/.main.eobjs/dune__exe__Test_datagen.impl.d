test/test_datagen.ml: Alcotest Array Fun List Printf String Xks_datagen Xks_index Xks_xml
