test/test_writer.ml: Alcotest Helpers List QCheck2 String Xks_core Xks_datagen Xks_xml
