test/test_relational.ml: Alcotest Array Format Helpers List QCheck2 String Xks_datagen Xks_index Xks_lca Xks_relational Xks_xml
