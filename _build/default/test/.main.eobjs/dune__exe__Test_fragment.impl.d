test/test_fragment.ml: Alcotest Xks_core Xks_xml
