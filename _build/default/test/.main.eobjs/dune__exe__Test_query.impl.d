test/test_query.ml: Alcotest Array Format Xks_core Xks_index Xks_xml
