test/test_engine.ml: Alcotest Filename Fun List String Sys Xks_core Xks_datagen Xks_index Xks_xml
