test/test_lca.ml: Alcotest Array Helpers List Printf QCheck2 String Xks_lca Xks_xml
