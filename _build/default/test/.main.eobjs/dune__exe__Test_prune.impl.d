test/test_prune.ml: Alcotest Helpers List Printf QCheck2 String Xks_core Xks_index Xks_lca Xks_xml
