test/test_dewey.ml: Alcotest Helpers List Printf QCheck2 Xks_xml
