test/test_tree.ml: Alcotest Array Helpers QCheck2 Xks_xml
