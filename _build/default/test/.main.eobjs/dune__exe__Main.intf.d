test/main.mli:
