test/test_paper_figures.ml: Alcotest Array Format Helpers Lazy List Xks_core Xks_datagen Xks_index Xks_lca Xks_xml
