test/test_index.ml: Alcotest Array Format Helpers List QCheck2 String Xks_index Xks_xml
