test/test_sax.ml: Alcotest Helpers List QCheck2 Xks_datagen Xks_index Xks_xml
