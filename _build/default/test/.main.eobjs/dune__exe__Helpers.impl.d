test/helpers.ml: Alcotest Array List QCheck2 QCheck_alcotest Xks_core Xks_index Xks_xml
