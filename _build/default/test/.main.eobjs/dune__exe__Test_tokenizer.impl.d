test/test_tokenizer.ml: Alcotest Helpers List QCheck2 String Xks_xml
