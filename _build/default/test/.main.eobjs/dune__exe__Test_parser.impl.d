test/test_parser.ml: Alcotest Filename Fun Helpers List QCheck2 Sys Xks_datagen Xks_xml
