test/test_util.ml: Alcotest Array Helpers List QCheck2 Xks_util
