test/test_axioms.ml: Alcotest Helpers Printf QCheck2 Random String Xks_core Xks_xml
