test/test_ranking.ml: Alcotest Fun Helpers List Printf QCheck2 String Xks_core
