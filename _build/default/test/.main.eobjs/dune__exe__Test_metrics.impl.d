test/test_metrics.ml: Alcotest Helpers Printf QCheck2 String Xks_core Xks_metrics
