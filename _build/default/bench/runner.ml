(* Shared measurement machinery for the figure harness: the paper runs
   each query 6 times and averages after discarding the first
   (Section 5.1); we do the same with a monotonic clock. *)

module Engine = Xks_core.Engine
module Query = Xks_core.Query

let now_ns () = Monotonic_clock.now ()

let time_ms f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (Int64.to_float (Int64.sub t1 t0) /. 1e6, result)

(* Average elapsed ms over [reps] runs after a discarded warm-up. *)
let measure ?(reps = 6) f =
  let _, first = time_ms f in
  let total = ref 0.0 in
  for _ = 2 to reps do
    let ms, _ = time_ms f in
    total := !total +. ms
  done;
  (!total /. float_of_int (reps - 1), first)

type row = {
  mnemonic : string;
  keywords : string list;
  maxmatch_ms : float;
  validrtf_ms : float;
  rtf_count : int;
  metrics : Xks_metrics.Metrics.t;
}

let run_query engine (mnemonic, keywords) =
  let q = Query.make (Engine.index engine) keywords in
  let validrtf_ms, validrtf = measure (fun () -> Xks_core.Validrtf.run_query q) in
  let maxmatch_ms, maxmatch =
    measure (fun () -> Xks_core.Maxmatch.run_revised_query q)
  in
  let metrics = Xks_metrics.Metrics.compare_results ~validrtf ~maxmatch in
  {
    mnemonic;
    keywords;
    maxmatch_ms;
    validrtf_ms;
    rtf_count = List.length validrtf.Xks_core.Pipeline.lcas;
    metrics;
  }

let load (dataset : Datasets.t) =
  Printf.printf "# dataset %s: generating and indexing...\n%!" dataset.name;
  let ms, engine = time_ms (fun () -> Lazy.force dataset.engine) in
  Printf.printf "# %s ready in %.0f ms (%s)\n%!" dataset.name ms
    (Engine.stats engine);
  engine

let rows_for dataset =
  let engine = load dataset in
  List.map (run_query engine) dataset.Datasets.workload.Xks_datagen.Queries.queries
