bench/runner.ml: Datasets Int64 Lazy List Monotonic_clock Printf Xks_core Xks_datagen Xks_metrics
