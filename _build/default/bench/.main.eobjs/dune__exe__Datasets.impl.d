bench/datasets.ml: Lazy List Xks_core Xks_datagen
