bench/main.mli:
