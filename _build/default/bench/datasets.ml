(* Benchmark datasets: one DBLP-shaped corpus and three XMark-shaped
   corpora at the paper's 1:3:6 size ratio, generated deterministically
   and indexed once. *)

module Engine = Xks_core.Engine

type t = {
  name : string;
  engine : Engine.t Lazy.t;
  workload : Xks_datagen.Queries.workload;
}

let dblp_entries = ref 12000
let xmark_items = ref 200

let make_dblp () =
  let config =
    { Xks_datagen.Dblp_gen.default_config with entries = !dblp_entries }
  in
  Engine.of_doc (Xks_datagen.Dblp_gen.generate ~config ())

let make_xmark size =
  let config =
    { Xks_datagen.Xmark_gen.default_config with items = !xmark_items }
  in
  Engine.of_doc (Xks_datagen.Xmark_gen.generate ~config size)

let make_all () =
  [
    {
      name = "dblp";
      engine = lazy (make_dblp ());
      workload = Xks_datagen.Queries.dblp;
    };
    {
      name = "xmark-std";
      engine = lazy (make_xmark Xks_datagen.Xmark_gen.Standard);
      workload = Xks_datagen.Queries.xmark;
    };
    {
      name = "xmark1";
      engine = lazy (make_xmark Xks_datagen.Xmark_gen.Data1);
      workload = Xks_datagen.Queries.xmark;
    };
    {
      name = "xmark2";
      engine = lazy (make_xmark Xks_datagen.Xmark_gen.Data2);
      workload = Xks_datagen.Queries.xmark;
    };
  ]

(* Engines are expensive to build; share one lazy instance per dataset
   across every command of a single invocation.  (Scale knobs must be set
   before the first [all]/[find].) *)
let cache = ref None

let all () =
  match !cache with
  | Some datasets -> datasets
  | None ->
      let datasets = make_all () in
      cache := Some datasets;
      datasets

let find name =
  match List.find_opt (fun d -> d.name = name) (all ()) with
  | Some d -> d
  | None -> failwith ("unknown dataset " ^ name)
