(** Scan Eager SLCA (Xu & Papakonstantinou, SIGMOD 2005).

    Same candidate logic as {!Slca.indexed_lookup_eager} — for every
    occurrence of the rarest keyword, take the deepest full container —
    but the closest-occurrence probes advance forward-only cursors over
    the other posting lists instead of binary-searching them.  Each list
    is traversed once, so the algorithm wins when list lengths are
    comparable ([O(k |S1| d + sum |Si|)] vs the eager lookup's
    [O(k |S1| d log |S|)]) and loses when one list is much shorter.
    The A2 ablation measures the crossover. *)

val slca : Xks_xml.Tree.t -> int array array -> int list
(** Ids of all SLCA nodes, document order. *)
