(** Brute-force oracles, straight from the definitions.

    These are intentionally slow, independently-written implementations
    used only to cross-validate {!Tree_scan}, {!Slca} and {!Indexed_stack}
    in the test suite.  They re-derive everything from the posting lists
    with quadratic scans and no shared helper logic. *)

val is_full_container : Xks_xml.Tree.t -> int array array -> int -> bool
(** [is_full_container doc postings id]: does the subtree rooted at [id]
    contain at least one occurrence of every keyword?  Decided by scanning
    each posting list for an element in the subtree's preorder range. *)

val full_containers : Xks_xml.Tree.t -> int array array -> int list
val slca : Xks_xml.Tree.t -> int array array -> int list

val elca : Xks_xml.Tree.t -> int array array -> int list
(** Direct XRank definition: for each node, collect the keyword
    occurrences in its subtree that are not inside any full-container
    {e strict} descendant, and keep the node iff every keyword remains. *)

val lca_of_witnesses : Xks_xml.Tree.t -> int array array -> int list
(** All distinct [lca(n1, .., nk)] over every choice of one occurrence per
    keyword — the classic (non-exclusive) LCA set, document order.  Only
    usable on tiny inputs: the enumeration is the full cross product. *)
