(** Exact LCA-family computation by a full bottom-up tree pass.

    Given the posting lists of a query, one linear pass computes for every
    node the bitset of keywords contained in its subtree; from it, full
    containers, SLCA and ELCA sets follow directly.  Time is
    [O(size-of-tree * k/word)], independent of the posting list sizes —
    the reference implementation the posting-based algorithms are
    validated against, and the A2 ablation baseline.

    Semantics (XRank / paper section 1):
    - a node is a {b full container} iff its subtree contains at least one
      occurrence of every keyword;
    - {b SLCA} = full containers with no full-container descendant;
    - {b ELCA} ("interesting LCA nodes") = nodes that still contain every
      keyword after excluding the subtrees of their full-container
      descendants. *)

type masks = {
  own : int array;  (** node id -> {!Xks_index.Klist.t} of its own content *)
  sub : int array;  (** node id -> keywords in its whole subtree *)
}

val compute_masks : Xks_xml.Tree.t -> int array array -> masks
(** [compute_masks doc postings] with one posting list per keyword. *)

val full_containers : Xks_xml.Tree.t -> int array array -> int list
(** Ids of all full containers, in document order. *)

val slca : Xks_xml.Tree.t -> int array array -> int list
(** Ids of all SLCA nodes, in document order. *)

val elca : Xks_xml.Tree.t -> int array array -> int list
(** Ids of all ELCA nodes, in document order. *)
