(** Stack-based SLCA and ELCA over one merged scan of the keyword nodes.

    The classic Dewey-stack technique (the stack algorithm of Xu &
    Papakonstantinou for SLCA; XRank's DIL-style computation for ELCA):
    the keyword nodes of all posting lists are merged in document order
    and a stack mirrors the root-to-node path of the current position,
    one entry per Dewey component.  Popping an entry finalises a node:
    its keyword bitsets are complete, so SLCA-hood (full subtree bitset,
    no SLCA below) or ELCA-hood (full {e surviving} bitset — own content
    plus non-full-container children) is decided on the spot and the
    bitsets are merged into the parent.

    Time [O(|S| d k/word)] after the merge: proportional to the keyword
    nodes, not the tree.  These serve as independent implementations for
    cross-validation and as A2-ablation baselines. *)

val slca : Xks_xml.Tree.t -> int array array -> int list
(** Ids of all SLCA nodes, document order. *)

val elca : Xks_xml.Tree.t -> int array array -> int list
(** Ids of all ELCA nodes, document order. *)
