(** Posting-list probes shared by the LCA algorithms.

    All probes work on posting lists: sorted arrays of node ids (document
    order).  The classic [lm]/[rm] probes find the closest occurrences of
    a keyword around a node; combining them per keyword yields [fc x], the
    deepest {e full container} of [x] — the deepest ancestor-or-self of
    [x] whose subtree contains every query keyword.  [fc] is also the
    paper's [elca_can]/[slca_can] candidate function when [x] comes from
    the smallest posting list. *)

val ancestor_at : Xks_xml.Tree.t -> Xks_xml.Tree.node -> int -> Xks_xml.Tree.node
(** [ancestor_at doc n d] is the ancestor of [n] at depth [d].
    @raise Invalid_argument if [d] exceeds the depth of [n]. *)

val closest_lca_depth :
  Xks_xml.Tree.t -> int array -> Xks_xml.Tree.node -> int option
(** [closest_lca_depth doc posting x] is the maximal [Dewey.lca_depth x m]
    over occurrences [m] in [posting] — reached by one of the two
    occurrences adjacent to [x] in document order.  [None] when the list
    is empty. *)

val fc :
  Xks_xml.Tree.t -> int array array -> Xks_xml.Tree.node ->
  Xks_xml.Tree.node option
(** [fc doc postings x] is the deepest full container of [x]: the deepest
    ancestor-or-self of [x] whose subtree contains at least one occurrence
    of every keyword.  [None] when some posting list is empty (then no
    full container exists at all). *)

val smallest_list_index : int array array -> int
(** Index of the shortest posting list (ties broken by lower index).
    @raise Invalid_argument on an empty array. *)
