lib/lca/stack_algos.ml: Array Hashtbl Int List Xks_index Xks_xml
