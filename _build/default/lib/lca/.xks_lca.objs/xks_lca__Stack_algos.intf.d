lib/lca/stack_algos.mli: Xks_xml
