lib/lca/tree_scan.mli: Xks_xml
