lib/lca/multiway.ml: Array Int List Probe Slca Xks_util Xks_xml
