lib/lca/indexed_stack.ml: Array Int List Probe Xks_util Xks_xml
