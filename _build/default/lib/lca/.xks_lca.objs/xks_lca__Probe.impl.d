lib/lca/probe.ml: Array Xks_util Xks_xml
