lib/lca/scan_eager.ml: Array Int List Probe Slca Xks_xml
