lib/lca/scan_eager.mli: Xks_xml
