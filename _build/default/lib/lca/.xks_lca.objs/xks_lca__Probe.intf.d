lib/lca/probe.mli: Xks_xml
