lib/lca/slca.mli: Xks_xml
