lib/lca/tree_scan.ml: Array List Xks_index Xks_xml
