lib/lca/multiway.mli: Xks_xml
