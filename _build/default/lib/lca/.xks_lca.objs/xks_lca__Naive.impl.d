lib/lca/naive.ml: Array Int List Option Xks_xml
