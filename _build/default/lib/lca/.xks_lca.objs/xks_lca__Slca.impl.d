lib/lca/slca.ml: Array Int List Probe Xks_xml
