lib/lca/indexed_stack.mli: Xks_xml
