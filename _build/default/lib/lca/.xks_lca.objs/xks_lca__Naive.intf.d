lib/lca/naive.mli: Xks_xml
