(** Anchor-based multiway SLCA (after Sun, Chan & Goenka, WWW 2007).

    Where {!Slca.indexed_lookup_eager} derives one candidate per
    occurrence of the rarest keyword, the multiway approach drives the
    scan by an {e anchor}: at each step the next occurrence of every
    keyword at or past the current position is probed, the {e largest}
    of them anchors the step, the candidate is the anchor's deepest full
    container, and the scan resumes right after the anchor.  Whole runs
    of occurrences of the denser keywords are skipped without generating
    candidates, which pays off when every posting list is long.

    (This is the basic anchoring scheme; the paper's further
    optimisations — in-result skipping, binary anchor refinement — are
    not needed at this library's scale.)  Cross-validated against the
    other three SLCA implementations in the test suite and measured in
    the A2 ablation. *)

val slca : Xks_xml.Tree.t -> int array array -> int list
(** Ids of all SLCA nodes, document order. *)
