(** Query plans over {!Table}s.

    A plan is a tree of the classic operators — scan, filter, project,
    hash join, sort, limit, distinct — evaluated bottom-up into a
    materialised row list whose columns are tracked by name.  {!select}
    builds the common case and performs the one optimisation the paper's
    workload needs: an equality predicate on an indexed column turns the
    scan into an index lookup. *)

type pred =
  | Eq of string * Value.t
  | Ne of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | True

type t =
  | Scan of Table.t
  | Filter of pred * t
  | Project of string list * t
  | Hash_join of { left : t; right : t; on : string * string }
      (** equi-join; all columns of both sides are kept, right-side
          column names prefixed with the right table alias only when
          they clash *)
  | Sort of string list * t  (** ascending, by the listed columns *)
  | Distinct of t
  | Limit of int * t

type result = { header : string list; rows : Value.t array list }

val run : t -> result
(** Evaluate a plan.
    @raise Invalid_argument when a predicate, projection, join or sort
    references an unknown column, or when a join would produce an
    ambiguous duplicate column. *)

val select :
  ?where:pred -> ?order_by:string list -> ?limit:int -> ?distinct:bool ->
  columns:string list -> Table.t -> result
(** [select ~columns table] — the common query shape, with index-aware
    equality filtering. *)

val pp_result : Format.formatter -> result -> unit
(** Tabular rendering, for the CLI and the tests. *)
