type pred =
  | Eq of string * Value.t
  | Ne of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | True

type t =
  | Scan of Table.t
  | Filter of pred * t
  | Project of string list * t
  | Hash_join of { left : t; right : t; on : string * string }
  | Sort of string list * t
  | Distinct of t
  | Limit of int * t

type result = { header : string list; rows : Value.t array list }

let position header c =
  let rec go i = function
    | [] -> invalid_arg ("Plan: unknown column " ^ c)
    | h :: _ when String.equal h c -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 header

let rec eval_pred header row = function
  | True -> true
  | Eq (c, v) -> Value.equal row.(position header c) v
  | Ne (c, v) -> not (Value.equal row.(position header c) v)
  | Lt (c, v) -> Value.compare row.(position header c) v < 0
  | Le (c, v) -> Value.compare row.(position header c) v <= 0
  | Gt (c, v) -> Value.compare row.(position header c) v > 0
  | Ge (c, v) -> Value.compare row.(position header c) v >= 0
  | And (a, b) -> eval_pred header row a && eval_pred header row b
  | Or (a, b) -> eval_pred header row a || eval_pred header row b
  | Not p -> not (eval_pred header row p)

(* Pull an indexable [Eq] conjunct out of a predicate for a given table:
   returns the lookup pair and the residual predicate. *)
let rec indexable_eq table = function
  | Eq (c, v) when Table.has_index table c -> Some ((c, v), True)
  | And (a, b) -> (
      match indexable_eq table a with
      | Some (hit, residual) -> Some (hit, And (residual, b))
      | None -> (
          match indexable_eq table b with
          | Some (hit, residual) -> Some (hit, And (a, residual))
          | None -> None))
  | Eq _ | Ne _ | Lt _ | Le _ | Gt _ | Ge _ | Or _ | Not _ | True -> None

let rec run = function
  | Scan table ->
      let rows = ref [] in
      Table.iter (fun r -> rows := r :: !rows) table;
      { header = Table.columns table; rows = List.rev !rows }
  | Filter (pred, Scan table) -> (
      (* Index-aware scan: peel one equality on an indexed column. *)
      match indexable_eq table pred with
      | Some ((c, v), residual) ->
          let header = Table.columns table in
          let rows =
            Table.lookup table ~column:c v
            |> List.filter (fun r -> eval_pred header r residual)
          in
          { header; rows }
      | None -> run_filter pred (run (Scan table)))
  | Filter (pred, sub) -> run_filter pred (run sub)
  | Project (cols, sub) ->
      let r = run sub in
      let positions = List.map (position r.header) cols in
      {
        header = cols;
        rows =
          List.map
            (fun row -> Array.of_list (List.map (fun i -> row.(i)) positions))
            r.rows;
      }
  | Hash_join { left; right; on = lc, rc } ->
      let l = run left and r = run right in
      let lpos = position l.header lc and rpos = position r.header rc in
      (* Right-side columns that clash get a "right." prefix. *)
      let right_header =
        List.map
          (fun c -> if List.mem c l.header then "right." ^ c else c)
          r.header
      in
      List.iter
        (fun c ->
          if List.mem c l.header then
            invalid_arg ("Plan: ambiguous column " ^ c))
        right_header;
      let buckets = Hashtbl.create 64 in
      List.iter
        (fun row ->
          let key = row.(rpos) in
          Hashtbl.replace buckets key
            (match Hashtbl.find_opt buckets key with
            | Some rs -> row :: rs
            | None -> [ row ]))
        r.rows;
      let rows =
        List.concat_map
          (fun lrow ->
            match Hashtbl.find_opt buckets lrow.(lpos) with
            | Some rrows ->
                List.rev_map (fun rrow -> Array.append lrow rrow) rrows
            | None -> [])
          l.rows
      in
      { header = l.header @ right_header; rows }
  | Sort (cols, sub) ->
      let r = run sub in
      let positions = List.map (position r.header) cols in
      let compare_rows a b =
        let rec go = function
          | [] -> 0
          | p :: rest ->
              let c = Value.compare a.(p) b.(p) in
              if c <> 0 then c else go rest
        in
        go positions
      in
      { r with rows = List.stable_sort compare_rows r.rows }
  | Distinct sub ->
      let r = run sub in
      let seen = Hashtbl.create 64 in
      let rows =
        List.filter
          (fun row ->
            let key = Array.to_list row in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          r.rows
      in
      { r with rows }
  | Limit (n, sub) ->
      let r = run sub in
      { r with rows = List.filteri (fun i _ -> i < n) r.rows }

and run_filter pred r =
  { r with rows = List.filter (fun row -> eval_pred r.header row pred) r.rows }

let select ?(where = True) ?order_by ?limit ?(distinct = false) ~columns table
    =
  let plan = Filter (where, Scan table) in
  let plan = Project (columns, plan) in
  let plan = if distinct then Distinct plan else plan in
  let plan =
    match order_by with Some cols -> Sort (cols, plan) | None -> plan
  in
  let plan = match limit with Some n -> Limit (n, plan) | None -> plan in
  run plan

let pp_result fmt r =
  let widths =
    List.map
      (fun c ->
        List.fold_left
          (fun w row ->
            max w (String.length (Value.to_string row.(position r.header c))))
          (String.length c) r.rows)
      r.header
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Format.fprintf fmt "%s@."
    (String.concat " | " (List.map2 pad r.header widths));
  List.iter
    (fun row ->
      let cells =
        List.map2
          (fun c w -> pad (Value.to_string row.(position r.header c)) w)
          r.header widths
      in
      Format.fprintf fmt "%s@." (String.concat " | " cells))
    r.rows
