(** In-memory tables with named columns and hash indexes.

    A table stores rows as {!Value.t} arrays under a fixed list of column
    names.  Equality (hash) indexes can be declared per column; inserts
    maintain them and {!lookup} uses them.  This is deliberately the
    smallest engine that supports the paper's Section 5.2 workload:
    point lookups on the [value] table, scans, and joins (via
    {!Plan}). *)

type t

val create : ?indexed:string list -> name:string -> string list -> t
(** [create ~name columns] makes an empty table.  [indexed] lists columns
    to maintain hash indexes on.
    @raise Invalid_argument on duplicate/unknown column names. *)

val name : t -> string
val columns : t -> string list
val row_count : t -> int

val column_index : t -> string -> int
(** Position of a column.
    @raise Not_found on an unknown column. *)

val insert : t -> Value.t array -> unit
(** @raise Invalid_argument if the arity does not match. *)

val insert_all : t -> Value.t array list -> unit

val row : t -> int -> Value.t array
(** [row t i] is the [i]-th row in insertion order (shared, do not
    mutate).
    @raise Invalid_argument when out of range. *)

val iter : (Value.t array -> unit) -> t -> unit
(** Full scan in insertion order. *)

val lookup : t -> column:string -> Value.t -> Value.t array list
(** [lookup t ~column v] returns the rows whose [column] equals [v], in
    insertion order — via the hash index when the column has one, by
    full scan otherwise. *)

val has_index : t -> string -> bool
