type t = Int of int | Text of string

let int i = Int i
let text s = Text s

let compare a b =
  match (a, b) with
  | Int a, Int b -> Int.compare a b
  | Text a, Text b -> String.compare a b
  | Int _, Text _ -> -1
  | Text _, Int _ -> 1

let equal a b = compare a b = 0
let to_string = function Int i -> string_of_int i | Text s -> s
let pp fmt v = Format.pp_print_string fmt (to_string v)

let as_int = function
  | Int i -> i
  | Text _ -> invalid_arg "Value.as_int: text cell"

let as_text = function
  | Text s -> s
  | Int _ -> invalid_arg "Value.as_text: integer cell"
