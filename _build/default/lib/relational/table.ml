type index = (Value.t, Xks_util.Int_vec.t) Hashtbl.t

type t = {
  table_name : string;
  cols : string array;
  mutable rows : Value.t array array;
  mutable count : int;
  indexes : (string * int * index) list;  (* column, position, index *)
}

let column_position cols c =
  let rec go i =
    if i = Array.length cols then raise Not_found
    else if String.equal cols.(i) c then i
    else go (i + 1)
  in
  go 0

let create ?(indexed = []) ~name columns =
  let cols = Array.of_list columns in
  let distinct = List.sort_uniq String.compare columns in
  if List.length distinct <> Array.length cols then
    invalid_arg "Table.create: duplicate column";
  let indexes =
    List.map
      (fun c ->
        match column_position cols c with
        | i -> (c, i, Hashtbl.create 64)
        | exception Not_found -> invalid_arg "Table.create: unknown indexed column")
      indexed
  in
  { table_name = name; cols; rows = Array.make 16 [||]; count = 0; indexes }

let name t = t.table_name
let columns t = Array.to_list t.cols
let row_count t = t.count
let column_index t c = column_position t.cols c

let insert t row =
  if Array.length row <> Array.length t.cols then
    invalid_arg "Table.insert: arity mismatch";
  if t.count = Array.length t.rows then begin
    let rows = Array.make (2 * t.count) [||] in
    Array.blit t.rows 0 rows 0 t.count;
    t.rows <- rows
  end;
  t.rows.(t.count) <- row;
  List.iter
    (fun (_, pos, idx) ->
      let key = row.(pos) in
      let bucket =
        match Hashtbl.find_opt idx key with
        | Some b -> b
        | None ->
            let b = Xks_util.Int_vec.create () in
            Hashtbl.add idx key b;
            b
      in
      Xks_util.Int_vec.push bucket t.count)
    t.indexes;
  t.count <- t.count + 1

let insert_all t rows = List.iter (insert t) rows

let row t i =
  if i < 0 || i >= t.count then invalid_arg "Table.row";
  t.rows.(i)

let iter f t =
  for i = 0 to t.count - 1 do
    f t.rows.(i)
  done

let find_index t column =
  List.find_opt (fun (c, _, _) -> String.equal c column) t.indexes

let lookup t ~column v =
  match find_index t column with
  | Some (_, _, idx) -> (
      match Hashtbl.find_opt idx v with
      | Some bucket ->
          let acc = ref [] in
          Xks_util.Int_vec.iter (fun i -> acc := t.rows.(i) :: !acc) bucket;
          List.rev !acc
      | None -> [])
  | None ->
      let pos = column_position t.cols column in
      let acc = ref [] in
      iter (fun row -> if Value.equal row.(pos) v then acc := row :: !acc) t;
      List.rev !acc

let has_index t column = find_index t column <> None
