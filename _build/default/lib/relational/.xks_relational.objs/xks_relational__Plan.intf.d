lib/relational/plan.mli: Format Table Value
