lib/relational/table.ml: Array Hashtbl List String Value Xks_util
