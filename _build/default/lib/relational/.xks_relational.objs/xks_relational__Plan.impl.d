lib/relational/plan.ml: Array Format Hashtbl List String Table Value
