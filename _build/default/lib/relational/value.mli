(** Cell values of the relational substrate.

    The paper's experimental platform shreds XML into PostgreSQL tables;
    this small in-memory engine (see {!Table}, {!Plan}) plays that role.
    Cells are dynamically typed: integers and text cover the label /
    element / value tables of Section 5.2. *)

type t = Int of int | Text of string

val int : int -> t
val text : string -> t

val compare : t -> t -> int
(** Total order: all [Int]s precede all [Text]s; within a type the
    natural order. *)

val equal : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val as_int : t -> int
(** @raise Invalid_argument on a [Text]. *)

val as_text : t -> string
(** @raise Invalid_argument on an [Int]. *)
