(** Content features ("cID", paper section 4.1).

    The tree content set [TC_v] of a node is the union of the contents of
    the keyword nodes in its subtree.  Comparing full sets is expensive,
    so the paper approximates each set by its [(min, max)] word pair under
    lexical order and treats two children with equal pairs as having equal
    content.  An exact mode keeping the whole sorted word set is provided
    for the A1 ablation, which measures what the approximation trades
    away. *)

type mode = Approx  (** the paper's [(min, max)] pair *) | Exact

type t
(** A content feature.  Features must be combined and compared only with
    features produced under the same {!mode}. *)

val empty : t
(** Feature of an empty content set (a node with no keyword node below). *)

val of_words : mode -> string list -> t
(** Feature of a content set given as a word list (any order, duplicates
    allowed). *)

val merge : t -> t -> t
(** Feature of the union of two content sets.
    @raise Invalid_argument when mixing modes. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_empty : t -> bool

val pp : Format.formatter -> t -> unit
(** Renders like the paper: [(keyword, XML)] in approx mode, the full set
    in exact mode. *)
