(** Binary save/load of inverted indexes.

    A compact, self-describing on-disk format so large corpora are
    indexed once and reopened instantly (the paper's counterpart is the
    shredded PostgreSQL database persisting across runs):

    - magic ["XKSIDX1\n"], then the word count,
    - per word: the word, its occurrence count, and its posting list
      with ids delta- and varint-encoded (posting lists are sorted, so
      gaps are small).

    The document itself is saved separately as XML ({!Xks_xml.Writer});
    {!load} re-attaches a loaded index to it and verifies that posting
    ids are in range. *)

type table = (string * int * int array) list
(** [(word, occurrences, posting)] rows, sorted by word. *)

val save : string -> Inverted.t -> unit
(** [save path idx] writes the index.
    @raise Sys_error on I/O failure. *)

val load : string -> Xks_xml.Tree.t -> Inverted.t
(** [load path doc] reads an index saved by {!save} and binds it to
    [doc].
    @raise Failure if the file is not a valid index, or if a posting id
    falls outside [doc] (wrong document). *)

val encode : table -> string
(** The on-disk bytes for rows (what {!save} writes). *)

val decode : string -> table
(** Inverse of {!encode}.
    @raise Failure on malformed bytes. *)

val dump : Inverted.t -> table
(** The index contents as rows (also used by the tests). *)

val of_table : Xks_xml.Tree.t -> table -> Inverted.t
(** Rebuild an index value from rows.
    @raise Failure on out-of-range ids or unsorted postings. *)
