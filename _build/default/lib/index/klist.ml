type t = int

let empty = 0
let max_keywords = Sys.int_size - 1

let check_index ~k i =
  if i < 0 || i >= k then invalid_arg "Klist: keyword index";
  if k > max_keywords then invalid_arg "Klist: too many keywords"

let singleton ~k i =
  check_index ~k i;
  1 lsl (k - 1 - i)

let union = ( lor )
let inter = ( land )

let mem ~k i v =
  check_index ~k i;
  v land (1 lsl (k - 1 - i)) <> 0

let subset a b = a land b = a
let strict_subset a b = a <> b && subset a b

let full ~k =
  if k < 0 || k > max_keywords then invalid_arg "Klist.full";
  (1 lsl k) - 1

let is_full ~k v = v = full ~k

let covered_by_any v chklist =
  (* A strict superset has a strictly larger key number, so start the scan
     just past [v] in the sorted list. *)
  let start = Xks_util.Bsearch.upper_bound chklist v in
  let n = Array.length chklist in
  let rec loop i = i < n && (subset v chklist.(i) || loop (i + 1)) in
  loop start

let cardinal v =
  let rec loop v acc = if v = 0 then acc else loop (v lsr 1) (acc + (v land 1)) in
  loop v 0

let to_indices ~k v =
  let rec loop i acc =
    if i < 0 then acc
    else loop (i - 1) (if mem ~k i v then i :: acc else acc)
  in
  loop (k - 1) []

let pp ~k fmt v =
  for i = 0 to k - 1 do
    Format.pp_print_char fmt (if mem ~k i v then '1' else '0')
  done
