(** Positional inverted index and phrase matching.

    Extends {!Inverted} with word positions: every node's content is a
    token stream (label words, then text words, then attribute words, in
    document order of the node) and each posting entry remembers the
    offsets at which its word occurs.  A {e phrase} ["xml keyword"]
    matches a node iff the words occur at consecutive offsets inside
    that node's own content — the standard positional-intersection
    algorithm.

    Phrase posting lists plug into the ordinary pipeline through
    {!Xks_core.Query.of_postings}, so ValidRTF over phrases comes for
    free (see {!Xks_core.Phrase}). *)

type t

val build : Xks_xml.Tree.t -> t
(** Index every node.  Stop words are dropped {e without} closing the
    position gap (matching the tokenizer), so a phrase cannot span a
    dropped stop word. *)

val doc : t -> Xks_xml.Tree.t

val positions : t -> string -> (int * int array) list
(** [(node id, sorted offsets)] pairs for a (normalised) word, in
    document order.  Empty for absent words. *)

val posting : t -> string -> int array
(** Plain posting list (ids only) — agrees with {!Inverted.posting}. *)

val phrase_posting : t -> string list -> int array
(** Sorted ids of the nodes containing the given words at consecutive
    offsets, in order.  A single-word phrase degrades to {!posting};
    the empty phrase is invalid.
    @raise Invalid_argument on the empty list. *)
