(** Keyword lists as bitsets ("kList" / key numbers, paper section 4.1).

    For a query [Q = {w1 .. wk}] the tree keyword set of a node is stored
    as a bit vector with one bit per keyword; the paper's "key number" is
    that vector read as a binary integer with [w1] as the most significant
    bit.  A strict superset of keywords therefore always has a strictly
    larger key number, which is what the pruning step exploits when it
    scans only the larger elements of a sorted [chkList]. *)

type t = int
(** A key number.  Supports queries of up to [Sys.int_size - 1] keywords
    (far beyond the paper's 6). *)

val empty : t

val max_keywords : int

val singleton : k:int -> int -> t
(** [singleton ~k i] is the key number with only keyword [wi] (0-based
    [i]) set, for a query of [k] keywords: bit [2^(k-1-i)]. *)

val union : t -> t -> t
val inter : t -> t -> t
val mem : k:int -> int -> t -> bool
(** [mem ~k i v] is [true] iff keyword [wi] is in [v]. *)

val subset : t -> t -> bool
(** [subset a b] is [true] iff [a]'s keywords are all in [b] (not
    necessarily strictly). *)

val strict_subset : t -> t -> bool

val full : k:int -> t
(** The key number containing all [k] keywords. *)

val is_full : k:int -> t -> bool

val covered_by_any : t -> int array -> bool
(** [covered_by_any v chklist] is [true] iff some element of the sorted,
    deduplicated [chklist] is a strict superset of [v].  Only elements
    greater than [v] are inspected, as in the paper's pruning step. *)

val cardinal : t -> int

val to_indices : k:int -> t -> int list
(** The 0-based keyword indices present, ascending. *)

val pp : k:int -> Format.formatter -> t -> unit
(** Render as the paper's boxed bit list, e.g. ["01111"]. *)
