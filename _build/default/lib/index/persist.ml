type table = (string * int * int array) list

let magic = "XKSIDX1\n"

(* Unsigned LEB128. *)
let write_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Persist: negative varint";
  go n

type reader = { data : string; mutable pos : int }

let read_byte r =
  if r.pos >= String.length r.data then failwith "Persist: truncated index";
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec go shift acc =
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let n = read_varint r in
  if r.pos + n > String.length r.data then failwith "Persist: truncated index";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let dump = Inverted.to_rows
let of_table = Inverted.of_rows

let encode rows =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  write_varint buf (List.length rows);
  List.iter
    (fun (w, occurrences, posting) ->
      write_string buf w;
      write_varint buf occurrences;
      write_varint buf (Array.length posting);
      (* Sorted ids: store the first id, then the gaps. *)
      ignore
        (Array.fold_left
           (fun prev id ->
             write_varint buf (id - prev);
             id)
           0 posting))
    rows;
  Buffer.contents buf

let decode data =
  let r = { data; pos = 0 } in
  if
    String.length data < String.length magic
    || String.sub data 0 (String.length magic) <> magic
  then failwith "Persist: not an xks index file";
  r.pos <- String.length magic;
  let count = read_varint r in
  List.init count (fun _ ->
      let w = read_string r in
      let occurrences = read_varint r in
      let len = read_varint r in
      let posting = Array.make len 0 in
      let prev = ref 0 in
      for i = 0 to len - 1 do
        prev := !prev + read_varint r;
        posting.(i) <- !prev
      done;
      (w, occurrences, posting))

let save path idx =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode (dump idx)))

let load path doc =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_table doc (decode data)
