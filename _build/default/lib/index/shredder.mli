(** Relational shredding of XML documents.

    The paper's experimental platform stores shredded XML in PostgreSQL as
    three tables:

    - [label (label, id)] — distinct element names and their ids;
    - [element (label, dewey, level, label-number-sequence,
      content-feature)] — one row per node, where the label number
      sequence lists the label ids on the root-to-node path and the
      content feature is the node's cID;
    - [value (label, dewey, attribute, keyword)] — one row per
      (node, keyword) pair, with the attribute name when the keyword comes
      from an attribute value ([""] for label/text words).

    We reproduce the same tables in memory; {!Inverted} is the index that
    answers the keyword lookups the paper issues over the [value] table. *)

type label_row = { label_name : string; label_id : int }

type element_row = {
  e_label : string;
  e_dewey : Xks_xml.Dewey.t;
  e_level : int;  (** depth; the root is level 0 *)
  e_label_path : int list;
      (** label ids on the path from the root down to this node,
          root first — the paper's "label number sequence" *)
  e_content_feature : Cid.t;  (** cID of the node's own content *)
}

type value_row = {
  v_label : string;
  v_dewey : Xks_xml.Dewey.t;
  v_attribute : string;  (** attribute name, [""] for label/text words *)
  v_keyword : string;
}

type tables = {
  labels : label_row list;  (** in id order *)
  elements : element_row array;  (** in document order *)
  values : value_row list;  (** in document order *)
}

val shred : ?cid_mode:Cid.mode -> Xks_xml.Tree.t -> tables

val find_values : tables -> string -> value_row list
(** All [value] rows whose keyword equals the given (normalised) word —
    the SQL lookup of the paper's Section 5.2. *)

val row_count : tables -> int * int * int
(** [(labels, elements, values)] cardinalities. *)
