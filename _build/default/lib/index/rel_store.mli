(** The paper's relational platform (Section 5.2) on the {!Xks_relational}
    engine.

    Loads the shredded tables into three relational tables —

    - [label (label, id)], indexed on [label];
    - [element (label, dewey, id, level, label_path, content_feature)],
      indexed on [dewey];
    - [value (label, dewey, id, attribute, keyword)], indexed on
      [keyword] —

    and issues the SQL the paper describes: keyword lookups over the
    [value] table returning Dewey-ordered keyword-node lists, plus the
    label-number-sequence fetch from [element].  The extra integer [id]
    column (the preorder rank) gives the correct document order under
    sorting, which the textual [dewey] column alone would not
    (["0.10" < "0.2"] lexicographically).

    [postings_via_sql] is an alternative implementation of Algorithm 1's
    [getKeywordNodes] stage; the tests check it agrees with the inverted
    index. *)

type t

val of_tables : Shredder.tables -> t
val of_doc : ?cid_mode:Cid.mode -> Xks_xml.Tree.t -> t

val label_table : t -> Xks_relational.Table.t
val element_table : t -> Xks_relational.Table.t
val value_table : t -> Xks_relational.Table.t

val keyword_node_ids : t -> string -> int array
(** [SELECT DISTINCT id FROM value WHERE keyword = w ORDER BY id] —
    sorted preorder ranks of the keyword nodes of a (normalised) word. *)

val postings_via_sql : t -> string list -> int array array
(** One posting list per keyword — drop-in for
    {!Inverted.postings}. *)

val label_path : t -> Xks_xml.Dewey.t -> int list
(** Label-number sequence of the node at a Dewey code, from the
    [element] table.
    @raise Not_found if no element row has that Dewey code. *)

val label_id : t -> string -> int option
(** Id of a label from the [label] table. *)
