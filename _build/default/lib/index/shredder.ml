module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey
module Tokenizer = Xks_xml.Tokenizer
module Label = Xks_xml.Label

type label_row = { label_name : string; label_id : int }

type element_row = {
  e_label : string;
  e_dewey : Dewey.t;
  e_level : int;
  e_label_path : int list;
  e_content_feature : Cid.t;
}

type value_row = {
  v_label : string;
  v_dewey : Dewey.t;
  v_attribute : string;
  v_keyword : string;
}

type tables = {
  labels : label_row list;
  elements : element_row array;
  values : value_row list;
}

let shred ?(cid_mode = Cid.Approx) doc =
  let ltable = Tree.labels doc in
  let labels =
    List.init (Label.count ltable) (fun id ->
        { label_name = Label.name ltable id; label_id = id })
  in
  let values = ref [] in
  let elements =
    Array.make (Tree.size doc)
      {
        e_label = "";
        e_dewey = Dewey.root;
        e_level = 0;
        e_label_path = [];
        e_content_feature = Cid.empty;
      }
  in
  let label_path (n : Tree.node) =
    let rec up (n : Tree.node) acc =
      let acc = n.label :: acc in
      match Tree.parent_node doc n with None -> acc | Some p -> up p acc
    in
    up n []
  in
  let shred_node (n : Tree.node) =
    let name = Tree.label_name doc n in
    let add_value attribute w =
      values :=
        { v_label = name; v_dewey = n.dewey; v_attribute = attribute; v_keyword = w }
        :: !values
    in
    let seen = Hashtbl.create 8 in
    let add_once attribute w =
      if not (Hashtbl.mem seen w) then begin
        Hashtbl.add seen w ();
        add_value attribute w
      end
    in
    Tokenizer.iter_words (add_once "") name;
    Tokenizer.iter_words (add_once "") n.text;
    List.iter
      (fun (k, v) ->
        Tokenizer.iter_words (add_once "") k;
        Tokenizer.iter_words (add_once k) v)
      n.attrs;
    elements.(n.id) <-
      {
        e_label = name;
        e_dewey = n.dewey;
        e_level = Dewey.depth n.dewey;
        e_label_path = label_path n;
        e_content_feature = Cid.of_words cid_mode (Tree.content_words doc n);
      }
  in
  Tree.iter shred_node doc;
  { labels; elements; values = List.rev !values }

let find_values tables w =
  let w = Tokenizer.normalize w in
  List.filter (fun r -> String.equal r.v_keyword w) tables.values

let row_count t =
  (List.length t.labels, Array.length t.elements, List.length t.values)
