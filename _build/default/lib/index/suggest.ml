module Tokenizer = Xks_xml.Tokenizer

let distance ?cutoff a b =
  let la = String.length a and lb = String.length b in
  match cutoff with
  | Some c when abs (la - lb) > c -> c + 1
  | _ ->
      (* One row of the dynamic program at a time. *)
      let prev = Array.init (lb + 1) Fun.id in
      let curr = Array.make (lb + 1) 0 in
      for i = 1 to la do
        curr.(0) <- i;
        for j = 1 to lb do
          let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
          curr.(j) <-
            min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
        done;
        Array.blit curr 0 prev 0 (lb + 1)
      done;
      let d = prev.(lb) in
      (match cutoff with Some c when d > c -> c + 1 | _ -> d)

let suggest ?(max_distance = 2) ?(limit = 5) idx w =
  let w = Tokenizer.normalize w in
  let candidates =
    List.filter_map
      (fun v ->
        if String.equal v w then None
        else
          let d = distance ~cutoff:max_distance w v in
          if d <= max_distance then
            Some (v, d, Inverted.occurrence_count idx v)
          else None)
      (Inverted.vocabulary idx)
  in
  let sorted =
    List.sort
      (fun (va, da, fa) (vb, db, fb) ->
        let c = Int.compare da db in
        if c <> 0 then c
        else
          let c = Int.compare fb fa in
          if c <> 0 then c else String.compare va vb)
      candidates
  in
  List.filteri (fun i _ -> i < limit) sorted
  |> List.map (fun (v, d, _) -> (v, d))

let correct_query ?max_distance idx ws =
  List.map
    (fun w ->
      let norm = Tokenizer.normalize w in
      if Inverted.node_count idx norm > 0 then (w, None)
      else
        match suggest ?max_distance ~limit:1 idx norm with
        | (v, _) :: _ -> (w, Some v)
        | [] -> (w, None))
    ws
