(** "Did you mean" suggestions for query keywords.

    Keyword search dies silently when one keyword is misspelled — every
    LCA-based semantics returns the empty result.  This module proposes
    close vocabulary words (bounded Levenshtein distance, ranked by
    distance then corpus frequency) so front ends can recover; the CLI
    prints the suggestions when a query has no results. *)

val distance : ?cutoff:int -> string -> string -> int
(** Levenshtein edit distance (unit costs).  With [cutoff], the scan
    stops early and returns [cutoff + 1] when the distance provably
    exceeds it. *)

val suggest :
  ?max_distance:int -> ?limit:int -> Inverted.t -> string ->
  (string * int) list
(** [suggest idx w] — up to [limit] (default 5) vocabulary words within
    [max_distance] (default 2) of the (normalised) [w], closest first,
    ties broken by descending corpus frequency.  The word itself is
    never suggested. *)

val correct_query :
  ?max_distance:int -> Inverted.t -> string list ->
  (string * string option) list
(** For every query keyword: [None] when it occurs in the corpus, or the
    best suggestion (if any) when it does not. *)
