lib/index/positional.ml: Array Hashtbl List Xks_util Xks_xml
