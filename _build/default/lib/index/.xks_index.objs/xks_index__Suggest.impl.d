lib/index/suggest.ml: Array Fun Int Inverted List String Xks_xml
