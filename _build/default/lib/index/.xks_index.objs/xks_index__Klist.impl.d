lib/index/klist.ml: Array Format Sys Xks_util
