lib/index/klist.mli: Format
