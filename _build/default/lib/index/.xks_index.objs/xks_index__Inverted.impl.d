lib/index/inverted.ml: Array Hashtbl Int List String Xks_util Xks_xml
