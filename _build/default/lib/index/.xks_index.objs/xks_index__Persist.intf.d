lib/index/persist.mli: Inverted Xks_xml
