lib/index/shredder.mli: Cid Xks_xml
