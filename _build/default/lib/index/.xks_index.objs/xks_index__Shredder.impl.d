lib/index/shredder.ml: Array Cid Hashtbl List String Xks_xml
