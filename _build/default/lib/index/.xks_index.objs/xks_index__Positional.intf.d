lib/index/positional.mli: Xks_xml
