lib/index/inverted.mli: Xks_xml
