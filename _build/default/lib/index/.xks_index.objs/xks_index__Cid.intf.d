lib/index/cid.mli: Format
