lib/index/stream_index.mli:
