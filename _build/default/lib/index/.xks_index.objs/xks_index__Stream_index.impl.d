lib/index/stream_index.ml: Array Buffer Fun Hashtbl Int List Persist String Xks_util Xks_xml
