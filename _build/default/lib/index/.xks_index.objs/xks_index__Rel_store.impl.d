lib/index/rel_store.ml: Array Cid Format Hashtbl List Shredder String Xks_relational Xks_xml
