lib/index/cid.ml: Format List String
