lib/index/rel_store.mli: Cid Shredder Xks_relational Xks_xml
