lib/index/persist.ml: Array Buffer Char Fun Inverted List String
