lib/index/suggest.mli: Inverted
