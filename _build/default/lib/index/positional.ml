module Tree = Xks_xml.Tree
module Tokenizer = Xks_xml.Tokenizer
module Stopwords = Xks_xml.Stopwords
module Int_vec = Xks_util.Int_vec

type node_positions = { node_id : int; offsets : Int_vec.t }

type t = {
  doc : Tree.t;
  entries : (string, node_positions list ref) Hashtbl.t;
      (* per word, most recent node first *)
}

let build doc =
  let entries = Hashtbl.create 4096 in
  let index_node (n : Tree.node) =
    let counter = ref 0 in
    let add w =
      let pos = !counter in
      incr counter;
      (* Positions count every token; stop words occupy an offset but
         are not indexed. *)
      if not (Stopwords.is_stopword w) then begin
        let bucket =
          match Hashtbl.find_opt entries w with
          | Some b -> b
          | None ->
              let b = ref [] in
              Hashtbl.add entries w b;
              b
        in
        match !bucket with
        | { node_id; offsets } :: _ when node_id = n.id ->
            Int_vec.push offsets pos
        | _ ->
            let offsets = Int_vec.create () in
            Int_vec.push offsets pos;
            bucket := { node_id = n.id; offsets } :: !bucket
      end
    in
    let feed s = Tokenizer.iter_words ~keep_stopwords:true add s in
    feed (Tree.label_name doc n);
    feed n.text;
    List.iter
      (fun (k, v) ->
        feed k;
        feed v)
      n.attrs
  in
  Tree.iter index_node doc;
  { doc; entries }

let doc t = t.doc

let positions t w =
  match Hashtbl.find_opt t.entries (Tokenizer.normalize w) with
  | Some bucket ->
      List.rev_map
        (fun { node_id; offsets } -> (node_id, Int_vec.to_array offsets))
        !bucket
  | None -> []

let posting t w = Array.of_list (List.map fst (positions t w))

let phrase_posting t words =
  match List.map Tokenizer.normalize words with
  | [] -> invalid_arg "Positional.phrase_posting: empty phrase"
  | first :: rest ->
      let first_positions = positions t first in
      let rest_positions =
        List.map (fun w -> positions t w) rest
      in
      let matches_at node_id start =
        List.for_all2
          (fun offset pos_list ->
            match List.assoc_opt node_id pos_list with
            | Some offsets -> Xks_util.Bsearch.mem offsets (start + offset)
            | None -> false)
          (List.mapi (fun i _ -> i + 1) rest)
          rest_positions
      in
      first_positions
      |> List.filter_map (fun (node_id, offsets) ->
             if Array.exists (fun p -> matches_at node_id p) offsets then
               Some node_id
             else None)
      |> Array.of_list
