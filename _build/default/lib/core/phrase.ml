module Tokenizer = Xks_xml.Tokenizer

type term = Word of string | Phrase of string list

let parse_term s =
  let stripped =
    let n = String.length s in
    if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
      Some (String.sub s 1 (n - 2))
    else None
  in
  match stripped with
  | Some body -> (
      match Tokenizer.words ~keep_stopwords:true body with
      | [] -> invalid_arg ("Phrase.parse_term: empty phrase " ^ s)
      | [ w ] -> Word w
      | ws -> Phrase ws)
  | None -> (
      match Tokenizer.normalize s with
      | "" -> invalid_arg "Phrase.parse_term: empty term"
      | w -> Word w)

let term_to_string = function
  | Word w -> w
  | Phrase ws -> "\"" ^ String.concat " " ws ^ "\""

let posting pidx = function
  | Word w -> Xks_index.Positional.posting pidx w
  | Phrase ws -> Xks_index.Positional.phrase_posting pidx ws

let query pidx terms =
  let parsed = List.map parse_term terms in
  let keywords = List.map term_to_string parsed in
  let postings = Array.of_list (List.map (posting pidx) parsed) in
  Query.of_postings (Xks_index.Positional.doc pidx) ~keywords postings

let search ?algorithm engine pidx terms =
  let q = query pidx terms in
  let result =
    match algorithm with
    | None | Some Engine.Validrtf -> Validrtf.run_query q
    | Some Engine.Maxmatch -> Maxmatch.run_revised_query q
    | Some Engine.Maxmatch_original -> Maxmatch.run_original_query q
  in
  Engine.hits_of_result engine result
