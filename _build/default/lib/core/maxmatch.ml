let run_revised_query q =
  Pipeline.run_query ~lca:Elca_indexed_stack ~pruning:Contributor q

let run_original_query q =
  Pipeline.run_query ~lca:Slca_only ~pruning:Contributor q

let run_revised idx ws = run_revised_query (Query.make idx ws)
let run_original idx ws = run_original_query (Query.make idx ws)
