(** Why each node was kept or discarded.

    A introspectable re-run of the two pruning mechanisms that records,
    for every node of a raw RTF, the Definition-4 (or contributor) rule
    that decided its fate and the sibling that triggered a discard.  The
    engine's [--explain] CLI mode and the tests that pin each rule to
    concrete nodes are built on this; the decisions are guaranteed (and
    property-tested) to agree with {!Prune}. *)

type reason =
  | Kept_root  (** the RTF root is never pruned *)
  | Kept_unique_label  (** rule 1: only child of its label *)
  | Kept_maximal  (** rule 2(a): keyword set covered by no same-label sibling *)
  | Kept_distinct_content
      (** rule 2(b): equal keyword set but new content feature *)
  | Discarded_covered of int
      (** rule 2(a) fails: the sibling with this id strictly covers it *)
  | Discarded_duplicate of int
      (** rule 2(b) fails: same keyword set and content as this sibling *)
  | Discarded_with_ancestor of int
      (** inside the discarded subtree rooted at this id *)

type decision = { node : int; reason : reason }

val valid_contributor : Node_info.t -> decision list
(** One decision per raw-RTF node, in document order. *)

val contributor : Node_info.t -> decision list
(** MaxMatch's mechanism: [Kept_unique_label] and content-based reasons
    never occur; covering siblings may have any label. *)

val kept : decision -> bool

val reason_to_string : Xks_xml.Tree.t -> reason -> string
(** Human-readable rendering, naming triggering siblings by Dewey code. *)

val render : Xks_xml.Tree.t -> decision list -> string
(** One ["dewey (label): reason"] line per decision. *)
