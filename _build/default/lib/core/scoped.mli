(** Path-scoped keyword search.

    Combines the {!Xks_xml.Path} subset with the keyword pipeline — the
    "keyword proximity search in a structural query language" integration
    the paper's related work surveys: the path selects scope nodes, the
    keyword nodes are restricted to their subtrees, and ValidRTF (or
    MaxMatch) runs unchanged on the filtered posting lists, so the
    results are meaningful RTFs that live inside the selected scopes.

    {[
      Scoped.search engine ~path:"//closed_auctions" [ "egypt"; "leon" ]
    ]} *)

val restrict_postings :
  Xks_xml.Tree.t -> scope:int list -> int array array -> int array array
(** Keep only posting entries lying in the subtree of some scope node
    (scope ids must be sorted, document order). *)

val query :
  Xks_index.Inverted.t -> path:string -> string list -> Query.t
(** Prepared query whose posting lists are restricted to the subtrees
    selected by [path].
    @raise Invalid_argument on a malformed path or empty query. *)

val search :
  ?algorithm:Engine.algorithm -> Engine.t -> path:string -> string list ->
  Engine.hit list
(** End-to-end scoped search, ranked. *)
