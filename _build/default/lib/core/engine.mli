(** High-level search engine facade — the public entry point.

    Wraps document loading, indexing, algorithm selection and result
    rendering:

    {[
      let engine = Engine.of_file "catalog.xml" in
      let hits = Engine.search engine [ "xml"; "keyword"; "search" ] in
      List.iter (fun h -> print_string (Engine.render engine h)) hits
    ]} *)

type t

type algorithm =
  | Validrtf  (** the paper's algorithm (default) *)
  | Maxmatch  (** revised MaxMatch — same RTFs, contributor pruning *)
  | Maxmatch_original  (** VLDB'08 MaxMatch — SLCA fragments only *)

type hit = {
  fragment : Fragment.t;
  rtf : Rtf.t;
  score : float;
  is_slca : bool;  (** whether the fragment root is an SLCA node *)
}

val of_doc : Xks_xml.Tree.t -> t
(** Index a document already in memory. *)

val of_file : string -> t
(** Parse and index an XML file.
    @raise Xks_xml.Parser.Error on malformed XML. *)

val of_string : string -> t
(** Parse and index an XML document given as a string. *)

val doc : t -> Xks_xml.Tree.t
val index : t -> Xks_index.Inverted.t

val search :
  ?algorithm:algorithm -> ?cid_mode:Xks_index.Cid.mode -> ?rank:bool ->
  t -> string list -> hit list
(** [search e ws] runs the query.  Hits are ranked by {!Ranking} when
    [rank] is [true] (default); otherwise in document order.  The empty
    hit list means some keyword does not occur.
    @raise Invalid_argument on an empty query. *)

val run :
  ?algorithm:algorithm -> ?cid_mode:Xks_index.Cid.mode -> t -> string list ->
  Pipeline.result
(** The raw pipeline result, for callers that need stage outputs. *)

val hits_of_result : ?rank:bool -> t -> Pipeline.result -> hit list
(** Turn a pipeline result into scored hits (what {!search} does after
    running the pipeline); exposed for callers that build queries
    themselves, e.g. {!Labeled}. *)

val render : ?xml:bool -> t -> hit -> string
(** Pretty tree view of a hit (or XML when [xml] is [true]). *)

val stats : t -> string
(** One-line document/index statistics. *)
