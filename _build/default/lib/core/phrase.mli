(** Phrase-aware keyword queries.

    Query terms in double quotes are phrases matched positionally
    (["\"xml keyword search\""] matches only nodes where the three words
    are consecutive); bare terms behave as usual.  Phrase posting lists
    come from {!Xks_index.Positional} and feed the unchanged ValidRTF /
    MaxMatch pipeline. *)

type term =
  | Word of string
  | Phrase of string list  (** two or more normalised words *)

val parse_term : string -> term
(** Double quotes delimit phrases: ["\"xml search\""] or [xml].
    Single-word phrases collapse to {!Word}.
    @raise Invalid_argument when nothing remains after normalisation. *)

val term_to_string : term -> string

val query :
  Xks_index.Positional.t -> string list -> Query.t
(** Parse each string as a term and build the prepared query.
    @raise Invalid_argument as {!parse_term} / {!Query.of_postings}. *)

val search :
  ?algorithm:Engine.algorithm -> Engine.t -> Xks_index.Positional.t ->
  string list -> Engine.hit list
(** End-to-end phrase search (the positional index must come from the
    engine's document). *)
