(** Checkers for the four axiomatic XKS properties (Liu & Chen VLDB'08,
    restated in the paper's introduction), which Section 4.3(2) claims
    ValidRTF satisfies:

    + {b data monotonicity} — inserting a node never decreases the number
      of query results;
    + {b query monotonicity} — adding a keyword never increases it;
    + {b data consistency} — after an insertion, every result subtree that
      is new or gained nodes contains an inserted node;
    + {b query consistency} — after adding a keyword, every result subtree
      that is new or gained nodes contains a match of the new keyword.

    Consistency is checked at the subtree level (the fragment must contain
    the new node / new-keyword match somewhere); the stronger per-node
    reading fails even on simple single-keyword documents — see the
    discussion in EXPERIMENTS.md.

    Results are compared structurally across runs, keyed by Dewey codes so
    they survive re-indexing.  Data edits must {e append} subtrees (last
    child position): appending never renumbers existing nodes, which keeps
    the before/after comparison meaningful.  The checkers run any
    algorithm with the [run] callback, so ValidRTF and both MaxMatch
    variants can be audited with the same machinery. *)

type run = Xks_index.Inverted.t -> string list -> Pipeline.result
(** An XKS algorithm under audit, e.g. [Validrtf.run]. *)

type report = {
  ok : bool;
  results_before : int;
  results_after : int;
  offending : string list;
      (** human-readable descriptions of violating fragments, empty when
          [ok] *)
}

val append_subtree :
  Xks_xml.Tree.t -> parent_id:int -> Xks_xml.Tree.builder -> Xks_xml.Tree.t
(** Append a builder as the last child of [parent_id] (the only edit shape
    the checkers accept). *)

val data_monotonicity :
  run:run -> before:Xks_xml.Tree.t -> after:Xks_xml.Tree.t ->
  query:string list -> report

val query_monotonicity :
  run:run -> doc:Xks_xml.Tree.t -> query:string list -> extra:string ->
  report

val data_consistency :
  run:run -> before:Xks_xml.Tree.t -> after:Xks_xml.Tree.t ->
  query:string list -> report
(** [before] must embed into [after] by Dewey codes (append-only edit). *)

val query_consistency :
  run:run -> doc:Xks_xml.Tree.t -> query:string list -> extra:string ->
  report
