module Tree = Xks_xml.Tree

type t = { doc : Tree.t; index : Xks_index.Inverted.t }
type algorithm = Validrtf | Maxmatch | Maxmatch_original

type hit = {
  fragment : Fragment.t;
  rtf : Rtf.t;
  score : float;
  is_slca : bool;
}

let of_doc doc = { doc; index = Xks_index.Inverted.build doc }
let of_file path = of_doc (Xks_xml.Parser.parse_file path)
let of_string s = of_doc (Xks_xml.Parser.parse_string s)
let doc e = e.doc
let index e = e.index

let run ?(algorithm = Validrtf) ?cid_mode e ws =
  let q = Query.make e.index ws in
  match algorithm with
  | Validrtf -> Validrtf.run_query ?cid_mode q
  | Maxmatch -> Maxmatch.run_revised_query q
  | Maxmatch_original -> Maxmatch.run_original_query q

let hits_of_result ?(rank = true) (_ : t) result =
  let slcas =
    lazy
      (let q = result.Pipeline.query in
       if Query.has_results q then
         Xks_lca.Slca.indexed_lookup_eager q.doc q.postings
       else [])
  in
  let hit (scored : Ranking.scored) =
    {
      fragment = scored.fragment;
      rtf = scored.rtf;
      score = scored.score;
      is_slca = List.mem scored.rtf.lca (Lazy.force slcas);
    }
  in
  let scored = Ranking.rank result in
  let scored =
    if rank then scored
    else
      List.sort (fun (a : Ranking.scored) b -> Int.compare a.rtf.lca b.rtf.lca) scored
  in
  List.map hit scored

let search ?algorithm ?cid_mode ?rank e ws =
  hits_of_result ?rank e (run ?algorithm ?cid_mode e ws)

let render ?(xml = false) e hit =
  if xml then Fragment.to_xml e.doc hit.fragment
  else Fragment.render e.doc hit.fragment

let stats e =
  Printf.sprintf "%d nodes, %d distinct labels, %d indexed words"
    (Tree.size e.doc)
    (Xks_xml.Label.count (Tree.labels e.doc))
    (Xks_index.Inverted.vocabulary_size e.index)
