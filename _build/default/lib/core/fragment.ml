module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey

type t = { root : int; members : int array }

let make ~root ~members =
  let members = List.sort_uniq Int.compare (root :: members) in
  { root; members = Array.of_list members }

let size t = Array.length t.members
let mem t id = Xks_util.Bsearch.mem t.members id
let equal a b = a.root = b.root && a.members = b.members
let members_list t = Array.to_list t.members

let diff_count a b =
  Array.fold_left (fun acc id -> if mem b id then acc else acc + 1) 0 a.members

(* Children of [id] within the fragment, in document order: members
   strictly inside [id]'s range whose parent is [id]. *)
let fragment_children doc t id =
  let node = Tree.node doc id in
  let lo = Xks_util.Bsearch.lower_bound t.members (id + 1) in
  let rec collect i acc =
    if i >= Array.length t.members then acc
    else
      let m = t.members.(i) in
      if m > node.subtree_end then acc
      else
        collect (i + 1)
          (if (Tree.node doc m).parent = id then m :: acc else acc)
  in
  List.rev (collect lo [])

let render doc t =
  let buf = Buffer.create 256 in
  let rec go depth id =
    let node = Tree.node doc id in
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf (Dewey.to_string node.dewey);
    Buffer.add_string buf " (";
    Buffer.add_string buf (Tree.label_name doc node);
    Buffer.add_char buf ')';
    if node.text <> "" then begin
      Buffer.add_string buf " '";
      Buffer.add_string buf node.text;
      Buffer.add_char buf '\''
    end;
    Buffer.add_char buf '\n';
    List.iter (go (depth + 1)) (fragment_children doc t id)
  in
  go 0 t.root;
  Buffer.contents buf

let to_xml doc t =
  let buf = Buffer.create 256 in
  let rec go depth id =
    let node = Tree.node doc id in
    let name = Tree.label_name doc node in
    let pad = String.make (2 * depth) ' ' in
    Buffer.add_string buf pad;
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (Xks_xml.Writer.escape_attr v);
        Buffer.add_char buf '"')
      node.attrs;
    let children = fragment_children doc t id in
    if node.text = "" && children = [] then Buffer.add_string buf "/>\n"
    else begin
      Buffer.add_string buf ">";
      if node.text <> "" then
        Buffer.add_string buf (Xks_xml.Writer.escape_text node.text);
      if children <> [] then begin
        Buffer.add_char buf '\n';
        List.iter (go (depth + 1)) children;
        Buffer.add_string buf pad
      end;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_string buf ">\n"
    end
  in
  go 0 t.root;
  Buffer.contents buf

let pp doc fmt t = Format.pp_print_string fmt (render doc t)
