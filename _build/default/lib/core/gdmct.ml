module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey
module Bsearch = Xks_util.Bsearch

type result = { root : int; fragment : Fragment.t; edges : int }

(* The shallowest witness of one keyword inside [a]'s subtree (minimal
   path length from [a]). *)
let nearest_witness doc posting (a : Tree.node) =
  let lo = Bsearch.lower_bound posting a.id in
  let hi = Bsearch.upper_bound posting a.subtree_end in
  let best = ref None in
  for i = lo to hi - 1 do
    let w = Tree.node doc posting.(i) in
    let d = Dewey.depth w.dewey in
    match !best with
    | Some (_, bd) when bd <= d -> ()
    | _ -> best := Some (w, d)
  done;
  Option.map fst !best

let search ?(max_edges = 10) (q : Query.t) =
  let doc = q.doc in
  if not (Query.has_results q) then []
  else begin
    let candidates = Xks_lca.Tree_scan.full_containers doc q.postings in
    List.filter_map
      (fun a_id ->
        let a = Tree.node doc a_id in
        let witnesses =
          Array.to_list q.postings
          |> List.map (fun posting -> nearest_witness doc posting a)
        in
        if List.exists Option.is_none witnesses then None
        else begin
          let witnesses = List.filter_map Fun.id witnesses in
          let lca =
            Dewey.lca_list (List.map (fun (w : Tree.node) -> w.dewey) witnesses)
          in
          (* Only "tightest" groups: the chosen witnesses' LCA is the
             candidate itself, so each connecting tree is reported at
             its own root. *)
          if not (Dewey.equal lca a.dewey) then None
          else begin
            let members = ref [] in
            List.iter
              (fun (w : Tree.node) ->
                let rec up id =
                  if id <> a_id then begin
                    members := id :: !members;
                    up (Tree.node doc id).parent
                  end
                in
                up w.id)
              witnesses;
            let fragment = Fragment.make ~root:a_id ~members:!members in
            let edges = Fragment.size fragment - 1 in
            if edges <= max_edges then Some { root = a_id; fragment; edges }
            else None
          end
        end)
      candidates
  end
