module Tree = Xks_xml.Tree
module Tokenizer = Xks_xml.Tokenizer

let default_highlight w = "[" ^ w ^ "]"

(* The first fragment member whose own content contains the keyword. *)
let find_occurrence (q : Query.t) frag keyword =
  List.find_opt
    (fun id -> Tree.node_matches q.doc (Tree.node q.doc id) keyword)
    (Fragment.members_list frag)

(* A window of raw words around the first occurrence of [keyword] in
   [text]; words are kept verbatim (stop words included) so the snippet
   stays readable. *)
let window_of_text ~window ~highlight text keyword =
  let raw = String.split_on_char ' ' text |> List.filter (fun s -> s <> "") in
  let matches w =
    List.exists (String.equal keyword) (Tokenizer.words ~keep_stopwords:true w)
  in
  let rec locate i = function
    | [] -> None
    | w :: rest -> if matches w then Some i else locate (i + 1) rest
  in
  match locate 0 raw with
  | None -> None
  | Some pos ->
      let n = List.length raw in
      let lo = max 0 (pos - window) and hi = min (n - 1) (pos + window) in
      let words =
        List.filteri (fun i _ -> i >= lo && i <= hi) raw
        |> List.mapi (fun i w ->
               if i + lo = pos then highlight w else w)
      in
      let prefix = if lo > 0 then "... " else "" in
      let suffix = if hi < n - 1 then " ..." else "" in
      Some (prefix ^ String.concat " " words ^ suffix)

let fragment_piece ~window ~highlight (q : Query.t) frag keyword =
  match find_occurrence q frag keyword with
  | None -> None
  | Some id -> (
      let node = Tree.node q.doc id in
      match window_of_text ~window ~highlight node.text keyword with
      | Some s -> Some s
      | None ->
          (* Matched through the label or an attribute: show the node. *)
          let label = Tree.label_name q.doc node in
          let shown =
            if node.text = "" then highlight label
            else Printf.sprintf "%s: %s" (highlight label) node.text
          in
          Some shown)

let of_fragment ?(window = 3) ?(highlight = default_highlight) (q : Query.t)
    frag =
  let pieces =
    Array.to_list q.keywords
    |> List.filter_map (fragment_piece ~window ~highlight q frag)
  in
  (* Identical windows (several keywords hitting the same phrase) are
     shown once. *)
  let rec dedup seen = function
    | [] -> []
    | p :: rest ->
        if List.mem p seen then dedup seen rest
        else p :: dedup (p :: seen) rest
  in
  String.concat " ... " (dedup [] pieces)

let for_hits ?window ?highlight q frags =
  List.map (of_fragment ?window ?highlight q) frags
