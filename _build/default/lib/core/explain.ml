module Klist = Xks_index.Klist
module Cid = Xks_index.Cid
module Dewey = Xks_xml.Dewey
module Tree = Xks_xml.Tree

type reason =
  | Kept_root
  | Kept_unique_label
  | Kept_maximal
  | Kept_distinct_content
  | Discarded_covered of int
  | Discarded_duplicate of int
  | Discarded_with_ancestor of int

type decision = { node : int; reason : reason }

let kept d =
  match d.reason with
  | Kept_root | Kept_unique_label | Kept_maximal | Kept_distinct_content ->
      true
  | Discarded_covered _ | Discarded_duplicate _ | Discarded_with_ancestor _ ->
      false

(* Decisions within one label group under Definition 4, mirroring
   Prune.valid_children exactly (content features tracked per keyword
   set). *)
let group_decisions (g : Node_info.label_group) =
  if g.counter = 1 then
    List.map
      (fun (ch : Node_info.info) -> (ch, Kept_unique_label))
      g.group_children
  else begin
    (* knum -> (cid, owner id) list for the kept children so far *)
    let used = Hashtbl.create 4 in
    let covering_sibling (ch : Node_info.info) =
      List.find_opt
        (fun (sib : Node_info.info) ->
          Klist.strict_subset ch.klist sib.klist)
        g.group_children
    in
    List.map
      (fun (ch : Node_info.info) ->
        match Hashtbl.find_opt used ch.klist with
        | Some owners -> (
            match
              List.find_opt (fun (cid, _) -> Cid.equal cid ch.cid) !owners
            with
            | Some (_, owner) -> (ch, Discarded_duplicate owner)
            | None ->
                owners := (ch.cid, ch.id) :: !owners;
                (ch, Kept_distinct_content))
        | None ->
            if Klist.covered_by_any ch.klist g.chklist then
              match covering_sibling ch with
              | Some sib -> (ch, Discarded_covered sib.id)
              | None -> assert false (* chklist is built from the group *)
            else begin
              Hashtbl.add used ch.klist (ref [ (ch.cid, ch.id) ]);
              (ch, Kept_maximal)
            end)
      g.group_children
  end

(* Contributor (MaxMatch): label-blind coverage only. *)
let contributor_decisions (info : Node_info.info) =
  let siblings = info.rtf_children in
  List.map
    (fun (ch : Node_info.info) ->
      match
        List.find_opt
          (fun (sib : Node_info.info) ->
            Klist.strict_subset ch.klist sib.klist)
          siblings
      with
      | Some sib -> (ch, Discarded_covered sib.id)
      | None -> (ch, Kept_maximal))
    siblings

let collect child_decisions t =
  let acc = ref [] in
  let rec discard_subtree ancestor (info : Node_info.info) =
    List.iter
      (fun (c : Node_info.info) ->
        acc := { node = c.id; reason = Discarded_with_ancestor ancestor } :: !acc;
        discard_subtree ancestor c)
      info.rtf_children
  in
  let rec go (info : Node_info.info) =
    List.iter
      (fun ((ch : Node_info.info), reason) ->
        acc := { node = ch.id; reason } :: !acc;
        let d = { node = ch.id; reason } in
        if kept d then go ch else discard_subtree ch.id ch)
      (child_decisions info)
  in
  let root = Node_info.root t in
  acc := [ { node = root.id; reason = Kept_root } ];
  go root;
  List.sort (fun a b -> Int.compare a.node b.node) !acc

let valid_contributor t =
  collect
    (fun info -> List.concat_map group_decisions (Node_info.label_groups info))
    t

let contributor t = collect contributor_decisions t

let reason_to_string doc = function
  | Kept_root -> "kept: RTF root"
  | Kept_unique_label -> "kept: unique label among its siblings (rule 1)"
  | Kept_maximal -> "kept: keyword set covered by no sibling (rule 2a)"
  | Kept_distinct_content -> "kept: same keywords but new content (rule 2b)"
  | Discarded_covered sib ->
      Printf.sprintf "discarded: keyword set strictly covered by %s (rule 2a)"
        (Dewey.to_string (Tree.node doc sib).dewey)
  | Discarded_duplicate sib ->
      Printf.sprintf "discarded: duplicates the content of %s (rule 2b)"
        (Dewey.to_string (Tree.node doc sib).dewey)
  | Discarded_with_ancestor a ->
      Printf.sprintf "discarded: inside the pruned subtree of %s"
        (Dewey.to_string (Tree.node doc a).dewey)

let render doc decisions =
  let line d =
    let node = Tree.node doc d.node in
    Printf.sprintf "%s (%s): %s"
      (Dewey.to_string node.dewey)
      (Tree.label_name doc node)
      (reason_to_string doc d.reason)
  in
  String.concat "\n" (List.map line decisions) ^ "\n"
