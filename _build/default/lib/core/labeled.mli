(** Label-constrained query terms (XSearch-style, the paper's related
    work on extending the keyword query with more information).

    A term is either a bare keyword ["xml"] or ["label:keyword"]
    (["title:xml"]), restricting matches to nodes with that element
    label; ["label:"] alone matches every node with the label.  The
    filtered posting lists feed the ordinary pipeline, so ValidRTF /
    MaxMatch semantics and pruning apply unchanged. *)

type term = {
  label : string option;  (** required element label, if any *)
  keyword : string;  (** [""] for label-only terms *)
}

val parse_term : string -> term
(** ["title:xml"] -> label [Some "title"], keyword ["xml"]; ["xml"] ->
    bare keyword; ["title:"] -> label-only.
    @raise Invalid_argument on [""] and [":"], or when either part
    normalises to nothing. *)

val term_to_string : term -> string

val posting : Xks_index.Inverted.t -> term -> int array
(** Sorted ids of the nodes matching the term. *)

val query : Xks_index.Inverted.t -> string list -> Query.t
(** Parse each string as a term and build the prepared query (keyword
    names keep the ["label:keyword"] spelling so the bitsets stay
    distinct).
    @raise Invalid_argument as {!parse_term} / {!Query.of_postings}. *)

val search :
  ?algorithm:Engine.algorithm -> Engine.t -> string list -> Engine.hit list
(** End-to-end labeled search on an engine, ranked. *)
