(** Grouped minimum-connecting-tree results (after Hristidis, Koudas,
    Papakonstantinou & Srivastava, TKDE 2006 — the paper's related work
    [8]).

    An alternative result semantics the paper positions RTFs against:
    instead of all keyword nodes of a partition, a result is the
    {e minimum connecting tree} of one witness per keyword, grouped by
    its root, and results whose tree exceeds a size threshold are
    dropped.

    This implementation makes the standard simplification of picking,
    per keyword, the witness {e closest to the root} (path interactions
    between witnesses are ignored, so the tree is minimal per keyword
    rather than globally — the grouped variant of the original paper
    does the same).  A root qualifies when it is exactly the LCA of its
    chosen witnesses ("tightest", so each group is reported once).

    The A5 ablation compares fragment sizes of MCTs against meaningful
    RTFs on the same queries. *)

type result = {
  root : int;  (** the MCT root (LCA of the chosen witnesses) *)
  fragment : Fragment.t;  (** the connecting tree *)
  edges : int;  (** its size in edges *)
}

val search : ?max_edges:int -> Query.t -> result list
(** All qualifying connecting trees, document order of the root.
    [max_edges] (default 10, the threshold the GDMCT paper also uses as
    its running example) drops oversized trees. *)
