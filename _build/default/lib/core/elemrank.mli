(** ElemRank-style structural importance (after XRank, Guo et al. 2003).

    A PageRank-like stationary score over the document tree: importance
    flows along parent-child edges in both directions (containment and
    reverse-containment), so hub elements — densely connected, centrally
    nested — score above peripheral leaves.  Ranking can mix this
    query-independent prior into the fragment score
    ({!Ranking.score_with_prior}); the paper defers ranking to future
    work, so this is an extension, not a reproduction target. *)

type t
(** Computed scores for one document. *)

val compute : ?damping:float -> ?iterations:int -> Xks_xml.Tree.t -> t
(** Power iteration with [damping] (default 0.85) for at most
    [iterations] rounds (default 50) or until the L1 change drops below
    1e-9.  Scores are normalised to sum to 1. *)

val score : t -> int -> float
(** Score of a node id.
    @raise Invalid_argument when out of range. *)

val top : t -> int -> (int * float) list
(** The [n] best-scoring node ids, descending (ties by id). *)
