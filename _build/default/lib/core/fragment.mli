(** Result fragments.

    A fragment is a connected piece of the document: an LCA root plus a
    subset of its descendants (every member's parent is a member, except
    the root's).  Both raw RTFs and pruned (meaningful) RTFs are values of
    this type; representing a fragment as a sorted id set makes the
    CFR/APR comparisons of Section 5 and golden tests straightforward. *)

type t = private {
  root : int;  (** id of the fragment root (an LCA node) *)
  members : int array;  (** sorted ids of all fragment nodes, [root] included *)
}

val make : root:int -> members:int list -> t
(** Sorts and deduplicates [members]; adds [root] if missing. *)

val size : t -> int
val mem : t -> int -> bool
val equal : t -> t -> bool
(** Same root and same member set. *)

val members_list : t -> int list

val diff_count : t -> t -> int
(** [diff_count a b] is the number of members of [a] not in [b]. *)

val render : Xks_xml.Tree.t -> t -> string
(** Indented textual tree view, one ["dewey (label) 'text'"] line per
    member, mirroring the paper's figures. *)

val to_xml : Xks_xml.Tree.t -> t -> string
(** Serialize the fragment as an XML snippet (members only, original
    attributes and text preserved). *)

val pp : Xks_xml.Tree.t -> Format.formatter -> t -> unit
