(** Query-biased snippets for result fragments.

    A compact textual summary of a fragment, in the spirit of the
    query-biased snippet generation the paper cites as related work
    (Huang, Liu & Chen, SIGMOD 2008): for every query keyword, the
    snippet shows a small window of the text surrounding one occurrence
    inside the fragment, with the keyword highlighted.  Windows keep stop
    words (dropping them reads badly) and are joined with ellipses. *)

val of_fragment :
  ?window:int -> ?highlight:(string -> string) -> Query.t -> Fragment.t ->
  string
(** [of_fragment q frag] builds the snippet.  [window] is the number of
    context words kept on each side of a keyword occurrence (default 3);
    [highlight] wraps each matched keyword (default brackets, ["[xml]"]).
    Keywords matched only by a label or attribute fall back to a
    ["label: text"] rendering of that node.  Returns [""] for fragments
    containing no keyword occurrence (cannot happen for RTFs). *)

val for_hits :
  ?window:int -> ?highlight:(string -> string) -> Query.t ->
  Fragment.t list -> string list
(** Snippets for a result list, one per fragment. *)
