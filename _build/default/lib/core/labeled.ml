module Tree = Xks_xml.Tree
module Tokenizer = Xks_xml.Tokenizer

type term = { label : string option; keyword : string }

let parse_term s =
  let fail () = invalid_arg ("Labeled.parse_term: malformed term " ^ s) in
  match String.index_opt s ':' with
  | None ->
      let keyword = Tokenizer.normalize s in
      if keyword = "" then fail ();
      { label = None; keyword }
  | Some i ->
      let label = Tokenizer.normalize (String.sub s 0 i) in
      let keyword =
        Tokenizer.normalize (String.sub s (i + 1) (String.length s - i - 1))
      in
      if label = "" then fail ();
      { label = Some label; keyword }

let term_to_string t =
  match t.label with
  | None -> t.keyword
  | Some l -> l ^ ":" ^ t.keyword

let posting idx t =
  let doc = Xks_index.Inverted.doc idx in
  match t.label with
  | None -> Xks_index.Inverted.posting idx t.keyword
  | Some label -> (
      match Xks_xml.Label.find (Tree.labels doc) label with
      | None -> [||]
      | Some label_id ->
          let has_label id = (Tree.node doc id).Tree.label = label_id in
          if t.keyword = "" then begin
            (* Label-only term: every node with the label. *)
            let acc = Xks_util.Int_vec.create () in
            Tree.iter
              (fun n -> if n.Tree.label = label_id then Xks_util.Int_vec.push acc n.Tree.id)
              doc;
            Xks_util.Int_vec.to_array acc
          end
          else
            Xks_index.Inverted.posting idx t.keyword
            |> Array.to_list |> List.filter has_label |> Array.of_list)

let query idx terms =
  let parsed = List.map parse_term terms in
  let keywords = List.map term_to_string parsed in
  let postings = Array.of_list (List.map (posting idx) parsed) in
  Query.of_postings (Xks_index.Inverted.doc idx) ~keywords postings

let search ?algorithm engine terms =
  let q = query (Engine.index engine) terms in
  let result =
    match algorithm with
    | None | Some Engine.Validrtf -> Validrtf.run_query q
    | Some Engine.Maxmatch -> Maxmatch.run_revised_query q
    | Some Engine.Maxmatch_original -> Maxmatch.run_original_query q
  in
  Engine.hits_of_result engine result
