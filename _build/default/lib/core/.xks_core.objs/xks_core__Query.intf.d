lib/core/query.mli: Format Xks_index Xks_xml
