lib/core/spec.ml: Array Fun Int List Query Set Xks_lca Xks_util Xks_xml
