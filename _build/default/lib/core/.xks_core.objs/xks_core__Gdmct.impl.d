lib/core/gdmct.ml: Array Fragment Fun List Option Query Xks_lca Xks_util Xks_xml
