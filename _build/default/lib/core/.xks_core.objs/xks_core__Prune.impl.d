lib/core/prune.ml: Array Fragment Hashtbl Int List Node_info Xks_index
