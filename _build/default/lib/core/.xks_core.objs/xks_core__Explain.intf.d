lib/core/explain.mli: Node_info Xks_xml
