lib/core/engine.mli: Fragment Pipeline Rtf Xks_index Xks_xml
