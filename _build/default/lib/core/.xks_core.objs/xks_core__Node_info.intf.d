lib/core/node_info.mli: Query Rtf Xks_index Xks_xml
