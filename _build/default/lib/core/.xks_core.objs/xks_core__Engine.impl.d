lib/core/engine.ml: Fragment Int Lazy List Maxmatch Pipeline Printf Query Ranking Rtf Validrtf Xks_index Xks_lca Xks_xml
