lib/core/scoped.mli: Engine Query Xks_index Xks_xml
