lib/core/elemrank.ml: Array Float Int List Xks_xml
