lib/core/snippet.ml: Array Fragment List Printf Query String Xks_xml
