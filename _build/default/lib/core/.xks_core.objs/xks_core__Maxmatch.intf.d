lib/core/maxmatch.mli: Pipeline Query Xks_index
