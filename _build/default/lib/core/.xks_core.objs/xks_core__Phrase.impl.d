lib/core/phrase.ml: Array Engine List Maxmatch Query String Validrtf Xks_index Xks_xml
