lib/core/prune.mli: Fragment Node_info
