lib/core/validrtf.mli: Pipeline Query Xks_index
