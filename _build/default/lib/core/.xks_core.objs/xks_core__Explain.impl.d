lib/core/explain.ml: Hashtbl Int List Node_info Printf String Xks_index Xks_xml
