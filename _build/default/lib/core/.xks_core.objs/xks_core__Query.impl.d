lib/core/query.ml: Array Format Hashtbl List String Xks_index Xks_util Xks_xml
