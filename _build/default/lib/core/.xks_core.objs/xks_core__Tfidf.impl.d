lib/core/tfidf.ml: Array Float Fragment Int List Pipeline Query Ranking Rtf Xks_index Xks_xml
