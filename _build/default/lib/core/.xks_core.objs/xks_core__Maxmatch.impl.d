lib/core/maxmatch.ml: Pipeline Query
