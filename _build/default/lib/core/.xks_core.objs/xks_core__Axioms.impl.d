lib/core/axioms.ml: Array Fragment List Pipeline Printf Set Xks_index Xks_xml
