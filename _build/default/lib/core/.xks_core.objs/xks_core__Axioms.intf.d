lib/core/axioms.mli: Pipeline Xks_index Xks_xml
