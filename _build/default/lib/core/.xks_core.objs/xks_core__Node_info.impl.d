lib/core/node_info.ml: Array Hashtbl Int List Query Rtf Xks_index Xks_xml
