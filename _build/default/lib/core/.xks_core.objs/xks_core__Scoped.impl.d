lib/core/scoped.ml: Array Engine List Maxmatch Query Validrtf Xks_index Xks_xml
