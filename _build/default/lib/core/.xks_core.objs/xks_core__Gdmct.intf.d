lib/core/gdmct.mli: Fragment Query
