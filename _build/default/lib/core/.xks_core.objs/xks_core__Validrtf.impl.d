lib/core/validrtf.ml: Pipeline Query
