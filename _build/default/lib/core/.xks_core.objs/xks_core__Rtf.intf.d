lib/core/rtf.mli: Fragment Query
