lib/core/ranking.ml: Array Elemrank Float Fragment Int List Pipeline Query Rtf Xks_xml
