lib/core/labeled.ml: Array Engine List Maxmatch Query String Validrtf Xks_index Xks_util Xks_xml
