lib/core/spec.mli: Query
