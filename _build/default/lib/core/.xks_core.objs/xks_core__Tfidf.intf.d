lib/core/tfidf.mli: Fragment Pipeline Query Ranking Rtf Xks_index
