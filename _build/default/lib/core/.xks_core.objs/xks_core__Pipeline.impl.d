lib/core/pipeline.ml: Array Domain Fragment List Node_info Prune Query Rtf Xks_lca
