lib/core/fragment.mli: Format Xks_xml
