lib/core/phrase.mli: Engine Query Xks_index
