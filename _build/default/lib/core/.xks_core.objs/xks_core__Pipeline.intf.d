lib/core/pipeline.mli: Fragment Query Rtf Xks_index
