lib/core/elemrank.mli: Xks_xml
