lib/core/fragment.ml: Array Buffer Format Int List String Xks_util Xks_xml
