lib/core/snippet.mli: Fragment Query
