lib/core/ranking.mli: Elemrank Fragment Pipeline Query Rtf
