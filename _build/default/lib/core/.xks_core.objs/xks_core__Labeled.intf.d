lib/core/labeled.mli: Engine Query Xks_index
