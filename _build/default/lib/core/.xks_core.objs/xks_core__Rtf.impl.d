lib/core/rtf.ml: Array Fragment Int List Query Xks_util Xks_xml
