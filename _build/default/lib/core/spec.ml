module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey

let max_combinations = 50_000

module Iset = Set.Make (Int)

let nonempty_subsets ids =
  List.fold_left
    (fun acc id -> acc @ List.map (Iset.add id) acc)
    [ Iset.empty ] ids
  |> List.filter (fun s -> not (Iset.is_empty s))

let check_size postings =
  let size =
    Array.fold_left
      (fun acc s ->
        let n = Array.length s in
        if n > 14 then max_int
        else
          let c = (1 lsl n) - 1 in
          if acc > max_combinations then acc else acc * max 1 c)
      1 postings
  in
  if size > max_combinations then
    invalid_arg "Spec: input too large for the brute-force oracle"

let lca_id (q : Query.t) set =
  let deweys = List.map (fun id -> (Tree.node q.doc id).dewey) (Iset.elements set) in
  let d = Dewey.lca_list deweys in
  match Tree.find_by_dewey q.doc d with
  | Some n -> n.id
  | None -> assert false (* the LCA of existing nodes exists *)

(* All unions of one non-empty subset per keyword, deduplicated. *)
let ectq_sets (q : Query.t) =
  check_size q.postings;
  let per_keyword =
    Array.to_list
      (Array.map (fun s -> nonempty_subsets (Array.to_list s)) q.postings)
  in
  let combos =
    List.fold_left
      (fun acc subsets ->
        List.concat_map (fun u -> List.map (Iset.union u) subsets) acc)
      [ Iset.empty ] per_keyword
  in
  List.sort_uniq Iset.compare combos

let ectq q = List.map Iset.elements (ectq_sets q)

let rtf_partitions (q : Query.t) =
  if not (Query.has_results q) then []
  else begin
    let all = ectq_sets q in
    let restrict set i =
      Iset.filter (fun id -> Xks_util.Bsearch.mem q.postings.(i) id) set
    in
    let k = Query.k q in
    let indices = List.init k Fun.id in
    (* Every way to pick one non-empty subset of [parts.(i)] per keyword,
       as unions. *)
    let sub_combination_unions parts =
      List.fold_left
        (fun acc i ->
          let subsets = nonempty_subsets (Iset.elements parts.(i)) in
          List.concat_map (fun u -> List.map (Iset.union u) subsets) acc)
        [ Iset.empty ] indices
    in
    let is_rtf set =
      let l = lca_id q set in
      let parts = Array.init k (restrict set) in
      if Array.exists Iset.is_empty parts then false
      else begin
        (* Condition 1: every sub-combination has the same LCA. *)
        let cond1 =
          List.for_all
            (fun u -> lca_id q u = l)
            (sub_combination_unions parts)
        in
        (* Condition 2: no part can be grown within its Di keeping the
           LCA — the partition is maximal for its LCA.  Read literally
           this contradicts the paper's own Example 4 (growing the
           "keyword" part of {n, t, a} by r keeps the LCA, yet {n, t, a}
           is declared an RTF), so we apply the refinement the paper's
           Section 4.3 analysis implies: growth candidates already claimed
           by a strictly deeper partition (their deepest full container
           lies below this LCA) do not count. *)
        let cond2 =
          let claimed_deeper id =
            match Xks_lca.Probe.fc q.doc q.postings (Tree.node q.doc id) with
            | Some f -> Dewey.is_ancestor (Tree.node q.doc l).dewey f.dewey
            | None -> false
          in
          List.for_all
            (fun i ->
              let di = Array.to_list q.postings.(i) in
              let extras =
                List.filter
                  (fun id -> (not (Iset.mem id parts.(i))) && not (claimed_deeper id))
                  di
              in
              List.for_all
                (fun extra ->
                  let grown = Iset.union set (Iset.add extra parts.(i)) in
                  lca_id q grown <> l)
                extras)
            indices
        in
        (* Condition 3: no keyword node of the partition combines with
           arbitrary full-set choices into an LCA strictly below l.  By
           the semilattice structure it is enough to test singletons
           against the closest possible partners, i.e. every
           sub-combination of the full Di's containing the node; we test
           the deepest full container of each member instead, which is
           equivalent: a strictly deeper LCA exists iff some member's
           deepest full container is strictly below l. *)
        let cond3 =
          Iset.for_all
            (fun id ->
              match Xks_lca.Probe.fc q.doc q.postings (Tree.node q.doc id) with
              | Some f ->
                  not (Dewey.is_ancestor (Tree.node q.doc l).dewey f.dewey)
              | None -> true)
            set
        in
        cond1 && cond2 && cond3
      end
    in
    List.filter is_rtf all
    |> List.map (fun set -> (lca_id q set, Iset.elements set))
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  end
