(** Pruning raw RTFs into meaningful fragments.

    Two filtering mechanisms over the constructed {!Node_info} tree:

    - {!valid_contributor} — the paper's contribution (Definition 4,
      pruning step of Algorithm 1).  Children are grouped by label; a
      single child of its label is always kept (rule 1); within a larger
      group a child is discarded when a sibling's keyword set strictly
      covers its ([chkList] check, rule 2a) and duplicate
      keyword-set/content-feature combinations keep only their first
      representative (rule 2b).
    - {!contributor} — MaxMatch's mechanism (Liu & Chen, VLDB 2008): a
      child is discarded iff {e any} sibling, regardless of label, has a
      strictly larger keyword set.  No content comparison.

    Pruning is top-down (breadth-first in the paper; the order is
    irrelevant as decisions only depend on parent-local information):
    discarding a child removes its whole subtree. *)

val valid_contributor : Node_info.t -> Fragment.t
(** Meaningful RTF per the valid-contributor mechanism. *)

val contributor : Node_info.t -> Fragment.t
(** Fragment pruned with MaxMatch's contributor mechanism. *)

val keep_all : Node_info.t -> Fragment.t
(** No pruning: the raw RTF as a fragment (for metrics and tests). *)
