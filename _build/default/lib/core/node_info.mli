(** The node data structure of paper section 4.1, and the constructing
    step of [pruneRTF].

    For each node of a raw RTF we keep its "Self Info" — Dewey code,
    label, [kList] (tree keyword set as a key number) and [cID] (content
    feature of its tree content set) — and its "Children Info": the RTF
    children grouped by distinct label, each group carrying the sorted
    distinct key numbers ([chkList]) and the children's cIDs, which is
    everything Definition 4 needs.

    The constructing step starts from each keyword node, fills its self
    info from the document, and transfers it to every ancestor up to the
    RTF root (the paper's lines 5–12, including the line 11–12 fix that
    pushes the information all the way up). *)

type info = private {
  id : int;
  label : Xks_xml.Label.t;
  mutable klist : Xks_index.Klist.t;  (** tree keyword set (key number) *)
  mutable cid : Xks_index.Cid.t;  (** feature of the tree content set *)
  mutable rtf_children : info list;  (** children within the RTF, document order *)
}

type t
(** The constructed info tree for one RTF. *)

val construct : ?cid_mode:Xks_index.Cid.mode -> Query.t -> Rtf.t -> t
(** Build the info tree of a raw RTF: one {!info} per RTF member (keyword
    nodes and connecting path nodes), with [klist]/[cid] aggregated bottom
    up.  Keyword-node contents are read from the document; path nodes
    contribute no content of their own (the paper's tree content set only
    unions {e keyword} nodes). *)

val root : t -> info

type label_group = {
  group_label : Xks_xml.Label.t;
  counter : int;  (** number of children with this label *)
  chklist : int array;  (** sorted distinct key numbers of the group *)
  group_children : info list;  (** document order *)
}

val label_groups : info -> label_group list
(** The "Children Info" of a node: its RTF children grouped by label, in
    order of first appearance. *)

val info_of : t -> int -> info option
(** Look up the info of an RTF member by node id. *)
