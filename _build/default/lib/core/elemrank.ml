module Tree = Xks_xml.Tree

type t = float array

let compute ?(damping = 0.85) ?(iterations = 50) doc =
  let n = Tree.size doc in
  let degree =
    Array.init n (fun id ->
        let node = Tree.node doc id in
        Array.length node.children + (if node.parent >= 0 then 1 else 0))
  in
  let base = (1.0 -. damping) /. float_of_int n in
  let scores = ref (Array.make n (1.0 /. float_of_int n)) in
  let next = ref (Array.make n 0.0) in
  let rec iterate round =
    if round = 0 then ()
    else begin
      let s = !scores and t = !next in
      Array.fill t 0 n base;
      (* Each node spreads its mass evenly over its tree neighbours. *)
      for id = 0 to n - 1 do
        let node = Tree.node doc id in
        let share =
          if degree.(id) = 0 then 0.0
          else damping *. s.(id) /. float_of_int degree.(id)
        in
        if node.parent >= 0 then t.(node.parent) <- t.(node.parent) +. share;
        Array.iter
          (fun (c : Tree.node) -> t.(c.id) <- t.(c.id) +. share)
          node.children
      done;
      let delta = ref 0.0 in
      for id = 0 to n - 1 do
        delta := !delta +. abs_float (t.(id) -. s.(id))
      done;
      scores := t;
      next := s;
      if !delta > 1e-9 then iterate (round - 1)
    end
  in
  iterate iterations;
  (* Normalise: isolated mass (degree-0 singleton documents) keeps the
     total at 1. *)
  let total = Array.fold_left ( +. ) 0.0 !scores in
  if total > 0.0 then Array.map (fun x -> x /. total) !scores else !scores

let score t id =
  if id < 0 || id >= Array.length t then invalid_arg "Elemrank.score";
  t.(id)

let top t n =
  let all = Array.to_list (Array.mapi (fun id s -> (id, s)) t) in
  let sorted =
    List.sort
      (fun (ia, sa) (ib, sb) ->
        let c = Float.compare sb sa in
        if c <> 0 then c else Int.compare ia ib)
      all
  in
  List.filteri (fun i _ -> i < n) sorted
