(** Executable specification of Definitions 1 and 2.

    Definition 1 (ECTQ) enumerates every combination of non-empty subsets
    of the keyword-node sets [D1 .. Dk]; Definition 2 keeps the
    combinations that are RTF partitions.  The enumeration is exponential
    and only meant as a test oracle on tiny documents — the analysis in
    the paper's Section 4.3(1) claims [getRTF] over the interesting LCA
    nodes computes exactly these partitions, and the test suite checks
    that claim on the paper's examples and on random small trees. *)

val ectq : Query.t -> int list list
(** All distinct elements of ECTQ, each a sorted list of keyword-node
    ids.  Distinct subset choices with equal unions are identified (the
    paper counts 11, not 21, in Example 3 for the same reason). *)

val rtf_partitions : Query.t -> (int * int list) list
(** The partitions of {!ectq} satisfying the three conditions of
    Definition 2, as [(lca_id, sorted keyword-node ids)] pairs in document
    order of the LCA.  [Invalid_argument] is raised when the enumeration
    would exceed {!max_combinations} — keep test inputs tiny.

    One repair to the paper: taken literally, condition 2 contradicts
    Example 4 ({[{n, t, a}]} can be grown by [r] without changing its LCA,
    yet the paper declares it an RTF).  Following the Section 4.3
    analysis, growth candidates whose own deepest full container lies
    strictly below the partition's LCA — nodes claimed by a deeper
    partition — are excluded from the maximality test.  EXPERIMENTS.md
    discusses the discrepancy. *)

val max_combinations : int
(** Safety bound on the ECTQ size the oracle will enumerate. *)
