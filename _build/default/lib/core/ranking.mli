(** Ranking of meaningful RTFs (the paper's stated future work).

    A simple, deterministic scorer so applications can order the returned
    fragments.  The score of a fragment combines:
    - {b depth}: deeper (more specific) LCA roots score higher, following
      the SLCA intuition that tighter fragments are more relevant;
    - {b keyword density}: keyword nodes per fragment node — fragments
      padded with structural nodes rank below compact ones;
    - {b coverage}: fragments whose root gathers many distinct keyword
      occurrences rank above minimal witnesses. *)

type scored = { fragment : Fragment.t; rtf : Rtf.t; score : float }

val score : Query.t -> Rtf.t -> Fragment.t -> float
(** Deterministic score in [(0, +inf)]; higher is better. *)

val rank : Pipeline.result -> scored list
(** Fragments of a result, sorted by decreasing score; ties broken by
    document order of the fragment root. *)

val score_with_prior : Elemrank.t -> Query.t -> Rtf.t -> Fragment.t -> float
(** {!score} multiplied by the fragment root's {!Elemrank} structural
    importance (scaled by the document size so the factor is ~1 for an
    average node). *)

val rank_with_prior : Elemrank.t -> Pipeline.result -> scored list
(** As {!rank} under {!score_with_prior}. *)
