(** TF·IDF relevance for result fragments.

    A corpus-statistics scorer in the XRank/XSearch tradition,
    complementing {!Ranking}'s structural score: each query keyword
    contributes (occurrences of the keyword among the fragment's keyword
    nodes) × (inverse node frequency of the keyword in the document),
    dampened by fragment size so huge fragments do not win on bulk.
    Rare query keywords therefore dominate the ordering — the behaviour
    users expect from text retrieval. *)

type t
(** Corpus statistics (node counts per word). *)

val build : Xks_index.Inverted.t -> t

val idf : t -> string -> float
(** [ln ((N + 1) / (df + 1)) + 1 > 0], with [df] the number of nodes
    containing the (normalised) word and [N] the document's node
    count. *)

val fragment_score : t -> Query.t -> Rtf.t -> Fragment.t -> float
(** TF·IDF over the fragment's surviving keyword nodes, divided by
    [1 + ln (fragment size)].  0 when no keyword node survives. *)

val rank : t -> Pipeline.result -> Ranking.scored list
(** Fragments sorted by decreasing {!fragment_score} (ties by document
    order). *)
