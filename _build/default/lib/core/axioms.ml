module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey

type run = Xks_index.Inverted.t -> string list -> Pipeline.result

type report = {
  ok : bool;
  results_before : int;
  results_after : int;
  offending : string list;
}

let append_subtree doc ~parent_id b =
  let pos = Array.length (Tree.node doc parent_id).children in
  Tree.insert_subtree doc ~parent_id ~pos b

(* A fragment as Dewey codes, stable across re-indexing. *)
module Dset = Set.Make (struct
  type t = Dewey.t

  let compare = Dewey.compare
end)

let fragment_deweys doc frag =
  List.fold_left
    (fun acc id -> Dset.add (Tree.node doc id).dewey acc)
    Dset.empty
    (Fragment.members_list frag)

let fragments_of doc result =
  List.map
    (fun f -> ((Tree.node doc f.Fragment.root).dewey, fragment_deweys doc f))
    result.Pipeline.fragments

let run_on run doc query =
  let idx = Xks_index.Inverted.build doc in
  run idx query

let describe (root, members) =
  Printf.sprintf "fragment at %s (%d nodes)" (Dewey.to_string root)
    (Dset.cardinal members)

let data_monotonicity ~run ~before ~after ~query =
  let rb = run_on run before query and ra = run_on run after query in
  let nb = List.length rb.Pipeline.fragments
  and na = List.length ra.Pipeline.fragments in
  {
    ok = na >= nb;
    results_before = nb;
    results_after = na;
    offending =
      (if na >= nb then []
       else [ Printf.sprintf "result count dropped from %d to %d" nb na ]);
  }

let query_monotonicity ~run ~doc ~query ~extra =
  let rb = run_on run doc query and ra = run_on run doc (query @ [ extra ]) in
  let nb = List.length rb.Pipeline.fragments
  and na = List.length ra.Pipeline.fragments in
  {
    ok = na <= nb;
    results_before = nb;
    results_after = na;
    offending =
      (if na <= nb then []
       else [ Printf.sprintf "result count grew from %d to %d" nb na ]);
  }

(* Fragments of [after_frags] that display nodes absent from the entire
   before result set must satisfy [contains] somewhere among their
   members.  This is the set-level reading of Liu & Chen's consistency
   axioms: the "additional subtrees which become (part of) a query
   result" are the newly displayed nodes, and the fragment carrying them
   must contain the new node / a match of the new keyword.

   Two stronger readings fail for ValidRTF's all-LCA semantics and are
   deliberately not used (see test_axioms.ml and EXPERIMENTS.md):
   - per-node: every newly appearing member matches — fails on simple
     single-keyword documents;
   - per-fragment: every changed fragment contains the new node — fails
     because an insertion can demote an interesting LCA node, hoisting
     its old keyword nodes into the enclosing RTF, which then changes
     without containing any inserted node. *)
let consistency_violations before_frags after_frags contains =
  let displayed_before d =
    List.exists (fun (_, m) -> Dset.mem d m) before_frags
  in
  List.filter_map
    (fun ((_, members) as frag) ->
      let additional = Dset.filter (fun d -> not (displayed_before d)) members in
      if Dset.is_empty additional || Dset.exists contains members then None
      else Some (describe frag))
    after_frags

let data_consistency ~run ~before ~after ~query =
  let rb = run_on run before query and ra = run_on run after query in
  let fb = fragments_of before rb and fa = fragments_of after ra in
  (* Inserted nodes: Dewey codes present in [after] but not in [before]. *)
  let inserted d = Tree.find_by_dewey before d = None in
  let offending = consistency_violations fb fa inserted in
  {
    ok = offending = [];
    results_before = List.length rb.Pipeline.fragments;
    results_after = List.length ra.Pipeline.fragments;
    offending;
  }

let query_consistency ~run ~doc ~query ~extra =
  let rb = run_on run doc query and ra = run_on run doc (query @ [ extra ]) in
  let fb = fragments_of doc rb and fa = fragments_of doc ra in
  let extra_norm = Xks_xml.Tokenizer.normalize extra in
  let matches_extra d =
    match Tree.find_by_dewey doc d with
    | Some n -> Tree.node_matches doc n extra_norm
    | None -> false
  in
  let offending = consistency_violations fb fa matches_extra in
  {
    ok = offending = [];
    results_before = List.length rb.Pipeline.fragments;
    results_after = List.length ra.Pipeline.fragments;
    offending;
  }
