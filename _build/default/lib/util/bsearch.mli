(** Binary searches over sorted [int array]s.

    Posting lists are arrays of node ids sorted ascending (node ids are
    preorder ranks, so ascending id order is document order).  The LCA
    algorithms need the classic left-match / right-match probes. *)

val lower_bound : int array -> int -> int
(** [lower_bound a x] is the smallest index [i] with [a.(i) >= x], or
    [Array.length a] when every element is smaller. *)

val upper_bound : int array -> int -> int
(** [upper_bound a x] is the smallest index [i] with [a.(i) > x], or
    [Array.length a] when every element is [<= x]. *)

val left_match : int array -> int -> int option
(** [left_match a x] is the largest element [<= x], if any — the paper's
    [lm] probe. *)

val right_match : int array -> int -> int option
(** [right_match a x] is the smallest element [>= x], if any — the
    paper's [rm] probe. *)

val mem : int array -> int -> bool
(** Membership in a sorted array. *)

val count_in_range : int array -> lo:int -> hi:int -> int
(** Number of elements [x] with [lo <= x <= hi]. *)

val first_in_range : int array -> lo:int -> hi:int -> int option
(** Smallest element [x] with [lo <= x <= hi], if any. *)
