type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }
let length v = v.len

let push v x =
  if v.len = Array.length v.data then begin
    let data = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i = if i < 0 || i >= v.len then invalid_arg "Int_vec: index"
let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x
let clear v = v.len <- 0
let to_array v = Array.sub v.data 0 v.len

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let last v = if v.len = 0 then invalid_arg "Int_vec.last: empty" else v.data.(v.len - 1)

let pop v =
  if v.len = 0 then invalid_arg "Int_vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)
