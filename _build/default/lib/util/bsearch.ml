let lower_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let left_match a x =
  let i = upper_bound a x in
  if i = 0 then None else Some a.(i - 1)

let right_match a x =
  let i = lower_bound a x in
  if i = Array.length a then None else Some a.(i)

let mem a x =
  let i = lower_bound a x in
  i < Array.length a && a.(i) = x

let count_in_range a ~lo ~hi =
  if hi < lo then 0 else upper_bound a hi - lower_bound a lo

let first_in_range a ~lo ~hi =
  let i = lower_bound a lo in
  if i < Array.length a && a.(i) <= hi then Some a.(i) else None
