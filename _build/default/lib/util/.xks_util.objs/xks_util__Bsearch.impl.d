lib/util/bsearch.ml: Array
