lib/util/bsearch.mli:
