open Xks_xml.Tree

let publications () =
  build
    (elem "Publications"
       [
         (* 0.0 *)
         elem ~text:"VLDB" "title" [];
         (* 0.1 — keyword-free filler, not named in the paper *)
         elem ~text:"2008" "year" [];
         (* 0.2 *)
         elem "Articles"
           [
             (* 0.2.0 *)
             elem "article"
               [
                 elem "authors"
                   [
                     elem "author" [ elem ~text:"Ziyang Liu" "name" [] ];
                     elem "author" [ elem ~text:"Yi Chen" "name" [] ];
                   ];
                 (* 0.2.0.1 *)
                 elem ~text:"Relevant Match for XML Keyword Search" "title" [];
                 (* 0.2.0.2 *)
                 elem
                   ~text:
                     "We study effective XML keyword search and identify \
                      relevant matches with axiomatic properties."
                   "abstract" [];
                 (* 0.2.0.3 *)
                 elem "references"
                   [
                     elem
                       ~text:"Liu: ranking for XML keyword search engines."
                       "ref" [];
                   ];
               ];
             (* 0.2.1 *)
             elem "article"
               [
                 elem "authors"
                   [
                     elem "author"
                       [ elem ~text:"Raymond Chi-Wing Wong" "name" [] ];
                     elem "author" [ elem ~text:"Ada Wai-Chee Fu" "name" [] ];
                   ];
                 (* 0.2.1.1 *)
                 elem
                   ~text:
                     "Efficient Skyline Query Processing with Variable User \
                      Preferences on Nominal Attributes"
                   "title" [];
                 (* 0.2.1.2 *)
                 elem
                   ~text:
                     "A dynamic skyline query returns interesting points \
                      with user preferences."
                   "abstract" [];
               ];
           ];
       ])

let team () =
  build
    (elem "team"
       [
         (* 0.0 *)
         elem ~text:"Grizzlies" "name" [];
         (* 0.1 *)
         elem "players"
           [
             elem "player"
               [
                 elem ~text:"Gassol" "name" [];
                 elem ~text:"forward" "position" [];
               ];
             elem "player"
               [
                 elem ~text:"Miller" "name" [];
                 elem ~text:"guard" "position" [];
               ];
             elem "player"
               [
                 elem ~text:"Jones" "name" [];
                 elem ~text:"forward" "position" [];
               ];
           ];
       ])

let q1 = [ "wong"; "fu"; "dynamic"; "skyline"; "query" ]
let q2 = [ "liu"; "keyword" ]
let q3 = [ "vldb"; "title"; "xml"; "keyword"; "search" ]
let q4 = [ "grizzlies"; "position" ]
let q5 = [ "gassol"; "position" ]
