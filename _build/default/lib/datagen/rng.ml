type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* SplitMix64 step (Steele, Lea & Flood 2014). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound";
  let x = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  x mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty";
  a.(int t (Array.length a))

let pick_list t l = pick t (Array.of_list l)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next t }

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n";
  (* Inverse-CDF over the truncated harmonic weights. *)
  let total = ref 0.0 in
  for r = 1 to n do
    total := !total +. (1.0 /. (float_of_int r ** s))
  done;
  let target = float t !total in
  let rec find r acc =
    if r > n then n - 1
    else
      let acc = acc +. (1.0 /. (float_of_int r ** s)) in
      if acc >= target then r - 1 else find (r + 1) acc
  in
  find 1 0.0
