open Xks_xml.Tree

let keywords =
  [
    ("keyword", 90); ("similarity", 1242); ("recognition", 6447);
    ("algorithm", 14181); ("data", 25840); ("probabilistic", 2284);
    ("xml", 2121); ("dynamic", 7281); ("sigmod", 3983); ("tree", 3549);
    ("query", 3560); ("automata", 3337); ("pattern", 6513);
    ("retrieval", 5111); ("efficient", 8279); ("understanding", 1450);
    ("searching", 4618); ("vldb", 2313); ("henry", 1322);
    ("semantics", 3694);
  ]

type config = { seed : int; entries : int; scale : float }

let default_config = { seed = 42; entries = 12000; scale = 0.05 }

let planted_counts config =
  List.map (fun (w, f) -> (w, Plant.scaled_count ~scale:config.scale f)) keywords

type entry = {
  kind : string;  (* "article" or "inproceedings" *)
  authors : string list ref;  (* "first last" strings *)
  title : string list ref;
  venue : string list ref;
  year : int;
  pages : string;
}

let venues =
  [|
    "icde"; "edbt"; "cikm"; "www"; "kdd"; "icml"; "sigir"; "pods"; "dasfaa";
    "tods"; "tkde"; "jacm"; "ipl"; "dke";
  |]

let generate ?(config = default_config) () =
  let rng = Rng.create config.seed in
  let keyword_names = List.map fst keywords in
  let title_vocab =
    Plant.filter_keywords keyword_names
      (Array.append Vocab.cs_terms Vocab.common)
  in
  let title_sampler = Vocab.sampler title_vocab in
  let first_names = Plant.filter_keywords keyword_names Vocab.first_names in
  let make_entry _ =
    let author () =
      Rng.pick rng first_names ^ " " ^ Rng.pick rng Vocab.last_names
    in
    let n_authors = 1 + Rng.int rng 3 in
    let n_title = 4 + Rng.int rng 6 in
    let p1 = 1 + Rng.int rng 400 in
    {
      kind = (if Rng.bool rng then "article" else "inproceedings");
      authors = ref (List.init n_authors (fun _ -> author ()));
      title =
        ref (List.init n_title (fun _ -> Vocab.sample title_sampler rng));
      venue = ref [ Rng.pick rng venues ];
      year = 1990 + Rng.int rng 20;
      pages = Printf.sprintf "%d-%d" p1 (p1 + 1 + Rng.int rng 30);
    }
  in
  let entries = Array.init config.entries make_entry in
  (* Plant the query keywords at their scaled frequencies. *)
  let title_slots = Array.map (fun e -> e.title) entries in
  let venue_slots = Array.map (fun e -> e.venue) entries in
  List.iter
    (fun (w, count) ->
      match w with
      | "henry" ->
          for _ = 1 to count do
            let e = Rng.pick rng entries in
            e.authors := ("henry " ^ Rng.pick rng Vocab.last_names) :: !(e.authors)
          done
      | "sigmod" | "vldb" -> Plant.inject rng ~slots:venue_slots w count
      | _ -> Plant.inject rng ~slots:title_slots w count)
    (planted_counts config);
  let entry_builder e =
    let venue_label = if e.kind = "article" then "journal" else "booktitle" in
    elem e.kind
      (List.map (fun a -> elem ~text:a "author" []) !(e.authors)
      @ [
          elem ~text:(String.concat " " !(e.title)) "title" [];
          elem ~text:(string_of_int e.year) "year" [];
          elem ~text:(String.concat " " !(e.venue)) venue_label [];
          elem ~text:e.pages "pages" [];
        ])
  in
  build (elem "dblp" (Array.to_list (Array.map entry_builder entries)))
