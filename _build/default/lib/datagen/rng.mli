(** Deterministic pseudo-random numbers (SplitMix64).

    All synthetic data is generated from explicit seeds so every dataset,
    workload and benchmark run is reproducible bit-for-bit; the stdlib
    [Random] state is never touched. *)

type t

val create : int -> t
(** [create seed] — equal seeds give equal streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [[0, n)] with exponent [s] (computed by
    inverse-CDF over precomputed weights would be exact; this uses
    rejection on the normalised harmonic weights, good enough for
    vocabulary sampling). *)
