(** Random query workloads over an indexed corpus.

    The paper builds its workloads "by randomly combining these keywords
    ... covering different frequency requirements"; this module does the
    same for arbitrary corpora: the indexed vocabulary is split into
    frequency bands and each query mixes keywords drawn from random
    bands, so rare/frequent combinations like the paper's [ks] vs [vdo]
    arise naturally.  Used by the [fig5-random] bench command to check
    that the Figure 5/6 shapes are not an artifact of the hand-picked
    queries. *)

type band = Rare | Medium | Frequent

val bands : ?min_occurrences:int -> Xks_index.Inverted.t -> (band * string list) list
(** Split the vocabulary into occurrence-count tertiles.  Words below
    [min_occurrences] (default 2) and purely numeric tokens (years, page
    numbers) are dropped.  Every band is non-empty whenever at least
    three words qualify. *)

val generate :
  ?min_arity:int -> ?max_arity:int -> seed:int -> count:int ->
  Xks_index.Inverted.t -> string list list
(** [generate ~seed ~count idx] draws [count] distinct-keyword queries
    with arities in [[min_arity, max_arity]] (defaults 2 and 6),
    deterministically from [seed].
    @raise Invalid_argument if fewer than [max_arity] words qualify or
    arities are nonsensical. *)
