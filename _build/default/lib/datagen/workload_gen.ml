type band = Rare | Medium | Frequent

let all_digits w = String.for_all (fun c -> c >= '0' && c <= '9') w

let bands ?(min_occurrences = 2) idx =
  let words =
    Xks_index.Inverted.vocabulary idx
    |> List.filter_map (fun w ->
           let c = Xks_index.Inverted.occurrence_count idx w in
           (* Purely numeric tokens (years, page numbers) make
              unrealistic keywords. *)
           if c >= min_occurrences && not (all_digits w) then Some (w, c)
           else None)
    |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
  in
  let n = List.length words in
  let third = max 1 (n / 3) in
  let slice lo hi =
    List.filteri (fun i _ -> i >= lo && i < hi) words |> List.map fst
  in
  [
    (Rare, slice 0 third);
    (Medium, slice third (2 * third));
    (Frequent, slice (2 * third) n);
  ]
  |> List.filter (fun (_, ws) -> ws <> [])

let generate ?(min_arity = 2) ?(max_arity = 6) ~seed ~count idx =
  if min_arity < 1 || max_arity < min_arity then
    invalid_arg "Workload_gen.generate: arities";
  let banded = bands idx in
  let pool = List.concat_map snd banded in
  if List.length pool < max_arity then
    invalid_arg "Workload_gen.generate: vocabulary too small";
  let band_arrays = Array.of_list (List.map (fun (_, ws) -> Array.of_list ws) banded) in
  let rng = Rng.create seed in
  let rec draw_query () =
    let arity = min_arity + Rng.int rng (max_arity - min_arity + 1) in
    let rec pick acc =
      if List.length acc = arity then acc
      else
        let band = band_arrays.(Rng.int rng (Array.length band_arrays)) in
        let w = Rng.pick rng band in
        pick (if List.mem w acc then acc else w :: acc)
    in
    let q = List.rev (pick []) in
    if List.length q = arity then q else draw_query ()
  in
  List.init count (fun _ -> draw_query ())
