let scaled_count ~scale f =
  max 1 (int_of_float ((float_of_int f *. scale) +. 0.5))

let filter_keywords kws vocab =
  let drop w = List.mem w kws in
  Array.of_list (List.filter (fun w -> not (drop w)) (Array.to_list vocab))

let inject rng ~slots w c =
  if Array.length slots = 0 then invalid_arg "Plant.inject: no slots";
  for _ = 1 to c do
    let slot = slots.(Rng.int rng (Array.length slots)) in
    slot := w :: !slot
  done
