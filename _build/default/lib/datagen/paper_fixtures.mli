(** The paper's running examples, reconstructed.

    {!publications} is the XML instance of Figure 1(a) — a [Publications]
    tree with two articles — and {!team} is the [team]/[players] segment
    of Figure 1(b):(1) borrowed from MaxMatch's paper.  Dewey codes match
    the ones quoted in the paper's prose (e.g. ["0.2.0.3.0 (ref)"],
    ["0.1.0 (player)"]).

    Two deliberate deviations, documented in EXPERIMENTS.md:
    - the paper's example matches "Querying" against the keyword "Query"
      (their platform stems); we have no stemmer, so the second article's
      title says "Query Processing" instead of "Querying";
    - node [0.1 (year)] of {!publications} is not named in the paper; any
      keyword-free filler node is observationally equivalent.

    Queries Q1–Q5 of Figure 1(b):(2) are reconstructed from the prose
    (each example names its keyword nodes, which pins the keywords). *)

val publications : unit -> Xks_xml.Tree.t
(** Figure 1(a). *)

val team : unit -> Xks_xml.Tree.t
(** Figure 1(b):(1). *)

val q1 : string list
(** ["wong"; "fu"; "dynamic"; "skyline"; "query"] — the false-positive
    example (Figures 3(b), 3(c)). *)

val q2 : string list
(** ["liu"; "keyword"] — the SLCA vs LCA example (Figures 2(a), 2(b)) and
    Examples 3–4. *)

val q3 : string list
(** ["vldb"; "title"; "xml"; "keyword"; "search"] — the running example
    (Figures 2(c), 2(d), 4(b), 4(c), Examples 6–7). *)

val q4 : string list
(** ["grizzlies"; "position"] — the redundancy example (Figure 3(d)). *)

val q5 : string list
(** ["gassol"; "position"] — the positive contributor example
    (Figure 3(a)). *)
