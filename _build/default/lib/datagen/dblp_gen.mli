(** DBLP-shaped synthetic corpus.

    Stands in for the paper's real [dblp20040213] (197.6 MB): a flat
    [dblp] root with [article]/[inproceedings] entries carrying authors,
    title, year, venue and pages — the tree shape that makes DBLP's RTFs
    "self-complete" in the paper's Figure 6(a) discussion (APR' = 0).

    The paper's 20 query keywords are planted at the paper's measured
    frequencies times [scale]; ["henry"] is planted as an author first
    name and ["sigmod"]/["vldb"] as venue words, everything else as title
    words, mirroring where those words live in real DBLP. *)

val keywords : (string * int) list
(** The paper's DBLP keywords with their frequencies in [dblp20040213]
    (Section 5.1), e.g. [("keyword", 90); ("data", 25840); ...]. *)

type config = {
  seed : int;
  entries : int;  (** number of bibliography entries *)
  scale : float;  (** keyword-frequency scale vs the paper's corpus *)
}

val default_config : config
(** [seed = 42], [entries = 12000], [scale = 0.05] (~2 MB of XML;
    keyword frequencies at 1/20 keep the rare keywords above one
    occurrence so the RTF-count curves keep the paper's variation). *)

val generate : ?config:config -> unit -> Xks_xml.Tree.t

val planted_counts : config -> (string * int) list
(** Exact occurrence count planted for each keyword under a config. *)
