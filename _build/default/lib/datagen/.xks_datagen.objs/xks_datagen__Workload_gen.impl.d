lib/datagen/workload_gen.ml: Array Int List Rng String Xks_index
