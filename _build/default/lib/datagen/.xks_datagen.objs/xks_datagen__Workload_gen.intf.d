lib/datagen/workload_gen.mli: Xks_index
