lib/datagen/plant.ml: Array List Rng
