lib/datagen/plant.mli: Rng
