lib/datagen/paper_fixtures.mli: Xks_xml
