lib/datagen/vocab.mli: Rng
