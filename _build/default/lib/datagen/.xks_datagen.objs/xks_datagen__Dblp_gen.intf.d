lib/datagen/dblp_gen.mli: Xks_xml
