lib/datagen/queries.ml: List Printf String
