lib/datagen/xmark_gen.mli: Xks_xml
