lib/datagen/rng.mli:
