lib/datagen/paper_fixtures.ml: Xks_xml
