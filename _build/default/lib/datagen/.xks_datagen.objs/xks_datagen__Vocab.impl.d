lib/datagen/vocab.ml: Array List Rng String
