lib/datagen/xmark_gen.ml: Array List Plant Printf Rng String Vocab Xks_xml
