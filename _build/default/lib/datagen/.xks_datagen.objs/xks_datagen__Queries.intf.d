lib/datagen/queries.mli:
