(** Keyword planting shared by the corpus generators.

    The paper selects query keywords by their measured frequencies in the
    real datasets; our synthetic corpora reproduce those frequencies
    (scaled) by planting each keyword into randomly chosen text slots
    after the base document is generated.  The filler vocabulary is
    filtered so planted words never collide with random draws and the
    final counts are exact. *)

val scaled_count : scale:float -> int -> int
(** [scaled_count ~scale f] is [max 1 (round (f * scale))]: scaling keeps
    every keyword present. *)

val filter_keywords : string list -> string array -> string array
(** Remove the given (normalised) keywords from a vocabulary array. *)

val inject : Rng.t -> slots:string list ref array -> string -> int -> unit
(** [inject rng ~slots w c] appends [c] occurrences of [w] into randomly
    chosen slots (a slot is a mutable word list, e.g. one title's
    words). *)
