(** Query workloads for the Figure 5 / Figure 6 experiments.

    The paper labels each query by the concatenated abbreviation letters
    of its keywords (e.g. ["vdo"] = "preventions description order"); the
    exact underlined letters are lost in the text extraction, so we fix
    our own unambiguous letter per keyword and build workloads of the same
    shape: 19 DBLP queries and 25 XMark queries mixing 2–6 keywords of
    high and low frequency. *)

type workload = { name : string; queries : (string * string list) list }
(** Each query is [(mnemonic, keywords)]. *)

val dblp_abbreviations : (char * string) list
(** Letter -> keyword for the DBLP workload. *)

val xmark_abbreviations : (char * string) list

val dblp : workload
val xmark : workload

val expand : (char * string) list -> string -> string list
(** [expand abbrs "vdo"] is the keyword list for a mnemonic.
    @raise Invalid_argument on an unknown letter. *)
