(** Vocabularies and Zipfian samplers for the synthetic corpora.

    The generators draw filler words Zipf-distributed over fixed word
    lists, so the synthetic documents have the skewed word-frequency
    profile of real text, while the paper's query keywords are planted
    separately at controlled frequencies. *)

val common : string array
(** General English filler vocabulary (no stop words — those would be
    dropped by the indexer anyway). *)

val cs_terms : string array
(** Computer-science title/abstract vocabulary for the DBLP-like data. *)

val auction_terms : string array
(** Commerce/auction vocabulary for the XMark-like data. *)

val first_names : string array
val last_names : string array
val cities : string array
val countries : string array

type sampler
(** A Zipfian sampler over a word array, with a precomputed cumulative
    table (constant-time setup per draw: one binary search). *)

val sampler : ?s:float -> string array -> sampler
(** [sampler words] prepares Zipf sampling with exponent [s] (default
    1.0) over [words] in the given order (rank 0 = most frequent).
    @raise Invalid_argument on an empty array. *)

val sample : sampler -> Rng.t -> string
(** Draw one word. *)

val sentence : sampler -> Rng.t -> min_words:int -> max_words:int -> string
(** A space-separated random "sentence" of [min_words .. max_words]
    draws. *)
