open Xks_xml.Tree

let keywords =
  [
    ("particle", 12, 33, 69); ("dominator", 56, 150, 285);
    ("threshold", 123, 405, 804); ("chronicle", 426, 1286, 2568);
    ("method", 552, 1667, 3356); ("strings", 615, 1847, 3620);
    ("unjust", 1000, 3044, 6150); ("invention", 1546, 4715, 9404);
    ("egypt", 2064, 5255, 12466); ("leon", 2519, 7647, 15210);
    ("preventions", 66216, 199365, 397672); ("description", 11681, 35168, 70230);
    ("order", 12705, 38141, 76271);
  ]

type size = Standard | Data1 | Data2
type config = { seed : int; items : int; keyword_scale : float }

let default_config = { seed = 7; items = 60; keyword_scale = 0.05 }

let size_factor = function Standard -> 1 | Data1 -> 3 | Data2 -> 6

let planted_counts config size =
  let pick (w, std, d1, d2) =
    let f = match size with Standard -> std | Data1 -> d1 | Data2 -> d2 in
    (w, Plant.scaled_count ~scale:config.keyword_scale f)
  in
  List.map pick keywords

let regions_names =
  [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let generate ?(config = default_config) size =
  let rng = Rng.create (config.seed + size_factor size) in
  let keyword_names = List.map (fun (w, _, _, _) -> w) keywords in
  let text_vocab =
    Plant.filter_keywords keyword_names
      (Array.append Vocab.auction_terms Vocab.common)
  in
  let text_sampler = Vocab.sampler text_vocab in
  let items_per_region = config.items * size_factor size in
  let n_regions = Array.length regions_names in
  let n_items = items_per_region * n_regions in
  let n_people = n_items / 2 in
  let n_open = n_items / 3 in
  let n_closed = n_items / 4 in
  let n_categories = max 4 (n_items / 20) in
  (* Text slots the keywords can be planted into: item details, auction
     annotations and person profiles. *)
  let item_details = Array.init n_items (fun _ -> ref []) in
  let open_annotations = Array.init n_open (fun _ -> ref []) in
  let closed_annotations = Array.init n_closed (fun _ -> ref []) in
  let person_profiles = Array.init n_people (fun _ -> ref []) in
  let all_slots =
    Array.concat
      [ item_details; open_annotations; closed_annotations; person_profiles ]
  in
  List.iter
    (fun (w, count) -> Plant.inject rng ~slots:all_slots w count)
    (planted_counts config size);
  let para words =
    let filler = Vocab.sentence text_sampler rng ~min_words:6 ~max_words:18 in
    String.concat " " (filler :: words)
  in
  let person_name () =
    Rng.pick rng Vocab.first_names ^ " " ^ Rng.pick rng Vocab.last_names
  in
  let item region i =
    let idx = ref 0 in
    Array.iteri (fun r name -> if name = region then idx := r) regions_names;
    let slot = item_details.((!idx * items_per_region) + i) in
    elem
      ~attrs:[ ("id", Printf.sprintf "item_%s_%d" region i) ]
      "item"
      [
        elem ~text:(Rng.pick rng Vocab.cities) "location" [];
        elem ~text:(string_of_int (1 + Rng.int rng 5)) "quantity" [];
        elem
          ~text:(Vocab.sentence text_sampler rng ~min_words:2 ~max_words:4)
          "name" [];
        elem "payment"
          [ elem ~text:(if Rng.bool rng then "credit" else "cash") "paytype" [] ];
        elem ~text:(para !slot) "details" [];
        elem ~text:(if Rng.bool rng then "will ship" else "pickup only") "shipping" [];
        elem
          ~attrs:[ ("category", Printf.sprintf "cat_%d" (Rng.int rng n_categories)) ]
          "incategory" [];
      ]
  in
  let region name =
    elem name (List.init items_per_region (fun i -> item name i))
  in
  let category i =
    elem
      ~attrs:[ ("id", Printf.sprintf "cat_%d" i) ]
      "category"
      [
        elem
          ~text:(Vocab.sentence text_sampler rng ~min_words:1 ~max_words:3)
          "name" [];
        elem
          ~text:(Vocab.sentence text_sampler rng ~min_words:5 ~max_words:12)
          "details" [];
      ]
  in
  let person i =
    elem
      ~attrs:[ ("id", Printf.sprintf "person_%d" i) ]
      "person"
      [
        elem ~text:(person_name ()) "name" [];
        elem
          ~text:(Printf.sprintf "mail%d@example.net" i)
          "emailaddress" [];
        elem "address"
          [
            elem ~text:(Printf.sprintf "%d main street" (1 + Rng.int rng 99)) "street" [];
            elem ~text:(Rng.pick rng Vocab.cities) "city" [];
            elem ~text:(Rng.pick rng Vocab.countries) "country" [];
          ];
        elem "profile"
          [
            elem ~text:(para !(person_profiles.(i))) "interest" [];
            elem ~text:(string_of_int (18 + Rng.int rng 60)) "age" [];
          ];
      ]
  in
  let bidder () =
    elem "bidder"
      [
        elem ~text:(Printf.sprintf "person_%d" (Rng.int rng n_people)) "personref" [];
        elem ~text:(Printf.sprintf "%d.%02d" (Rng.int rng 200) (Rng.int rng 100)) "increase" [];
      ]
  in
  let open_auction i =
    elem
      ~attrs:[ ("id", Printf.sprintf "open_auction_%d" i) ]
      "open_auction"
      ([
         elem ~text:(Printf.sprintf "%d.%02d" (Rng.int rng 300) (Rng.int rng 100)) "initial" [];
       ]
      @ List.init (1 + Rng.int rng 4) (fun _ -> bidder ())
      @ [
          elem ~text:(Printf.sprintf "item_%s_%d" (Rng.pick rng regions_names) (Rng.int rng items_per_region)) "itemref" [];
          elem ~text:(Printf.sprintf "person_%d" (Rng.int rng n_people)) "seller" [];
          elem "annotation"
            [
              elem ~text:(person_name ()) "author" [];
              elem ~text:(para !(open_annotations.(i))) "details" [];
            ];
        ])
  in
  let closed_auction i =
    elem "closed_auction"
      [
        elem ~text:(Printf.sprintf "person_%d" (Rng.int rng n_people)) "seller" [];
        elem ~text:(Printf.sprintf "person_%d" (Rng.int rng n_people)) "buyer" [];
        elem ~text:(Printf.sprintf "item_%s_%d" (Rng.pick rng regions_names) (Rng.int rng items_per_region)) "itemref" [];
        elem ~text:(Printf.sprintf "%d.%02d" (Rng.int rng 500) (Rng.int rng 100)) "price" [];
        elem "annotation"
          [
            elem ~text:(person_name ()) "author" [];
            elem ~text:(para !(closed_annotations.(i))) "details" [];
          ];
      ]
  in
  build
    (elem "site"
       [
         elem "regions" (Array.to_list (Array.map region regions_names));
         elem "categories" (List.init n_categories category);
         elem "people" (List.init n_people person);
         elem "open_auctions" (List.init n_open open_auction);
         elem "closed_auctions" (List.init n_closed closed_auction);
       ])
