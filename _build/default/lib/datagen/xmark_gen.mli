(** XMark-shaped synthetic corpus.

    Stands in for the three XMark datasets of the paper (standard
    111.1 MB, data1 334.9 MB, data2 669.6 MB): an auction [site] with
    regions/items, categories, people and open/closed auctions — deep,
    repetitive structure whose less meaningful keyword placement drives
    the paper's Figure 6(b–d) (APR' > 0, Max APR near 1).

    The paper's 13 XMark keywords are planted as text words at the
    measured frequencies times [keyword_scale]; the document bulk is
    controlled independently by [items] so the three dataset sizes keep
    the paper's 1 : 3 : 6 ratio at laptop scale.  (Real XMark emits
    [description] elements; we name ours [details] so the planted
    keyword "description" has an exactly controlled frequency.) *)

val keywords : (string * int * int * int) list
(** The paper's XMark keywords with frequencies in (standard, data1,
    data2), e.g. [("particle", 12, 33, 69)]. *)

type size = Standard | Data1 | Data2

type config = {
  seed : int;
  items : int;  (** items per region at [Standard]; scaled x3 / x6 above *)
  keyword_scale : float;
}

val default_config : config
(** [seed = 7], [items = 60], [keyword_scale = 0.05]. *)

val generate : ?config:config -> size -> Xks_xml.Tree.t

val planted_counts : config -> size -> (string * int) list
