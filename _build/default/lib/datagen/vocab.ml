let common =
  [|
    "time"; "year"; "people"; "way"; "day"; "man"; "thing"; "woman"; "life";
    "child"; "world"; "school"; "state"; "family"; "student"; "group";
    "country"; "problem"; "hand"; "part"; "place"; "case"; "week";
    "company"; "system"; "program"; "question"; "work"; "government";
    "number"; "night"; "point"; "home"; "water"; "room"; "mother"; "area";
    "money"; "story"; "fact"; "month"; "lot"; "right"; "study"; "book";
    "eye"; "job"; "word"; "business"; "issue"; "side"; "kind"; "head";
    "house"; "service"; "friend"; "father"; "power"; "hour"; "game";
    "line"; "end"; "member"; "law"; "car"; "city"; "community"; "name";
    "president"; "team"; "minute"; "idea"; "kid"; "body"; "information";
    "back"; "parent"; "face"; "others"; "level"; "office"; "door";
    "health"; "person"; "art"; "war"; "history"; "party"; "result";
    "change"; "morning"; "reason"; "research"; "girl"; "guy"; "moment";
    "air"; "teacher"; "force"; "education"; "foot"; "boy"; "age"; "policy";
    "process"; "music"; "market"; "sense"; "nation"; "plan"; "college";
    "interest"; "death"; "experience"; "effect"; "use"; "class"; "control";
    "care"; "field"; "development"; "role"; "effort"; "rate"; "heart";
    "drug"; "show"; "leader"; "light"; "voice"; "wife"; "police"; "mind";
    "price"; "report"; "decision"; "son"; "view"; "relationship"; "town";
    "road"; "arm"; "difference"; "value"; "building"; "action"; "model";
    "season"; "society"; "tax"; "director"; "position"; "player"; "record";
    "paper"; "space"; "ground"; "form"; "event"; "official"; "matter";
    "center"; "couple"; "site"; "project"; "activity"; "star"; "table";
    "need"; "court"; "american"; "oil"; "situation"; "cost"; "industry";
    "figure"; "street"; "image"; "phone"; "data"; "picture"; "practice";
    "piece"; "land"; "product"; "doctor"; "wall"; "patient"; "worker";
    "news"; "test"; "movie"; "north"; "love"; "support"; "technology";
    "step"; "baby"; "computer"; "type"; "attention"; "film"; "republic";
    "tree"; "source"; "truth"; "environment"; "history"; "rock"; "quality";
    "staff"; "century"; "feeling"; "goal"; "bank"; "department"; "attack";
    "risk"; "fire"; "future"; "stage"; "security"; "purpose"; "trade";
    "concern"; "series"; "language"; "bird"; "glass"; "answer"; "garden";
    "skill"; "sister"; "professor"; "operation"; "financial"; "crime";
    "stock"; "defense"; "analysis"; "current"; "energy"; "property";
    "region"; "television"; "box"; "training"; "pressure"; "arms";
    "brother"; "nature"; "fund"; "chance"; "character"; "disease"; "east";
    "machine"; "income"; "account"; "ball"; "stone"; "authority"; "summer";
    "south"; "window"; "peace"; "organization"; "forest"; "river";
    "mountain"; "village"; "bridge"; "castle"; "journey"; "winter";
    "spring"; "autumn"; "harvest"; "valley"; "island"; "ocean"; "desert";
    "storm"; "thunder"; "silver"; "golden"; "copper"; "marble"; "crystal";
  |]

let cs_terms =
  [|
    "algorithm"; "database"; "index"; "graph"; "network"; "distributed";
    "parallel"; "optimization"; "learning"; "mining"; "clustering";
    "classification"; "estimation"; "approximation"; "complexity";
    "evaluation"; "processing"; "storage"; "transaction"; "concurrency";
    "protocol"; "architecture"; "compiler"; "semantics"; "verification";
    "model"; "framework"; "analysis"; "structure"; "relational";
    "semistructured"; "schema"; "integration"; "warehouse"; "stream";
    "aggregation"; "join"; "selection"; "projection"; "partition";
    "sampling"; "caching"; "replication"; "consistency"; "recovery";
    "logging"; "benchmark"; "workload"; "scalability"; "throughput";
    "latency"; "bandwidth"; "compression"; "encoding"; "encryption";
    "privacy"; "security"; "authentication"; "ranking"; "relevance";
    "precision"; "recall"; "feedback"; "ontology"; "taxonomy"; "wrapper";
    "mediator"; "crawler"; "indexing"; "spatial"; "temporal"; "sequence";
    "probabilistic"; "statistical"; "bayesian"; "markov"; "neural";
    "genetic"; "heuristic"; "greedy"; "incremental"; "adaptive";
    "approximate"; "exact"; "optimal"; "minimal"; "maximal"; "bounded";
  |]

let auction_terms =
  [|
    "auction"; "bidder"; "seller"; "buyer"; "payment"; "shipping";
    "delivery"; "reserve"; "increment"; "listing"; "catalog"; "category";
    "item"; "antique"; "vintage"; "collectible"; "rare"; "mint";
    "condition"; "warranty"; "invoice"; "receipt"; "credit"; "transfer";
    "currency"; "exchange"; "market"; "price"; "discount"; "premium";
    "gallery"; "estate"; "jewelry"; "furniture"; "painting"; "sculpture";
    "ceramic"; "porcelain"; "bronze"; "ivory"; "textile"; "carpet";
    "manuscript"; "edition"; "engraving"; "lithograph"; "photograph";
    "instrument"; "clock"; "watch"; "mirror"; "cabinet"; "chest";
    "wardrobe"; "carriage"; "saddle"; "lantern"; "compass"; "telescope";
    "globe"; "atlas"; "coin"; "medal"; "stamp"; "banknote"; "certificate";
  |]

let first_names =
  [|
    "james"; "mary"; "robert"; "patricia"; "john"; "jennifer"; "michael";
    "linda"; "david"; "elizabeth"; "william"; "barbara"; "richard";
    "susan"; "joseph"; "jessica"; "thomas"; "sarah"; "charles"; "karen";
    "christopher"; "lisa"; "daniel"; "nancy"; "matthew"; "betty";
    "anthony"; "sandra"; "mark"; "margaret"; "donald"; "ashley";
    "steven"; "kimberly"; "andrew"; "emily"; "paul"; "donna"; "joshua";
    "michelle"; "kenneth"; "carol"; "kevin"; "amanda"; "brian"; "dorothy";
    "wei"; "ming"; "hiroshi"; "yuki"; "pierre"; "marie"; "hans"; "greta";
    "ivan"; "olga"; "carlos"; "lucia"; "ahmed"; "fatima"; "raj"; "priya";
  |]

let last_names =
  [|
    "smith"; "johnson"; "williams"; "brown"; "jones"; "garcia"; "miller";
    "davis"; "rodriguez"; "martinez"; "hernandez"; "lopez"; "gonzalez";
    "wilson"; "anderson"; "thomas"; "taylor"; "moore"; "jackson";
    "martin"; "lee"; "perez"; "thompson"; "white"; "harris"; "sanchez";
    "clark"; "ramirez"; "lewis"; "robinson"; "walker"; "young"; "allen";
    "king"; "wright"; "scott"; "torres"; "nguyen"; "hill"; "flores";
    "chen"; "wang"; "zhang"; "liu"; "yang"; "tanaka"; "suzuki"; "sato";
    "mueller"; "schmidt"; "dubois"; "laurent"; "rossi"; "ferrari";
    "kumar"; "singh"; "patel"; "ivanov"; "petrov"; "kowalski";
  |]

let cities =
  [|
    "london"; "paris"; "berlin"; "madrid"; "rome"; "vienna"; "prague";
    "warsaw"; "budapest"; "athens"; "lisbon"; "dublin"; "amsterdam";
    "brussels"; "stockholm"; "oslo"; "helsinki"; "copenhagen"; "zurich";
    "geneva"; "tokyo"; "osaka"; "beijing"; "shanghai"; "seoul"; "delhi";
    "mumbai"; "sydney"; "melbourne"; "toronto"; "montreal"; "chicago";
    "boston"; "seattle"; "denver"; "austin"; "atlanta"; "miami";
  |]

let countries =
  [|
    "france"; "germany"; "spain"; "italy"; "austria"; "poland"; "hungary";
    "greece"; "portugal"; "ireland"; "netherlands"; "belgium"; "sweden";
    "norway"; "finland"; "denmark"; "switzerland"; "japan"; "china";
    "korea"; "india"; "australia"; "canada"; "brazil"; "mexico"; "chile";
  |]

type sampler = { words : string array; cumulative : float array }

let sampler ?(s = 1.0) words =
  if Array.length words = 0 then invalid_arg "Vocab.sampler: empty";
  let n = Array.length words in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (r + 1) ** s));
    cumulative.(r) <- !acc
  done;
  { words; cumulative }

let sample smp rng =
  let n = Array.length smp.words in
  let target = Rng.float rng smp.cumulative.(n - 1) in
  (* Binary search for the first cumulative weight >= target. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if smp.cumulative.(mid) < target then lo := mid + 1 else hi := mid
  done;
  smp.words.(!lo)

let sentence smp rng ~min_words ~max_words =
  let n = min_words + Rng.int rng (max_words - min_words + 1) in
  String.concat " " (List.init n (fun _ -> sample smp rng))
