type workload = { name : string; queries : (string * string list) list }

let dblp_abbreviations =
  [
    ('k', "keyword"); ('s', "similarity"); ('r', "recognition");
    ('a', "algorithm"); ('d', "data"); ('p', "probabilistic"); ('x', "xml");
    ('y', "dynamic"); ('g', "sigmod"); ('t', "tree"); ('q', "query");
    ('u', "automata"); ('n', "pattern"); ('l', "retrieval");
    ('e', "efficient"); ('i', "understanding"); ('c', "searching");
    ('v', "vldb"); ('h', "henry"); ('m', "semantics");
  ]

let xmark_abbreviations =
  [
    ('p', "particle"); ('d', "dominator"); ('t', "threshold");
    ('c', "chronicle"); ('m', "method"); ('s', "strings"); ('u', "unjust");
    ('i', "invention"); ('e', "egypt"); ('l', "leon"); ('v', "preventions");
    ('n', "description"); ('o', "order");
  ]

let expand abbrs mnemonic =
  List.init (String.length mnemonic) (fun i ->
      match List.assoc_opt mnemonic.[i] abbrs with
      | Some w -> w
      | None ->
          invalid_arg
            (Printf.sprintf "Queries.expand: unknown abbreviation %C"
               mnemonic.[i]))

let make name abbrs mnemonics =
  { name; queries = List.map (fun m -> (m, expand abbrs m)) mnemonics }

let dblp =
  make "dblp" dblp_abbreviations
    [
      "ks"; "kr"; "ka"; "dq"; "drpx"; "aygt"; "tqns"; "xtua"; "ype"; "ypel";
      "xkla"; "usc"; "xetdr"; "xdkla"; "xayn"; "vexdkl"; "ushc"; "kpg";
      "kcmse";
    ]

let xmark =
  make "xmark" xmark_abbreviations
    [
      "pt"; "pd"; "pv"; "cm"; "no"; "vn"; "tcm"; "cms"; "ile"; "snc"; "vno";
      "ptcm"; "cmsu"; "suil"; "ipdm"; "vnoi"; "tcmsu"; "ilesn"; "ptcms";
      "ptcmd"; "ptcmv"; "ptcdv"; "ptcdve"; "ptcmve"; "dtcmvo";
    ]
