(** Interned element labels.

    The paper's relational encoding keeps a [label] table mapping each
    distinct element name to a small integer id; we do the same so label
    equality during pruning is an integer comparison.  A {!table} is the
    mutable intern pool; a {!t} is an id valid for the table that produced
    it. *)

type t = int
(** An interned label id.  Ids are dense, starting at 0, in first-seen
    order. *)

type table
(** A mutable label intern pool. *)

val create_table : unit -> table

val intern : table -> string -> t
(** [intern tbl name] returns the id for [name], allocating a fresh id on
    first sight. *)

val find : table -> string -> t option
(** [find tbl name] is the id for [name] if already interned. *)

val name : table -> t -> string
(** [name tbl id] is the string for [id].
    @raise Invalid_argument if [id] was not produced by [tbl]. *)

val count : table -> int
(** Number of distinct labels interned so far. *)

val equal : t -> t -> bool
val compare : t -> t -> int
