(** XML tree model.

    An XML data is modelled as in the paper: a rooted, ordered, labelled
    tree [T = (r, V, E, Sigma, lambda)] where every node carries a label
    and leaf nodes may also carry a text value.  Attributes are kept on
    the node.  Every node is identified both by its preorder rank [id]
    (dense, root = 0) and by its Dewey code; the two orders agree.

    Values of type {!t} are immutable once built. *)

type node = private {
  id : int;  (** preorder rank within the document; the root has id 0 *)
  label : Label.t;  (** interned element name *)
  text : string;  (** concatenated text content, [""] when none *)
  attrs : (string * string) list;  (** attribute name/value pairs *)
  dewey : Dewey.t;
  parent : int;  (** id of the parent node, [-1] for the root *)
  children : node array;
  subtree_end : int;
      (** id of the last node (in preorder) of the subtree rooted here;
          the subtree is exactly the id range [id .. subtree_end]. *)
}

type t
(** A document: a tree plus its label intern table. *)

(** {1 Building} *)

type builder
(** A tree under construction, before ids and Dewey codes are assigned. *)

val elem :
  ?attrs:(string * string) list -> ?text:string -> string -> builder list ->
  builder
(** [elem name children] is an element node named [name].  [text] is its
    direct text content. *)

val build : builder -> t
(** [build b] assigns preorder ids and Dewey codes and freezes the tree. *)

(** {1 Access} *)

val root : t -> node
val size : t -> int
(** Number of nodes. *)

val node : t -> int -> node
(** [node t id] is the node with preorder rank [id].
    @raise Invalid_argument if [id] is out of range. *)

val labels : t -> Label.table
val label_name : t -> node -> string

val find_by_dewey : t -> Dewey.t -> node option
(** Navigate from the root by child ranks. *)

val parent_node : t -> node -> node option

val iter : (node -> unit) -> t -> unit
(** Preorder iteration over all nodes. *)

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
(** Preorder fold over all nodes. *)

val in_subtree : root:node -> node -> bool
(** [in_subtree ~root n] is [true] iff [n] is [root] or a descendant of
    [root] (constant time, via the preorder range). *)

val content_words : t -> node -> string list
(** The content [Cv] of a node: the normalised, stop-word-filtered word
    set implied by its label, text, and attributes (names and values),
    deduplicated and sorted. *)

val node_matches : t -> node -> string -> bool
(** [node_matches t n w] is [true] iff normalised keyword [w] occurs in
    the content of [n]. *)

(** {1 Editing (functional)} *)

val insert_subtree : t -> parent_id:int -> pos:int -> builder -> t
(** [insert_subtree t ~parent_id ~pos b] returns a new document equal to
    [t] with the tree [b] inserted as the [pos]-th child of the node whose
    id is [parent_id].  Used by the axiomatic-property checkers (data
    monotonicity / consistency).
    @raise Invalid_argument if [parent_id] or [pos] is out of range. *)

val delete_subtree : t -> id:int -> t
(** [delete_subtree t ~id] removes the subtree rooted at [id].
    @raise Invalid_argument if [id] is 0 (the root) or out of range. *)

val to_builder : t -> builder
(** Recover a builder from a document (for round-trips and edits). *)

(** {1 Pretty-printing} *)

val pp_node : t -> Format.formatter -> node -> unit
(** One-line ["dewey (label)"] rendering as used in the paper's prose. *)
