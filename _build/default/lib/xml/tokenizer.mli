(** Word extraction.

    The paper defines the content [Cv] of a node as "the word set implied
    in v's label, text and attributes".  This module turns strings into
    that word set: ASCII-lowercased alphanumeric runs, with stop words
    removed.  Keyword matching throughout the library is on these
    normalised words. *)

val normalize : string -> string
(** [normalize w] ASCII-lowercases [w].  Keywords in queries must be
    normalised with this before matching. *)

val words : ?keep_stopwords:bool -> string -> string list
(** [words s] is the list of normalised words of [s] in occurrence order,
    possibly with duplicates.  A word is a maximal run of ASCII letters or
    digits.  Stop words are dropped unless [keep_stopwords] is [true]. *)

val word_set : ?keep_stopwords:bool -> string -> string list
(** [word_set s] is [words s] deduplicated and sorted lexically. *)

val iter_words : ?keep_stopwords:bool -> (string -> unit) -> string -> unit
(** [iter_words f s] calls [f] on each normalised non-stop word of [s] in
    occurrence order, without building a list. *)
