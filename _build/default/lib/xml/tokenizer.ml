let normalize = String.lowercase_ascii

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let iter_words ?(keep_stopwords = false) f s =
  let n = String.length s in
  let emit start stop =
    if stop > start then begin
      let w = normalize (String.sub s start (stop - start)) in
      if keep_stopwords || not (Stopwords.is_stopword w) then f w
    end
  in
  let rec loop i start =
    if i = n then emit start i
    else if is_word_char s.[i] then loop (i + 1) start
    else begin
      emit start i;
      loop (i + 1) (i + 1)
    end
  in
  loop 0 0

let words ?keep_stopwords s =
  let acc = ref [] in
  iter_words ?keep_stopwords (fun w -> acc := w :: !acc) s;
  List.rev !acc

let word_set ?keep_stopwords s =
  List.sort_uniq String.compare (words ?keep_stopwords s)
