(** Dewey codes.

    A Dewey code identifies a node in an XML tree by the sequence of child
    ranks on the path from the root: the root is [[||]]; its third child is
    [[|2|]]; that child's first child is [[|2; 0|]].  Rendered as
    ["0.2.0"], with the leading ["0"] standing for the root as in the
    paper.

    Dewey codes are compatible with preorder: [compare a b < 0] iff the
    node coded [a] precedes the node coded [b] in the preorder (document
    order) traversal.  The lowest common ancestor of two nodes is coded by
    the longest common prefix of their codes. *)

type t = private int array
(** A Dewey code.  The root is the empty array.  Immutable by convention:
    no function in this library mutates a [t] after creation. *)

val root : t
(** The code of the document root. *)

val of_array : int array -> t
(** [of_array a] uses [a] as a Dewey code.  The array is copied.
    @raise Invalid_argument if any component is negative. *)

val of_list : int list -> t
(** [of_list l] is [of_array (Array.of_list l)]. *)

val to_list : t -> int list

val child : t -> int -> t
(** [child d i] is the code of the [i]-th child ([i >= 0]) of the node
    coded [d]. *)

val parent : t -> t option
(** [parent d] is the code of the parent node, or [None] for the root. *)

val depth : t -> int
(** [depth d] is the number of edges from the root; [depth root = 0]. *)

val compare : t -> t -> int
(** Document (preorder) order.  An ancestor precedes its descendants. *)

val equal : t -> t -> bool

val is_ancestor : t -> t -> bool
(** [is_ancestor a d] is [true] iff the node coded [a] is a {e strict}
    ancestor of the node coded [d]. *)

val is_ancestor_or_self : t -> t -> bool
(** Non-strict version of {!is_ancestor}. *)

val lca : t -> t -> t
(** [lca a b] is the code of the lowest common ancestor of the nodes coded
    [a] and [b]: their longest common prefix. *)

val lca_depth : t -> t -> int
(** [lca_depth a b] is [depth (lca a b)] without allocating the prefix. *)

val lca_list : t list -> t
(** [lca_list ds] is the LCA of all codes in [ds].
    @raise Invalid_argument on the empty list. *)

val prefix : t -> int -> t
(** [prefix d n] is the code made of the first [n] components of [d]: the
    ancestor of [d] at depth [n].
    @raise Invalid_argument if [n < 0] or [n > depth d]. *)

val component : t -> int -> int
(** [component d i] is the [i]-th child rank on the path. *)

val to_string : t -> string
(** ["0.2.0.1"]-style rendering; the root renders as ["0"] and every other
    code is prefixed by ["0."], following the paper's figures. *)

val of_string : string -> t
(** Inverse of {!to_string}.
    @raise Invalid_argument on malformed input (including input that does
    not start with the root component ["0"]). *)

val pp : Format.formatter -> t -> unit
