(** A small XPath subset.

    Enough of XPath to scope keyword searches structurally (the paper's
    related work integrates keyword proximity search into structural
    query languages; {!Xks_core.Scoped} builds on this module):

    - absolute paths: [/site/regions] (the first step names the root
      element);
    - child ([/]) and descendant ([//]) steps, with name tests or [*];
    - predicates, any number per step:
      {ul {- [[@id]] — attribute presence;}
          {- [[@id='x']] — attribute equality;}
          {- [[name='text']] — a child element with that label and exact
             (trimmed) text;}
          {- [[.='text']] — the node's own text;}
          {- [[3]] — position among the step's matches under the same
             parent (1-based).}}

    Examples: [//book/title], [/dblp/article[@key='x']/author],
    [//player[position='forward']], [//item[2]]. *)

type t
(** A parsed path expression. *)

val parse : string -> t
(** @raise Invalid_argument on a malformed expression, with a message
    pointing at the offending part. *)

val to_string : t -> string
(** Canonical rendering (round-trips through {!parse}). *)

val eval : Tree.t -> t -> Tree.node list
(** All matching nodes, in document order, without duplicates. *)

val eval_ids : Tree.t -> t -> int list
(** Ids of {!eval}'s nodes. *)
