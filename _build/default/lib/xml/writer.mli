(** XML serialization.

    Writes a {!Tree.t} back to XML text.  Round-tripping through
    {!Parser.parse_string} yields an equal tree (same labels, attributes,
    trimmed text, and shape). *)

val escape_text : string -> string
(** Escape [&], [<] and [>] for character data. *)

val escape_attr : string -> string
(** Escape [&], [<], [>] and the double quote for attribute values. *)

val to_string : ?declaration:bool -> ?indent:int -> Tree.t -> string
(** [to_string t] renders the document.  [declaration] (default [true])
    prepends the XML declaration; [indent] (default [2]) is the
    indentation step — pass [0] for compact single-line output.  Elements
    carrying both text and child elements emit the text first. *)

val to_file : ?declaration:bool -> ?indent:int -> string -> Tree.t -> unit
(** [to_file path t] writes [to_string t] to [path]. *)

val subtree_to_string : ?indent:int -> Tree.t -> Tree.node -> string
(** Render only the subtree rooted at a node (no declaration). *)
