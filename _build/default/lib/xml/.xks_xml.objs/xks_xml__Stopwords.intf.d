lib/xml/stopwords.mli:
