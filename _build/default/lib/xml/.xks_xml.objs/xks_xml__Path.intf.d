lib/xml/path.mli: Tree
