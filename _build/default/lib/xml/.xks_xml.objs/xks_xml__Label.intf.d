lib/xml/label.mli:
