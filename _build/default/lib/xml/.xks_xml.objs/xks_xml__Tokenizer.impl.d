lib/xml/tokenizer.ml: List Stopwords String
