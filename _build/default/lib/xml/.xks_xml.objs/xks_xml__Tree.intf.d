lib/xml/tree.mli: Dewey Format Label
