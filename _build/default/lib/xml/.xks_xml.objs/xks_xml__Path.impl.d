lib/xml/path.ml: Array Hashtbl Int List Printf String Tree
