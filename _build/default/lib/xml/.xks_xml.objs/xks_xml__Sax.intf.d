lib/xml/sax.mli:
