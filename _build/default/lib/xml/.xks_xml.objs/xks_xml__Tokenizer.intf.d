lib/xml/tokenizer.mli:
