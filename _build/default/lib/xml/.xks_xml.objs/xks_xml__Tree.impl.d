lib/xml/tree.ml: Array Dewey Format Label List String Tokenizer
