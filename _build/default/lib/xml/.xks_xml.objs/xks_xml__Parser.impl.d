lib/xml/parser.ml: Buffer List Printf Sax String Tree
