lib/xml/sax.ml: Buffer Char Fun List Printf String
