lib/xml/label.ml: Array Hashtbl Int
