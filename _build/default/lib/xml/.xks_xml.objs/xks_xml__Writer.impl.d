lib/xml/writer.ml: Array Buffer Fun List String Tree
