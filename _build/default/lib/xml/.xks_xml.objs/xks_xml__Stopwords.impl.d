lib/xml/stopwords.ml: Hashtbl List
