(** English stop words.

    The paper filters stop words out of node contents before indexing
    (using Lucene's filter and the syger.com English list).  This module
    provides the classic English stop-word list so that tokenisation
    reproduces that preprocessing. *)

val is_stopword : string -> bool
(** [is_stopword w] is [true] iff the {e lowercase} word [w] is in the
    built-in English stop-word list. *)

val all : unit -> string list
(** The full list, lowercase, in unspecified order. *)
