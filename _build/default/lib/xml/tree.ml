type node = {
  id : int;
  label : Label.t;
  text : string;
  attrs : (string * string) list;
  dewey : Dewey.t;
  parent : int;
  children : node array;
  subtree_end : int;
}

type t = { root_node : node; nodes : node array; label_table : Label.table }

type builder = {
  b_label : string;
  b_attrs : (string * string) list;
  b_text : string;
  b_children : builder list;
}

let elem ?(attrs = []) ?(text = "") label children =
  { b_label = label; b_attrs = attrs; b_text = text; b_children = children }

let count_builder b =
  let rec loop acc b = List.fold_left loop (acc + 1) b.b_children in
  loop 0 b

let build b =
  let label_table = Label.create_table () in
  let n = count_builder b in
  let nodes = Array.make n None in
  let next = ref 0 in
  let rec go b dewey parent =
    let id = !next in
    incr next;
    (* Intern before recursing so label ids follow document order. *)
    let label = Label.intern label_table b.b_label in
    let children =
      Array.of_list
        (List.mapi (fun i c -> go c (Dewey.child dewey i) id) b.b_children)
    in
    let node =
      {
        id;
        label;
        text = b.b_text;
        attrs = b.b_attrs;
        dewey;
        parent;
        children;
        subtree_end = !next - 1;
      }
    in
    nodes.(id) <- Some node;
    node
  in
  let root_node = go b Dewey.root (-1) in
  let nodes =
    Array.map
      (function Some n -> n | None -> assert false (* all slots filled *))
      nodes
  in
  { root_node; nodes; label_table }

let root t = t.root_node
let size t = Array.length t.nodes

let node t id =
  if id < 0 || id >= Array.length t.nodes then invalid_arg "Tree.node";
  t.nodes.(id)

let labels t = t.label_table
let label_name t n = Label.name t.label_table n.label

let find_by_dewey t d =
  let rec go n i =
    if i = Dewey.depth d then Some n
    else
      let c = Dewey.component d i in
      if c < Array.length n.children then go n.children.(c) (i + 1) else None
  in
  go t.root_node 0

let parent_node t n = if n.parent < 0 then None else Some t.nodes.(n.parent)
let iter f t = Array.iter f t.nodes
let fold f init t = Array.fold_left f init t.nodes

let in_subtree ~root n = n.id >= root.id && n.id <= root.subtree_end

let content_words t n =
  let buf = ref [] in
  let add s = Tokenizer.iter_words (fun w -> buf := w :: !buf) s in
  add (label_name t n);
  add n.text;
  List.iter
    (fun (k, v) ->
      add k;
      add v)
    n.attrs;
  List.sort_uniq String.compare !buf

let node_matches t n w = List.mem w (content_words t n)

let rec builder_of_node t n =
  {
    b_label = label_name t n;
    b_attrs = n.attrs;
    b_text = n.text;
    b_children = Array.to_list (Array.map (builder_of_node t) n.children);
  }

let to_builder t = builder_of_node t t.root_node

let insert_at l pos x =
  if pos < 0 || pos > List.length l then invalid_arg "Tree.insert_subtree: pos";
  let rec go i = function
    | rest when i = pos -> x :: rest
    | [] -> invalid_arg "Tree.insert_subtree: pos"
    | y :: rest -> y :: go (i + 1) rest
  in
  go 0 l

let insert_subtree t ~parent_id ~pos b =
  if parent_id < 0 || parent_id >= size t then
    invalid_arg "Tree.insert_subtree: parent_id";
  (* Rebuild via builders: documents are small enough for the axiomatic
     checkers this supports, and rebuilding keeps ids and Dewey codes
     consistent by construction. *)
  let rec go n =
    let children = Array.to_list (Array.map go n.children) in
    let children =
      if n.id = parent_id then insert_at children pos b else children
    in
    {
      b_label = label_name t n;
      b_attrs = n.attrs;
      b_text = n.text;
      b_children = children;
    }
  in
  build (go t.root_node)

let delete_subtree t ~id =
  if id <= 0 || id >= size t then invalid_arg "Tree.delete_subtree: id";
  let rec go n =
    let children =
      Array.to_list n.children
      |> List.filter (fun (c : node) -> c.id <> id)
      |> List.map go
    in
    {
      b_label = label_name t n;
      b_attrs = n.attrs;
      b_text = n.text;
      b_children = children;
    }
  in
  build (go t.root_node)

let pp_node t fmt n =
  Format.fprintf fmt "%s (%s)" (Dewey.to_string n.dewey) (label_name t n)
