let escape buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:true s;
  Buffer.contents buf

let render_node buf ~indent t (n : Tree.node) =
  let pad depth =
    if indent > 0 then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec go depth (n : Tree.node) =
    pad depth;
    let name = Tree.label_name t n in
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape buf ~attr:true v;
        Buffer.add_char buf '"')
      n.attrs;
    if n.text = "" && Array.length n.children = 0 then
      Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      if n.text <> "" then begin
        if Array.length n.children > 0 then pad (depth + 1);
        escape buf ~attr:false n.text
      end;
      Array.iter (go (depth + 1)) n.children;
      if Array.length n.children > 0 then pad depth;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_char buf '>'
    end
  in
  go 0 n

let subtree_to_string ?(indent = 2) t n =
  let buf = Buffer.create 1024 in
  render_node buf ~indent t n;
  Buffer.contents buf

let to_string ?(declaration = true) ?(indent = 2) t =
  let buf = Buffer.create 4096 in
  if declaration then begin
    Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if indent > 0 then Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf (subtree_to_string ~indent t (Tree.root t));
  if indent > 0 then Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file ?declaration ?indent path t =
  let oc = open_out_bin path in
  let finally () = close_out_noerr oc in
  Fun.protect ~finally (fun () ->
      output_string oc (to_string ?declaration ?indent t))
