lib/metrics/metrics.ml: Format Fragment List Pipeline Xks_core
