lib/metrics/metrics.mli: Format Xks_core
