(** Effectiveness metrics of the paper's Section 5.1.

    For a query, let [A] be the LCA nodes, [V] the meaningful RTFs from
    ValidRTF and [X] the fragments from (revised) MaxMatch — [V] and [X]
    are rooted at the same LCAs.  Then:

    - CFR (common fragment ratio) [= |V ∩ X| / |A|]: the fraction of LCAs
      where both algorithms return the identical node set;
    - per-LCA pruning ratio [xv_a = |x_a - v_a| / |x_a|]: the share of
      MaxMatch's fragment that ValidRTF discards on top;
    - Max APR [= max_a xv_a];
    - APR [= sum_a xv_a / |V - V ∩ X|]: the mean ratio over the fragments
      ValidRTF further prunes;
    - APR' : APR recomputed after discarding the single extreme fragment
      attaining Max APR (the paper splits it out because the extreme RTF —
      usually the one rooted near the document root — masks the regular
      ones). *)

type t = {
  lca_count : int;  (** |A| *)
  common : int;  (** |V ∩ X| *)
  cfr : float;  (** 1.0 when both algorithms agree everywhere; 1.0 for empty [A] *)
  apr : float;  (** 0.0 when ValidRTF prunes nothing further *)
  apr' : float;  (** APR without the extreme fragment *)
  max_apr : float;
}

val compare_results :
  validrtf:Xks_core.Pipeline.result -> maxmatch:Xks_core.Pipeline.result -> t
(** Compute all metrics.  The two results must come from the same query
    and LCA algorithm (same roots in the same order).
    @raise Invalid_argument when the LCA lists differ. *)

val pp : Format.formatter -> t -> unit
