type t = {
  lca_count : int;
  common : int;
  cfr : float;
  apr : float;
  apr' : float;
  max_apr : float;
}

let compare_results ~validrtf ~maxmatch =
  let open Xks_core in
  if validrtf.Pipeline.lcas <> maxmatch.Pipeline.lcas then
    invalid_arg "Metrics.compare_results: different LCA sets";
  let pairs = List.combine validrtf.fragments maxmatch.fragments in
  let lca_count = List.length pairs in
  let ratios =
    List.map
      (fun (v, x) ->
        let discarded = Fragment.diff_count x v in
        if Fragment.size x = 0 then 0.0
        else float_of_int discarded /. float_of_int (Fragment.size x))
      pairs
  in
  let common =
    List.fold_left2
      (fun acc (v, x) r ->
        ignore r;
        if Fragment.equal v x then acc + 1 else acc)
      0 pairs ratios
  in
  let sum = List.fold_left ( +. ) 0.0 ratios in
  let max_apr = List.fold_left max 0.0 ratios in
  (* |V - V ∩ X|: the fragments ValidRTF and MaxMatch disagree on. *)
  let count = lca_count - common in
  let apr = if count = 0 then 0.0 else sum /. float_of_int count in
  let apr' =
    if count <= 1 then 0.0 else (sum -. max_apr) /. float_of_int (count - 1)
  in
  let cfr =
    if lca_count = 0 then 1.0
    else float_of_int common /. float_of_int lca_count
  in
  { lca_count; common; cfr; apr; apr'; max_apr }

let pp fmt m =
  Format.fprintf fmt
    "LCAs=%d common=%d CFR=%.3f APR=%.3f APR'=%.3f MaxAPR=%.3f" m.lca_count
    m.common m.cfr m.apr m.apr' m.max_apr
