(* Machine-readable bench artifacts: BENCH_fig5.json / BENCH_fig6.json.

   Each figure accumulates one entry per dataset over a harness
   invocation (the `all` command runs four panels); the file is
   rewritten after every panel so a partial run still leaves a valid
   document.  These files seed the perf trajectory — commit them (or
   diff them in CI) to make regressions visible. *)

module J = Xks_trace.Json

(* Where the artifacts go; the CLI points this at --out when given. *)
let out_dir = ref "."

let path figure = Filename.concat !out_dir ("BENCH_" ^ figure ^ ".json")

let counters_json counters =
  J.Obj (List.map (fun (name, v) -> (name, J.Int v)) counters)

(* Percentile fields of one timing distribution, prefixed with the
   algorithm name: maxmatch_ms, maxmatch_p50_ms, ... *)
let dist_fields prefix (d : Runner.dist) =
  [
    (prefix ^ "_ms", J.Float d.Runner.mean_ms);
    (prefix ^ "_p50_ms", J.Float d.Runner.p50_ms);
    (prefix ^ "_p95_ms", J.Float d.Runner.p95_ms);
    (prefix ^ "_p99_ms", J.Float d.Runner.p99_ms);
  ]

let fig5_row (r : Runner.row) =
  J.Obj
    ([
       ("query", J.String r.mnemonic);
       ("keywords", J.List (List.map (fun w -> J.String w) r.keywords));
     ]
    @ dist_fields "maxmatch" r.maxmatch
    @ dist_fields "validrtf" r.validrtf
    @ [ ("rtfs", J.Int r.rtf_count); ("counters", counters_json r.counters) ])

let fig6_row (r : Runner.row) =
  let m = r.metrics in
  J.Obj
    [
      ("query", J.String r.mnemonic);
      ("keywords", J.List (List.map (fun w -> J.String w) r.keywords));
      ("cfr", J.Float m.Xks_metrics.Metrics.cfr);
      ("apr_prime", J.Float m.Xks_metrics.Metrics.apr');
      ("max_apr", J.Float m.Xks_metrics.Metrics.max_apr);
      ("counters", counters_json r.counters);
    ]

(* figure -> (dataset, rows) in first-recorded order *)
let acc : (string, (string * J.t) list ref) Hashtbl.t = Hashtbl.create 4

(* Panels already on disk from a previous invocation: a single
   `fig5 --dataset xmark1` run must update that panel without dropping
   the other datasets' baselines. *)
let panels_on_disk figure =
  let file = path figure in
  if not (Sys.file_exists file) then []
  else
    try
      let ic = open_in_bin file in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match J.member "datasets" (J.parse s) with
      | Some (J.List panels) ->
          List.filter_map
            (fun p ->
              match J.member "dataset" p with
              | Some (J.String d) -> (
                  match J.member "rows" p with
                  | Some rows -> Some (d, rows)
                  | None -> None)
              | Some (J.Null | J.Bool _ | J.Int _ | J.Float _ | J.List _ | J.Obj _)
              | None ->
                  None)
            panels
      | Some (J.Null | J.Bool _ | J.Int _ | J.Float _ | J.String _ | J.Obj _)
      | None ->
          []
    with
    (* Corrupt or foreign file: start over.  Only the expected read and
       parse failures are absorbed — an asynchronous exception
       (Out_of_memory, Stack_overflow) must still escape. *)
    | Sys_error _ | End_of_file | J.Parse_error _ ->
      []

let write figure =
  let panels = match Hashtbl.find_opt acc figure with
    | Some l -> !l
    | None -> []
  in
  let doc =
    J.Obj
      [
        ("figure", J.String figure);
        ("unit", J.String "ms");
        ( "datasets",
          J.List
            (List.map
               (fun (dataset, rows) ->
                 J.Obj [ ("dataset", J.String dataset); ("rows", rows) ])
               panels) );
      ]
  in
  let file = path figure in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Printf.printf "# wrote %s\n" file

let record ~figure ~dataset rows =
  let panels =
    match Hashtbl.find_opt acc figure with
    | Some l -> l
    | None ->
        let l = ref (panels_on_disk figure) in
        Hashtbl.add acc figure l;
        l
  in
  let entry = (dataset, J.List rows) in
  panels :=
    (if List.mem_assoc dataset !panels then
       List.map (fun (d, r) -> if d = dataset then entry else (d, r)) !panels
     else !panels @ [ entry ]);
  write figure

let record_fig5 ~dataset rows =
  record ~figure:"fig5" ~dataset (List.map fig5_row rows)

let record_fig6 ~dataset rows =
  record ~figure:"fig6" ~dataset (List.map fig6_row rows)

(* --- BENCH_throughput.json: batch-execution scaling --- *)

type throughput_row = {
  jobs : int;  (* requested worker count for the row *)
  workers : int;  (* actual pool size after capping at the host's domains *)
  passes_ms : float list;  (* every timed pass, in pass order *)
  elapsed_ms : float;  (* median of passes_ms *)
  qps : float;
  speedup : float;
      (* median over pass index k of (baseline pass k / this row's pass
         k), the baseline being the same section's jobs = 1 row.  The
         sections are swept as interleaved rounds, so pass k of every
         row ran back to back — pairing cancels the slow load drift a
         shared host superimposes on separately-timed rows. *)
  speedup_vs_cold : float option;
      (* warm rows only: qps over the cold jobs = 1 qps — the honest
         cache win, kept separate from the within-section scaling column *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
}

let throughput_row_json r =
  J.Obj
    ([
       ("jobs", J.Int r.jobs);
       ("workers", J.Int r.workers);
       ("passes_ms", J.List (List.map (fun p -> J.Float p) r.passes_ms));
       ("elapsed_ms", J.Float r.elapsed_ms);
       ("qps", J.Float r.qps);
       ("speedup", J.Float r.speedup);
     ]
    @ (match r.speedup_vs_cold with
      | Some s -> [ ("speedup_vs_cold", J.Float s) ]
      | None -> [])
    @ [
        ("cache_hits", J.Int r.cache_hits);
        ("cache_misses", J.Int r.cache_misses);
        ("cache_evictions", J.Int r.cache_evictions);
      ])

(* Upper median: sorted element at index n/2.  json_check recomputes
   medians and paired speedups from [passes_ms], so the definition must
   match on both sides exactly. *)
let median_ms l =
  match Array.of_list (List.sort Float.compare l) with
  | [||] -> invalid_arg "Bench_json.median_ms: empty"
  | sorted -> sorted.(Array.length sorted / 2)

let write_doc figure doc =
  let file = path figure in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Printf.printf "# wrote %s\n" file

(* Unlike the figure files this one is written whole — a throughput run
   always sweeps every jobs value, so there are no panels to merge.
   [cold] is the primary cache-off scaling sweep (always present);
   [warm] the optional cache-served sweep (omitted under --cold-only).
   [host_domains] records [Domain.recommended_domain_count] on the
   machine that produced the artifact, so json_check can pick the right
   cold-scaling floor. *)
let record_throughput ~dataset ~queries ~distinct ~cache_mb ~host_domains
    ~cold ~warm () =
  let warm_field =
    match warm with
    | [] -> []
    | _ :: _ -> [ ("rows", J.List (List.map throughput_row_json warm)) ]
  in
  write_doc "throughput"
    (J.Obj
       ([
          ("figure", J.String "throughput");
          ("unit", J.String "qps");
          ("dataset", J.String dataset);
          ("queries", J.Int queries);
          ("distinct", J.Int distinct);
          ("cache_mb", J.Int cache_mb);
          ("host_domains", J.Int host_domains);
          ("cold", J.List (List.map throughput_row_json cold));
        ]
       @ warm_field))

(* --- BENCH_topk.json: ranked top-k vs full enumeration --- *)

type topk_row = {
  tk_query : string list;
  tk_class : string;  (* "high_df" | "low_df" *)
  tk_hits : int;  (* hits returned by the top-k path (<= k) *)
  tk_scores : float list;  (* their BM25 scores, best first *)
  tk_early_exit : int;  (* topk.early_exit of one traced run *)
  tk_pruned : int;  (* topk.pruned_postings of the same run *)
  tk_topk_cold_ms : float;  (* first execution of the query, each path *)
  tk_full_cold_ms : float;
  tk_topk : Runner.dist;  (* warm repetitions, each path *)
  tk_full : Runner.dist;
}

let topk_row_json r =
  J.Obj
    ([
       ("query", J.String (String.concat " " r.tk_query));
       ("class", J.String r.tk_class);
       ("hits", J.Int r.tk_hits);
       ("scores", J.List (List.map (fun s -> J.Float s) r.tk_scores));
       ("early_exit", J.Int r.tk_early_exit);
       ("pruned_postings", J.Int r.tk_pruned);
       ("topk_cold_ms", J.Float r.tk_topk_cold_ms);
       ("full_cold_ms", J.Float r.tk_full_cold_ms);
     ]
    @ dist_fields "topk" r.tk_topk
    @ dist_fields "full" r.tk_full)

(* Per-class roll-up; json_check re-derives every field from the rows
   (the medians with its own [median] — same upper-median definition as
   [median_ms]) and then checks the contract against the high_df
   entry. *)
let topk_class_json rows c =
  let sub = List.filter (fun r -> r.tk_class = c) rows in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 sub in
  J.Obj
    [
      ("class", J.String c);
      ("queries", J.Int (List.length sub));
      ("early_exit", J.Int (sum (fun r -> r.tk_early_exit)));
      ("pruned_postings", J.Int (sum (fun r -> r.tk_pruned)));
      ( "topk_p50_ms",
        J.Float (median_ms (List.map (fun r -> r.tk_topk.Runner.p50_ms) sub))
      );
      ( "full_p50_ms",
        J.Float (median_ms (List.map (fun r -> r.tk_full.Runner.p50_ms) sub))
      );
    ]

let record_topk ~dataset ~k ~reps rows =
  let classes =
    List.sort_uniq String.compare (List.map (fun r -> r.tk_class) rows)
  in
  write_doc "topk"
    (J.Obj
       [
         ("figure", J.String "topk");
         ("unit", J.String "ms");
         ("dataset", J.String dataset);
         ("k", J.Int k);
         ("reps", J.Int reps);
         ("rows", J.List (List.map topk_row_json rows));
         ("classes", J.List (List.map (topk_class_json rows) classes));
       ])

(* --- BENCH_serving.json: HTTP serving layer under offered load --- *)

type serving_level = {
  label : string;  (* capacity | below | at | above *)
  mode : string;  (* "closed" (concurrency-bound) or "open" (rate-bound) *)
  offered_qps : float;  (* scheduled arrival rate; 0.0 for closed loops *)
  sent : int;
  ok : int;  (* 2xx responses *)
  rejected : int;  (* well-formed 503 sheds *)
  failed : int;  (* protocol errors, timeouts, malformed rejections *)
  degraded : int;  (* ok responses carrying a degradation reason *)
  elapsed_s : float;
  achieved_qps : float;  (* ok / elapsed_s *)
  p50_ms : float;  (* latency percentiles over ok responses; open-loop *)
  p95_ms : float;  (* latencies count from the scheduled arrival, so *)
  p99_ms : float;  (* generator backlog is charged, not hidden *)
}

type serving_shutdown = {
  burst : int;  (* keep-alive connections in flight at shutdown *)
  completed : int;  (* got a final response + connection: close *)
  closed : int;  (* cut mid-request at the drain deadline *)
  sd_failed : int;  (* anything else — must be zero *)
  exit_ok : bool;  (* server run loop returned and removed its socket *)
}

let serving_level_json l =
  J.Obj
    [
      ("label", J.String l.label);
      ("mode", J.String l.mode);
      ("offered_qps", J.Float l.offered_qps);
      ("sent", J.Int l.sent);
      ("ok", J.Int l.ok);
      ("rejected", J.Int l.rejected);
      ("failed", J.Int l.failed);
      ("degraded", J.Int l.degraded);
      ("elapsed_s", J.Float l.elapsed_s);
      ("achieved_qps", J.Float l.achieved_qps);
      ("p50_ms", J.Float l.p50_ms);
      ("p95_ms", J.Float l.p95_ms);
      ("p99_ms", J.Float l.p99_ms);
    ]

let record_serving ~dataset ~workers ~queue ~deadline_ms ~capacity_qps
    ~latency_bound_ms ~levels ~shutdown:sd =
  write_doc "serving"
    (J.Obj
       [
         ("figure", J.String "serving");
         ("unit", J.String "qps");
         ("dataset", J.String dataset);
         ("workers", J.Int workers);
         ("queue", J.Int queue);
         ("deadline_ms", J.Int deadline_ms);
         ("capacity_qps", J.Float capacity_qps);
         ("latency_bound_ms", J.Float latency_bound_ms);
         ("levels", J.List (List.map serving_level_json levels));
         ( "shutdown",
           J.Obj
             [
               ("burst", J.Int sd.burst);
               ("completed", J.Int sd.completed);
               ("closed", J.Int sd.closed);
               ("failed", J.Int sd.sd_failed);
               ("exit_ok", J.Bool sd.exit_ok);
             ] );
       ])
