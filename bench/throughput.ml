(* Throughput sweep for the batch execution layer (lib/exec).

   Workload: [distinct] generated DBLP queries expanded to [queries]
   submissions under a Zipf(1.1) popularity law — a keyword-search
   service sees repeated queries, which is exactly what the result
   cache exploits.

   Two sections, both swept over the same jobs values and both running
   through [Exec.search_batch] over a [Pool] (including jobs = 1, so
   every row pays the same submission machinery and the speedup columns
   measure {e scaling}, not pool-vs-no-pool overhead):

   - The {b cold} section is the primary scaling measurement: result
     cache off, every query computed.  This is where a scaling
     regression shows — cold jobs > 1 must not be slower than cold
     jobs = 1.  Each row records [workers], the pool's actual domain
     count after capping at [Domain.recommended_domain_count]: on a
     small host high jobs rows collapse onto the same worker count, and
     their speedup legitimately flattens near 1.0 instead of sinking.

   - The {b warm} section reruns the sweep with a per-row result cache
     that is filled by an untimed pre-warming pass first, so the timed
     pass is cache-served.  Its [speedup] column is normalised against
     the {e warmed} jobs = 1 row — warm and cold rows are never mixed
     in one ratio (an earlier version did exactly that and printed a
     fantasy 14x).  The honest cache win is the separate
     [speedup_vs_cold] column: warm qps over the cold jobs = 1 qps.

   json_check validates the emitted BENCH_throughput.json, including
   the cold-scaling floors keyed on the recorded [host_domains].
   EXPERIMENTS.md spells out the methodology. *)

module Engine = Xks_core.Engine
module Exec = Xks_exec.Exec
module Cache = Xks_exec.Cache
module Pool = Xks_exec.Pool

(* [queries] draws from [pool_queries] under Zipf(1.1), deterministic in
   [seed]. *)
let zipf_workload ~seed ~queries pool_queries =
  let n = Array.length pool_queries in
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** 1.1));
    cumulative.(i) <- !total
  done;
  let rng = Random.State.make [| seed; queries; n |] in
  let sample () =
    let u = Random.State.float rng !total in
    let rec find i = if i >= n - 1 || cumulative.(i) > u then i else find (i + 1) in
    pool_queries.(find 0)
  in
  let rec build k acc = if k = 0 then List.rev acc else build (k - 1) (sample () :: acc) in
  build queries []

let run ?(jobs_list = [ 1; 2; 4; 8 ]) ?(queries = 400) ?(distinct = 40)
    ?(cache_mb = 32) ?(cold_only = false) ?(repeats = 3) () =
  let dataset = Datasets.find "dblp" in
  let engine = Runner.load dataset in
  let pool_queries =
    Array.of_list
      (Xks_datagen.Workload_gen.generate ~seed:77 ~count:distinct
         (Engine.index engine))
  in
  let workload = zipf_workload ~seed:4242 ~queries pool_queries in
  (* Warm the engine once, untimed: first touches of postings and the
     minor heap should not be charged to whichever row runs first. *)
  Array.iter
    (fun ws -> ignore (Engine.search engine ws : Engine.hit list))
    pool_queries;
  let stats cache =
    match cache with
    | Some c -> Cache.stats c
    | None ->
        { Cache.hits = 0; misses = 0; evictions = 0; entries = 0; bytes = 0 }
  in
  (* One section = the whole jobs sweep, timed as [repeats] {e
     interleaved} round-robin passes (pass 1 of every row, then pass 2
     of every row, ...) keeping each row's {e median} pass.  The rows
     are compared against hard speedup floors downstream, which forces
     two choices: interleaving — consecutive passes of one row share
     whatever noise window (neighbor load, GC pacing) the host is in,
     so best-of-consecutive carries a systematic skew between early and
     late rows — and the median rather than the minimum, because on a
     shared host the fastest pass is a fat-tailed lottery one row wins
     and another doesn't, while medians of identically-distributed rows
     agree.  Idle pools just park their workers on a condition
     variable, so keeping all of them alive for the section costs
     nothing measurable. *)
  let sweep ~warm =
    let cells =
      List.map
        (fun jobs ->
          let pool = Pool.create ~size:jobs () in
          let cache =
            if warm then
              Some (Cache.create ~max_bytes:(cache_mb * 1024 * 1024) ())
            else None
          in
          (* Pre-warming pass, untimed: fills the cache so the timed
             passes measure cache-served throughput, not fill cost. *)
          (match cache with
          | Some _ ->
              ignore
                (Exec.search_batch ~pool ?cache engine workload
                  : Engine.hit list array)
          | None -> ());
          (jobs, pool, cache, ref []))
        jobs_list
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (_, pool, _, _) -> Pool.shutdown pool) cells)
      (fun () ->
        let cells_arr = Array.of_list cells in
        let ncells = Array.length cells_arr in
        for pass = 0 to max 1 repeats - 1 do
          (* Rotate the within-round order each round: the slot right
             after a round boundary is systematically different from
             the last slot (GC debt, cache state), and a fixed order
             would hand that bias to the same row every round. *)
          for j = 0 to ncells - 1 do
            let _, pool, cache, passes = cells_arr.((pass + j) mod ncells) in
            (* Settle the major heap before each pass, so GC pacing
               drift across the sweep is not charged to late rows. *)
            Gc.full_major ();
            let before = stats cache in
            let elapsed_ms, _ =
              Runner.time_ms (fun () ->
                  Exec.search_batch ~pool ?cache engine workload)
            in
            let after = stats cache in
            passes := (elapsed_ms, before, after) :: !passes
          done
        done;
        List.map
          (fun (jobs, pool, _, passes) ->
            let passes = List.rev !passes in
            let passes_ms = List.map (fun (e, _, _) -> e) passes in
            let elapsed_ms = Bench_json.median_ms passes_ms in
            let before, after =
              (* The cache-traffic columns report the median pass's
                 stats delta. *)
              match
                List.find_opt (fun (e, _, _) -> e = elapsed_ms) passes
              with
              | Some (_, b, a) -> (b, a)
              | None -> assert false
            in
            {
              Bench_json.jobs;
              workers = Pool.size pool;
              passes_ms;
              elapsed_ms;
              qps = float_of_int queries /. (elapsed_ms /. 1000.0);
              speedup = 1.0;
              speedup_vs_cold = None;
              cache_hits = after.Cache.hits - before.Cache.hits;
              cache_misses = after.Cache.misses - before.Cache.misses;
              cache_evictions = after.Cache.evictions - before.Cache.evictions;
            })
          cells)
  in
  (* Each section is normalized against its own jobs = 1 row, pairing
     pass k against baseline pass k (see Bench_json.throughput_row). *)
  let normalize rows =
    let base =
      match List.find_opt (fun r -> r.Bench_json.jobs = 1) rows with
      | Some r -> r
      | None -> (
          match rows with
          | r :: _ -> r
          | [] -> invalid_arg "Throughput.run: empty jobs list")
    in
    List.map
      (fun r ->
        {
          r with
          Bench_json.speedup =
            Bench_json.median_ms
              (List.map2 (fun b p -> b /. p) base.Bench_json.passes_ms
                 r.Bench_json.passes_ms);
        })
      rows
  in
  let print_table title rows =
    print_endline title;
    Printf.printf "%6s %8s %12s %10s %8s %10s %10s %10s %10s\n" "jobs"
      "workers" "elapsed(ms)" "qps" "speedup" "vs-cold" "hits" "misses"
      "evicted";
    List.iter
      (fun (r : Bench_json.throughput_row) ->
        Printf.printf "%6d %8d %12.1f %10.1f %7.2fx %10s %10d %10d %10d\n"
          r.jobs r.workers r.elapsed_ms r.qps r.speedup
          (match r.speedup_vs_cold with
          | Some s -> Printf.sprintf "%.2fx" s
          | None -> "-")
          r.cache_hits r.cache_misses r.cache_evictions)
      rows
  in
  let cold_rows = normalize (sweep ~warm:false) in
  print_table
    (Printf.sprintf
       "\n\
        ## Throughput cold path (%s): %d queries, %d distinct, zipf \
        repeats, result cache off"
       dataset.Datasets.name queries distinct)
    cold_rows;
  let cold_base_qps =
    match List.find_opt (fun r -> r.Bench_json.jobs = 1) cold_rows with
    | Some r -> Some r.Bench_json.qps
    | None -> None
  in
  let warm_rows =
    if cold_only then []
    else begin
      let rows =
        normalize (sweep ~warm:true)
        |> List.map (fun r ->
               {
                 r with
                 Bench_json.speedup_vs_cold =
                   Option.map (fun b -> r.Bench_json.qps /. b) cold_base_qps;
               })
      in
      print_table
        (Printf.sprintf
           "\n\
            ## Throughput warm path (%s): same workload, cache-served \
            (pre-warmed %d MB cache)"
           dataset.Datasets.name cache_mb)
        rows;
      rows
    end
  in
  Bench_json.record_throughput ~dataset:dataset.Datasets.name ~queries
    ~distinct ~cache_mb
    ~host_domains:(Domain.recommended_domain_count ())
    ~cold:cold_rows ~warm:warm_rows ()
