(* Throughput sweep for the batch execution layer (lib/exec).

   Workload: [distinct] generated DBLP queries expanded to [queries]
   submissions under a Zipf(1.1) popularity law — a keyword-search
   service sees repeated queries, which is exactly what the result
   cache exploits.  The jobs = 1 row is the pre-existing sequential
   path (one Engine.search per query, no pool, no cache): the baseline
   a single-query caller gets.  Rows with jobs > 1 push the same
   workload through Exec.search_batch over a pool of [jobs] worker
   domains fronted by a fresh [cache_mb] MB cache — cold at the start
   of each row, so every hit comes from repeats inside the workload.

   On a single-core host the extra domains buy no parallelism, so the
   speedup column isolates what the sharded cache earns on a
   repeat-heavy workload; on a multi-core host both effects stack.
   EXPERIMENTS.md spells out the methodology. *)

module Engine = Xks_core.Engine
module Exec = Xks_exec.Exec
module Cache = Xks_exec.Cache
module Pool = Xks_exec.Pool

(* [queries] draws from [pool_queries] under Zipf(1.1), deterministic in
   [seed]. *)
let zipf_workload ~seed ~queries pool_queries =
  let n = Array.length pool_queries in
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** 1.1));
    cumulative.(i) <- !total
  done;
  let rng = Random.State.make [| seed; queries; n |] in
  let sample () =
    let u = Random.State.float rng !total in
    let rec find i = if i >= n - 1 || cumulative.(i) > u then i else find (i + 1) in
    pool_queries.(find 0)
  in
  let rec build k acc = if k = 0 then List.rev acc else build (k - 1) (sample () :: acc) in
  build queries []

let run ?(jobs_list = [ 1; 2; 4; 8 ]) ?(queries = 400) ?(distinct = 40)
    ?(cache_mb = 32) ?(cold = false) () =
  let dataset = Datasets.find "dblp" in
  let engine = Runner.load dataset in
  let pool_queries =
    Array.of_list
      (Xks_datagen.Workload_gen.generate ~seed:77 ~count:distinct
         (Engine.index engine))
  in
  let workload = zipf_workload ~seed:4242 ~queries pool_queries in
  (* Warm the engine once, untimed: first touches of postings and the
     minor heap should not be charged to whichever row runs first. *)
  Array.iter
    (fun ws -> ignore (Engine.search engine ws : Engine.hit list))
    pool_queries;
  let time_row ~use_cache jobs =
    if jobs = 1 then
      let elapsed_ms, () =
        Runner.time_ms (fun () ->
            List.iter
              (fun ws -> ignore (Engine.search engine ws : Engine.hit list))
              workload)
      in
      {
        Bench_json.jobs;
        elapsed_ms;
        qps = float_of_int queries /. (elapsed_ms /. 1000.0);
        speedup = 1.0;
        cache_hits = 0;
        cache_misses = 0;
        cache_evictions = 0;
      }
    else
      let cache =
        if use_cache then
          Some (Cache.create ~max_bytes:(cache_mb * 1024 * 1024) ())
        else None
      in
      Pool.with_pool ~size:jobs (fun pool ->
          let elapsed_ms, _ =
            Runner.time_ms (fun () ->
                Exec.search_batch ~pool ?cache engine workload)
          in
          let hits, misses, evictions =
            match cache with
            | None -> (0, 0, 0)
            | Some c ->
                let s = Cache.stats c in
                (s.Cache.hits, s.Cache.misses, s.Cache.evictions)
          in
          {
            Bench_json.jobs;
            elapsed_ms;
            qps = float_of_int queries /. (elapsed_ms /. 1000.0);
            speedup = 1.0;
            cache_hits = hits;
            cache_misses = misses;
            cache_evictions = evictions;
          })
  in
  (* Each sweep is normalized against its own jobs = 1 row, so the warm
     and cold speedup columns stay comparable. *)
  let normalize rows =
    let base_qps =
      match List.find_opt (fun r -> r.Bench_json.jobs = 1) rows with
      | Some r -> r.Bench_json.qps
      | None -> (
          match rows with
          | r :: _ -> r.Bench_json.qps
          | [] -> invalid_arg "Throughput.run: empty jobs list")
    in
    List.map
      (fun r -> { r with Bench_json.speedup = r.Bench_json.qps /. base_qps })
      rows
  in
  let print_table title rows =
    print_endline title;
    Printf.printf "%6s %12s %10s %8s %10s %10s %10s\n" "jobs" "elapsed(ms)"
      "qps" "speedup" "hits" "misses" "evicted";
    List.iter
      (fun (r : Bench_json.throughput_row) ->
        Printf.printf "%6d %12.1f %10.1f %7.2fx %10d %10d %10d\n" r.jobs
          r.elapsed_ms r.qps r.speedup r.cache_hits r.cache_misses
          r.cache_evictions)
      rows
  in
  let rows = normalize (List.map (time_row ~use_cache:true) jobs_list) in
  print_table
    (Printf.sprintf
       "\n\
        ## Throughput (%s): %d queries, %d distinct, zipf repeats, cache %d \
        MB"
       dataset.Datasets.name queries distinct cache_mb)
    rows;
  let cold_rows =
    if not cold then []
    else begin
      let cold_rows =
        normalize (List.map (time_row ~use_cache:false) jobs_list)
      in
      print_table
        (Printf.sprintf
           "\n## Throughput cold path (%s): same workload, result cache off"
           dataset.Datasets.name)
        cold_rows;
      cold_rows
    end
  in
  Bench_json.record_throughput ~dataset:dataset.Datasets.name ~queries
    ~distinct ~cache_mb ~cold:cold_rows rows
