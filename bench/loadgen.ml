(* Closed- and open-loop load generator for the HTTP serving layer
   (lib/serve), driving a real server over its Unix-domain socket.

   Phases of one [run]:

   1. capacity — closed loop: [workers] keep-alive clients, each with a
      request permanently in flight, measure the saturated service rate.
      This is the denominator for the offered-load levels.
   2. below / at — open loop at 0.5x / 1.0x capacity: arrivals follow a
      fixed schedule (t0 + i/rate) drained by a sender pool; latency is
      measured from the *scheduled* arrival, so generator backlog is
      charged to the server's latency column instead of silently
      disappearing (coordinated omission).
   3. above — closed loop with 3x(workers+queue) single-request
      connections: concurrency pinned above the admission bound, so the
      server must shed with well-formed 503s regardless of how fast this
      host can offer an open-loop rate.
   4. shutdown — [workers+queue] keep-alive clients hammering the
      server when [Server.request_shutdown] fires: every one must end
      with a final response + [connection: close] (drained) or a clean
      cut (aborted) — never a protocol error.

   The query mix is the same Zipf(1.1) repeat workload the throughput
   sweep uses.  Results land in BENCH_serving.json via
   [Bench_json.record_serving]; bench/json_check.ml enforces the
   overload contract (no shedding below capacity, shedding + bounded
   latency above it, loss-free shutdown). *)

module Engine = Xks_core.Engine
module Server = Xks_serve.Server
module J = Xks_trace.Json

(* --- minimal blocking HTTP/1.1 client over a Unix-domain socket --- *)

(* Client-side failures all collapse into one outcome bucket ([failed]),
   so the reply reader just raises. *)
exception Client_error of string

let client_timeout_s = 10.0

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO client_timeout_s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO client_timeout_s;
      fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      raise e

let close_quietly fd =
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          raise (Client_error "connection closed during write")
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise (Client_error "write timeout")
  in
  go 0

(* [None] on clean EOF, [Some chunk] otherwise. *)
let read_chunk fd =
  let buf = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> None
    | n -> Some (Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Client_error "read timeout")
  in
  go ()

type reply = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let reply_header r name =
  let name = String.lowercase_ascii name in
  Option.map snd (List.find_opt (fun (n, _) -> n = name) r.headers)

let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> raise (Client_error "empty response head")
  | status_line :: header_lines ->
      let strip l =
        if l <> "" && l.[String.length l - 1] = '\r' then
          String.sub l 0 (String.length l - 1)
        else l
      in
      let status =
        match String.split_on_char ' ' (strip status_line) with
        | version :: code :: _
          when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
          -> (
            match int_of_string_opt code with
            | Some c -> c
            | None -> raise (Client_error ("bad status line: " ^ status_line)))
        | _ -> raise (Client_error ("bad status line: " ^ status_line))
      in
      let headers =
        List.filter_map
          (fun line ->
            let line = strip line in
            if line = "" then None
            else
              match String.index_opt line ':' with
              | Some i when i > 0 ->
                  Some
                    ( String.lowercase_ascii (String.sub line 0 i),
                      String.trim
                        (String.sub line (i + 1)
                           (String.length line - i - 1)) )
              | Some _ | None ->
                  raise (Client_error ("bad header line: " ^ line)))
          header_lines
      in
      (status, headers)

(* Read exactly one response.  [None] on EOF before the first byte (the
   server closed a keep-alive connection between requests); EOF
   mid-response raises. *)
let read_reply fd =
  let buf = Buffer.create 512 in
  let rec fill_until_head () =
    match find_sub (Buffer.contents buf) "\r\n\r\n" 0 with
    | Some i -> i
    | None -> (
        match read_chunk fd with
        | Some chunk ->
            Buffer.add_string buf chunk;
            fill_until_head ()
        | None ->
            if Buffer.length buf = 0 then raise Exit
            else raise (Client_error "connection closed mid-head"))
  in
  match fill_until_head () with
  | exception Exit -> None
  | head_end ->
      let all = Buffer.contents buf in
      let status, headers = parse_head (String.sub all 0 head_end) in
      let content_length =
        match
          List.find_opt (fun (n, _) -> n = "content-length") headers
        with
        | Some (_, v) -> (
            match int_of_string_opt (String.trim v) with
            | Some n when n >= 0 -> n
            | Some _ | None -> raise (Client_error "bad content-length"))
        | None -> 0
      in
      let body = Buffer.create content_length in
      Buffer.add_string body
        (String.sub all (head_end + 4) (String.length all - head_end - 4));
      let rec fill_body () =
        if Buffer.length body < content_length then
          match read_chunk fd with
          | Some chunk ->
              Buffer.add_string body chunk;
              fill_body ()
          | None -> raise (Client_error "connection closed mid-body")
      in
      fill_body ();
      if Buffer.length body > content_length then
        raise (Client_error "excess bytes after response body");
      Some { status; headers; body = Buffer.contents body }

(* One-shot connections ask the server to close: the admission slot is
   released the moment the response is written, instead of when the
   server notices our close — without this, back-to-back fresh
   connections can race the slot release and count phantom 503s. *)
let send_request ?(close = false) fd target =
  write_all fd
    (Printf.sprintf "GET %s HTTP/1.1\r\nhost: xks\r\n%s\r\n" target
       (if close then "connection: close\r\n" else ""))

(* --- per-request outcome classification --- *)

type outcome =
  | R_ok of { latency_ms : float; degraded : bool }
  | R_rejected  (* a well-formed 503: Retry-After + JSON error body *)
  | R_failed of string

let body_is_degraded body =
  (* The server always emits a "degraded" field; null means full
     fidelity.  A substring probe avoids parsing every body. *)
  match find_sub body "\"degraded\":null" 0 with
  | Some _ -> false
  | None -> ( match find_sub body "\"degraded\"" 0 with
    | Some _ -> true
    | None -> false)

let well_formed_rejection r =
  (match reply_header r "retry-after" with
  | Some v -> int_of_string_opt (String.trim v) <> None
  | None -> false)
  && (match J.parse r.body with
     | b -> ( match J.member "error" b with
       | Some (J.String _) -> true
       | Some (J.Null | J.Bool _ | J.Int _ | J.Float _ | J.List _ | J.Obj _)
       | None -> false)
     | exception J.Parse_error _ -> false)

let classify ~latency_ms reply =
  match reply with
  | None -> R_failed "connection closed before response"
  | Some r ->
      if r.status = 200 then
        R_ok { latency_ms; degraded = body_is_degraded r.body }
      else if r.status = 503 then
        if well_formed_rejection r then R_rejected
        else R_failed "malformed 503 rejection"
      else R_failed (Printf.sprintf "unexpected status %d" r.status)

(* --- level accumulation --- *)

type tally = {
  mutable sent : int;
  mutable ok : int;
  mutable rejected : int;
  mutable failed : int;
  mutable degraded : int;
  mutable latencies : float list;  (* ok requests only *)
  mutable first_error : string option;
}

let tally () =
  {
    sent = 0;
    ok = 0;
    rejected = 0;
    failed = 0;
    degraded = 0;
    latencies = [];
    first_error = None;
  }

let record t outcome =
  t.sent <- t.sent + 1;
  match outcome with
  | R_ok { latency_ms; degraded } ->
      t.ok <- t.ok + 1;
      if degraded then t.degraded <- t.degraded + 1;
      t.latencies <- latency_ms :: t.latencies
  | R_rejected -> t.rejected <- t.rejected + 1
  | R_failed msg ->
      t.failed <- t.failed + 1;
      if t.first_error = None then t.first_error <- Some msg

let merge tallies =
  let total = tally () in
  List.iter
    (fun t ->
      total.sent <- total.sent + t.sent;
      total.ok <- total.ok + t.ok;
      total.rejected <- total.rejected + t.rejected;
      total.failed <- total.failed + t.failed;
      total.degraded <- total.degraded + t.degraded;
      total.latencies <- List.rev_append t.latencies total.latencies;
      if total.first_error = None then total.first_error <- t.first_error)
    tallies;
  total

let level_of_tally ~label ~mode ~offered_qps ~elapsed_s t =
  (match t.first_error with
  | Some msg ->
      prerr_endline
        (Printf.sprintf "loadgen: %s: first failure: %s" label msg)
  | None -> ());
  let sorted = Array.of_list t.latencies in
  Array.sort Float.compare sorted;
  let pct q = if Array.length sorted = 0 then 0.0 else Runner.percentile sorted q in
  {
    Bench_json.label;
    mode;
    offered_qps;
    sent = t.sent;
    ok = t.ok;
    rejected = t.rejected;
    failed = t.failed;
    degraded = t.degraded;
    elapsed_s;
    achieved_qps =
      (if elapsed_s > 0.0 then float_of_int t.ok /. elapsed_s else 0.0);
    p50_ms = pct 50.0;
    p95_ms = pct 95.0;
    p99_ms = pct 99.0;
  }

(* --- load phases --- *)

(* One request on an existing keep-alive connection.  Raises
   [Client_error] on protocol trouble; returns [None] when the server
   closed the connection between requests.  A send failure defers to the
   read: a rejecting or stopping server cuts the socket as soon as its
   final response is written, so the response (a 503, typically) may
   already be buffered on our side when our write gets EPIPE. *)
let keep_alive_roundtrip fd target =
  (try send_request fd target with Client_error _ -> ());
  let t0 = Unix.gettimeofday () in
  match read_reply fd with
  | None -> None
  | Some r -> Some (r, (Unix.gettimeofday () -. t0) *. 1000.0)

(* Closed loop, keep-alive: [clients] connections, each with exactly one
   request in flight, until [duration_s] elapses.  This saturates the
   pool without ever crossing the admission bound — the capacity
   measurement. *)
let closed_loop_keepalive ~socket ~clients ~duration_s ~targets =
  let stop_at = Unix.gettimeofday () +. duration_s in
  let worker k () =
    let t = tally () in
    match connect socket with
    | exception e ->
        record t (R_failed (Printexc.to_string e));
        t
    | fd ->
        Fun.protect
          ~finally:(fun () -> close_quietly fd)
          (fun () ->
            let n = Array.length targets in
            let i = ref (k * 7919) in
            let rec go () =
              if Unix.gettimeofday () < stop_at then begin
                (match keep_alive_roundtrip fd targets.(!i mod n) with
                | Some (r, latency_ms) ->
                    record t (classify ~latency_ms (Some r))
                | None -> record t (R_failed "server closed keep-alive")
                | exception Client_error msg -> record t (R_failed msg));
                incr i;
                if t.failed = 0 then go ()
              end
            in
            go ();
            t)
  in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init clients (fun k -> Domain.spawn (worker k))
  in
  let tallies = List.map Domain.join domains in
  (merge tallies, Unix.gettimeofday () -. t0)

(* Closed loop, one request per connection, concurrency pinned above the
   admission bound: the deterministic overload phase. *)
let closed_loop_overload ~socket ~clients ~duration_s ~targets =
  let stop_at = Unix.gettimeofday () +. duration_s in
  let worker k () =
    let t = tally () in
    let n = Array.length targets in
    let i = ref (k * 7919) in
    let rec go () =
      if Unix.gettimeofday () < stop_at then begin
        (match connect socket with
        | exception e -> record t (R_failed (Printexc.to_string e))
        | fd ->
            Fun.protect
              ~finally:(fun () -> close_quietly fd)
              (fun () ->
                (try send_request ~close:true fd targets.(!i mod n)
                 with Client_error _ -> ());
                let t0 = Unix.gettimeofday () in
                match read_reply fd with
                | reply ->
                    let latency_ms =
                      (Unix.gettimeofday () -. t0) *. 1000.0
                    in
                    record t (classify ~latency_ms reply)
                | exception Client_error msg -> record t (R_failed msg)));
        incr i;
        if t.failed = 0 then go ()
      end
    in
    go ();
    t
  in
  let t0 = Unix.gettimeofday () in
  let domains = List.init clients (fun k -> Domain.spawn (worker k)) in
  let tallies = List.map Domain.join domains in
  (merge tallies, Unix.gettimeofday () -. t0)

(* Open loop: [total] arrivals scheduled at [rate] per second, drained
   by [senders] domains over fresh connections.  Latency counts from the
   scheduled arrival, not from the moment a sender got around to the
   request. *)
let open_loop ~socket ~senders ~rate ~total ~targets =
  let next = Atomic.make 0 in
  let t0 = Unix.gettimeofday () +. 0.02 in
  let worker () =
    let t = tally () in
    let n = Array.length targets in
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < total then begin
        let scheduled = t0 +. (float_of_int i /. rate) in
        let wait = scheduled -. Unix.gettimeofday () in
        if wait > 0.0 then Unix.sleepf wait;
        (match connect socket with
        | exception e -> record t (R_failed (Printexc.to_string e))
        | fd ->
            Fun.protect
              ~finally:(fun () -> close_quietly fd)
              (fun () ->
                (* same send/close race as keep_alive_roundtrip: the 503
                   may be buffered even when our write fails *)
                (try send_request ~close:true fd targets.(i mod n)
                 with Client_error _ -> ());
                match read_reply fd with
                | reply ->
                    let latency_ms =
                      (Unix.gettimeofday () -. scheduled) *. 1000.0
                    in
                    record t (classify ~latency_ms reply)
                | exception Client_error msg -> record t (R_failed msg)));
        go ()
      end
    in
    go ();
    t
  in
  let domains = List.init senders (fun _ -> Domain.spawn worker) in
  let tallies = List.map Domain.join domains in
  (merge tallies, Unix.gettimeofday () -. t0)

(* --- shutdown burst --- *)

type client_end = C_completed | C_closed | C_failed of string

(* Keep-alive clients in a tight request loop; [request_shutdown] fires
   while all of them are in flight.  A drained client sees a final
   response with [connection: close]; an aborted one sees the socket
   cut.  Anything else is a protocol loss. *)
let shutdown_burst ~socket ~burst srv =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let worker () =
    match connect socket with
    | exception e -> C_failed (Printexc.to_string e)
    | fd ->
        Fun.protect
          ~finally:(fun () -> close_quietly fd)
          (fun () ->
            let rec go () =
              if Unix.gettimeofday () > deadline then
                C_failed "shutdown burst never terminated"
              else
                match keep_alive_roundtrip fd "/search?q=keyword+data" with
                | Some (r, _) ->
                    if r.status <> 200 && r.status <> 503 then
                      C_failed (Printf.sprintf "status %d" r.status)
                    else if
                      (* the server answers with connection: close once
                         the stop flag is up — that response is the
                         drain completing this client *)
                      match reply_header r "connection" with
                      | Some v -> String.lowercase_ascii v = "close"
                      | None -> false
                    then C_completed
                    else go ()
                | None -> C_closed
                | exception Client_error _ -> C_closed
            in
            go ())
  in
  let domains = List.init burst (fun _ -> Domain.spawn worker) in
  Unix.sleepf 0.15;
  Server.request_shutdown srv;
  List.map Domain.join domains

(* --- orchestration --- *)

let print_level (l : Bench_json.serving_level) =
  Printf.printf "%-9s %-6s %10.1f %8d %8d %8d %6d %6d %8.1f %8.2f %8.2f %8.2f\n"
    l.label l.mode l.offered_qps l.sent l.ok l.rejected l.failed l.degraded
    l.achieved_qps l.p50_ms l.p95_ms l.p99_ms

(* The p99 bound json_check enforces for accepted requests above
   capacity: a request admitted to the queue waits at most
   queue/workers service times plus its own, with one more for the
   request in flight when it arrived; the constant absorbs response
   writing and scheduling noise.  A service time is *usually* bounded
   by the deadline, but the ladder's last rung still has to complete,
   so on a large corpus a single degraded request can overrun it — the
   unit is therefore the larger of the deadline and the unloaded
   (capacity-phase) p99 actually measured on this host. *)
let latency_bound_ms ~workers ~queue ~deadline_ms ~service_p99_ms =
  (Float.max (float_of_int deadline_ms) service_p99_ms
  *. (2.0 +. (float_of_int queue /. float_of_int workers)))
  +. 500.0

let run ?(dataset = "dblp") ?(workers = 2) ?queue ?(deadline_ms = 200)
    ?(duration_s = 1.0) ?(level_cap = 2000) ?socket () =
  if workers < 1 then invalid_arg "Loadgen.run: workers must be >= 1";
  let queue = match queue with Some q -> q | None -> 2 * workers in
  let socket =
    match socket with
    | Some s -> s
    | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "xks-serving-%d.sock" (Unix.getpid ()))
  in
  let d = Datasets.find dataset in
  let engine = Runner.load d in
  let targets =
    (* Zipf(1.1) over the generated distinct queries, like the
       throughput sweep; the cycle order is the workload. *)
    let pool_queries =
      Array.of_list
        (Xks_datagen.Workload_gen.generate ~seed:77 ~count:24
           (Engine.index engine))
    in
    Array.of_list
      (List.map
         (fun ws -> "/search?q=" ^ String.concat "+" ws ^ "&limit=5")
         (Throughput.zipf_workload ~seed:4242 ~queries:512 pool_queries))
  in
  let cfg =
    {
      (Server.default_config ~socket_path:socket ()) with
      Server.workers;
      queue;
      deadline_ms = (if deadline_ms > 0 then Some deadline_ms else None);
      (* cache off: every request must do real query work, so capacity
         reflects the pipeline and overload actually overloads *)
      cache_mb = 0;
    }
  in
  let srv = Server.create cfg engine in
  let server_domain = Domain.spawn (fun () -> Server.run srv) in
  let capacity_tally, capacity_elapsed =
    closed_loop_keepalive ~socket ~clients:workers ~duration_s ~targets
  in
  let capacity_qps =
    if capacity_elapsed > 0.0 then
      float_of_int capacity_tally.ok /. capacity_elapsed
    else 0.0
  in
  let capacity_level =
    level_of_tally ~label:"capacity" ~mode:"closed" ~offered_qps:0.0
      ~elapsed_s:capacity_elapsed capacity_tally
  in
  let open_level label multiplier ~senders =
    let rate = Float.max 1.0 (capacity_qps *. multiplier) in
    let total =
      max 1 (min level_cap (int_of_float (rate *. duration_s)))
    in
    let t, elapsed =
      open_loop ~socket ~senders ~rate ~total ~targets
    in
    level_of_tally ~label ~mode:"open" ~offered_qps:rate ~elapsed_s:elapsed t
  in
  (* Below capacity the sender pool is capped at the admission bound, so
     even a worst-case arrival burst cannot exceed the server's slots:
     any 503 there is the server's fault, not the generator's. *)
  let below =
    open_level "below" 0.5 ~senders:(min 16 (workers + queue))
  in
  let at =
    open_level "at" 1.0 ~senders:(min 16 ((2 * (workers + queue)) + 2))
  in
  let above =
    let clients = min 24 (3 * (workers + queue)) in
    let t, elapsed =
      closed_loop_overload ~socket ~clients ~duration_s ~targets
    in
    level_of_tally ~label:"above" ~mode:"closed"
      ~offered_qps:(if elapsed > 0.0 then float_of_int t.sent /. elapsed
                    else 0.0)
      ~elapsed_s:elapsed t
  in
  let levels = [ capacity_level; below; at; above ] in
  let burst = workers + queue in
  let ends = shutdown_burst ~socket ~burst srv in
  let exit_ok =
    (match Domain.join server_domain with
    | () -> true
    | exception e ->
        prerr_endline ("loadgen: server domain died: " ^ Printexc.to_string e);
        false)
    && not (Sys.file_exists socket)
  in
  let shutdown =
    List.fold_left
      (fun acc e ->
        match e with
        | C_completed ->
            { acc with Bench_json.completed = acc.Bench_json.completed + 1 }
        | C_closed ->
            { acc with Bench_json.closed = acc.Bench_json.closed + 1 }
        | C_failed msg ->
            prerr_endline ("loadgen: shutdown client failed: " ^ msg);
            { acc with Bench_json.sd_failed = acc.Bench_json.sd_failed + 1 })
      {
        Bench_json.burst;
        completed = 0;
        closed = 0;
        sd_failed = 0;
        exit_ok;
      }
      ends
  in
  Printf.printf
    "\n\
     ## Serving (%s): workers=%d queue=%d deadline=%dms — capacity %.1f \
     qps\n"
    d.Datasets.name workers queue deadline_ms capacity_qps;
  Printf.printf "%-9s %-6s %10s %8s %8s %8s %6s %6s %8s %8s %8s %8s\n" "level"
    "mode" "offered" "sent" "ok" "rejected" "failed" "degr" "qps" "p50ms"
    "p95ms" "p99ms";
  List.iter print_level levels;
  Printf.printf
    "shutdown: burst=%d completed=%d closed=%d failed=%d exit_ok=%b\n"
    shutdown.Bench_json.burst shutdown.Bench_json.completed
    shutdown.Bench_json.closed shutdown.Bench_json.sd_failed
    shutdown.Bench_json.exit_ok;
  Bench_json.record_serving ~dataset:d.Datasets.name ~workers ~queue
    ~deadline_ms ~capacity_qps
    ~latency_bound_ms:
      (latency_bound_ms ~workers ~queue ~deadline_ms
         ~service_p99_ms:capacity_level.Bench_json.p99_ms)
    ~levels ~shutdown
