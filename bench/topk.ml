(* Ranked top-k vs full enumeration (BENCH_topk.json).

   Two query classes over the DBLP corpus, both sampled Zipf(1.1) over
   their keyword pool so the mix is popularity-weighted like a real
   query log:

   - {b high_df}: keywords from the head of the document-frequency
     ranking (structural fields like year/title/author plus the head
     content words).  These queries match nearly every entry, so full
     enumeration constructs and scores hundreds of fragments per query
     while top-k builds exactly [k]; they are also where the
     score-bounded early exit fires — once the last container of some
     keyword pops, that keyword's remaining availability hits zero and
     the drain skips the surviving ancestors (see lib/lca/topk.ml).

   - {b low_df}: keywords from the tail (small posting lists).  Few
     fragments exist, top-k has nothing to prune, and the two paths
     should cost about the same — this class is the control.

   Per query both paths are timed cold (first execution, posting lists
   untouched by this query) and then over [reps] warm repetitions with
   the same discard-the-warm-up protocol as the figure harness
   (Runner.measure_dist).  One extra traced top-k run captures the
   topk.early_exit / topk.pruned_postings counters, and the hit scores
   are recorded so json_check can assert the returned lists are sorted
   best-first.  json_check re-derives the per-class medians and
   enforces the contract: on high_df, early exits happened and the
   top-k p50 is at or below the full-enumeration p50. *)

module Engine = Xks_core.Engine
module Inverted = Xks_index.Inverted
module Trace = Xks_trace.Trace

(* [count] keyword sets of [terms] distinct words, drawn Zipf(1.1) over
   the pool's rank order, deterministic in [seed]. *)
let zipf_queries ~seed ~count ~terms pool =
  let n = Array.length pool in
  if n < terms then invalid_arg "Topk.zipf_queries: pool too small";
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** 1.1));
    cumulative.(i) <- !total
  done;
  let rng = Random.State.make [| seed; count; terms; n |] in
  let sample () =
    let u = Random.State.float rng !total in
    let rec find i =
      if i >= n - 1 || cumulative.(i) > u then i else find (i + 1)
    in
    find 0
  in
  let query () =
    let picked = ref [] in
    while List.length !picked < terms do
      let w = pool.(sample ()) in
      if not (List.mem w !picked) then picked := w :: !picked
    done;
    List.rev !picked
  in
  List.init count (fun _ -> query ())

let run ?(k = 10) ?(per_class = 10) ?(terms = 2) ?(reps = 6) () =
  let dataset = Datasets.find "dblp" in
  let engine = Runner.load dataset in
  let idx = Engine.index engine in
  (* High pool: the df head.  Low pool: words with small but usable
     posting lists (df >= 2, so multi-keyword co-occurrences exist),
     rarest first. *)
  let high_pool =
    Array.of_list (List.map fst (Inverted.top_words idx 16))
  in
  let has_alpha w =
    String.exists (fun c -> c >= 'a' && c <= 'z') w
  in
  let low_pool =
    Inverted.vocabulary idx
    |> List.filter_map (fun w ->
           let df = Inverted.df idx w in
           if df >= 2 && df <= 30 && has_alpha w then Some (w, df) else None)
    |> List.sort (fun (a, da) (b, db) ->
           match Int.compare da db with 0 -> String.compare a b | c -> c)
    |> List.map fst
    |> List.filteri (fun i _ -> i < 64)
    |> Array.of_list
  in
  let measure klass query =
    let topk_run () =
      (Engine.search_result ~rank:`Bm25 ~k engine query).Engine.hits
    in
    let full_run () =
      (Engine.search_result ~rank:`Bm25 engine query).Engine.hits
    in
    let topk_cold_ms, _ = Runner.time_ms topk_run in
    let full_cold_ms, _ = Runner.time_ms full_run in
    let topk_d, hits = Runner.measure_dist ~reps topk_run in
    let full_d, _ = Runner.measure_dist ~reps full_run in
    (* Counter snapshot of one traced run, untimed — the measured runs
       stay on the untraced production path. *)
    let t = Trace.create () in
    ignore (Trace.with_current t topk_run : Engine.hit list);
    {
      Bench_json.tk_query = query;
      tk_class = klass;
      tk_hits = List.length hits;
      tk_scores = List.map (fun (h : Engine.hit) -> h.score) hits;
      tk_early_exit = Trace.counter t Trace.Topk_early_exit;
      tk_pruned = Trace.counter t Trace.Topk_pruned_postings;
      tk_topk_cold_ms = topk_cold_ms;
      tk_full_cold_ms = full_cold_ms;
      tk_topk = topk_d;
      tk_full = full_d;
    }
  in
  let rows =
    List.map (measure "high_df")
      (zipf_queries ~seed:27 ~count:per_class ~terms high_pool)
    @ List.map (measure "low_df")
        (zipf_queries ~seed:32 ~count:per_class ~terms low_pool)
  in
  Printf.printf
    "\n## Top-k (k=%d) vs full enumeration (%s): BM25, %d queries/class\n"
    k dataset.Datasets.name per_class;
  Printf.printf "%-30s %8s %6s %12s %12s %6s %8s\n" "query" "class" "hits"
    "topk-p50" "full-p50" "exits" "pruned";
  List.iter
    (fun (r : Bench_json.topk_row) ->
      Printf.printf "%-30s %8s %6d %12.3f %12.3f %6d %8d\n"
        (String.concat " " r.tk_query)
        r.tk_class r.tk_hits r.tk_topk.Runner.p50_ms r.tk_full.Runner.p50_ms
        r.tk_early_exit r.tk_pruned)
    rows;
  Bench_json.record_topk ~dataset:dataset.Datasets.name ~k ~reps rows
