(* Shared measurement machinery for the figure harness: the paper runs
   each query 6 times and averages after discarding the first
   (Section 5.1); we do the same with a monotonic clock. *)

module Engine = Xks_core.Engine
module Query = Xks_core.Query
module Trace = Xks_trace.Trace

let now_ns () = Monotonic_clock.now ()

let time_ms f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (Int64.to_float (Int64.sub t1 t0) /. 1e6, result)

type dist = {
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

(* Nearest-rank percentile over an ascending sample array. *)
let percentile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (Float.ceil (q /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

(* Elapsed-ms distribution over [reps] runs after a discarded warm-up;
   with a single rep there is nothing to discard, so the one timed run
   is the whole sample. *)
let measure_dist ?(reps = 6) f =
  if reps < 1 then invalid_arg "Runner.measure: reps must be >= 1";
  let warmup_ms, first = time_ms f in
  let samples =
    if reps = 1 then [| warmup_ms |]
    else Array.init (reps - 1) (fun _ -> fst (time_ms f))
  in
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let mean_ms =
    Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)
  in
  ( {
      mean_ms;
      p50_ms = percentile sorted 50.0;
      p95_ms = percentile sorted 95.0;
      p99_ms = percentile sorted 99.0;
    },
    first )

(* Average elapsed ms over the same discard-the-warm-up protocol. *)
let measure ?reps f =
  let d, first = measure_dist ?reps f in
  (d.mean_ms, first)

type row = {
  mnemonic : string;
  keywords : string list;
  maxmatch : dist;
  validrtf : dist;
  rtf_count : int;
  metrics : Xks_metrics.Metrics.t;
  counters : (string * int) list;
      (* trace-counter snapshot of one ValidRTF run (query preparation
         included, so postings_scanned is populated) *)
}

(* Counter snapshot of a single traced ValidRTF run.  Kept separate from
   the timed runs: those stay untraced so the measured path is the
   production fast path. *)
let counters_for engine keywords =
  let t = Trace.create () in
  Trace.with_current t (fun () ->
      let q = Query.make (Engine.index engine) keywords in
      ignore (Xks_core.Validrtf.run_query q : Xks_core.Pipeline.result));
  Trace.counters t

let run_query engine (mnemonic, keywords) =
  let q = Query.make (Engine.index engine) keywords in
  let validrtf_d, validrtf =
    measure_dist (fun () -> Xks_core.Validrtf.run_query q)
  in
  let maxmatch_d, maxmatch =
    measure_dist (fun () -> Xks_core.Maxmatch.run_revised_query q)
  in
  let metrics = Xks_metrics.Metrics.compare_results ~validrtf ~maxmatch in
  {
    mnemonic;
    keywords;
    maxmatch = maxmatch_d;
    validrtf = validrtf_d;
    rtf_count = List.length validrtf.Xks_core.Pipeline.lcas;
    metrics;
    counters = counters_for engine keywords;
  }

let load (dataset : Datasets.t) =
  Printf.printf "# dataset %s: generating and indexing...\n%!" dataset.name;
  let ms, engine = time_ms (fun () -> Lazy.force dataset.engine) in
  Printf.printf "# %s ready in %.0f ms (%s)\n%!" dataset.name ms
    (Engine.stats engine);
  engine

let rows_for dataset =
  let engine = load dataset in
  List.map (run_query engine) dataset.Datasets.workload.Xks_datagen.Queries.queries
