(* Shared measurement machinery for the figure harness: the paper runs
   each query 6 times and averages after discarding the first
   (Section 5.1); we do the same with a monotonic clock. *)

module Engine = Xks_core.Engine
module Query = Xks_core.Query
module Trace = Xks_trace.Trace

let now_ns () = Monotonic_clock.now ()

let time_ms f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (Int64.to_float (Int64.sub t1 t0) /. 1e6, result)

(* Average elapsed ms over [reps] runs after a discarded warm-up; with a
   single rep there is nothing to discard, so the one timed run is the
   answer (dividing by [reps - 1 = 0] would return NaN). *)
let measure ?(reps = 6) f =
  if reps < 1 then invalid_arg "Runner.measure: reps must be >= 1";
  let warmup_ms, first = time_ms f in
  if reps = 1 then (warmup_ms, first)
  else begin
    let total = ref 0.0 in
    for _ = 2 to reps do
      let ms, _ = time_ms f in
      total := !total +. ms
    done;
    (!total /. float_of_int (reps - 1), first)
  end

type row = {
  mnemonic : string;
  keywords : string list;
  maxmatch_ms : float;
  validrtf_ms : float;
  rtf_count : int;
  metrics : Xks_metrics.Metrics.t;
  counters : (string * int) list;
      (* trace-counter snapshot of one ValidRTF run (query preparation
         included, so postings_scanned is populated) *)
}

(* Counter snapshot of a single traced ValidRTF run.  Kept separate from
   the timed runs: those stay untraced so the measured path is the
   production fast path. *)
let counters_for engine keywords =
  let t = Trace.create () in
  Trace.with_current t (fun () ->
      let q = Query.make (Engine.index engine) keywords in
      ignore (Xks_core.Validrtf.run_query q : Xks_core.Pipeline.result));
  Trace.counters t

let run_query engine (mnemonic, keywords) =
  let q = Query.make (Engine.index engine) keywords in
  let validrtf_ms, validrtf = measure (fun () -> Xks_core.Validrtf.run_query q) in
  let maxmatch_ms, maxmatch =
    measure (fun () -> Xks_core.Maxmatch.run_revised_query q)
  in
  let metrics = Xks_metrics.Metrics.compare_results ~validrtf ~maxmatch in
  {
    mnemonic;
    keywords;
    maxmatch_ms;
    validrtf_ms;
    rtf_count = List.length validrtf.Xks_core.Pipeline.lcas;
    metrics;
    counters = counters_for engine keywords;
  }

let load (dataset : Datasets.t) =
  Printf.printf "# dataset %s: generating and indexing...\n%!" dataset.name;
  let ms, engine = time_ms (fun () -> Lazy.force dataset.engine) in
  Printf.printf "# %s ready in %.0f ms (%s)\n%!" dataset.name ms
    (Engine.stats engine);
  engine

let rows_for dataset =
  let engine = load dataset in
  List.map (run_query engine) dataset.Datasets.workload.Xks_datagen.Queries.queries
