(* Benchmark harness: regenerates every evaluation artifact of the paper
   (Figures 5 and 6, four datasets each), runs the A1-A3 ablations of
   DESIGN.md, and exposes a Bechamel micro-benchmark suite (one
   Test.make per figure panel).

     dune exec bench/main.exe                 # everything, small scale
     dune exec bench/main.exe -- fig5 --dataset dblp
     dune exec bench/main.exe -- fig6 --dataset xmark2
     dune exec bench/main.exe -- ablation-cid
     dune exec bench/main.exe -- bechamel
*)

open Cmdliner

module Engine = Xks_core.Engine
module Query = Xks_core.Query
module Metrics = Xks_metrics.Metrics
module Datasets = Xks_bench.Datasets
module Runner = Xks_bench.Runner
module Bench_json = Xks_bench.Bench_json

(* --- Figure 5: performance + number of RTFs --- *)

let print_fig5 dataset rows =
  Printf.printf
    "\n## Figure 5 (%s): elapsed time per query and number of RTFs\n"
    dataset;
  Printf.printf "%-8s %12s %12s %12s %12s %8s\n" "query" "MaxMatch(ms)"
    "ValidRTF(ms)" "VRTF-p95" "VRTF-p99" "RTFs";
  List.iter
    (fun (r : Runner.row) ->
      Printf.printf "%-8s %12.3f %12.3f %12.3f %12.3f %8d\n" r.mnemonic
        r.maxmatch.Runner.mean_ms r.validrtf.Runner.mean_ms
        r.validrtf.Runner.p95_ms r.validrtf.Runner.p99_ms r.rtf_count)
    rows

(* --- Figure 6: CFR / APR' / Max APR --- *)

let print_fig6 dataset rows =
  Printf.printf "\n## Figure 6 (%s): CFR, APR' and Max APR per query\n" dataset;
  Printf.printf "%-8s %8s %8s %8s\n" "query" "CFR" "APR'" "MaxAPR";
  List.iter
    (fun (r : Runner.row) ->
      Printf.printf "%-8s %8.3f %8.3f %8.3f\n" r.mnemonic r.metrics.Metrics.cfr
        r.metrics.Metrics.apr' r.metrics.Metrics.max_apr)
    rows

(* Optional CSV export directory (set by --out). *)
let csv_dir = ref None

let write_csv name header rows_to_strings =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (String.concat "," header);
          output_char oc '\n';
          List.iter
            (fun row ->
              output_string oc (String.concat "," row);
              output_char oc '\n')
            rows_to_strings);
      Printf.printf "# wrote %s\n" path

let csv_fig5 dataset rows =
  write_csv ("fig5-" ^ dataset)
    [
      "query"; "maxmatch_ms"; "maxmatch_p95_ms"; "validrtf_ms";
      "validrtf_p95_ms"; "validrtf_p99_ms"; "rtfs";
    ]
    (List.map
       (fun (r : Runner.row) ->
         [
           r.mnemonic;
           Printf.sprintf "%.4f" r.maxmatch.Runner.mean_ms;
           Printf.sprintf "%.4f" r.maxmatch.Runner.p95_ms;
           Printf.sprintf "%.4f" r.validrtf.Runner.mean_ms;
           Printf.sprintf "%.4f" r.validrtf.Runner.p95_ms;
           Printf.sprintf "%.4f" r.validrtf.Runner.p99_ms;
           string_of_int r.rtf_count;
         ])
       rows)

let csv_fig6 dataset rows =
  write_csv ("fig6-" ^ dataset)
    [ "query"; "cfr"; "apr_prime"; "max_apr" ]
    (List.map
       (fun (r : Runner.row) ->
         [
           r.mnemonic; Printf.sprintf "%.4f" r.metrics.Metrics.cfr;
           Printf.sprintf "%.4f" r.metrics.Metrics.apr';
           Printf.sprintf "%.4f" r.metrics.Metrics.max_apr;
         ])
       rows)

let fig_rows = Hashtbl.create 4

let rows_cached dataset =
  match Hashtbl.find_opt fig_rows dataset.Datasets.name with
  | Some rows -> rows
  | None ->
      let rows = Runner.rows_for dataset in
      Hashtbl.add fig_rows dataset.Datasets.name rows;
      rows

(* --- A1: cID approximation vs exact tree content sets --- *)

let ablation_cid () =
  print_endline "\n## Ablation A1: (min,max) cID vs exact tree content sets";
  let dataset = Datasets.find "xmark-std" in
  let engine = Runner.load dataset in
  Printf.printf "%-8s %12s %12s %10s %10s\n" "query" "approx(ms)" "exact(ms)"
    "approx|V|" "exact|V|";
  List.iter
    (fun (mnemonic, keywords) ->
      let q = Query.make (Engine.index engine) keywords in
      let run cid_mode () = Xks_core.Validrtf.run_query ~cid_mode q in
      let ms_a, ra = Runner.measure (run Xks_index.Cid.Approx) in
      let ms_e, re = Runner.measure (run Xks_index.Cid.Exact) in
      let nodes r =
        List.fold_left
          (fun acc f -> acc + Xks_core.Fragment.size f)
          0 r.Xks_core.Pipeline.fragments
      in
      Printf.printf "%-8s %12.3f %12.3f %10d %10d\n" mnemonic ms_a ms_e
        (nodes ra) (nodes re))
    dataset.Datasets.workload.Xks_datagen.Queries.queries

(* --- A2: getLCA algorithm choice --- *)

let ablation_lca () =
  print_endline
    "\n## Ablation A2: Indexed Stack vs bottom-up tree scan vs SLCA-only";
  let dataset = Datasets.find "xmark1" in
  let engine = Runner.load dataset in
  Printf.printf "%-8s %6s %12s %12s %12s %12s %12s %6s %6s\n" "query" "|S1|"
    "IdxStack(ms)" "StackELCA(ms)" "TreeScan(ms)" "SLCA-ILE(ms)" "ScanEager(ms)"
    "#ELCA" "#SLCA";
  List.iter
    (fun (mnemonic, keywords) ->
      let q = Query.make (Engine.index engine) keywords in
      let s1 =
        Array.fold_left
          (fun acc s -> min acc (Array.length s))
          max_int q.Query.postings
      in
      let ms_is, elcas =
        Runner.measure (fun () -> Xks_lca.Indexed_stack.elca q.doc q.postings)
      in
      let ms_ts, _ =
        Runner.measure (fun () -> Xks_lca.Tree_scan.elca q.doc q.postings)
      in
      let ms_sl, slcas =
        Runner.measure (fun () ->
            Xks_lca.Slca.indexed_lookup_eager q.doc q.postings)
      in
      let ms_se, _ =
        Runner.measure (fun () -> Xks_lca.Scan_eager.slca q.doc q.postings)
      in
      let ms_de, _ =
        Runner.measure (fun () -> Xks_lca.Stack_algos.elca q.doc q.postings)
      in
      Printf.printf "%-8s %6d %12.3f %12.3f %12.3f %12.3f %12.3f %6d %6d\n"
        mnemonic s1 ms_is ms_de ms_ts ms_sl ms_se (List.length elcas)
        (List.length slcas))
    dataset.Datasets.workload.Xks_datagen.Queries.queries

(* --- A3: all-LCA RTFs vs SLCA-only fragments --- *)

let ablation_slca () =
  print_endline
    "\n## Ablation A3: ValidRTF (all LCAs) vs original MaxMatch (SLCA only)";
  let dataset = Datasets.find "dblp" in
  let engine = Runner.load dataset in
  Printf.printf "%-8s %10s %10s %12s %12s\n" "query" "#RTF" "#SLCA" "RTFnodes"
    "SLCAnodes";
  List.iter
    (fun (mnemonic, keywords) ->
      let validrtf = Engine.run ~algorithm:Engine.Validrtf engine keywords in
      let original =
        Engine.run ~algorithm:Engine.Maxmatch_original engine keywords
      in
      let nodes r =
        List.fold_left
          (fun acc f -> acc + Xks_core.Fragment.size f)
          0 r.Xks_core.Pipeline.fragments
      in
      Printf.printf "%-8s %10d %10d %12d %12d\n" mnemonic
        (List.length validrtf.Xks_core.Pipeline.lcas)
        (List.length original.Xks_core.Pipeline.lcas)
        (nodes validrtf) (nodes original))
    dataset.Datasets.workload.Xks_datagen.Queries.queries

(* --- A5: RTF vs GDMCT result semantics --- *)

let ablation_gdmct () =
  print_endline
    "\n## Ablation A5: meaningful RTFs vs grouped minimum connecting trees";
  let dataset = Datasets.find "xmark-std" in
  let engine = Runner.load dataset in
  Printf.printf "%-8s %8s %10s %8s %10s\n" "query" "#RTF" "RTFnodes" "#MCT"
    "MCTnodes";
  List.iter
    (fun (mnemonic, keywords) ->
      let q = Query.make (Engine.index engine) keywords in
      let validrtf = Xks_core.Validrtf.run_query q in
      let mcts = Xks_core.Gdmct.search q in
      let rtf_nodes =
        List.fold_left
          (fun acc f -> acc + Xks_core.Fragment.size f)
          0 validrtf.Xks_core.Pipeline.fragments
      in
      let mct_nodes =
        List.fold_left
          (fun acc (r : Xks_core.Gdmct.result) ->
            acc + Xks_core.Fragment.size r.Xks_core.Gdmct.fragment)
          0 mcts
      in
      Printf.printf "%-8s %8d %10d %8d %10d\n" mnemonic
        (List.length validrtf.Xks_core.Pipeline.lcas)
        rtf_nodes (List.length mcts) mct_nodes)
    dataset.Datasets.workload.Xks_datagen.Queries.queries

(* --- Random workloads: the Figure 5/6 shapes without hand-picked
   queries --- *)

let random_workload () =
  print_endline
    "\n## Random workload (generated queries, dblp): figure 5/6 shapes";
  let dataset = Datasets.find "dblp" in
  let engine = Runner.load dataset in
  let queries =
    Xks_datagen.Workload_gen.generate ~seed:2009 ~count:15
      (Engine.index engine)
  in
  Printf.printf "%-34s %12s %12s %6s %6s %6s %6s\n" "query" "MaxMatch(ms)"
    "ValidRTF(ms)" "RTFs" "CFR" "APR'" "MaxAPR";
  List.iter
    (fun keywords ->
      let r = Runner.run_query engine (String.concat " " keywords, keywords) in
      Printf.printf "%-34s %12.3f %12.3f %6d %6.2f %6.2f %6.2f\n" r.mnemonic
        r.maxmatch.Runner.mean_ms r.validrtf.Runner.mean_ms r.rtf_count
        r.metrics.Metrics.cfr r.metrics.Metrics.apr' r.metrics.Metrics.max_apr)
    queries

(* --- Bechamel suite: one Test.make per figure panel --- *)

let bechamel_suite () =
  let open Bechamel in
  let representative =
    (* One characteristic query per dataset: mid-frequency keywords. *)
    [
      ("dblp", [ "xml"; "keyword"; "retrieval"; "algorithm" ]);
      ("xmark-std", [ "threshold"; "chronicle"; "method" ]);
      ("xmark1", [ "threshold"; "chronicle"; "method" ]);
      ("xmark2", [ "threshold"; "chronicle"; "method" ]);
    ]
  in
  let tests =
    List.concat_map
      (fun (name, keywords) ->
        let engine = Runner.load (Datasets.find name) in
        let q = Query.make (Engine.index engine) keywords in
        [
          (* Figure 5 panels: the two timed algorithms. *)
          Test.make
            ~name:(Printf.sprintf "fig5/%s/validrtf" name)
            (Staged.stage (fun () -> ignore (Xks_core.Validrtf.run_query q)));
          Test.make
            ~name:(Printf.sprintf "fig5/%s/maxmatch" name)
            (Staged.stage (fun () ->
                 ignore (Xks_core.Maxmatch.run_revised_query q)));
          (* Figure 6 panels: metric computation on top of both runs. *)
          Test.make
            ~name:(Printf.sprintf "fig6/%s/metrics" name)
            (Staged.stage (fun () ->
                 let validrtf = Xks_core.Validrtf.run_query q in
                 let maxmatch = Xks_core.Maxmatch.run_revised_query q in
                 ignore (Metrics.compare_results ~validrtf ~maxmatch)));
        ])
      representative
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  print_endline "\n## Bechamel micro-benchmarks (ns per run, OLS estimate)";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"xks" [ t ]) tests)

(* --- commands --- *)

let dataset_arg =
  Arg.(
    value
    & opt string "dblp"
    & info [ "dataset" ] ~docv:"NAME"
        ~doc:"One of dblp, xmark-std, xmark1, xmark2.")

let scale_args =
  let out =
    Arg.(
      value
      & opt (some dir) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Also write the figure rows as CSV files into $(docv).")
  in
  let entries =
    Arg.(
      value & opt int 12000
      & info [ "dblp-entries" ] ~docv:"N" ~doc:"DBLP corpus size.")
  in
  let items =
    Arg.(
      value & opt int 200
      & info [ "xmark-items" ] ~docv:"N"
          ~doc:"XMark items per region at standard scale.")
  in
  Term.(
    const (fun out entries items ->
        csv_dir := out;
        (* BENCH_*.json lands in the cwd unless --out redirects it. *)
        Option.iter (fun dir -> Bench_json.out_dir := dir) out;
        Datasets.dblp_entries := entries;
        Datasets.xmark_items := items)
    $ out $ entries $ items)

let fig5_cmd =
  let run () dataset =
    let d = Datasets.find dataset in
    let rows = rows_cached d in
    print_fig5 dataset rows;
    csv_fig5 dataset rows;
    Bench_json.record_fig5 ~dataset rows
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Regenerate a Figure 5 panel.")
    Term.(const run $ scale_args $ dataset_arg)

let fig6_cmd =
  let run () dataset =
    let d = Datasets.find dataset in
    let rows = rows_cached d in
    print_fig6 dataset rows;
    csv_fig6 dataset rows;
    Bench_json.record_fig6 ~dataset rows
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Regenerate a Figure 6 panel.")
    Term.(const run $ scale_args $ dataset_arg)

let ablation_cid_cmd =
  Cmd.v
    (Cmd.info "ablation-cid" ~doc:"A1: cID approximation ablation.")
    Term.(const (fun () -> ablation_cid ()) $ scale_args)

let ablation_lca_cmd =
  Cmd.v
    (Cmd.info "ablation-lca" ~doc:"A2: getLCA algorithm ablation.")
    Term.(const (fun () -> ablation_lca ()) $ scale_args)

let ablation_slca_cmd =
  Cmd.v
    (Cmd.info "ablation-slca" ~doc:"A3: all-LCA vs SLCA-only ablation.")
    Term.(const (fun () -> ablation_slca ()) $ scale_args)

let ablation_gdmct_cmd =
  Cmd.v
    (Cmd.info "ablation-gdmct"
       ~doc:"A5: RTFs vs grouped minimum connecting trees.")
    Term.(const (fun () -> ablation_gdmct ()) $ scale_args)

let random_cmd =
  Cmd.v
    (Cmd.info "fig5-random"
       ~doc:"Figure 5/6 measurements over generated random workloads.")
    Term.(const (fun () -> random_workload ()) $ scale_args)

let bechamel_cmd =
  Cmd.v
    (Cmd.info "bechamel" ~doc:"Bechamel micro-benchmark suite.")
    Term.(const (fun () -> bechamel_suite ()) $ scale_args)

let throughput_cmd =
  let jobs =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8 ]
      & info [ "jobs" ] ~docv:"N,.."
          ~doc:
            "Worker counts to sweep (each row runs the batch through a \
             pool of that size, capped at the host's domains).")
  in
  let queries =
    Arg.(
      value & opt int 400
      & info [ "queries" ] ~docv:"N" ~doc:"Total queries per row.")
  in
  let distinct =
    Arg.(
      value & opt int 40
      & info [ "distinct" ] ~docv:"N"
          ~doc:"Distinct queries behind the zipf-repeat workload.")
  in
  let cache_mb =
    Arg.(
      value & opt int 32
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:"Result-cache size for the warm (cache-served) rows.")
  in
  let cold_only =
    Arg.(
      value & flag
      & info [ "cold-only" ]
          ~doc:
            "Skip the warm (pre-warmed cache) sweep; emit only the \
             primary cold scaling section.")
  in
  let repeats =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"N"
          ~doc:
            "Interleaved timed passes per row; the median is recorded and \
             speedups pair pass k against baseline pass k.")
  in
  let run () jobs queries distinct cache_mb cold_only repeats =
    Xks_bench.Throughput.run ~jobs_list:jobs ~queries ~distinct ~cache_mb
      ~cold_only ~repeats ()
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:
         "Batch-execution throughput sweep (BENCH_throughput.json): the \
          same zipf-repeat workload through Exec.search_batch at each \
          worker count, cold (cache off, the scaling contract) and warm \
          (cache-served).")
    Term.(
      const run $ scale_args $ jobs $ queries $ distinct $ cache_mb
      $ cold_only $ repeats)

let topk_cmd =
  let k =
    Arg.(
      value & opt int 10
      & info [ "top-k" ] ~docv:"K" ~doc:"Results kept per query (top-k).")
  in
  let per_class =
    Arg.(
      value & opt int 10
      & info [ "per-class" ] ~docv:"N"
          ~doc:"Queries sampled per class (high_df and low_df).")
  in
  let terms =
    Arg.(
      value & opt int 2
      & info [ "terms" ] ~docv:"N" ~doc:"Keywords per query.")
  in
  let reps =
    Arg.(
      value & opt int 6
      & info [ "reps" ] ~docv:"N"
          ~doc:"Warm repetitions per query and path (first run discarded).")
  in
  let run () k per_class terms reps =
    Xks_bench.Topk.run ~k ~per_class ~terms ~reps ()
  in
  Cmd.v
    (Cmd.info "topk"
       ~doc:
         "Ranked top-k vs full enumeration (BENCH_topk.json): BM25 \
          searches over a Zipf-weighted mix of high-df and low-df \
          keyword queries, timing the streaming top-k path against \
          full-enumeration-then-sort and capturing the early-exit \
          counters.")
    Term.(const run $ scale_args $ k $ per_class $ terms $ reps)

let serving_cmd =
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Server worker pool size.")
  in
  let queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission queue depth (default 2x workers).")
  in
  let deadline_ms =
    Arg.(
      value & opt int 200
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request budget deadline (0 disables).")
  in
  let duration_s =
    Arg.(
      value & opt float 1.0
      & info [ "duration-s" ] ~docv:"S" ~doc:"Seconds per load level.")
  in
  let level_cap =
    Arg.(
      value & opt int 2000
      & info [ "level-cap" ] ~docv:"N"
          ~doc:"Cap on requests per open-loop level.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path (default: a fresh path in TMPDIR).")
  in
  let run () workers queue deadline_ms duration_s level_cap socket =
    Xks_bench.Loadgen.run ~workers ?queue ~deadline_ms ~duration_s
      ~level_cap ?socket ()
  in
  Cmd.v
    (Cmd.info "serving"
       ~doc:
         "Serving-layer load benchmark (BENCH_serving.json): start an \
          in-process HTTP server over a Unix socket, measure closed-loop \
          capacity, drive open-loop load below/at capacity and a pinned \
          overload above it, then shut down gracefully under a keep-alive \
          burst.")
    Term.(
      const run $ scale_args $ workers $ queue $ deadline_ms $ duration_s
      $ level_cap $ socket)

let run_all () =
  List.iter
    (fun (d : Datasets.t) ->
      let rows = rows_cached d in
      print_fig5 d.name rows;
      print_fig6 d.name rows;
      csv_fig5 d.name rows;
      csv_fig6 d.name rows;
      Bench_json.record_fig5 ~dataset:d.name rows;
      Bench_json.record_fig6 ~dataset:d.name rows)
    (Datasets.all ());
  ablation_cid ();
  ablation_lca ();
  ablation_slca ();
  ablation_gdmct ();
  random_workload ();
  Xks_bench.Throughput.run ();
  Xks_bench.Topk.run ();
  bechamel_suite ()

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every figure, ablation and micro-bench.")
    Term.(const run_all $ scale_args)

let () =
  let info =
    Cmd.info "bench" ~doc:"Regenerate the paper's evaluation artifacts."
  in
  let default = Term.(const run_all $ scale_args) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            fig5_cmd; fig6_cmd; ablation_cid_cmd; ablation_lca_cmd;
            ablation_slca_cmd; ablation_gdmct_cmd; random_cmd; bechamel_cmd;
            throughput_cmd; topk_cmd; serving_cmd; all_cmd;
          ]))
