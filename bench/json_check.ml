(* Validator for the BENCH_*.json artifacts, used by the @bench-smoke
   alias: the file must parse and carry the row fields downstream
   tooling (perf-trajectory diffs) relies on.  Exit 0 on success. *)

module J = Xks_trace.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("json_check: " ^ msg); exit 1) fmt

let get what = function Some v -> v | None -> fail "missing %s" what

let () =
  if Array.length Sys.argv < 2 then fail "usage: json_check FILE";
  let path = Sys.argv.(1) in
  let s =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc = try J.parse s with J.Parse_error msg -> fail "%s: %s" path msg in
  let figure = get "figure" (Option.bind (J.member "figure" doc) J.to_str) in
  let datasets =
    get "datasets" (Option.bind (J.member "datasets" doc) J.to_list)
  in
  if datasets = [] then fail "%s: no datasets" path;
  let rows_checked = ref 0 in
  List.iter
    (fun panel ->
      let name =
        get "dataset name" (Option.bind (J.member "dataset" panel) J.to_str)
      in
      let rows = get "rows" (Option.bind (J.member "rows" panel) J.to_list) in
      if rows = [] then fail "%s/%s: empty rows" path name;
      List.iter
        (fun row ->
          let str k = get (name ^ "." ^ k) (Option.bind (J.member k row) J.to_str) in
          let num k =
            get (name ^ "." ^ k) (Option.bind (J.member k row) J.to_float)
          in
          ignore (str "query" : string);
          (match figure with
          | "fig5" ->
              let v = num "validrtf_ms" and m = num "maxmatch_ms" in
              if v < 0.0 || m < 0.0 then fail "%s/%s: negative timing" path name;
              ignore (get "rtfs" (Option.bind (J.member "rtfs" row) J.to_int) : int)
          | "fig6" ->
              ignore (num "cfr" : float);
              ignore (num "apr_prime" : float);
              ignore (num "max_apr" : float)
          | f -> fail "unknown figure %S" f);
          let counters =
            get "counters" (J.member "counters" row)
          in
          (match counters with
          | J.Obj (_ :: _) -> ()
          | J.Obj []
          | J.Null
          | J.Bool _
          | J.Int _
          | J.Float _
          | J.String _
          | J.List _ ->
              fail "%s/%s: missing counter snapshot" path name);
          incr rows_checked)
        rows)
    datasets;
  Printf.printf "json_check: %s ok (%s, %d rows)\n" path figure !rows_checked
