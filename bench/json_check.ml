(* Validator for the BENCH_*.json artifacts, used by the @bench-smoke
   alias: the file must parse and carry the row fields downstream
   tooling (perf-trajectory diffs) relies on.  Exit 0 on success. *)

module J = Xks_trace.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("json_check: " ^ msg); exit 1) fmt

let get what = function Some v -> v | None -> fail "missing %s" what

(* --- fig5 / fig6: per-dataset panels of per-query rows --- *)

let check_figure path figure doc =
  let datasets =
    get "datasets" (Option.bind (J.member "datasets" doc) J.to_list)
  in
  if datasets = [] then fail "%s: no datasets" path;
  let rows_checked = ref 0 in
  List.iter
    (fun panel ->
      let name =
        get "dataset name" (Option.bind (J.member "dataset" panel) J.to_str)
      in
      let rows = get "rows" (Option.bind (J.member "rows" panel) J.to_list) in
      if rows = [] then fail "%s/%s: empty rows" path name;
      List.iter
        (fun row ->
          let str k = get (name ^ "." ^ k) (Option.bind (J.member k row) J.to_str) in
          let num k =
            get (name ^ "." ^ k) (Option.bind (J.member k row) J.to_float)
          in
          ignore (str "query" : string);
          (match figure with
          | "fig5" ->
              (* Mean and the warm-excluded percentile ladder, per
                 algorithm; percentiles must be ordered. *)
              List.iter
                (fun prefix ->
                  let mean = num (prefix ^ "_ms") in
                  let p50 = num (prefix ^ "_p50_ms") in
                  let p95 = num (prefix ^ "_p95_ms") in
                  let p99 = num (prefix ^ "_p99_ms") in
                  if mean < 0.0 || p50 < 0.0 then
                    fail "%s/%s: negative %s timing" path name prefix;
                  if p50 > p95 || p95 > p99 then
                    fail "%s/%s: %s percentiles not monotone (%.4f/%.4f/%.4f)"
                      path name prefix p50 p95 p99)
                [ "validrtf"; "maxmatch" ];
              ignore (get "rtfs" (Option.bind (J.member "rtfs" row) J.to_int) : int)
          | "fig6" ->
              ignore (num "cfr" : float);
              ignore (num "apr_prime" : float);
              ignore (num "max_apr" : float)
          | f -> fail "unknown figure %S" f);
          let counters =
            get "counters" (J.member "counters" row)
          in
          (match counters with
          | J.Obj (_ :: _) -> ()
          | J.Obj []
          | J.Null
          | J.Bool _
          | J.Int _
          | J.Float _
          | J.String _
          | J.List _ ->
              fail "%s/%s: missing counter snapshot" path name);
          incr rows_checked)
        rows)
    datasets;
  !rows_checked

(* --- throughput: one row per jobs value over a shared workload --- *)

let check_throughput path doc =
  ignore (get "dataset" (Option.bind (J.member "dataset" doc) J.to_str) : string);
  let total =
    get "queries" (Option.bind (J.member "queries" doc) J.to_int)
  in
  if total < 1 then fail "%s: empty workload" path;
  let rows = get "rows" (Option.bind (J.member "rows" doc) J.to_list) in
  if rows = [] then fail "%s: no rows" path;
  let parsed =
    List.map
      (fun row ->
        let num k = get k (Option.bind (J.member k row) J.to_float) in
        let int k = get k (Option.bind (J.member k row) J.to_int) in
        let jobs = int "jobs" in
        let qps = num "qps" in
        if jobs < 1 then fail "%s: jobs < 1" path;
        if num "elapsed_ms" <= 0.0 || qps <= 0.0 then
          fail "%s: non-positive timing at jobs=%d" path jobs;
        List.iter
          (fun k -> if int k < 0 then fail "%s: negative %s" path k)
          [ "cache_hits"; "cache_misses"; "cache_evictions" ];
        (jobs, qps, num "speedup"))
      rows
  in
  let jobs_seen = List.map (fun (j, _, _) -> j) parsed in
  if List.length (List.sort_uniq Int.compare jobs_seen) <> List.length jobs_seen
  then fail "%s: duplicate jobs rows" path;
  let base_qps =
    match List.find_opt (fun (j, _, _) -> j = 1) parsed with
    | Some (_, qps, _) -> qps
    | None -> fail "%s: no jobs=1 baseline row" path
  in
  (* The speedup column must be derived from the qps column. *)
  List.iter
    (fun (jobs, qps, speedup) ->
      let expect = qps /. base_qps in
      if Float.abs (speedup -. expect) > 0.001 *. expect then
        fail "%s: speedup %.3f at jobs=%d inconsistent with qps (expected %.3f)"
          path speedup jobs expect)
    parsed;
  List.length parsed

let () =
  if Array.length Sys.argv < 2 then fail "usage: json_check FILE";
  let path = Sys.argv.(1) in
  let s =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc = try J.parse s with J.Parse_error msg -> fail "%s: %s" path msg in
  let figure = get "figure" (Option.bind (J.member "figure" doc) J.to_str) in
  let rows_checked =
    match figure with
    | "throughput" -> check_throughput path doc
    | "fig5" | "fig6" -> check_figure path figure doc
    | f -> fail "unknown figure %S" f
  in
  Printf.printf "json_check: %s ok (%s, %d rows)\n" path figure rows_checked
