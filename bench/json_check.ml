(* Validator for the BENCH_*.json artifacts, used by the @bench-smoke
   alias: the file must parse and carry the row fields downstream
   tooling (perf-trajectory diffs) relies on.  Exit 0 on success. *)

module J = Xks_trace.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("json_check: " ^ msg); exit 1) fmt

let get what = function Some v -> v | None -> fail "missing %s" what

(* --- fig5 / fig6: per-dataset panels of per-query rows --- *)

let check_figure path figure doc =
  let datasets =
    get "datasets" (Option.bind (J.member "datasets" doc) J.to_list)
  in
  if datasets = [] then fail "%s: no datasets" path;
  let rows_checked = ref 0 in
  List.iter
    (fun panel ->
      let name =
        get "dataset name" (Option.bind (J.member "dataset" panel) J.to_str)
      in
      let rows = get "rows" (Option.bind (J.member "rows" panel) J.to_list) in
      if rows = [] then fail "%s/%s: empty rows" path name;
      List.iter
        (fun row ->
          let str k = get (name ^ "." ^ k) (Option.bind (J.member k row) J.to_str) in
          let num k =
            get (name ^ "." ^ k) (Option.bind (J.member k row) J.to_float)
          in
          ignore (str "query" : string);
          (match figure with
          | "fig5" ->
              (* Mean and the warm-excluded percentile ladder, per
                 algorithm; percentiles must be ordered. *)
              List.iter
                (fun prefix ->
                  let mean = num (prefix ^ "_ms") in
                  let p50 = num (prefix ^ "_p50_ms") in
                  let p95 = num (prefix ^ "_p95_ms") in
                  let p99 = num (prefix ^ "_p99_ms") in
                  if mean < 0.0 || p50 < 0.0 then
                    fail "%s/%s: negative %s timing" path name prefix;
                  if p50 > p95 || p95 > p99 then
                    fail "%s/%s: %s percentiles not monotone (%.4f/%.4f/%.4f)"
                      path name prefix p50 p95 p99)
                [ "validrtf"; "maxmatch" ];
              ignore (get "rtfs" (Option.bind (J.member "rtfs" row) J.to_int) : int)
          | "fig6" ->
              ignore (num "cfr" : float);
              ignore (num "apr_prime" : float);
              ignore (num "max_apr" : float)
          | f -> fail "unknown figure %S" f);
          let counters =
            get "counters" (J.member "counters" row)
          in
          (match counters with
          | J.Obj (_ :: _) -> ()
          | J.Obj []
          | J.Null
          | J.Bool _
          | J.Int _
          | J.Float _
          | J.String _
          | J.List _ ->
              fail "%s/%s: missing counter snapshot" path name);
          incr rows_checked)
        rows)
    datasets;
  !rows_checked

(* --- throughput: one row per jobs value over a shared workload --- *)

type tp_row = {
  tr_jobs : int;
  tr_workers : int;
  tr_passes : float list;
  tr_qps : float;
  tr_speedup : float;
  tr_vs_cold : float option;
  tr_lookups : int;
  tr_hits : int;
}

(* Must match Bench_json.median_ms exactly — every derived column is
   recomputed from the raw per-pass timings below. *)
let median l =
  match Array.of_list (List.sort Float.compare l) with
  | [||] -> fail "median of an empty pass list"
  | sorted -> sorted.(Array.length sorted / 2)

let close ~expect actual = Float.abs (actual -. expect) <= 0.001 *. expect

(* Shared between the cold (cache-off, primary) and warm (cache-served)
   sections.  Every row carries its raw per-pass timings, and every
   derived column is re-derived here: elapsed_ms must be the median
   pass, qps must follow from it, speedup must be the median of the
   pass-paired ratios against the section's jobs=1 baseline, and
   [workers] must equal the pool's documented capping of the requested
   [jobs] at the host's domains. *)
let check_throughput_rows path section ~host_domains ~total rows =
  if rows = [] then fail "%s: no %s rows" path section;
  let parsed =
    List.map
      (fun row ->
        let num k = get k (Option.bind (J.member k row) J.to_float) in
        let int k = get k (Option.bind (J.member k row) J.to_int) in
        let jobs = int "jobs" in
        let workers = int "workers" in
        let qps = num "qps" in
        let elapsed = num "elapsed_ms" in
        let passes =
          List.map
            (fun p -> get "pass elapsed" (J.to_float p))
            (get "passes_ms" (Option.bind (J.member "passes_ms" row) J.to_list))
        in
        if jobs < 1 then fail "%s/%s: jobs < 1" path section;
        if workers <> min jobs (max 1 host_domains) then
          fail
            "%s/%s: workers=%d at jobs=%d inconsistent with capping at \
             host_domains=%d"
            path section workers jobs host_domains;
        if passes = [] then fail "%s/%s: no passes at jobs=%d" path section jobs;
        if List.exists (fun p -> p <= 0.0) passes then
          fail "%s/%s: non-positive pass timing at jobs=%d" path section jobs;
        if not (close ~expect:(median passes) elapsed) then
          fail
            "%s/%s: elapsed_ms %.4f at jobs=%d is not the median pass (%.4f)"
            path section elapsed jobs (median passes);
        if not (close ~expect:(float_of_int total /. (elapsed /. 1000.0)) qps)
        then
          fail "%s/%s: qps %.1f at jobs=%d inconsistent with elapsed_ms" path
            section qps jobs;
        List.iter
          (fun k -> if int k < 0 then fail "%s/%s: negative %s" path section k)
          [ "cache_hits"; "cache_misses"; "cache_evictions" ];
        {
          tr_jobs = jobs;
          tr_workers = workers;
          tr_passes = passes;
          tr_qps = qps;
          tr_speedup = num "speedup";
          tr_vs_cold =
            Option.bind (J.member "speedup_vs_cold" row) J.to_float;
          tr_lookups = int "cache_hits" + int "cache_misses";
          tr_hits = int "cache_hits";
        })
      rows
  in
  let jobs_seen = List.map (fun r -> r.tr_jobs) parsed in
  if List.length (List.sort_uniq Int.compare jobs_seen) <> List.length jobs_seen
  then fail "%s/%s: duplicate jobs rows" path section;
  let base =
    match List.find_opt (fun r -> r.tr_jobs = 1) parsed with
    | Some r -> r
    | None -> fail "%s/%s: no jobs=1 baseline row" path section
  in
  (* The speedup column must be the median pass-paired ratio. *)
  List.iter
    (fun r ->
      if List.length r.tr_passes <> List.length base.tr_passes then
        fail "%s/%s: jobs=%d pass count differs from the baseline's" path
          section r.tr_jobs;
      let expect =
        median (List.map2 (fun b p -> b /. p) base.tr_passes r.tr_passes)
      in
      if not (close ~expect r.tr_speedup) then
        fail
          "%s/%s: speedup %.3f at jobs=%d inconsistent with paired passes \
           (expected %.3f)"
          path section r.tr_speedup r.tr_jobs expect)
    parsed;
  parsed

(* The cold section is the scaling contract this artifact exists to
   enforce.  On a real multi-core host (>= 4 domains) parallel cold
   batches must actually pay off: jobs=2 at least 1.2x over jobs=1, and
   the widest row must keep at least 80% of the jobs=2 speedup (no
   collapse at higher fan-out).  On smaller hosts extra domains cannot
   win anything — worker capping makes jobs>1 rows run the jobs=1
   configuration — so the rule is an equivalence floor: jobs>1 must not
   fall more than 15% below the baseline.  15%, not 5%: the rows are
   identical configurations there, so the floor only has to separate
   real overhead regressions (the mutex-queue pool this check was
   written against cost 21% at size=1, and anti-scaled to 0.63x at
   jobs=2) from measurement noise, and the paired-pass medians of
   identical configs on a shared CI host were measured to disagree by
   up to ~10% even with interleaved, rotated rounds. *)
let check_cold_scaling path ~host_domains parsed =
  let floor_small = 0.85 in
  if host_domains >= 4 then begin
    let jobs2 = List.find_opt (fun r -> r.tr_jobs = 2) parsed in
    (match jobs2 with
    | Some r when r.tr_speedup < 1.2 ->
        fail "%s/cold: jobs=2 speedup %.2f below the 1.20 multi-core floor"
          path r.tr_speedup
    | Some _ | None -> ());
    let widest =
      List.fold_left
        (fun acc r -> match acc with
          | Some b when b.tr_jobs >= r.tr_jobs -> acc
          | Some _ | None -> Some r)
        None parsed
    in
    match (jobs2, widest) with
    | Some r2, Some w when w.tr_jobs > 2 && w.tr_speedup < 0.8 *. r2.tr_speedup
      ->
        fail
          "%s/cold: jobs=%d speedup %.2f collapsed below 80%% of jobs=2 \
           (%.2f)"
          path w.tr_jobs w.tr_speedup r2.tr_speedup
    | _ -> ()
  end
  else
    List.iter
      (fun r ->
        if r.tr_jobs > 1 && r.tr_speedup < floor_small then
          fail
            "%s/cold: jobs=%d speedup %.2f below the %.2f single-host floor \
             (host_domains=%d)"
            path r.tr_jobs r.tr_speedup floor_small host_domains)
      parsed

let check_throughput path doc =
  ignore (get "dataset" (Option.bind (J.member "dataset" doc) J.to_str) : string);
  let total =
    get "queries" (Option.bind (J.member "queries" doc) J.to_int)
  in
  if total < 1 then fail "%s: empty workload" path;
  let host_domains =
    get "host_domains" (Option.bind (J.member "host_domains" doc) J.to_int)
  in
  if host_domains < 1 then fail "%s: host_domains < 1" path;
  let cold_rows =
    get "cold rows" (Option.bind (J.member "cold" doc) J.to_list)
  in
  let cold_parsed =
    check_throughput_rows path "cold" ~host_domains ~total cold_rows
  in
  (* Cache-off sweep: any cache traffic means the flag did not reach
     the execution layer. *)
  List.iter
    (fun r ->
      if r.tr_lookups <> 0 then
        fail "%s/cold: cache traffic at jobs=%d in a cache-off sweep" path
          r.tr_jobs)
    cold_parsed;
  check_cold_scaling path ~host_domains cold_parsed;
  let cold_base_qps =
    match List.find_opt (fun r -> r.tr_jobs = 1) cold_parsed with
    | Some r -> r.tr_qps
    | None -> assert false (* check_throughput_rows demands the baseline *)
  in
  let warm_count =
    match J.member "rows" doc with
    | None -> 0
    | Some warm ->
        let warm_rows = get "warm rows" (J.to_list warm) in
        let warm_parsed =
          check_throughput_rows path "rows" ~host_domains ~total warm_rows
        in
        List.iter
          (fun r ->
            (* Warm rows are cache-served by construction (pre-warmed
               cache, same workload): a row with no hits measured the
               wrong thing. *)
            if r.tr_hits = 0 then
              fail "%s/rows: warm row at jobs=%d saw no cache hits" path
                r.tr_jobs;
            match r.tr_vs_cold with
            | None ->
                fail "%s/rows: warm row at jobs=%d missing speedup_vs_cold"
                  path r.tr_jobs
            | Some s ->
                let expect = r.tr_qps /. cold_base_qps in
                if Float.abs (s -. expect) > 0.001 *. expect then
                  fail
                    "%s/rows: speedup_vs_cold %.3f at jobs=%d inconsistent \
                     with cold jobs=1 qps (expected %.3f)"
                    path s r.tr_jobs expect)
          warm_parsed;
        List.length warm_parsed
  in
  List.length cold_parsed + warm_count

(* --- topk: ranked top-k vs full enumeration --- *)

type tk_row = {
  tk_class : string;
  tk_exits : int;
  tk_pruned : int;
  tk_topk_p50 : float;
  tk_full_p50 : float;
}

let check_topk path doc =
  let k = get "k" (Option.bind (J.member "k" doc) J.to_int) in
  if k < 1 then fail "%s: k < 1" path;
  ignore (get "dataset" (Option.bind (J.member "dataset" doc) J.to_str) : string);
  let rows = get "rows" (Option.bind (J.member "rows" doc) J.to_list) in
  if rows = [] then fail "%s: no rows" path;
  let parsed =
    List.map
      (fun row ->
        let str f = get f (Option.bind (J.member f row) J.to_str) in
        let int f = get f (Option.bind (J.member f row) J.to_int) in
        let num f = get f (Option.bind (J.member f row) J.to_float) in
        let query = str "query" in
        let klass = str "class" in
        (match klass with
        | "high_df" | "low_df" -> ()
        | c -> fail "%s/%s: unknown class %S" path query c);
        let hits = int "hits" in
        if hits < 0 || hits > k then
          fail "%s/%s: %d hits outside [0, k=%d]" path query hits k;
        let scores =
          List.map
            (fun s -> get "score" (J.to_float s))
            (get "scores" (Option.bind (J.member "scores" row) J.to_list))
        in
        if List.length scores <> hits then
          fail "%s/%s: %d scores for %d hits" path query
            (List.length scores) hits;
        (* The contract the ranking exists for: each result list is
           sorted best-first. *)
        let rec monotone = function
          | a :: (b :: _ as rest) ->
              if a < b then
                fail "%s/%s: scores not sorted best-first (%.6f < %.6f)"
                  path query a b;
              monotone rest
          | [ _ ] | [] -> ()
        in
        monotone scores;
        let exits = int "early_exit" in
        let pruned = int "pruned_postings" in
        if exits < 0 || pruned < 0 then
          fail "%s/%s: negative counter" path query;
        if pruned > 0 && exits = 0 then
          fail "%s/%s: pruned postings without an early exit" path query;
        if num "topk_cold_ms" < 0.0 || num "full_cold_ms" < 0.0 then
          fail "%s/%s: negative cold timing" path query;
        List.iter
          (fun prefix ->
            let p50 = num (prefix ^ "_p50_ms") in
            let p95 = num (prefix ^ "_p95_ms") in
            let p99 = num (prefix ^ "_p99_ms") in
            if num (prefix ^ "_ms") < 0.0 || p50 < 0.0 then
              fail "%s/%s: negative %s timing" path query prefix;
            if p50 > p95 || p95 > p99 then
              fail "%s/%s: %s percentiles not monotone (%.4f/%.4f/%.4f)"
                path query prefix p50 p95 p99)
          [ "topk"; "full" ];
        {
          tk_class = klass;
          tk_exits = exits;
          tk_pruned = pruned;
          tk_topk_p50 = num "topk_p50_ms";
          tk_full_p50 = num "full_p50_ms";
        })
      rows
  in
  let classes =
    get "classes" (Option.bind (J.member "classes" doc) J.to_list)
  in
  let seen =
    List.map
      (fun cls ->
        let name =
          get "class name" (Option.bind (J.member "class" cls) J.to_str)
        in
        let int f = get f (Option.bind (J.member f cls) J.to_int) in
        let num f = get f (Option.bind (J.member f cls) J.to_float) in
        let sub = List.filter (fun r -> r.tk_class = name) parsed in
        if sub = [] then fail "%s/%s: class has no rows" path name;
        (* Every roll-up field must re-derive from the rows. *)
        if int "queries" <> List.length sub then
          fail "%s/%s: queries count inconsistent with rows" path name;
        let sum f = List.fold_left (fun acc r -> acc + f r) 0 sub in
        if int "early_exit" <> sum (fun r -> r.tk_exits) then
          fail "%s/%s: early_exit roll-up inconsistent with rows" path name;
        if int "pruned_postings" <> sum (fun r -> r.tk_pruned) then
          fail "%s/%s: pruned_postings roll-up inconsistent with rows" path
            name;
        let topk_p50 = num "topk_p50_ms" in
        let full_p50 = num "full_p50_ms" in
        if
          not
            (close ~expect:(median (List.map (fun r -> r.tk_topk_p50) sub))
               topk_p50)
        then fail "%s/%s: topk_p50_ms is not the row median" path name;
        if
          not
            (close ~expect:(median (List.map (fun r -> r.tk_full_p50) sub))
               full_p50)
        then fail "%s/%s: full_p50_ms is not the row median" path name;
        (name, int "early_exit", topk_p50, full_p50))
      classes
  in
  let find name =
    match List.find_opt (fun (n, _, _, _) -> n = name) seen with
    | Some c -> c
    | None -> fail "%s: missing %S class" path name
  in
  ignore (find "low_df");
  (* The perf contract: on the head-of-df class the early exit must
     actually fire, and the top-k median must not lose to constructing
     and scoring every fragment. *)
  let _, high_exits, high_topk_p50, high_full_p50 = find "high_df" in
  if high_exits < 1 then
    fail "%s/high_df: early exit never fired across the class" path;
  if high_topk_p50 > high_full_p50 then
    fail "%s/high_df: top-k p50 %.4f ms above full-enumeration p50 %.4f ms"
      path high_topk_p50 high_full_p50;
  List.length parsed

(* --- serving: the overload contract of the HTTP layer --- *)

let check_serving path doc =
  let int k = get k (Option.bind (J.member k doc) J.to_int) in
  let num k = get k (Option.bind (J.member k doc) J.to_float) in
  if int "workers" < 1 then fail "%s: workers < 1" path;
  if int "queue" < 0 then fail "%s: queue < 0" path;
  let capacity_qps = num "capacity_qps" in
  if capacity_qps <= 0.0 then fail "%s: non-positive capacity_qps" path;
  let latency_bound_ms = num "latency_bound_ms" in
  if latency_bound_ms <= 0.0 then fail "%s: non-positive latency bound" path;
  let levels = get "levels" (Option.bind (J.member "levels" doc) J.to_list) in
  if levels = [] then fail "%s: no levels" path;
  let parsed =
    List.map
      (fun level ->
        let str k = get k (Option.bind (J.member k level) J.to_str) in
        let int k = get k (Option.bind (J.member k level) J.to_int) in
        let num k = get k (Option.bind (J.member k level) J.to_float) in
        let label = str "label" in
        (match str "mode" with
        | "open" | "closed" -> ()
        | m -> fail "%s/%s: unknown mode %S" path label m);
        let sent = int "sent" in
        let ok = int "ok" in
        let rejected = int "rejected" in
        let failed = int "failed" in
        List.iter
          (fun k -> if int k < 0 then fail "%s/%s: negative %s" path label k)
          [ "sent"; "ok"; "rejected"; "failed"; "degraded" ];
        (* Every request is accounted for, and none was lost to a
           protocol error or a malformed rejection. *)
        if sent <> ok + rejected + failed then
          fail "%s/%s: sent %d <> ok %d + rejected %d + failed %d" path label
            sent ok rejected failed;
        if failed > 0 then fail "%s/%s: %d failed requests" path label failed;
        if ok < 1 then fail "%s/%s: no successful requests" path label;
        let p50 = num "p50_ms" and p95 = num "p95_ms" and p99 = num "p99_ms" in
        if p50 < 0.0 then fail "%s/%s: negative latency" path label;
        if p50 > p95 || p95 > p99 then
          fail "%s/%s: percentiles not monotone (%.2f/%.2f/%.2f)" path label
            p50 p95 p99;
        (label, sent, rejected, p99))
      levels
  in
  let labels = List.map (fun (l, _, _, _) -> l) parsed in
  if List.length (List.sort_uniq String.compare labels) <> List.length labels
  then fail "%s: duplicate level labels" path;
  let find label =
    match List.find_opt (fun (l, _, _, _) -> l = label) parsed with
    | Some lv -> lv
    | None -> fail "%s: missing %S level" path label
  in
  (* Below capacity the server must admit essentially everything... *)
  let _, below_sent, below_rejected, _ = find "below" in
  if below_rejected * 20 > below_sent then
    fail "%s/below: %d of %d shed below capacity" path below_rejected
      below_sent;
  ignore (find "at");
  (* ...and above it, shed with 503s while accepted requests stay inside
     the deadline-derived latency bound — overload must show up as
     rejection, not as unbounded queueing. *)
  let _, _, above_rejected, above_p99 = find "above" in
  if above_rejected < 1 then
    fail "%s/above: overload produced no 503 shedding" path;
  if above_p99 > latency_bound_ms then
    fail "%s/above: accepted p99 %.1f ms exceeds bound %.1f ms" path
      above_p99 latency_bound_ms;
  let sd = get "shutdown" (J.member "shutdown" doc) in
  let sd_int k = get k (Option.bind (J.member k sd) J.to_int) in
  let burst = sd_int "burst" in
  let completed = sd_int "completed" in
  let closed = sd_int "closed" in
  if burst < 1 then fail "%s/shutdown: empty burst" path;
  if sd_int "failed" > 0 then
    fail "%s/shutdown: %d clients lost a request" path (sd_int "failed");
  if completed + closed <> burst then
    fail "%s/shutdown: completed %d + closed %d <> burst %d" path completed
      closed burst;
  (match J.member "exit_ok" sd with
  | Some (J.Bool true) -> ()
  | Some (J.Bool false | J.Null | J.Int _ | J.Float _ | J.String _ | J.List _ | J.Obj _)
  | None ->
      fail "%s/shutdown: server did not exit cleanly" path);
  List.length parsed

let () =
  if Array.length Sys.argv < 2 then fail "usage: json_check FILE";
  let path = Sys.argv.(1) in
  let s =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc = try J.parse s with J.Parse_error msg -> fail "%s: %s" path msg in
  let figure = get "figure" (Option.bind (J.member "figure" doc) J.to_str) in
  let rows_checked =
    match figure with
    | "throughput" -> check_throughput path doc
    | "topk" -> check_topk path doc
    | "serving" -> check_serving path doc
    | "fig5" | "fig6" -> check_figure path figure doc
    | f -> fail "unknown figure %S" f
  in
  Printf.printf "json_check: %s ok (%s, %d rows)\n" path figure rows_checked
