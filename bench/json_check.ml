(* Validator for the BENCH_*.json artifacts, used by the @bench-smoke
   alias: the file must parse and carry the row fields downstream
   tooling (perf-trajectory diffs) relies on.  Exit 0 on success. *)

module J = Xks_trace.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("json_check: " ^ msg); exit 1) fmt

let get what = function Some v -> v | None -> fail "missing %s" what

(* --- fig5 / fig6: per-dataset panels of per-query rows --- *)

let check_figure path figure doc =
  let datasets =
    get "datasets" (Option.bind (J.member "datasets" doc) J.to_list)
  in
  if datasets = [] then fail "%s: no datasets" path;
  let rows_checked = ref 0 in
  List.iter
    (fun panel ->
      let name =
        get "dataset name" (Option.bind (J.member "dataset" panel) J.to_str)
      in
      let rows = get "rows" (Option.bind (J.member "rows" panel) J.to_list) in
      if rows = [] then fail "%s/%s: empty rows" path name;
      List.iter
        (fun row ->
          let str k = get (name ^ "." ^ k) (Option.bind (J.member k row) J.to_str) in
          let num k =
            get (name ^ "." ^ k) (Option.bind (J.member k row) J.to_float)
          in
          ignore (str "query" : string);
          (match figure with
          | "fig5" ->
              (* Mean and the warm-excluded percentile ladder, per
                 algorithm; percentiles must be ordered. *)
              List.iter
                (fun prefix ->
                  let mean = num (prefix ^ "_ms") in
                  let p50 = num (prefix ^ "_p50_ms") in
                  let p95 = num (prefix ^ "_p95_ms") in
                  let p99 = num (prefix ^ "_p99_ms") in
                  if mean < 0.0 || p50 < 0.0 then
                    fail "%s/%s: negative %s timing" path name prefix;
                  if p50 > p95 || p95 > p99 then
                    fail "%s/%s: %s percentiles not monotone (%.4f/%.4f/%.4f)"
                      path name prefix p50 p95 p99)
                [ "validrtf"; "maxmatch" ];
              ignore (get "rtfs" (Option.bind (J.member "rtfs" row) J.to_int) : int)
          | "fig6" ->
              ignore (num "cfr" : float);
              ignore (num "apr_prime" : float);
              ignore (num "max_apr" : float)
          | f -> fail "unknown figure %S" f);
          let counters =
            get "counters" (J.member "counters" row)
          in
          (match counters with
          | J.Obj (_ :: _) -> ()
          | J.Obj []
          | J.Null
          | J.Bool _
          | J.Int _
          | J.Float _
          | J.String _
          | J.List _ ->
              fail "%s/%s: missing counter snapshot" path name);
          incr rows_checked)
        rows)
    datasets;
  !rows_checked

(* --- throughput: one row per jobs value over a shared workload --- *)

(* Shared between the warm rows and the optional cold (cache-off)
   section; both must carry a jobs=1 baseline their speedup column is
   derived from. *)
let check_throughput_rows path section rows =
  if rows = [] then fail "%s: no %s rows" path section;
  let parsed =
    List.map
      (fun row ->
        let num k = get k (Option.bind (J.member k row) J.to_float) in
        let int k = get k (Option.bind (J.member k row) J.to_int) in
        let jobs = int "jobs" in
        let qps = num "qps" in
        if jobs < 1 then fail "%s/%s: jobs < 1" path section;
        if num "elapsed_ms" <= 0.0 || qps <= 0.0 then
          fail "%s/%s: non-positive timing at jobs=%d" path section jobs;
        List.iter
          (fun k -> if int k < 0 then fail "%s/%s: negative %s" path section k)
          [ "cache_hits"; "cache_misses"; "cache_evictions" ];
        (jobs, qps, num "speedup", int "cache_hits" + int "cache_misses"))
      rows
  in
  let jobs_seen = List.map (fun (j, _, _, _) -> j) parsed in
  if List.length (List.sort_uniq Int.compare jobs_seen) <> List.length jobs_seen
  then fail "%s/%s: duplicate jobs rows" path section;
  let base_qps =
    match List.find_opt (fun (j, _, _, _) -> j = 1) parsed with
    | Some (_, qps, _, _) -> qps
    | None -> fail "%s/%s: no jobs=1 baseline row" path section
  in
  (* The speedup column must be derived from the qps column. *)
  List.iter
    (fun (jobs, qps, speedup, _) ->
      let expect = qps /. base_qps in
      if Float.abs (speedup -. expect) > 0.001 *. expect then
        fail
          "%s/%s: speedup %.3f at jobs=%d inconsistent with qps (expected \
           %.3f)"
          path section speedup jobs expect)
    parsed;
  parsed

let check_throughput path doc =
  ignore (get "dataset" (Option.bind (J.member "dataset" doc) J.to_str) : string);
  let total =
    get "queries" (Option.bind (J.member "queries" doc) J.to_int)
  in
  if total < 1 then fail "%s: empty workload" path;
  let rows = get "rows" (Option.bind (J.member "rows" doc) J.to_list) in
  let parsed = check_throughput_rows path "rows" rows in
  let cold_count =
    match J.member "cold" doc with
    | None -> 0
    | Some cold ->
        let cold_rows = get "cold rows" (J.to_list cold) in
        let cold_parsed = check_throughput_rows path "cold" cold_rows in
        (* The cold section is the cache-off sweep: any cache traffic
           there means the flag did not reach the execution layer. *)
        List.iter
          (fun (jobs, _, _, cache_lookups) ->
            if cache_lookups <> 0 then
              fail "%s/cold: cache traffic at jobs=%d in a cache-off sweep"
                path jobs)
          cold_parsed;
        List.length cold_parsed
  in
  List.length parsed + cold_count

(* --- serving: the overload contract of the HTTP layer --- *)

let check_serving path doc =
  let int k = get k (Option.bind (J.member k doc) J.to_int) in
  let num k = get k (Option.bind (J.member k doc) J.to_float) in
  if int "workers" < 1 then fail "%s: workers < 1" path;
  if int "queue" < 0 then fail "%s: queue < 0" path;
  let capacity_qps = num "capacity_qps" in
  if capacity_qps <= 0.0 then fail "%s: non-positive capacity_qps" path;
  let latency_bound_ms = num "latency_bound_ms" in
  if latency_bound_ms <= 0.0 then fail "%s: non-positive latency bound" path;
  let levels = get "levels" (Option.bind (J.member "levels" doc) J.to_list) in
  if levels = [] then fail "%s: no levels" path;
  let parsed =
    List.map
      (fun level ->
        let str k = get k (Option.bind (J.member k level) J.to_str) in
        let int k = get k (Option.bind (J.member k level) J.to_int) in
        let num k = get k (Option.bind (J.member k level) J.to_float) in
        let label = str "label" in
        (match str "mode" with
        | "open" | "closed" -> ()
        | m -> fail "%s/%s: unknown mode %S" path label m);
        let sent = int "sent" in
        let ok = int "ok" in
        let rejected = int "rejected" in
        let failed = int "failed" in
        List.iter
          (fun k -> if int k < 0 then fail "%s/%s: negative %s" path label k)
          [ "sent"; "ok"; "rejected"; "failed"; "degraded" ];
        (* Every request is accounted for, and none was lost to a
           protocol error or a malformed rejection. *)
        if sent <> ok + rejected + failed then
          fail "%s/%s: sent %d <> ok %d + rejected %d + failed %d" path label
            sent ok rejected failed;
        if failed > 0 then fail "%s/%s: %d failed requests" path label failed;
        if ok < 1 then fail "%s/%s: no successful requests" path label;
        let p50 = num "p50_ms" and p95 = num "p95_ms" and p99 = num "p99_ms" in
        if p50 < 0.0 then fail "%s/%s: negative latency" path label;
        if p50 > p95 || p95 > p99 then
          fail "%s/%s: percentiles not monotone (%.2f/%.2f/%.2f)" path label
            p50 p95 p99;
        (label, sent, rejected, p99))
      levels
  in
  let labels = List.map (fun (l, _, _, _) -> l) parsed in
  if List.length (List.sort_uniq String.compare labels) <> List.length labels
  then fail "%s: duplicate level labels" path;
  let find label =
    match List.find_opt (fun (l, _, _, _) -> l = label) parsed with
    | Some lv -> lv
    | None -> fail "%s: missing %S level" path label
  in
  (* Below capacity the server must admit essentially everything... *)
  let _, below_sent, below_rejected, _ = find "below" in
  if below_rejected * 20 > below_sent then
    fail "%s/below: %d of %d shed below capacity" path below_rejected
      below_sent;
  ignore (find "at");
  (* ...and above it, shed with 503s while accepted requests stay inside
     the deadline-derived latency bound — overload must show up as
     rejection, not as unbounded queueing. *)
  let _, _, above_rejected, above_p99 = find "above" in
  if above_rejected < 1 then
    fail "%s/above: overload produced no 503 shedding" path;
  if above_p99 > latency_bound_ms then
    fail "%s/above: accepted p99 %.1f ms exceeds bound %.1f ms" path
      above_p99 latency_bound_ms;
  let sd = get "shutdown" (J.member "shutdown" doc) in
  let sd_int k = get k (Option.bind (J.member k sd) J.to_int) in
  let burst = sd_int "burst" in
  let completed = sd_int "completed" in
  let closed = sd_int "closed" in
  if burst < 1 then fail "%s/shutdown: empty burst" path;
  if sd_int "failed" > 0 then
    fail "%s/shutdown: %d clients lost a request" path (sd_int "failed");
  if completed + closed <> burst then
    fail "%s/shutdown: completed %d + closed %d <> burst %d" path completed
      closed burst;
  (match J.member "exit_ok" sd with
  | Some (J.Bool true) -> ()
  | Some (J.Bool false | J.Null | J.Int _ | J.Float _ | J.String _ | J.List _ | J.Obj _)
  | None ->
      fail "%s/shutdown: server did not exit cleanly" path);
  List.length parsed

let () =
  if Array.length Sys.argv < 2 then fail "usage: json_check FILE";
  let path = Sys.argv.(1) in
  let s =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let doc = try J.parse s with J.Parse_error msg -> fail "%s: %s" path msg in
  let figure = get "figure" (Option.bind (J.member "figure" doc) J.to_str) in
  let rows_checked =
    match figure with
    | "throughput" -> check_throughput path doc
    | "serving" -> check_serving path doc
    | "fig5" | "fig6" -> check_figure path figure doc
    | f -> fail "unknown figure %S" f
  in
  Printf.printf "json_check: %s ok (%s, %d rows)\n" path figure rows_checked
