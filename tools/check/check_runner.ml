(* check_runner — drives lib/check over the paper fixtures and a
   generated corpus.

   Exit 0 when every invariant holds and every optimised algorithm
   agrees with the naive reference; exit 1 with one line per violation
   otherwise.  Wired into [dune build @check] (and the @analyze
   umbrella). *)

module Inverted = Xks_index.Inverted
module Fixtures = Xks_datagen.Paper_fixtures
module Invariant = Xks_check.Invariant
module Oracle = Xks_check.Oracle

let generated_queries = 120

let report corpus violations =
  List.iter
    (fun x -> Printf.printf "%s: %s\n" corpus (Invariant.to_string x))
    violations;
  List.length violations

let check_corpus name doc queries =
  let idx = Inverted.build doc in
  let bad = report name (Invariant.index idx) in
  bad + report name (Oracle.check_workload idx queries)

let () =
  let paper_queries =
    [ Fixtures.q1; Fixtures.q2; Fixtures.q3; Fixtures.q4; Fixtures.q5 ]
  in
  (* The paper's two example documents, audited under all five example
     queries each (a query whose keywords miss the document exercises
     the empty-result paths). *)
  let bad = ref 0 in
  bad := !bad + check_corpus "publications" (Fixtures.publications ()) paper_queries;
  bad := !bad + check_corpus "team" (Fixtures.team ()) paper_queries;
  (* A generated DBLP-shaped corpus under a random workload mixing
     keyword frequencies. *)
  let doc =
    Xks_datagen.Dblp_gen.(
      generate ~config:{ default_config with entries = 400; seed = 7 } ())
  in
  let idx = Inverted.build doc in
  let workload =
    Xks_datagen.Workload_gen.generate ~seed:11 ~count:generated_queries idx
  in
  bad := !bad + report "dblp-gen" (Invariant.index idx);
  bad := !bad + report "dblp-gen" (Oracle.check_workload idx workload);
  let audited = (2 * List.length paper_queries) + List.length workload in
  if !bad = 0 then
    Printf.printf
      "check: ok — %d queries audited (invariants, ELCA/SLCA differential, \
       Definition 4 post-conditions)\n"
      audited
  else begin
    Printf.eprintf "check: %d violation(s) across %d queries\n" !bad audited;
    exit 1
  end
