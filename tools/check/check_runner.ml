(* check_runner — drives lib/check over the paper fixtures and a
   generated corpus.

   Exit 0 when every invariant holds and every optimised algorithm
   agrees with the naive reference; exit 1 with one line per violation
   otherwise.  Wired into [dune build @check] (and the @analyze
   umbrella).

   [--seed N] reseeds the generated-workload corpus (default 11, the
   pinned CI seed); the active seed is printed in both the ok and the
   failure summary so any oracle mismatch is reproducible by rerunning
   with the seed it reported.  [--race] runs the dynamic race check
   instead: an instrumented cache hammered from a 4-domain pool, its
   access journal replayed against the lock-held invariant
   (Xks_check.Race) — the runtime complement of tools/race/xksrace,
   wired into [dune build @race]. *)

module Inverted = Xks_index.Inverted
module Fixtures = Xks_datagen.Paper_fixtures
module Invariant = Xks_check.Invariant
module Oracle = Xks_check.Oracle
module Topk = Xks_check.Topk
module Race = Xks_check.Race
module Engine = Xks_core.Engine
module Exec = Xks_exec.Exec
module Pool = Xks_exec.Pool

let generated_queries = 120
let determinism_jobs = 4

let paper_queries =
  [ Fixtures.q1; Fixtures.q2; Fixtures.q3; Fixtures.q4; Fixtures.q5 ]

let report corpus violations =
  List.iter
    (fun x -> Printf.printf "%s: %s\n" corpus (Invariant.to_string x))
    violations;
  List.length violations

let check_corpus name doc queries =
  let idx = Inverted.build doc in
  let bad = report name (Invariant.index idx) in
  bad + report name (Oracle.check_workload idx queries)

(* Parallel determinism: for every query, Exec.search_batch over a
   jobs-wide pool must return hits structurally identical to the
   sequential Engine.search — and so must a second, cache-served pass
   (same engine, so the shared cache answers it). *)
let check_determinism name idx queries =
  let engine = Engine.of_index idx in
  let sequential = List.map (Engine.search engine) queries in
  let cache = Exec.Cache.create ~max_bytes:(8 * 1024 * 1024) () in
  let cold, warm =
    Pool.with_pool ~size:determinism_jobs ~oversubscribe:true (fun pool ->
        ( Exec.search_batch ~pool ~cache engine queries,
          Exec.search_batch ~pool ~cache engine queries ))
  in
  let bad = ref 0 in
  List.iteri
    (fun i seq ->
      let q = String.concat " " (List.nth queries i) in
      if cold.(i) <> seq then begin
        incr bad;
        Printf.printf
          "%s: parallel determinism: jobs=%d hits differ from sequential for \
           %S\n"
          name determinism_jobs q
      end;
      if warm.(i) <> seq then begin
        incr bad;
        Printf.printf
          "%s: parallel determinism: cache-served hits differ from \
           sequential for %S\n"
          name q
      end)
    sequential;
  !bad

(* Dynamic race check: every cache access recorded by the instrument
   hook, from a cold pass, a cache-served warm pass, a stats snapshot
   and a clear, all under real 4-domain contention; the journal must
   replay with every read/write inside a lock section opened by the
   accessing domain. *)
let run_race () =
  let idx = Inverted.build (Fixtures.publications ()) in
  let engine = Engine.of_index idx in
  let journal = Race.create () in
  let cache =
    Exec.Cache.create ~shards:2 ~instrument:(Race.instrument journal)
      ~max_bytes:(1024 * 1024) ()
  in
  (* Few shards + a repeated workload force shard collisions between
     workers, so lock handoffs actually happen under contention. *)
  let queries = List.concat (List.init 6 (fun _ -> paper_queries)) in
  Pool.with_pool ~size:determinism_jobs ~oversubscribe:true (fun pool ->
      let _cold = Exec.search_batch ~pool ~cache engine queries in
      let _warm = Exec.search_batch ~pool ~cache engine queries in
      ());
  let snapshot = Exec.Cache.stats cache in
  Exec.Cache.clear cache;
  let bad = report "race" (Race.check journal) in
  if bad = 0 then
    Printf.printf
      "check: ok — race journal clean (%d events over %d shards, jobs=%d, \
       %d lookups)\n"
      (Race.length journal)
      (Exec.Cache.shard_count cache)
      determinism_jobs
      (snapshot.hits + snapshot.misses)
  else begin
    Printf.eprintf "check: %d race violation(s) in the access journal\n" bad;
    exit 1
  end

let run_standard ~seed =
  (* The paper's two example documents, audited under all five example
     queries each (a query whose keywords miss the document exercises
     the empty-result paths). *)
  let bad = ref 0 in
  bad := !bad + check_corpus "publications" (Fixtures.publications ()) paper_queries;
  bad := !bad + check_corpus "team" (Fixtures.team ()) paper_queries;
  (* A generated DBLP-shaped corpus under a random workload mixing
     keyword frequencies. *)
  let doc =
    Xks_datagen.Dblp_gen.(
      generate ~config:{ default_config with entries = 400; seed = 7 } ())
  in
  let idx = Inverted.build doc in
  let workload =
    Xks_datagen.Workload_gen.generate ~seed ~count:generated_queries idx
  in
  bad := !bad + report "dblp-gen" (Invariant.index idx);
  bad := !bad + report "dblp-gen" (Oracle.check_workload idx workload);
  (* Batch execution must be indistinguishable from the sequential
     loop on the same workloads. *)
  bad :=
    !bad
    + check_determinism "publications"
        (Inverted.build (Fixtures.publications ()))
        paper_queries;
  bad :=
    !bad
    + check_determinism "team" (Inverted.build (Fixtures.team ())) paper_queries;
  bad := !bad + check_determinism "dblp-gen" idx workload;
  (* Ranked top-k must equal the k-prefix of full-enumeration-then-sort
     on every query — sequentially, cold/warm through the cache, and
     from a pool (Xks_check.Topk). *)
  bad :=
    !bad
    + report "publications"
        (Topk.check_workload
           (Engine.of_index (Inverted.build (Fixtures.publications ())))
           paper_queries);
  bad :=
    !bad
    + report "team"
        (Topk.check_workload
           (Engine.of_index (Inverted.build (Fixtures.team ())))
           paper_queries);
  bad := !bad + report "dblp-gen" (Topk.check_workload (Engine.of_index idx) workload);
  let audited = (2 * List.length paper_queries) + List.length workload in
  if !bad = 0 then
    Printf.printf
      "check: ok — %d queries audited (invariants, ELCA/SLCA differential, \
       Definition 4 post-conditions, jobs=%d batch determinism, top-k \
       prefix equivalence, workload seed=%d)\n"
      audited determinism_jobs seed
  else begin
    Printf.eprintf
      "check: %d violation(s) across %d queries (workload seed=%d — rerun \
       with --seed %d to reproduce)\n"
      !bad audited seed seed;
    exit 1
  end

let () =
  let seed = ref 11 in
  let race = ref false in
  Arg.parse
    [
      ( "--seed",
        Arg.Set_int seed,
        "N generated-workload seed (default 11; printed in every summary)" );
      ( "--race",
        Arg.Set race,
        " run the instrumented-access dynamic race check instead" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "check_runner [--seed N] [--race]";
  if !race then run_race () else run_standard ~seed:!seed
