(* check_runner — drives lib/check over the paper fixtures and a
   generated corpus.

   Exit 0 when every invariant holds and every optimised algorithm
   agrees with the naive reference; exit 1 with one line per violation
   otherwise.  Wired into [dune build @check] (and the @analyze
   umbrella). *)

module Inverted = Xks_index.Inverted
module Fixtures = Xks_datagen.Paper_fixtures
module Invariant = Xks_check.Invariant
module Oracle = Xks_check.Oracle
module Engine = Xks_core.Engine
module Exec = Xks_exec.Exec
module Pool = Xks_exec.Pool

let generated_queries = 120
let determinism_jobs = 4

let report corpus violations =
  List.iter
    (fun x -> Printf.printf "%s: %s\n" corpus (Invariant.to_string x))
    violations;
  List.length violations

let check_corpus name doc queries =
  let idx = Inverted.build doc in
  let bad = report name (Invariant.index idx) in
  bad + report name (Oracle.check_workload idx queries)

(* Parallel determinism: for every query, Exec.search_batch over a
   jobs-wide pool must return hits structurally identical to the
   sequential Engine.search — and so must a second, cache-served pass
   (same engine, so the shared cache answers it). *)
let check_determinism name idx queries =
  let engine = Engine.of_index idx in
  let sequential = List.map (Engine.search engine) queries in
  let cache = Exec.Cache.create ~max_bytes:(8 * 1024 * 1024) () in
  let cold, warm =
    Pool.with_pool ~size:determinism_jobs (fun pool ->
        ( Exec.search_batch ~pool ~cache engine queries,
          Exec.search_batch ~pool ~cache engine queries ))
  in
  let bad = ref 0 in
  List.iteri
    (fun i seq ->
      let q = String.concat " " (List.nth queries i) in
      if cold.(i) <> seq then begin
        incr bad;
        Printf.printf
          "%s: parallel determinism: jobs=%d hits differ from sequential for \
           %S\n"
          name determinism_jobs q
      end;
      if warm.(i) <> seq then begin
        incr bad;
        Printf.printf
          "%s: parallel determinism: cache-served hits differ from \
           sequential for %S\n"
          name q
      end)
    sequential;
  !bad

let () =
  let paper_queries =
    [ Fixtures.q1; Fixtures.q2; Fixtures.q3; Fixtures.q4; Fixtures.q5 ]
  in
  (* The paper's two example documents, audited under all five example
     queries each (a query whose keywords miss the document exercises
     the empty-result paths). *)
  let bad = ref 0 in
  bad := !bad + check_corpus "publications" (Fixtures.publications ()) paper_queries;
  bad := !bad + check_corpus "team" (Fixtures.team ()) paper_queries;
  (* A generated DBLP-shaped corpus under a random workload mixing
     keyword frequencies. *)
  let doc =
    Xks_datagen.Dblp_gen.(
      generate ~config:{ default_config with entries = 400; seed = 7 } ())
  in
  let idx = Inverted.build doc in
  let workload =
    Xks_datagen.Workload_gen.generate ~seed:11 ~count:generated_queries idx
  in
  bad := !bad + report "dblp-gen" (Invariant.index idx);
  bad := !bad + report "dblp-gen" (Oracle.check_workload idx workload);
  (* Batch execution must be indistinguishable from the sequential
     loop on the same workloads. *)
  bad :=
    !bad
    + check_determinism "publications"
        (Inverted.build (Fixtures.publications ()))
        paper_queries;
  bad :=
    !bad
    + check_determinism "team" (Inverted.build (Fixtures.team ())) paper_queries;
  bad := !bad + check_determinism "dblp-gen" idx workload;
  let audited = (2 * List.length paper_queries) + List.length workload in
  if !bad = 0 then
    Printf.printf
      "check: ok — %d queries audited (invariants, ELCA/SLCA differential, \
       Definition 4 post-conditions, jobs=%d batch determinism)\n"
      audited determinism_jobs
  else begin
    Printf.eprintf "check: %d violation(s) across %d queries\n" !bad audited;
    exit 1
  end
