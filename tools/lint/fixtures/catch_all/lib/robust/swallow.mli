val swallow : (unit -> 'a option) -> 'a option
val swallow_alias : (unit -> exn option) -> exn option
val swallow_or : (unit -> 'a option) -> 'a option
val ok : (unit -> 'a option) -> 'a option
val allowed : (unit -> 'a option) -> 'a option
