(* Fixture for the catch-all rule. *)

let swallow f = try f () with _ -> None
let swallow_alias f = try f () with _ as e -> Some e
let swallow_or f = try f () with Not_found | _ -> None

(* Specific handlers: not flagged. *)
let ok f = try f () with Not_found -> None

(* xkslint: allow catch-all *)
let allowed f = try f () with _ -> None
