(* Clean fixture: a comparator module (this basename) written the way
   the rules demand — must produce zero findings. *)
type t = Int of int | Text of string

let compare a b =
  match (a, b) with
  | Int a, Int b -> Int.compare a b
  | Text a, Text b -> String.compare a b
  | Int _, Text _ -> -1
  | Text _, Int _ -> 1

(* A module-local [compare] may be used bare. *)
let equal a b = compare a b = 0

(* The allowlist comment admits a vetted polymorphic comparison. *)
(* xkslint: allow poly-compare *)
let loose_equal (a : t) (b : t) = a = b

let find_first tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None -> invalid_arg ("Value.find_first: unknown key " ^ key)

let read_int s = try int_of_string s with Failure _ -> 0

let describe fmt v =
  Format.fprintf fmt "%d" (match v with Int i -> i | Text t -> String.length t)
