type t = Int of int | Text of string

val compare : t -> t -> int
val equal : t -> t -> bool
val loose_equal : t -> t -> bool
val find_first : (string, 'a) Hashtbl.t -> string -> 'a
val read_int : string -> int
val describe : Format.formatter -> t -> unit
