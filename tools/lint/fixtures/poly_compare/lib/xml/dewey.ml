(* Fixture for the poly-compare rule: this basename (dewey.ml) marks a
   comparator module.  Expected findings are pinned by line number in
   expected/poly_compare.out. *)
type t = int array

let bad_equal (a : t) (b : t) = a = b
let bad_compare (a : t) (b : t) = compare a b
let bad_min a b = min a b
let bad_phys (a : t) (b : t) = a == b
let bad_less (a : t) (b : t) = a < b

(* Comparing against a literal pins the type: not flagged. *)
let ok_literal n = n = 0

(* Module-qualified comparators: not flagged. *)
let ok_qualified a b = Int.compare a b

(* xkslint: allow poly-compare *)
let allowed (a : t) (b : t) = a <> b
