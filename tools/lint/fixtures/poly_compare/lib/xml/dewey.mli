type t = int array

val bad_equal : t -> t -> bool
val bad_compare : t -> t -> int
val bad_min : 'a -> 'a -> 'a
val bad_phys : t -> t -> bool
val bad_less : t -> t -> bool
val ok_literal : int -> bool
val ok_qualified : int -> int -> int
val allowed : t -> t -> bool
