(* Fixture for the stdout-print rule (library code only). *)

let bad_endline () = print_endline "hi"
let bad_printf n = Printf.printf "%d\n" n
let bad_format () = Format.printf "x"
let bad_string () = print_string "y"

(* Explicit formatters and stderr: not flagged. *)
let ok_fprintf fmt = Format.fprintf fmt "x"
let ok_stderr () = prerr_endline "err"

(* xkslint: allow stdout-print *)
let allowed () = print_newline ()
