val bad_endline : unit -> unit
val bad_printf : int -> unit
val bad_format : unit -> unit
val bad_string : unit -> unit
val ok_fprintf : Format.formatter -> unit
val ok_stderr : unit -> unit
val allowed : unit -> unit
