(* Fixture for the module-state rule (library code only). *)

let bad_counter = ref 0
let bad_table : (string, int) Hashtbl.t = Hashtbl.create 16
let bad_atomic = Atomic.make 0

let bad_nested =
  let q = Queue.create () in
  Queue.add 1 q;
  q

module Inner = struct
  let bad_inner = Buffer.create 64
end

(* Per-call state: not flagged. *)
let ok_fresh () =
  let seen = Hashtbl.create 8 in
  Hashtbl.replace seen "x" 1;
  Hashtbl.length seen

let ok_closure () = ref 0

(* xkslint: allow module-state *)
let allowed : int list ref = ref []
