val bad_counter : int ref
val bad_table : (string, int) Hashtbl.t
val bad_atomic : int Atomic.t
val bad_nested : int Queue.t

module Inner : sig
  val bad_inner : Buffer.t
end

val ok_fresh : unit -> int
val ok_closure : unit -> int ref
val allowed : int list ref
