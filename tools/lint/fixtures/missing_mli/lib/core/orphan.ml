(* Fixture for the missing-mli rule: no orphan.mli next to this file. *)
let answer = 42
