val first : 'a list -> 'a
val rest : 'a list -> 'a list
val second : 'a list -> 'a
val force : 'a option -> 'a
val lookup : ('a, 'b) Hashtbl.t -> 'a -> 'b
val ok_lookup : ('a, 'b) Hashtbl.t -> 'a -> 'b option
val ok_first : 'a list -> 'a option
val allowed : 'a list -> 'a
