(* Fixture for the partial-call rule. *)

let first l = List.hd l
let rest l = List.tl l
let second l = List.nth l 1
let force o = Option.get o
let lookup tbl key = Hashtbl.find tbl key

(* Total alternatives: not flagged. *)
let ok_lookup tbl key = Hashtbl.find_opt tbl key
let ok_first = function x :: _ -> Some x | [] -> None

(* xkslint: allow partial-call *)
let allowed l = List.hd l
