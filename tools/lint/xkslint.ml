(* xkslint — repo-local static analysis for the xks sources.

   A dependency-free lint pass built on the compiler's own front end
   ([Parse.implementation] + [Ast_iterator]): it re-parses every [.ml]
   under the directories given on the command line and enforces the
   repo rules documented in DESIGN.md ("Static analysis & invariants"):

   R1 [poly-compare]   In modules that define a dedicated comparator
                       (dewey.ml, label.ml, cid.ml, value.ml), the
                       polymorphic primitives are banned: [compare],
                       [==]/[!=], [min]/[max] always (unless the module
                       shadows them), and [=] [<>] [<] [>] [<=] [>=]
                       whenever neither operand is a literal constant.
                       Comparing against a literal ([c <> 0], [n = 0])
                       pins the type to an immediate and stays legal;
                       comparing two computed values is where the
                       polymorphic order silently diverges from the
                       dedicated one (e.g. on [Dewey.t] it is
                       length-major, not document order).
   R2 [partial-call]   No partial stdlib calls ([List.hd], [List.tl],
                       [List.nth], [Option.get], [Hashtbl.find])
                       outside test code: a violated invariant must
                       fail with a descriptive exception, not a bare
                       [Failure "hd"].
   R3 [catch-all]      No [try ... with _ ->]: a wildcard handler
                       swallows [Out_of_memory] and [Stack_overflow].
   R4 [stdout-print]   No [print_*]/[Printf.printf]/[Format.printf]
                       from library code — stdout is the CLI's result
                       channel.
   R5 [missing-mli]    Every library module needs an interface file.
   R6 [module-state]   No mutable state created at module level in
                       library code ([ref]/[Hashtbl.create]/
                       [Atomic.make]/[Queue.create]/[Buffer.create]
                       outside any function): module-level state is
                       process-global, breaks reentrancy and is the
                       enemy of the multi-domain batch executor.  State
                       created inside a function body is per-call and
                       fine.  A small allowlist covers the deliberate
                       cases (failpoint registry, trace slot).

   Findings print in the compiler's own location format —

     File "lib/xml/dewey.ml", line 12, characters 10-17:
     [poly-compare] message

   — so editors and CI annotators that already parse ocaml diagnostics
   pick them up unchanged ([missing-mli], which has no source span,
   anchors to line 1, characters 0-0).  Output, the [--json] schema
   ({tool, files_scanned, findings: [{file, line, cstart, cend, rule,
   message}]}) and the exit contract (0 clean, 1 findings, 2 usage or
   parse errors) are the shared analyzer layer, [Xks_report.Report] —
   one contract for xkslint, xksrace and xksleak.  A finding is
   suppressed by the comment [(* xkslint: allow <rule> *)] on the same
   line or the line directly above. *)

module StringSet = Set.Make (String)
module Report = Xks_report.Report

let tool = "xkslint"

type rule =
  | Poly_compare
  | Partial_call
  | Catch_all
  | Stdout_print
  | Missing_mli
  | Module_state

let rule_id = function
  | Poly_compare -> "poly-compare"
  | Partial_call -> "partial-call"
  | Catch_all -> "catch-all"
  | Stdout_print -> "stdout-print"
  | Missing_mli -> "missing-mli"
  | Module_state -> "module-state"

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)

(* Modules with a dedicated comparator (R1 applies inside them). *)
let comparator_modules = [ "dewey.ml"; "label.ml"; "cid.ml"; "value.ml" ]

(* (module, function) pairs banned by R2. *)
let partial_calls =
  [
    ("List", "hd");
    ("List", "tl");
    ("List", "nth");
    ("Option", "get");
    ("Hashtbl", "find");
  ]

(* Bare identifiers banned by R4 in library code. *)
let stdout_idents =
  [
    "print_string";
    "print_bytes";
    "print_int";
    "print_char";
    "print_float";
    "print_endline";
    "print_newline";
  ]

(* Qualified identifiers banned by R4 in library code. *)
let stdout_qualified =
  [
    ("Printf", "printf");
    ("Format", "printf");
    ("Format", "print_string");
    ("Format", "print_newline");
    ("Format", "print_flush");
  ]

(* Library files whose module-level state is deliberate (R6): the
   failpoint registry is the fault-injection control surface and the
   trace module owns the global current-trace slot.  Everything else
   needs an inline [(* xkslint: allow module-state *)] with a safety
   argument next to the definition. *)
let module_state_allowlist = [ "failpoint.ml"; "trace.ml" ]

(* (module, function) constructors of mutable state flagged by R6 when
   called at module level. *)
let state_constructors =
  [
    ("Hashtbl", "create");
    ("Atomic", "make");
    ("Queue", "create");
    ("Buffer", "create");
  ]

(* Identifiers banned unconditionally by R1 (unless shadowed). *)
let poly_idents = [ "compare"; "min"; "max"; "==" ; "!=" ]

(* Operators banned by R1 when neither operand is a literal. *)
let poly_relational = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

(* ------------------------------------------------------------------ *)
(* File classification                                                *)

type area = Lib | Bin | Bench | Test | Other_area

let area_of_path path =
  let segs = String.split_on_char '/' path in
  let has s = List.exists (String.equal s) segs in
  let test_seg s = String.length s >= 4 && String.equal (String.sub s 0 4) "test" in
  if List.exists test_seg segs then Test
  else if has "lib" then Lib
  else if has "bin" then Bin
  else if has "bench" then Bench
  else Other_area

(* ------------------------------------------------------------------ *)
(* Allowlist comments                                                 *)

let allow_marker = "xkslint: allow "

(* Line numbers (1-based) carrying an [xkslint: allow <rule>] comment,
   mapped to the allowed rule ids. *)
let scan_allows src =
  let allows = Hashtbl.create 8 in
  let add_allow line rule =
    let prev =
      match Hashtbl.find_opt allows line with
      | Some s -> s
      | None -> StringSet.empty
    in
    Hashtbl.replace allows line (StringSet.add rule prev)
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i text ->
      let mlen = String.length allow_marker in
      let tlen = String.length text in
      let rec find from =
        if from + mlen > tlen then ()
        else if String.equal (String.sub text from mlen) allow_marker then begin
          let stop = ref (from + mlen) in
          let word_char c =
            (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || Char.equal c '-'
          in
          while !stop < tlen && word_char text.[!stop] do
            incr stop
          done;
          add_allow (i + 1) (String.sub text (from + mlen) (!stop - (from + mlen)));
          find !stop
        end
        else find (from + 1)
      in
      find 0)
    lines;
  allows

let allowed allows line rule =
  let at l =
    match Hashtbl.find_opt allows l with
    | Some s -> StringSet.mem (rule_id rule) s
    | None -> false
  in
  at line || at (line - 1)

(* ------------------------------------------------------------------ *)
(* Per-file AST checks                                                *)

let line_of = Report.line_of
let cols_of = Report.cols_of

(* Names let-bound anywhere in the file: a module that defines its own
   [compare]/[min]/[max] may use them bare. *)
let bound_names structure =
  let names = ref StringSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> names := StringSet.add txt !names
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.structure it structure;
  !names

let is_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true (* [], None, true, () … *)
  | Pexp_variant (_, None) -> true
  | _ -> false

let rec pattern_is_catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (q, _) -> pattern_is_catch_all q
  | Ppat_or (a, b) -> pattern_is_catch_all a || pattern_is_catch_all b
  | _ -> false

let check_file path =
  let findings = ref [] in
  let src = Report.read_file path in
  let allows = scan_allows src in
  let area = area_of_path path in
  let emit ~line ~cols:(cstart, cend) rule msg =
    if not (allowed allows line rule) then
      findings :=
        { Report.file = path; line; cstart; cend; rule = rule_id rule; msg }
        :: !findings
  in
  let emit_at loc rule msg =
    emit ~line:(line_of loc) ~cols:(cols_of loc) rule msg
  in
  (* R5: library modules need an interface.  No source span to point
     at, so the finding anchors to the top of the file. *)
  (match area with
  | Lib ->
      if not (Sys.file_exists (path ^ "i")) then
        emit ~line:1 ~cols:(0, 0) Missing_mli
          (Printf.sprintf "library module %s has no interface file (%si)"
             (Filename.basename path)
             (Filename.basename path))
  | Bin | Bench | Test | Other_area -> ());
  let structure = Report.parse_implementation ~tool path src in
  (* R6: mutable state created at module level in library code.  A
     dedicated iterator that never descends into function bodies —
     state allocated per call is fine; state allocated when the module
     initialises is process-global. *)
  (if
     (match area with Lib -> true | Bin | Bench | Test | Other_area -> false)
     && not
          (List.exists
             (String.equal (Filename.basename path))
             module_state_allowlist)
   then
     let emit_state loc what =
       emit_at loc Module_state
         (Printf.sprintf
            "mutable state ('%s') created at module level in library code \
             (process-global, hostile to multi-domain execution); allocate \
             it inside the function or record that owns it"
            what)
     in
     let state_hook it (e : Parsetree.expression) =
       match e.pexp_desc with
       | Pexp_fun _ | Pexp_function _ -> ()
       | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) ->
           (match txt with
           | Lident "ref" -> emit_state loc "ref"
           | Ldot (Lident m, f)
             when List.exists
                    (fun (bm, bf) -> String.equal m bm && String.equal f bf)
                    state_constructors ->
               emit_state loc (m ^ "." ^ f)
           | _ -> ());
           Ast_iterator.default_iterator.expr it e
       | _ -> Ast_iterator.default_iterator.expr it e
     in
     let state_it = { Ast_iterator.default_iterator with expr = state_hook } in
     state_it.structure state_it structure);
  let comparator_module =
    List.exists (String.equal (Filename.basename path)) comparator_modules
  in
  let shadowed = if comparator_module then bound_names structure else StringSet.empty in
  let check_ident loc (id : Longident.t) =
    match id with
    | Lident name ->
        if
          comparator_module
          && List.exists (String.equal name) poly_idents
          && not (StringSet.mem name shadowed)
        then
          emit_at loc Poly_compare
            (Printf.sprintf
               "polymorphic '%s' in a module with a dedicated comparator; \
                use Int/String/%s functions instead"
               name
               (String.capitalize_ascii
                  (Filename.remove_extension (Filename.basename path))));
        if
          (match area with Lib -> true | Bin | Bench | Test | Other_area -> false)
          && List.exists (String.equal name) stdout_idents
        then
          emit_at loc Stdout_print
            (Printf.sprintf
               "'%s' writes to stdout from library code (stdout is the \
                CLI's result channel); return data or use Format on an \
                explicit formatter"
               name)
    | Ldot (Lident m, f) ->
        if
          (match area with Test -> false | Lib | Bin | Bench | Other_area -> true)
          && List.exists
               (fun (bm, bf) -> String.equal m bm && String.equal f bf)
               partial_calls
        then
          emit_at loc Partial_call
            (Printf.sprintf
               "partial '%s.%s' outside test code; match explicitly or use \
                a total alternative (%s) so a broken invariant fails with \
                a descriptive exception"
               m f
               (match f with
               | "hd" | "tl" -> "a pattern match on the list"
               | "nth" -> "List.nth_opt"
               | "get" -> "Option.value or a pattern match"
               | "find" -> "Hashtbl.find_opt"
               | _ -> "an _opt variant"));
        if
          (match area with Lib -> true | Bin | Bench | Test | Other_area -> false)
          && List.exists
               (fun (bm, bf) -> String.equal m bm && String.equal f bf)
               stdout_qualified
        then
          emit_at loc Stdout_print
            (Printf.sprintf
               "'%s.%s' writes to stdout from library code (stdout is the \
                CLI's result channel)"
               m f)
    | Ldot _ | Lapply _ -> ()
  in
  let expr_hook it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_try (_, cases) ->
        List.iter
          (fun (c : Parsetree.case) ->
            if pattern_is_catch_all c.pc_lhs then
              emit_at c.pc_lhs.ppat_loc Catch_all
                "catch-all exception handler ('with _ ->') swallows \
                 Out_of_memory and Stack_overflow; match the specific \
                 exceptions instead")
          cases
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident op; loc }; _ }, args)
      when comparator_module
           && List.exists (String.equal op) poly_relational
           && not (StringSet.mem op shadowed) -> (
        match args with
        | (_, a) :: (_, b) :: _ ->
            if not (is_literal a || is_literal b) then
              emit_at loc Poly_compare
                (Printf.sprintf
                   "polymorphic '%s' on two computed operands in a module \
                    with a dedicated comparator; use Int.equal/Int.compare \
                    (comparing against a literal is fine)"
                   op)
        | _ -> ())
    | Pexp_ident { txt; loc } -> check_ident loc txt
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_hook } in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------------ *)
(* Driver (walk, output and exit contract live in Report)             *)

let () =
  let json, roots = Report.parse_argv ~tool Sys.argv in
  let files = List.concat_map (fun r -> List.rev (Report.walk_dir r [])) roots in
  let findings = List.concat_map check_file files in
  Report.report ~tool ~json ~files_scanned:(List.length files) findings
