(* xksrace — cross-module domain-safety and lock-discipline analysis.

   The multicore exec layer (lib/exec) shares mutable state across
   [Domain.spawn] boundaries; xkslint's module-state rule only flags
   module-level mutable *creation*, not unsynchronized *sharing*.  This
   tool closes the gap with a two-pass whole-program scan of the
   directories given on the command line (normally just [lib]), built —
   like xkslint — on the compiler's own front end
   ([Parse.implementation] + a hand-rolled environment-carrying walk).

   Pass 1 (inventory, cross-module).  Every [.ml] is parsed and its
   mutable surface recorded: [mutable] record fields, fields of
   container type ([Hashtbl.t]/[Queue.t]/[Buffer.t]/[Stack.t]), fields
   whose type references another scanned module whose own type is
   unsafe (computed as a fixpoint, so [Inverted.t] ∋ [Int_vec.t] ∋
   [mutable data] propagates), and module-level [ref]/container
   bindings.  [Atomic.t]/[Mutex.t]/[Condition.t]/[Semaphore] values are
   synchronization primitives and always safe.  OCaml arrays are *not*
   inventoried: the repo convention (pinned by the sharing audits in
   test/) is that arrays are frozen post-build or striped over disjoint
   slots, and flagging every [int array] would drown the signal.

   Pass 2 (enforcement, per file, with a held-lock environment):

   E1 [unguarded-escape]  A mutable value created *outside* a
                          domain-crossing closure but read or written
                          *inside* one ([Domain.spawn] / [Pool.submit] /
                          [Pool.run_all] arguments, propagated through
                          same-file [let] bindings) with no annotation.
   E2 [unlocked-access]   A read/write of a [guarded_by]-annotated field
                          or binding while the named mutex is not
                          syntactically held.
   E3 [requires-lock]     A call to a [requires_lock]-annotated helper
                          while the named mutex is not held.
   E4 [frozen-mutable]    A mutable/container/unsafe-typed field (or
                          module-level mutable binding) declared in a
                          frozen-builder module ([inverted.ml],
                          [engine.ml]) with no annotation: values of
                          these modules are shared read-only across
                          every pool worker, so each mutable member
                          must carry its safety argument.

   A mutex is "held" inside the callback of [Mutex.protect m f], inside
   any function-literal argument of a call to a [locks]-annotated
   helper, inside the body of a [requires_lock]-annotated function, and
   in the statements of a sequence after [Mutex.lock m] (until
   [Mutex.unlock m]).  Mutexes are named by the last component of their
   access path ([s.mutex] and [p.mutex] are both "mutex").

   Annotation grammar (comment on the declaration line or the line
   directly above; for suppression, on the access line or above):

     (* xksrace: guarded_by <mutex-name> *)     field/binding: every
                                                access must hold <mutex>
     (* xksrace: domain_safe <reason> *)        field/binding: safe by
                                                argument; on a use line:
                                                suppress findings there
     (* xksrace: requires_lock <mutex-name> *)  function: body assumes
                                                the lock; callers must
                                                hold it
     (* xksrace: locks <mutex-name> *)          function: runs its
                                                function arguments with
                                                the lock held

   E5 [raise-under-lock]  A call to [Failpoint.apply] /
                          [Failpoint.read_file] / [Failpoint.trigger]
                          while a mutex is held via *bare*
                          [Mutex.lock] sequencing.  Failpoint sites
                          raise by injection (the fault suites arm
                          them with [Raise]), so the unlock after the
                          call is unreachable on the injected path and
                          the lock leaks — the raise inventory here
                          matches xksleak's may-raise fixpoint, which
                          treats failpoint sites as raising.  Inside
                          [Mutex.protect] or a [locks]-annotated
                          wrapper the release is exception-safe and no
                          finding is emitted.

   Known approximations, by design (this is a linter, not a verifier):
   locks are matched by name, not aliasing; cross-module call
   propagation into domain closures stops at module boundaries; arrays
   are exempt; a closure built under a lock is assumed not to outlive
   it.  Output, the [--json] schema and the 0/1/2 exit contract are
   the shared analyzer layer ([Xks_report.Report]). *)

module StringSet = Set.Make (String)
module Report = Xks_report.Report

let tool = "xksrace"

type kind =
  | Unguarded_escape
  | Unlocked_access
  | Requires_lock
  | Frozen_mutable
  | Raise_under_lock

let kind_id = function
  | Unguarded_escape -> "unguarded-escape"
  | Unlocked_access -> "unlocked-access"
  | Requires_lock -> "requires-lock"
  | Frozen_mutable -> "frozen-mutable"
  | Raise_under_lock -> "raise-under-lock"

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)

(* Builders of these modules freeze their result before it is shared
   read-only across domains (Inverted.build, the Engine builders): every
   mutable member needs an explicit safety argument (E4). *)
let frozen_modules = [ "inverted.ml"; "engine.ml" ]

(* Type heads that are mutable containers. *)
let container_modules = [ "Hashtbl"; "Queue"; "Buffer"; "Stack" ]

(* Type heads that are synchronization primitives (always safe). *)
let sync_modules = [ "Atomic"; "Mutex"; "Condition"; "Semaphore" ]

(* Module-level constructors of mutable / sync state. *)
let container_ctors =
  [ ("Hashtbl", "create"); ("Queue", "create"); ("Buffer", "create");
    ("Stack", "create") ]

let sync_ctors =
  [ ("Atomic", "make"); ("Mutex", "create"); ("Condition", "create") ]

(* ------------------------------------------------------------------ *)
(* Annotations                                                        *)

type ann =
  | Guarded_by of string
  | Domain_safe of string
  | Requires of string
  | Locks of string

(* The full comment-opening form: a looser match (say, on "xksrace: "
   alone) would fire on prose that merely mentions the tool. *)
let ann_marker = "(* xksrace: "

(* Line number (1-based) -> annotations written on that line. *)
let scan_annotations path src =
  let anns : (int, ann list) Hashtbl.t = Hashtbl.create 16 in
  let add line a =
    let prev = match Hashtbl.find_opt anns line with Some l -> l | None -> [] in
    Hashtbl.replace anns line (a :: prev)
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i text ->
      match
        let mlen = String.length ann_marker in
        let tlen = String.length text in
        let rec find from =
          if from + mlen > tlen then None
          else if String.equal (String.sub text from mlen) ann_marker then
            Some (from + mlen)
          else find (from + 1)
        in
        find 0
      with
      | None -> ()
      | Some start ->
          let stop =
            let rec close j =
              if j + 2 > String.length text then String.length text
              else if String.equal (String.sub text j 2) "*)" then j
              else close (j + 1)
            in
            close start
          in
          let body = String.trim (String.sub text start (stop - start)) in
          let keyword, arg =
            match String.index_opt body ' ' with
            | None -> (body, "")
            | Some sp ->
                ( String.sub body 0 sp,
                  String.trim
                    (String.sub body (sp + 1) (String.length body - sp - 1)) )
          in
          let first_word s =
            match String.index_opt s ' ' with
            | None -> s
            | Some sp -> String.sub s 0 sp
          in
          let line = i + 1 in
          (match keyword with
          | "guarded_by" when arg <> "" -> add line (Guarded_by (first_word arg))
          | "domain_safe" -> add line (Domain_safe arg)
          | "requires_lock" when arg <> "" -> add line (Requires (first_word arg))
          | "locks" when arg <> "" -> add line (Locks (first_word arg))
          | _ ->
              Printf.eprintf
                "xksrace: %s: line %d: unrecognized annotation %S\n" path line
                body;
              exit 2))
    lines;
  anns

(* Annotations attached to a declaration at [line]: same line or the
   line directly above. *)
let anns_at anns line =
  let at l = match Hashtbl.find_opt anns l with Some l -> l | None -> [] in
  at line @ at (line - 1)

let binding_ann anns line =
  List.find_map
    (function (Guarded_by _ | Domain_safe _) as a -> Some a | _ -> None)
    (anns_at anns line)

let suppressed anns line =
  List.exists (function Domain_safe _ -> true | _ -> false) (anns_at anns line)

(* ------------------------------------------------------------------ *)
(* Locations                                                          *)

let line_of = Report.line_of
let cols_of = Report.cols_of

let last_of (lid : Longident.t) =
  match Longident.flatten lid with
  | [] -> ""
  | l -> List.nth l (List.length l - 1)

(* Module component directly qualifying a name: [Xks_util.Int_vec.t]
   -> Some "Int_vec", [Hashtbl.t] -> Some "Hashtbl", [t] -> None. *)
let qualifier (lid : Longident.t) =
  match lid with
  | Longident.Ldot (path, _) -> (
      match Longident.flatten path with
      | [] -> None
      | l -> Some (List.nth l (List.length l - 1)))
  | Longident.Lident _ | Longident.Lapply _ -> None

(* ------------------------------------------------------------------ *)
(* Pass 1: inventory                                                  *)

type fld = {
  fl_file : string;
  fl_module : string;  (* declaring module, capitalized *)
  fl_ty : string;  (* declaring type *)
  fl_name : string;
  fl_line : int;
  fl_cstart : int;
  fl_cend : int;
  fl_mutable : bool;
  fl_container : string option;
  fl_refs : (string * string) list;  (* (Module, type) mentioned in the type *)
  fl_ann : ann option;
}

type toplevel = {
  ts_file : string;
  ts_name : string;
  ts_line : int;
  ts_what : string;  (* "ref", "Hashtbl.create", ... *)
  ts_sync : bool;
  ts_ann : ann option;
}

(* Containers and cross-module type references inside one core type.
   Sync heads stop the scan (their contents are managed); container
   heads are recorded and stop it (an annotation is required anyway). *)
let scan_core_type ct =
  let containers = ref [] and refs = ref [] in
  let rec go (ct : Parsetree.core_type) =
    match ct.ptyp_desc with
    | Ptyp_constr (lid, args) -> (
        match qualifier lid.txt with
        | Some m when List.mem m sync_modules -> ()
        | Some m when List.mem m container_modules ->
            containers := m :: !containers
        | Some m ->
            refs := (m, last_of lid.txt) :: !refs;
            List.iter go args
        | None -> List.iter go args)
    | Ptyp_tuple cts -> List.iter go cts
    | Ptyp_alias (ct, _) | Ptyp_poly (_, ct) -> go ct
    | _ -> ()
  in
  go ct;
  (!containers, !refs)

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

type file_info = {
  fi_path : string;
  fi_anns : (int, ann list) Hashtbl.t;
  fi_structure : Parsetree.structure;
}

let fields_of_file fi =
  let mname = module_of_path fi.fi_path in
  let out = ref [] in
  let add_field ty name (loc : Location.t) is_mutable core_types =
    let containers, refs =
      List.fold_left
        (fun (cs, rs) ct ->
          let c, r = scan_core_type ct in
          (c @ cs, r @ rs))
        ([], []) core_types
    in
    let cstart, cend = cols_of loc in
    out :=
      {
        fl_file = fi.fi_path;
        fl_module = mname;
        fl_ty = ty;
        fl_name = name;
        fl_line = line_of loc;
        fl_cstart = cstart;
        fl_cend = cend;
        fl_mutable = is_mutable;
        fl_container = (match containers with [] -> None | c :: _ -> Some c);
        fl_refs = refs;
        fl_ann = binding_ann fi.fi_anns (line_of loc);
      }
      :: !out
  in
  let type_decl (td : Parsetree.type_declaration) =
    let ty = td.ptype_name.txt in
    (match td.ptype_kind with
    | Ptype_record lds ->
        List.iter
          (fun (ld : Parsetree.label_declaration) ->
            add_field ty ld.pld_name.txt ld.pld_loc
              (match ld.pld_mutable with Mutable -> true | Immutable -> false)
              [ ld.pld_type ])
          lds
    | Ptype_variant cds ->
        List.iter
          (fun (cd : Parsetree.constructor_declaration) ->
            match cd.pcd_args with
            | Pcstr_tuple [] -> ()
            | Pcstr_tuple cts -> add_field ty cd.pcd_name.txt cd.pcd_loc false cts
            | Pcstr_record lds ->
                List.iter
                  (fun (ld : Parsetree.label_declaration) ->
                    add_field ty ld.pld_name.txt ld.pld_loc
                      (match ld.pld_mutable with
                      | Mutable -> true
                      | Immutable -> false)
                      [ ld.pld_type ])
                  lds)
          cds
    | Ptype_abstract | Ptype_open -> ());
    match td.ptype_manifest with
    | Some ct -> add_field ty ty td.ptype_loc false [ ct ]
    | None -> ()
  in
  let rec item (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_type (_, tds) -> List.iter type_decl tds
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | _ -> ()
  in
  List.iter item fi.fi_structure;
  !out

(* Peel syntactic wrappers off a binding's right-hand side. *)
let rec peel (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> peel e
  | _ -> e

let state_ctor_of (e : Parsetree.expression) =
  match (peel e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match txt with
      | Lident "ref" -> Some ("ref", false)
      | Ldot (Lident m, f)
        when List.exists
               (fun (cm, cf) -> String.equal m cm && String.equal f cf)
               container_ctors ->
          Some (m ^ "." ^ f, false)
      | Ldot (Lident m, f)
        when List.exists
               (fun (cm, cf) -> String.equal m cm && String.equal f cf)
               sync_ctors ->
          Some (m ^ "." ^ f, true)
      | _ -> None)
  | _ -> None

let toplevels_of_file fi =
  let out = ref [] in
  let binding (vb : Parsetree.value_binding) =
    match (vb.pvb_pat.ppat_desc, state_ctor_of vb.pvb_expr) with
    | Ppat_var { txt; _ }, Some (what, sync) ->
        out :=
          {
            ts_file = fi.fi_path;
            ts_name = txt;
            ts_line = line_of vb.pvb_loc;
            ts_what = what;
            ts_sync = sync;
            ts_ann = binding_ann fi.fi_anns (line_of vb.pvb_loc);
          }
          :: !out
    | _ -> ()
  in
  let rec item (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter binding vbs
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | _ -> ()
  in
  List.iter item fi.fi_structure;
  !out

(* Fixpoint: (Module, type) is unsafe when its declaration carries an
   unannotated mutable/container field, or an unannotated field whose
   type mentions an unsafe (Module, type).  Annotations stop
   propagation: a guarded or argued field is managed state. *)
let compute_unsafe fields =
  let unsafe : (string * string, bool) Hashtbl.t = Hashtbl.create 64 in
  let is_unsafe key =
    match Hashtbl.find_opt unsafe key with Some b -> b | None -> false
  in
  let fld_unsafe f =
    f.fl_ann = None
    && (f.fl_mutable
       || f.fl_container <> None
       || List.exists is_unsafe f.fl_refs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if fld_unsafe f then begin
          let key = (f.fl_module, f.fl_ty) in
          if not (is_unsafe key) then begin
            Hashtbl.replace unsafe key true;
            changed := true
          end
        end)
      fields
  done;
  is_unsafe

(* ------------------------------------------------------------------ *)
(* Pass 2: enforcement                                                *)

(* The last name on an access path, used to identify mutexes:
   [s.mutex] and [done_mutex] -> "mutex" / "done_mutex". *)
let rec path_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> last_of txt
  | Pexp_field (_, { txt; _ }) -> last_of txt
  | Pexp_constraint (e, _) -> path_name e
  | _ -> "?"

let mutex_call (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Ldot (Lident "Mutex", f); _ }; _ },
        (_, m) :: _ )
    when String.equal f "lock" || String.equal f "unlock" ->
      Some (f, path_name m)
  | _ -> None

(* Bare idents mentioned in an expression (for spawn-argument
   propagation through same-file bindings). *)
let idents_of expr =
  let acc = ref StringSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt = Lident x; _ } -> acc := StringSet.add x !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  !acc

(* Closure arguments of a spawn point, or [None].  [Domain.spawn f]
   runs [f] on a new domain; [Pool.submit]/[Pool.run_all] hand their
   last argument to worker domains (bare [submit]/[run_all] count
   inside the file defining them — the pool implementation itself). *)
let spawn_args ~local_names head (args : (Asttypes.arg_label * _) list) =
  match (head : Parsetree.expression).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let name = last_of txt in
      let qualified_pool =
        match qualifier txt with Some "Pool" -> true | Some _ -> false | None -> false
      in
      let plain = List.filter_map
          (function (Asttypes.Nolabel, a) -> Some a | _ -> None) args
      in
      match name with
      | "spawn" when (match qualifier txt with Some "Domain" -> true | _ -> false)
        -> (match plain with a :: _ -> Some [ a ] | [] -> None)
      | "submit" | "run_all"
        when qualified_pool
             || (match txt with
                | Lident n -> StringSet.mem n local_names
                | _ -> false) -> (
          match List.rev plain with last :: _ -> Some [ last ] | [] -> None)
      | _ -> None)
  | _ -> None

(* [held] is every mutex the walker considers locked; [bare_held] is
   the subset acquired by bare [Mutex.lock] sequencing, whose release
   is a plain statement an exception can skip — the only form E5
   flags.  [Mutex.protect] and [locks]-annotated wrappers release in a
   [Fun.protect] finalizer, so they extend [held] only. *)
type env = { held : StringSet.t; bare_held : StringSet.t; in_domain : bool }

(* Where a lock-relevant finding points at a declaration, remind the
   reader where that declaration lives. *)
let declared_at (f : fld) = Printf.sprintf "%s:%d" f.fl_file f.fl_line

let check_file ~fields_by_name ~toplevels ~interesting fi =
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  let emit (loc : Location.t) kind msg =
    let line = line_of loc in
    let cstart, cend = cols_of loc in
    let key = (line, cstart, kind_id kind) in
    if (not (suppressed fi.fi_anns line)) && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      findings :=
        { Report.file = fi.fi_path; line; cstart; cend; rule = kind_id kind; msg }
        :: !findings
    end
  in
  (* Same-file lock-discipline annotations on functions, and mutable
     local bindings: name -> created inside a domain closure? *)
  let requires_fns : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let locks_fns : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let local_state : (string, bool * ann option) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ts ->
      if String.equal ts.ts_file fi.fi_path && not ts.ts_sync then
        Hashtbl.replace local_state ts.ts_name (false, ts.ts_ann))
    toplevels;
  (* Domain-reachability seeds: names mentioned in spawn-point closure
     arguments, propagated through same-file binding bodies. *)
  let bindings : (string, Parsetree.expression) Hashtbl.t = Hashtbl.create 32 in
  let local_names = ref StringSet.empty in
  let seeds = ref StringSet.empty in
  let pre =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.Parsetree.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } ->
              Hashtbl.replace bindings txt vb.pvb_expr;
              local_names := StringSet.add txt !local_names
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  pre.structure pre fi.fi_structure;
  let seed_it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_apply (head, args) -> (
              match spawn_args ~local_names:!local_names head args with
              | Some closures ->
                  List.iter
                    (fun c -> seeds := StringSet.union (idents_of c) !seeds)
                    closures
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  seed_it.structure seed_it fi.fi_structure;
  let marked = ref StringSet.empty in
  let rec propagate name =
    if (not (StringSet.mem name !marked)) && Hashtbl.mem bindings name then begin
      marked := StringSet.add name !marked;
      StringSet.iter propagate (idents_of (Hashtbl.find bindings name))
    end
  in
  StringSet.iter propagate !seeds;
  (* Field-access resolution: prefer a same-file declaration; otherwise
     a globally unique one; ambiguous cross-module names are skipped. *)
  let resolve_field name =
    match Hashtbl.find_opt fields_by_name name with
    | None -> None
    | Some candidates -> (
        match
          List.filter (fun f -> String.equal f.fl_file fi.fi_path) candidates
        with
        | [ f ] -> Some f
        | _ :: _ -> None
        | [] -> ( match candidates with [ f ] -> Some f | _ -> None))
  in
  let check_field env (lid : Longident.t Location.loc) ~write =
    let name = last_of lid.txt in
    match resolve_field name with
    | None -> ()
    | Some f when not (interesting f) -> ()
    | Some f -> (
        match f.fl_ann with
        | Some (Domain_safe _) -> ()
        | Some (Guarded_by m) ->
            if not (StringSet.mem m env.held) then
              emit lid.loc Unlocked_access
                (Printf.sprintf
                   "%s of field '%s' (guarded_by %s, declared at %s) without \
                    holding '%s'; wrap the access in Mutex.protect or a \
                    locks-annotated helper"
                   (if write then "write" else "read")
                   name m (declared_at f) m)
        | Some (Requires _ | Locks _) | None ->
            if env.in_domain then
              emit lid.loc Unguarded_escape
                (Printf.sprintf
                   "%s of unsynchronized mutable field '%s' (declared at %s) \
                    inside a domain-crossing closure; guard it with a mutex \
                    (guarded_by), make it atomic, or justify it with \
                    domain_safe"
                   (if write then "write" else "read")
                   name (declared_at f)))
  in
  let check_ident env name (loc : Location.t) =
    match Hashtbl.find_opt local_state name with
    | None -> ()
    | Some (_, Some (Domain_safe _)) -> ()
    | Some (_, Some (Guarded_by m)) ->
        if not (StringSet.mem m env.held) then
          emit loc Unlocked_access
            (Printf.sprintf
               "use of '%s' (guarded_by %s) without holding '%s'" name m m)
    | Some (created_in_domain, _) ->
        if env.in_domain && not created_in_domain then
          emit loc Unguarded_escape
            (Printf.sprintf
               "mutable binding '%s' created outside this domain-crossing \
                closure is accessed inside it without synchronization; use \
                an Atomic, a mutex-guarded structure, or justify it with \
                domain_safe"
               name)
  in
  let rec walk env (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
        walk env a;
        let env =
          match mutex_call a with
          | Some ("lock", m) ->
              {
                env with
                held = StringSet.add m env.held;
                bare_held = StringSet.add m env.bare_held;
              }
          | Some ("unlock", m) ->
              {
                env with
                held = StringSet.remove m env.held;
                bare_held = StringSet.remove m env.bare_held;
              }
          | _ -> env
        in
        walk env b
    | Pexp_let (_, vbs, body) ->
        List.iter (register_binding env) vbs;
        List.iter (walk_binding env) vbs;
        walk env body
    | Pexp_fun (_, default, _, body) ->
        Option.iter (walk env) default;
        walk env body
    | Pexp_function cases -> List.iter (walk_case env) cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        walk env scrut;
        List.iter (walk_case env) cases
    | Pexp_field (r, lid) ->
        check_field env lid ~write:false;
        walk env r
    | Pexp_setfield (r, lid, v) ->
        check_field env lid ~write:true;
        walk env r;
        walk env v
    | Pexp_ident { txt = Lident x; loc } -> check_ident env x loc
    | Pexp_apply (head, args) -> walk_apply env e head args
    | _ -> fallback env e
  and fallback env e =
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ child -> walk env child);
      }
    in
    Ast_iterator.default_iterator.expr it e
  and walk_case env (c : Parsetree.case) =
    Option.iter (walk env) c.pc_guard;
    walk env c.pc_rhs
  and walk_apply env e head args =
    let plain_args = List.map snd args in
    match spawn_args ~local_names:!local_names head args with
    | Some closures ->
        walk env head;
        List.iter
          (fun a ->
            if List.memq a closures then walk { env with in_domain = true } a
            else walk env a)
          plain_args
    | None -> (
        (* E5: failpoint sites raise by injection; under a bare lock
           the matching unlock is skipped on the injected path. *)
        (match head.pexp_desc with
        | Pexp_ident { txt; loc }
          when (match qualifier txt with
               | Some "Failpoint" -> true
               | Some _ | None -> false)
               && List.exists (String.equal (last_of txt))
                    [ "apply"; "read_file"; "trigger" ] ->
            StringSet.iter
              (fun m ->
                emit loc Raise_under_lock
                  (Printf.sprintf
                     "call to 'Failpoint.%s' (may raise by injection) while \
                      '%s' is held via bare Mutex.lock — an injected fault \
                      skips the unlock and leaks the lock; use Mutex.protect \
                      or release-and-reraise around the failpoint site"
                     (last_of txt) m))
              env.bare_held
        | _ -> ());
        match head.pexp_desc with
        | Pexp_ident { txt = Ldot (Lident "Mutex", "protect"); _ } -> (
            match plain_args with
            | m :: rest ->
                walk env m;
                let env' =
                  { env with held = StringSet.add (path_name m) env.held }
                in
                List.iter (walk env') rest
            | [] -> ())
        | Pexp_ident { txt = Lident "ref"; loc = _ }
          when List.length plain_args = 1 ->
            fallback env e
        | Pexp_ident { txt = Lident f; loc }
          when Hashtbl.mem requires_fns f || Hashtbl.mem locks_fns f ->
            (match Hashtbl.find_opt requires_fns f with
            | Some m when not (StringSet.mem m env.held) ->
                emit loc Requires_lock
                  (Printf.sprintf
                     "call to '%s' (requires_lock %s) without holding '%s'"
                     f m m)
            | Some _ | None -> ());
            let env' =
              match Hashtbl.find_opt locks_fns f with
              | Some m -> { env with held = StringSet.add m env.held }
              | None -> env
            in
            List.iter
              (fun (a : Parsetree.expression) ->
                match a.pexp_desc with
                | Pexp_fun _ | Pexp_function _ -> walk env' a
                | _ -> walk env a)
              plain_args
        | Pexp_ident { txt = Lident (("!" | ":=" | "incr" | "decr") as op); _ }
          -> (
            match plain_args with
            | ({ pexp_desc = Pexp_ident { txt = Lident x; loc }; _ } as _r)
              :: rest ->
                check_ident env x loc;
                ignore op;
                List.iter (walk env) rest
            | _ -> fallback env e)
        | _ -> fallback env e)
  and register_binding _env (vb : Parsetree.value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } ->
        List.iter
          (function
            | Requires m -> Hashtbl.replace requires_fns txt m
            | Locks m -> Hashtbl.replace locks_fns txt m
            | Guarded_by _ | Domain_safe _ -> ())
          (anns_at fi.fi_anns (line_of vb.pvb_loc))
    | _ -> ()
  and walk_binding env (vb : Parsetree.value_binding) =
    let env =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } ->
          (match state_ctor_of vb.pvb_expr with
          | Some (_, true) -> ()
          | Some (_, false) ->
              Hashtbl.replace local_state txt
                (env.in_domain, binding_ann fi.fi_anns (line_of vb.pvb_loc))
          | None -> ());
          let env =
            if StringSet.mem txt !marked then { env with in_domain = true }
            else env
          in
          (match Hashtbl.find_opt requires_fns txt with
          | Some m -> { env with held = StringSet.add m env.held }
          | None -> env)
      | _ -> env
    in
    walk env vb.pvb_expr
  in
  let top =
    { held = StringSet.empty; bare_held = StringSet.empty; in_domain = false }
  in
  let rec item (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter (register_binding top) vbs;
        List.iter (walk_binding top) vbs
    | Pstr_eval (e, _) -> walk top e
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | _ -> ()
  in
  List.iter item fi.fi_structure;
  !findings

(* E4: every mutable member of a frozen-builder module carries its
   safety argument. *)
let frozen_findings ~interesting fields toplevels =
  let frozen file =
    List.exists (String.equal (Filename.basename file)) frozen_modules
  in
  let of_field f =
    if frozen f.fl_file && interesting f && f.fl_ann = None then
      Some
        {
          Report.file = f.fl_file;
          line = f.fl_line;
          cstart = f.fl_cstart;
          cend = f.fl_cend;
          rule = kind_id Frozen_mutable;
          msg =
            Printf.sprintf
              "mutable member '%s' of frozen-builder module %s has no safety \
               argument; values of this module are shared read-only across \
               domains — annotate it guarded_by or domain_safe"
              f.fl_name f.fl_module;
        }
    else None
  in
  let of_toplevel ts =
    if frozen ts.ts_file && (not ts.ts_sync) && ts.ts_ann = None then
      Some
        {
          Report.file = ts.ts_file;
          line = ts.ts_line;
          cstart = 0;
          cend = 0;
          rule = kind_id Frozen_mutable;
          msg =
            Printf.sprintf
              "module-level mutable binding '%s' (%s) in frozen-builder \
               module has no safety argument; annotate it guarded_by or \
               domain_safe"
              ts.ts_name ts.ts_what;
        }
    else None
  in
  List.filter_map of_field fields @ List.filter_map of_toplevel toplevels

(* ------------------------------------------------------------------ *)
(* Driver (walk, output and exit contract live in Report)             *)

let parse_file path =
  let src = Report.read_file path in
  {
    fi_path = path;
    fi_anns = scan_annotations path src;
    fi_structure = Report.parse_implementation ~tool path src;
  }

let () =
  let json, roots = Report.parse_argv ~tool Sys.argv in
  let files = List.concat_map (fun r -> List.rev (Report.walk_dir r [])) roots in
  let infos = List.map parse_file files in
  let fields = List.concat_map fields_of_file infos in
  let toplevels = List.concat_map toplevels_of_file infos in
  let unsafe = compute_unsafe fields in
  let interesting f =
    f.fl_mutable
    || f.fl_container <> None
    || List.exists unsafe f.fl_refs
    || (match f.fl_ann with Some (Guarded_by _) -> true | _ -> false)
  in
  let fields_by_name : (string, fld list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun f ->
      if interesting f then
        let prev =
          match Hashtbl.find_opt fields_by_name f.fl_name with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace fields_by_name f.fl_name (f :: prev))
    fields;
  let findings =
    frozen_findings ~interesting fields toplevels
    @ List.concat_map
        (fun fi -> check_file ~fields_by_name ~toplevels ~interesting fi)
        infos
  in
  Report.report ~tool ~json ~files_scanned:(List.length files) findings
