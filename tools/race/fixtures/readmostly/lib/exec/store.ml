(* A read-mostly store in the shape of lib/exec/cache.ml's shards:
   shared read sections and exclusive write sections both resolve to
   the same guard name, and every access to the guarded state belongs
   inside one of the two section helpers.  [hot_entries] reads the
   guarded field bare — the read path is precisely where "it's only a
   read" rationalisations sneak past review, so this is the acceptance
   case for [unlocked-access] on a read-mostly primitive. *)

type t = {
  rw : Mutex.t;  (* stand-in for the rwlock: one guard name, two helpers *)
  mutable entries : int;  (* xksrace: guarded_by rw *)
}

let create () = { rw = Mutex.create (); entries = 0 }

(* xksrace: locks rw *)
let with_read t f =
  Mutex.lock t.rw;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.rw) f

(* xksrace: locks rw *)
let with_write t f =
  Mutex.lock t.rw;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.rw) f

let find t = with_read t (fun () -> t.entries)

let add t n = with_write t (fun () -> t.entries <- t.entries + n)

let hot_entries t = t.entries

let run () =
  let s = create () in
  let d = Domain.spawn (fun () -> add s 1) in
  let seen = find s in
  Domain.join d;
  seen + hot_entries s
