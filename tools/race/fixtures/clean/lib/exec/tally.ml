(* Domain-crossing state done with atomics only: nothing to guard, no
   annotations needed.  Must produce no findings. *)

type t = { hits : int Atomic.t; name : string }

let create name = { hits = Atomic.make 0; name }

let touch t = Atomic.incr t.hits

let run t =
  let d = Domain.spawn (fun () -> touch t) in
  touch t;
  Domain.join d;
  Atomic.get t.hits
