(* Lock-discipline helpers: [drain_locked] assumes the lock
   ([requires_lock]); [with_lock] provides it ([locks]).  [drain] goes
   through the wrapper and is clean; [sneak] calls the helper bare and
   must be flagged [requires-lock].  [peek_unsafe] shows a documented
   [domain_safe] use-line suppression. *)

type t = {
  lock : Mutex.t;
  jobs : int Queue.t;  (* xksrace: guarded_by lock *)
}

let create () = { lock = Mutex.create (); jobs = Queue.create () }

(* xksrace: requires_lock lock *)
let drain_locked t =
  let n = Queue.length t.jobs in
  Queue.clear t.jobs;
  n

(* xksrace: locks lock *)
let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let drain t = with_lock t (fun () -> drain_locked t)

let sneak t = drain_locked t

let peek_unsafe t =
  (* xksrace: domain_safe racy diagnostic read, approximate by design *)
  Queue.length t.jobs
