(* A journal writer that passes its payload through a failpoint site
   while holding the buffer's mutex.  Failpoint sites raise by
   injection (the fault suites arm them with [Raise]), so the bare
   lock/unlock variant leaks the mutex on the injected path — xksrace
   must flag the failpoint call (raise-under-lock).  The protected
   variant is the fix: [Mutex.protect] releases in a finalizer, so the
   same failpoint site is exception-safe and must stay clean. *)

type t = {
  mutex : Mutex.t;
  buf : Buffer.t;  (* xksrace: guarded_by mutex *)
}

let create () = { mutex = Mutex.create (); buf = Buffer.create 64 }

let append_bare t data =
  Mutex.lock t.mutex;
  Buffer.add_string t.buf (Failpoint.apply "journal.write" data);
  Mutex.unlock t.mutex

let append_protected t data =
  Mutex.protect t.mutex (fun () ->
      Buffer.add_string t.buf (Failpoint.apply "journal.write" data))
