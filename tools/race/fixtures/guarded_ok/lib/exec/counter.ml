(* A guarded counter done right: every access to the [guarded_by]
   field is inside [Mutex.protect] over the named mutex, including the
   ones reached from a spawned domain.  Must produce no findings. *)

type t = {
  m : Mutex.t;
  mutable count : int;  (* xksrace: guarded_by m *)
}

let create () = { m = Mutex.create (); count = 0 }

let bump t = Mutex.protect t.m (fun () -> t.count <- t.count + 1)

let read t = Mutex.protect t.m (fun () -> t.count)

let run t =
  let d = Domain.spawn (fun () -> bump t) in
  bump t;
  Domain.join d;
  read t
