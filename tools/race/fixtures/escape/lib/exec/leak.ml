(* A module-level ref and a local ref both escape into a spawned
   domain's closure with no synchronization: the acceptance case for
   [unguarded-escape]. *)

let total = ref 0

let run () =
  let shared = ref 0 in
  let d =
    Domain.spawn (fun () ->
        shared := !shared + 1;
        total := !total + 1)
  in
  shared := !shared + 1;
  Domain.join d;
  !shared + !total
