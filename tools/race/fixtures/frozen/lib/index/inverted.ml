(* A frozen-builder module (matched by file name) whose mutable members
   carry no safety argument: every one must be flagged
   [frozen-mutable]. *)

let memo = Hashtbl.create 16

type posting = { mutable occurrences : int; word : string }

type t = {
  postings : (string, posting) Hashtbl.t;
  size : int;
}

let build words =
  let postings = Hashtbl.create 64 in
  List.iter
    (fun w ->
      match Hashtbl.find_opt postings w with
      | Some p -> p.occurrences <- p.occurrences + 1
      | None -> Hashtbl.add postings w { occurrences = 1; word = w })
    words;
  ignore (Hashtbl.length memo : int);
  { postings; size = List.length words }
