(* guarded_ok minus one [Mutex.protect]: [read] touches the guarded
   field with no lock.  Pins that removing a single guarded access's
   lock flips the verdict from clean to [unlocked-access]. *)

type t = {
  m : Mutex.t;
  mutable count : int;  (* xksrace: guarded_by m *)
}

let create () = { m = Mutex.create (); count = 0 }

let bump t = Mutex.protect t.m (fun () -> t.count <- t.count + 1)

let read t = t.count

let run t =
  let d = Domain.spawn (fun () -> bump t) in
  bump t;
  Domain.join d;
  read t
