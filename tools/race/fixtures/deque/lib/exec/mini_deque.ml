(* A miniature mutex-guarded work-stealing deque in the shape of
   lib/exec/deque.ml: every access to the guarded ring state runs
   inside the [locks]-annotated section helper — including the owner's
   pop through a [requires_lock] helper and the thief path reached from
   a spawned domain.  Must produce no findings. *)

type t = {
  m : Mutex.t;
  mutable items : int list;  (* xksrace: guarded_by m *)
  mutable len : int;  (* xksrace: guarded_by m *)
}

let create () = { m = Mutex.create (); items = []; len = 0 }

(* xksrace: locks m *)
let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Owner-side bottom removal, split out the way the real deque splits
   its ring surgery: the helper assumes the lock. *)
(* xksrace: requires_lock m *)
let take_bottom t =
  match t.items with
  | [] -> None
  | x :: rest ->
      t.items <- rest;
      t.len <- t.len - 1;
      Some x

let push t x =
  locked t (fun () ->
      t.items <- x :: t.items;
      t.len <- t.len + 1)

let pop t = locked t (fun () -> take_bottom t)

let steal t =
  locked t (fun () ->
      match List.rev t.items with
      | [] -> None
      | oldest :: newer ->
          t.items <- List.rev newer;
          t.len <- t.len - 1;
          Some oldest)

let run () =
  let d = create () in
  push d 1;
  push d 2;
  push d 3;
  let thief = Domain.spawn (fun () -> steal d) in
  let mine = pop d in
  let stolen = Domain.join thief in
  (mine, stolen)
