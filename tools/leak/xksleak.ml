(* xksleak — whole-program exception-safety and resource-lifecycle
   analysis.

   The serving and execution layers hold real resources — listener and
   connection fds in lib/serve, Rwlock read/write sections and domain
   pools in lib/exec, channels in the XKSIDX2 persist path — and their
   release-on-raise discipline was previously enforced only by
   convention (hand-placed [Fun.protect] sites).  xksleak makes that
   discipline machine-checked, with the same architecture as
   xkslint/xksrace: a dependency-free scan over the directories on the
   command line (normally [lib bin]) built on the compiler's front end.

   Pass 1 (may-raise fixpoint, cross-module).  Every top-level function
   of every scanned module is classified by whether calling it may
   raise, as a three-level lattice [No < Soft < Hard] closed under
   cross-module calls:

     Hard  an explicit [raise]/[failwith]/[invalid_arg]/[assert], or a
           partial stdlib call ([List.hd], [Hashtbl.find],
           [int_of_string], [open_in], ...), reachable in the body —
           raises the program itself asks for;
     Soft  a [Unix.*] syscall (every one can raise [Unix_error]), a
           [Failpoint.apply]/[read_file]/[trigger] site (raises *by
           injection* — the fault suites arm these with [Raise], so
           exception safety must hold there too), or a call through an
           unknown closure (a parameter or captured function value —
           the caller cannot bound what it raises).

   Levels propagate through same-file and cross-module calls (modules
   resolved like xksrace: by filename, through [module X = ...]
   aliases, last-component qualified names) and through function
   literals passed as arguments, to a fixpoint.  A [try]/[match ...
   with exception] is assumed to cover the raises of the expression it
   guards (possibility, not exception identity — this is a linter);
   handler bodies still contribute.  The annotation

     (* xksleak: noraise *)

   on a function's declaration line (or the line above) asserts it does
   not raise: callers treat it as [No], and the assertion is verified
   against the fixpoint — a [Hard] body contradicts it and is reported
   [noraise-violated].  ([Soft] does not: excusing a benign syscall or
   a callback contractually forbidden from raising is exactly what the
   annotation is for.)

   Pass 2 (resource regions, per function).  An acquisition opens a
   region that must reach its release on every path, including every
   raising one:

     acquisition                        release
     [Unix.openfile]/[socket]/[accept]  [Unix.close]
     [open_in*]/[open_out*]             [close_in*]/[close_out*]
     [Mutex.lock m]                     [Mutex.unlock m]
     [Rwlock.read_lock l]               [Rwlock.read_unlock l]
     [Rwlock.write_lock l]              [Rwlock.write_unlock l]
     [Pool.create]                      [Pool.shutdown]

   (fd/channel regions open at a [let]-binding or a [match] on the
   acquisition; lock regions open in statement position, named by the
   last component of the lock's access path, like xksrace's mutexes).
   Inside an open region, any may-raise call (pass 1) is a
   [leak-on-raise] finding unless the region's release is exception-
   safe at that point.  The recognized safe forms:

   - [Fun.protect ~finally:F body] where [F] (a literal or a same-
     function [let]-bound closure) releases the region: the region is
     considered released at the protect site; raising inside [F]
     *before* its release is still flagged — that window is real;
   - a [try]/[match ... with exception] handler: the guarded
     expression's raises are covered (the create-bind-listen
     release-and-reraise idiom);
   - ownership handoff, via the annotation grammar below.

   A release of an already-released resource is [fd-double-close]; a
   region with no release, no handoff and no tail return is
   [unreleased].

   Annotation grammar (declaration line or the line above; [transfers]
   on the statement line it blesses):

     (* xksleak: noraise *)         function: does not raise (verified)
     (* xksleak: owns <p> *)        function: takes ownership of the
                                    resource passed as parameter <p> —
                                    its body must release it on every
                                    path (a region opens at entry), and
                                    a call to it releases the caller's
                                    region passed in that position
     (* xksleak: releases <p> *)    function: releasing <p> is a
                                    documented effect of calling it —
                                    caller-side only, no region opens
                                    in the body (for helpers whose
                                    release is conditional or partial)
     (* xksleak: transfers <r> *)   statement: ownership of <r> leaves
                                    this function here (closure capture
                                    into a pool task, storage into a
                                    connection table); the single close
                                    site lives with the new owner

   A function's tail expression mentioning the resource is an implicit
   transfer (the acquire-configure-return builder idiom).

   Known approximations, by design: resources are matched by name, not
   aliasing; a handler covers raise possibility, not identity; region
   effects inside a [try] scrutinee survive, handler effects do not;
   function values passed as bare identifiers contribute no raises at
   the application that receives them (direct calls of unknowns do);
   acquisitions buried in larger expressions are not tracked.  Output,
   the [--json] schema and the 0/1/2 exit contract are the shared
   analyzer layer ([Xks_report.Report]). *)

module StringSet = Set.Make (String)
module Report = Xks_report.Report

let tool = "xksleak"

(* ------------------------------------------------------------------ *)
(* Findings                                                           *)

type kind = Leak_on_raise | Unreleased | Double_close | Noraise_violated

let kind_id = function
  | Leak_on_raise -> "leak-on-raise"
  | Unreleased -> "unreleased"
  | Double_close -> "fd-double-close"
  | Noraise_violated -> "noraise-violated"

(* ------------------------------------------------------------------ *)
(* The raise lattice                                                  *)

type level = No | Soft | Hard

let lmax a b =
  match (a, b) with
  | Hard, _ | _, Hard -> Hard
  | Soft, _ | _, Soft -> Soft
  | No, No -> No

(* Bare identifiers that raise when called (partial stdlib). *)
let bare_raising =
  [
    "failwith"; "invalid_arg"; "raise"; "raise_notrace";
    "int_of_string"; "float_of_string"; "char_of_int"; "bool_of_string";
    "input_line"; "input_value"; "really_input_string";
    "open_in"; "open_in_bin"; "open_out"; "open_out_bin";
  ]

(* Explicit raise forms among the bare list: these are Hard even for a
   noraise function (the others are too — the split is only used for
   messages). *)

(* Qualified (module, function) pairs that raise when called. *)
let qualified_raising =
  [
    ("List", "hd"); ("List", "tl"); ("List", "nth"); ("List", "find");
    ("Hashtbl", "find"); ("Option", "get"); ("Queue", "pop");
    ("Queue", "take"); ("Queue", "peek"); ("Stack", "pop"); ("Stack", "top");
    ("Sys", "remove"); ("Sys", "rename"); ("Sys", "getenv");
    ("Sys", "readdir"); ("Sys", "is_directory"); ("Filename", "chop_extension");
    ("String", "index"); ("List", "assoc"); ("List", "combine");
  ]

(* Failpoint entry points: raise by injection. *)
let failpoint_fns = [ "apply"; "read_file"; "trigger" ]

(* ------------------------------------------------------------------ *)
(* Annotations                                                        *)

type ann = Noraise | Owns of string | Releases of string | Transfers of string

let ann_marker = "(* xksleak: "

let scan_annotations path src =
  let anns : (int, ann list) Hashtbl.t = Hashtbl.create 16 in
  let add line a =
    let prev = match Hashtbl.find_opt anns line with Some l -> l | None -> [] in
    Hashtbl.replace anns line (a :: prev)
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i text ->
      match
        let mlen = String.length ann_marker in
        let tlen = String.length text in
        let rec find from =
          if from + mlen > tlen then None
          else if String.equal (String.sub text from mlen) ann_marker then
            Some (from + mlen)
          else find (from + 1)
        in
        find 0
      with
      | None -> ()
      | Some start ->
          let stop =
            let rec close j =
              if j + 2 > String.length text then String.length text
              else if String.equal (String.sub text j 2) "*)" then j
              else close (j + 1)
            in
            close start
          in
          let body = String.trim (String.sub text start (stop - start)) in
          let keyword, arg =
            match String.index_opt body ' ' with
            | None -> (body, "")
            | Some sp ->
                ( String.sub body 0 sp,
                  String.trim
                    (String.sub body (sp + 1) (String.length body - sp - 1)) )
          in
          let first_word s =
            match String.index_opt s ' ' with
            | None -> s
            | Some sp -> String.sub s 0 sp
          in
          let line = i + 1 in
          (match keyword with
          | "noraise" when arg = "" -> add line Noraise
          | "owns" when arg <> "" -> add line (Owns (first_word arg))
          | "releases" when arg <> "" -> add line (Releases (first_word arg))
          | "transfers" when arg <> "" -> add line (Transfers (first_word arg))
          | _ ->
              Printf.eprintf
                "xksleak: %s: line %d: unrecognized annotation %S\n" path line
                body;
              exit 2))
    lines;
  anns

let anns_at anns line =
  let at l = match Hashtbl.find_opt anns l with Some l -> l | None -> [] in
  at line @ at (line - 1)

(* ------------------------------------------------------------------ *)
(* Locations and paths                                                *)

let line_of = Report.line_of
let cols_of = Report.cols_of

let last_of (lid : Longident.t) =
  match Longident.flatten lid with
  | [] -> ""
  | l -> List.nth l (List.length l - 1)

let qualifier (lid : Longident.t) =
  match lid with
  | Longident.Ldot (path, _) -> (
      match Longident.flatten path with
      | [] -> None
      | l -> Some (List.nth l (List.length l - 1)))
  | Longident.Lident _ | Longident.Lapply _ -> None

(* Last name on an access path: [s.lock] and [done_mutex] name the
   resource "lock" / "done_mutex" (same convention as xksrace). *)
let rec path_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> last_of txt
  | Pexp_field (_, { txt; _ }) -> last_of txt
  | Pexp_constraint (e, _) -> path_name e
  | _ -> "?"

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let rec peel (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> peel e
  | _ -> e

(* Bare idents mentioned anywhere in an expression (for implicit tail
   transfer of a returned resource). *)
let idents_of expr =
  let acc = ref StringSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt = Lident x; _ } -> acc := StringSet.add x !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  !acc

let pattern_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.Parsetree.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Pass 1: the function table and the may-raise fixpoint              *)

type fn = {
  fn_file : string;
  fn_module : string;
  fn_name : string;
  fn_params : string list;  (* plain parameter names, in order *)
  fn_body : Parsetree.expression;  (* after peeling the fun chain *)
  fn_line : int;
  fn_cstart : int;
  fn_cend : int;
  fn_noraise : bool;
  fn_owns : string list;  (* parameter names owned *)
  fn_releases : string list;  (* parameter names released *)
  mutable fn_level : level;  (* fixpoint value, noraise NOT applied *)
}

type file_info = {
  fi_path : string;
  fi_module : string;
  fi_anns : (int, ann list) Hashtbl.t;
  fi_aliases : (string, string) Hashtbl.t;  (* local module alias -> target *)
  fi_structure : Parsetree.structure;
}

(* Peel the [fun p1 p2 ->] chain off a binding, collecting parameter
   names ("_" for non-variable patterns, which can never be owned). *)
let rec peel_fun (e : Parsetree.expression) =
  match (peel e).pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      let name =
        match pat.ppat_desc with Ppat_var { txt; _ } -> txt | _ -> "_"
      in
      let params, core = peel_fun body in
      (name :: params, core)
  | Pexp_newtype (_, body) -> peel_fun body
  | _ -> ([], peel e)

let functions_of_file fi =
  let out = ref [] in
  let binding (vb : Parsetree.value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> (
        match peel_fun vb.pvb_expr with
        | [], _ -> ()  (* not a syntactic function *)
        | params, core ->
            let line = line_of vb.pvb_loc in
            let cstart, cend = cols_of vb.pvb_pat.ppat_loc in
            let anns = anns_at fi.fi_anns line in
            let owns =
              List.filter_map (function Owns p -> Some p | _ -> None) anns
            in
            let releases =
              List.filter_map (function Releases p -> Some p | _ -> None) anns
            in
            List.iter
              (fun p ->
                if not (List.mem p params) then begin
                  Printf.eprintf
                    "xksleak: %s: line %d: annotation names '%s', which is \
                     not a parameter of '%s'\n"
                    fi.fi_path line p txt;
                  exit 2
                end)
              (owns @ releases);
            out :=
              {
                fn_file = fi.fi_path;
                fn_module = fi.fi_module;
                fn_name = txt;
                fn_params = params;
                fn_body = core;
                fn_line = line;
                fn_cstart = cstart;
                fn_cend = cend;
                fn_noraise = List.exists (function Noraise -> true | _ -> false) anns;
                fn_owns = owns;
                fn_releases = releases;
                fn_level = No;
              }
              :: !out)
    | _ -> ()
  in
  let rec item (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter binding vbs
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | _ -> ()
  in
  List.iter item fi.fi_structure;
  !out

let aliases_of_structure structure =
  let aliases = Hashtbl.create 8 in
  let rec item (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> Hashtbl.replace aliases name (last_of txt)
        | Pmod_structure s -> List.iter item s
        | _ -> ())
    | _ -> ()
  in
  List.iter item structure;
  aliases

(* The whole-program view pass 2 also uses. *)
type program = {
  table : (string * string, fn) Hashtbl.t;  (* (module, function) -> fn *)
  modules : (string, string) Hashtbl.t;  (* module name -> file (scanned?) *)
}

(* Resolve a qualified head [Q.f] to a scanned function, through the
   file's module aliases. *)
let resolve_qualified prog fi q f =
  let target =
    match Hashtbl.find_opt fi.fi_aliases q with Some t -> t | None -> q
  in
  Hashtbl.find_opt prog.table (target, f)

(* Effective level seen by callers: noraise pins it to No. *)
let effective fn = if fn.fn_noraise then No else fn.fn_level

(* Scope for the level computation: names that shadow the function
   table.  [sc_opaque] holds parameters and pattern-bound values — an
   unknown closure when called; [sc_lambdas] holds let-bound function
   literals of the enclosing body. *)
type scope = {
  sc_opaque : StringSet.t;
  sc_lambdas : (string * Parsetree.expression) list;
}

let scope_empty = { sc_opaque = StringSet.empty; sc_lambdas = [] }

let scope_add_opaque names sc =
  { sc with sc_opaque = List.fold_right StringSet.add names sc.sc_opaque }

(* Drop a lambda binding while descending into its own body, so a
   [let rec] local loop's self-call bottoms out instead of recursing
   forever in the analyzer. *)
let scope_without name sc =
  { sc with sc_lambdas = List.remove_assoc name sc.sc_lambdas }

(* May the application of [head] raise, ignoring argument closures?
   Returns the level plus a human description of the source. *)
let classify_head prog fi sc (head : Parsetree.expression) =
  match (peel head).pexp_desc with
  | Pexp_ident { txt = Lident name; _ } ->
      if List.exists (String.equal name) bare_raising then
        (Hard, Printf.sprintf "'%s'" name)
      else if StringSet.mem name sc.sc_opaque then
        (Soft, Printf.sprintf "unknown closure '%s'" name)
      else (
        match List.assoc_opt name sc.sc_lambdas with
        | Some _ -> (No, "")  (* handled by the caller via lambda levels *)
        | None -> (
            match Hashtbl.find_opt prog.table (fi.fi_module, name) with
            | Some fn ->
                ( effective fn,
                  Printf.sprintf "'%s' (may raise, per the fixpoint)" name )
            | None -> (No, "")))
  | Pexp_ident { txt; _ } -> (
      let f = last_of txt in
      match qualifier txt with
      | Some "Unix" -> (Soft, Printf.sprintf "'Unix.%s' (syscall)" f)
      | Some "Failpoint" when List.exists (String.equal f) failpoint_fns ->
          (Soft, Printf.sprintf "'Failpoint.%s' (raises by injection)" f)
      | Some q when List.exists
                      (fun (m, g) -> String.equal m q && String.equal g f)
                      qualified_raising ->
          (Hard, Printf.sprintf "'%s.%s' (partial)" q f)
      | Some q -> (
          match resolve_qualified prog fi q f with
          | Some fn ->
              ( effective fn,
                Printf.sprintf "'%s.%s' (may raise, per the fixpoint)" q f )
          | None -> (No, ""))
      | None -> (No, ""))
  | _ -> (No, "")

let bind_lambdas sc vbs =
  List.fold_left
    (fun sc (vb : Parsetree.value_binding) ->
      match (vb.pvb_pat.ppat_desc, (peel vb.pvb_expr).pexp_desc) with
      | Ppat_var { txt; _ }, (Pexp_fun _ | Pexp_function _) ->
          { sc with sc_lambdas = (txt, vb.pvb_expr) :: sc.sc_lambdas }
      | _ -> sc)
    sc vbs

(* Level of an expression: the worst raise reachable by evaluating it
   now.  Function literals in value position are deferred (level No);
   literals passed as call arguments contribute (the callee is assumed
   to run them). *)
let rec level_of prog fi sc (e : Parsetree.expression) : level =
  let go = level_of prog fi in
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> No
  | Pexp_apply (head, args) ->
      let base, _ = classify_head prog fi sc head in
      let head_lambda =
        match (peel head).pexp_desc with
        | Pexp_ident { txt = Lident name; _ } -> (
            match List.assoc_opt name sc.sc_lambdas with
            | Some body -> lambda_level prog fi (scope_without name sc) body
            | None -> No)
        | _ -> No
      in
      List.fold_left
        (fun acc (_, (a : Parsetree.expression)) ->
          let contrib =
            match (peel a).pexp_desc with
            | Pexp_fun _ | Pexp_function _ -> lambda_level prog fi sc a
            | Pexp_ident { txt = Lident x; _ } -> (
                match List.assoc_opt x sc.sc_lambdas with
                | Some body -> lambda_level prog fi (scope_without x sc) body
                | None -> (
                    match Hashtbl.find_opt prog.table (fi.fi_module, x) with
                    | Some fn when not (StringSet.mem x sc.sc_opaque) ->
                        effective fn
                    | Some _ | None -> No))
            | _ -> go sc a
          in
          lmax acc contrib)
        (lmax base head_lambda) args
  | Pexp_let (_, vbs, body) ->
      let sc' = bind_lambdas sc vbs in
      let rhs =
        List.fold_left
          (fun acc (vb : Parsetree.value_binding) ->
            match (peel vb.pvb_expr).pexp_desc with
            | Pexp_fun _ | Pexp_function _ -> acc
            | _ -> lmax acc (go sc vb.pvb_expr))
          No vbs
      in
      let sc' =
        scope_add_opaque
          (List.concat_map
             (fun (vb : Parsetree.value_binding) ->
               match ((peel vb.pvb_expr).pexp_desc, vb.pvb_pat.ppat_desc) with
               | (Pexp_fun _ | Pexp_function _), _ -> []
               | _, Ppat_var { txt; _ } -> [ txt ]
               | _ -> pattern_vars vb.pvb_pat)
             vbs)
          sc'
      in
      lmax rhs (go sc' body)
  | Pexp_sequence (a, b) -> lmax (go sc a) (go sc b)
  | Pexp_ifthenelse (c, a, b) ->
      lmax (go sc c)
        (lmax (go sc a) (match b with Some b -> go sc b | None -> No))
  | Pexp_match (scrut, cases) ->
      let has_exc =
        List.exists
          (fun (c : Parsetree.case) ->
            match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false)
          cases
      in
      let scrut_level = if has_exc then No else go sc scrut in
      List.fold_left
        (fun acc (c : Parsetree.case) ->
          let sc' = scope_add_opaque (pattern_vars c.pc_lhs) sc in
          lmax acc
            (lmax
               (match c.pc_guard with Some g -> go sc' g | None -> No)
               (go sc' c.pc_rhs)))
        scrut_level cases
  | Pexp_try (_, cases) ->
      List.fold_left
        (fun acc (c : Parsetree.case) ->
          let sc' = scope_add_opaque (pattern_vars c.pc_lhs) sc in
          lmax acc (go sc' c.pc_rhs))
        No cases
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
    -> Hard
  | Pexp_assert cond -> lmax Hard (go sc cond)
  | Pexp_while (c, body) -> lmax (go sc c) (go sc body)
  | Pexp_for (_, a, b, _, body) -> lmax (go sc a) (lmax (go sc b) (go sc body))
  | _ ->
      (* structural fallback: max over immediate subexpressions *)
      let acc = ref No in
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ child -> acc := lmax !acc (go sc child));
        }
      in
      Ast_iterator.default_iterator.expr it e;
      !acc

and lambda_level prog fi sc (e : Parsetree.expression) =
  let params, core = peel_fun e in
  match (params, (peel e).pexp_desc) with
  | [], Pexp_function cases ->
      List.fold_left
        (fun acc (c : Parsetree.case) ->
          let sc' = scope_add_opaque (pattern_vars c.pc_lhs) sc in
          lmax acc (level_of prog fi sc' c.pc_rhs))
        No cases
  | [], _ -> level_of prog fi sc e
  | params, _ -> level_of prog fi (scope_add_opaque params sc) core

(* Iterate the per-function level to a fixpoint (monotone over a
   3-level lattice: terminates). *)
let compute_fixpoint prog (files : file_info list) fns_by_file =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fi ->
        List.iter
          (fun fn ->
            let sc = scope_add_opaque fn.fn_params scope_empty in
            let l = level_of prog fi sc fn.fn_body in
            if l <> fn.fn_level then begin
              fn.fn_level <- l;
              changed := true
            end)
          (fns_by_file fi))
      files
  done

(* ------------------------------------------------------------------ *)
(* Pass 2: resource regions                                           *)

type res_kind = Fd | Channel | Lock | Pool_res

let res_kind_name = function
  | Fd -> "fd"
  | Channel -> "channel"
  | Lock -> "lock"
  | Pool_res -> "pool"

(* Acquisition heads.  Bare [read_lock]/[write_lock] are accepted
   unqualified so rwlock.ml itself is scanned; the names are
   distinctive enough that this costs nothing elsewhere. *)
let acquisition_of (head : Parsetree.expression) =
  match (peel head).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let f = last_of txt in
      match (qualifier txt, f) with
      | Some "Unix", ("openfile" | "socket" | "accept" | "socketpair" | "dup")
        -> Some Fd
      | None, ("open_in" | "open_in_bin" | "open_out" | "open_out_bin") ->
          Some Channel
      | Some "Mutex", "lock" -> Some Lock
      | (Some "Rwlock" | None), ("read_lock" | "write_lock") -> Some Lock
      | Some "Pool", "create" -> Some Pool_res
      | _ -> None)
  | _ -> None

(* Does applying [head] release a resource, and which kind? *)
let release_of (head : Parsetree.expression) =
  match (peel head).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let f = last_of txt in
      match (qualifier txt, f) with
      | Some "Unix", "close" -> Some Fd
      | None, ("close_in" | "close_in_noerr" | "close_out" | "close_out_noerr")
        -> Some Channel
      | Some "Mutex", "unlock" -> Some Lock
      | (Some "Rwlock" | None), ("read_unlock" | "write_unlock") -> Some Lock
      | Some "Pool", "shutdown" -> Some Pool_res
      | _ -> None)
  | _ -> None

type region = {
  r_name : string;
  r_kind : res_kind;
  r_line : int;  (* acquisition line, for messages *)
}

(* The walk environment: open regions, names already released (for
   double-close), and the level-computation scope. *)
type env = {
  regions : region list;
  closed : StringSet.t;
  scope : scope;
}

let open_region env name kind line =
  if List.exists (fun r -> String.equal r.r_name name) env.regions then env
  else
    {
      env with
      regions = { r_name = name; r_kind = kind; r_line = line } :: env.regions;
      closed = StringSet.remove name env.closed;
    }

let close_region ~transfer env name =
  {
    env with
    regions = List.filter (fun r -> not (String.equal r.r_name name)) env.regions;
    closed = (if transfer then env.closed else StringSet.add name env.closed);
  }

let find_region env name =
  List.find_opt (fun r -> String.equal r.r_name name) env.regions

(* join after a branch: a region is open if open on any surviving
   path (conservative for leak checks), closed only if closed on all *)
let join a b =
  {
    regions =
      a.regions
      @ List.filter
          (fun r ->
            not (List.exists (fun q -> String.equal q.r_name r.r_name) a.regions))
          b.regions;
    closed = StringSet.inter a.closed b.closed;
    scope = a.scope;
  }

(* The syntactic tail (return) position of a body: the expression a
   caller receives, used for the implicit transfer-by-return rule (a
   builder that returns the resource hands ownership to its caller). *)
let rec tail_expr (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_sequence (_, b) -> tail_expr b
  | Pexp_let (_, _, body) -> tail_expr body
  | Pexp_constraint (inner, _) | Pexp_open (_, inner) -> tail_expr inner
  | _ -> e

let check_file prog fi fns =
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  let emit (loc : Location.t) kind msg =
    let line = line_of loc in
    let cstart, cend = cols_of loc in
    let key = (line, cstart, kind_id kind, msg) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      findings :=
        { Report.file = fi.fi_path; line; cstart; cend; rule = kind_id kind; msg }
        :: !findings
    end
  in
  (* transfers annotations by line *)
  let transfers_at line =
    List.filter_map
      (function Transfers r -> Some r | _ -> None)
      (anns_at fi.fi_anns line)
  in
  (* Does [e] syntactically release resource [name] anywhere inside?
     Used to resolve a [Fun.protect] finalizer's release set. *)
  let releases_in (e : Parsetree.expression) name =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it child ->
            (match child.Parsetree.pexp_desc with
            | Pexp_apply (head, args) when release_of head <> None ->
                List.iter
                  (fun (_, a) ->
                    if String.equal (path_name a) name then found := true)
                  args
            | _ -> ());
            Ast_iterator.default_iterator.expr it child);
      }
    in
    it.expr it e;
    !found
  in
  let resolve_lambda env (e : Parsetree.expression) =
    match (peel e).pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> Some e
    | Pexp_ident { txt = Lident x; _ } -> List.assoc_opt x env.scope.sc_lambdas
    | _ -> None
  in
  let leak_msg region desc =
    Printf.sprintf
      "call to %s while %s '%s' (acquired at line %d) has no exception-safe \
       release; wrap the region in Fun.protect, release-and-reraise, or \
       annotate the handoff ((* xksleak: transfers %s *))"
      desc
      (res_kind_name region.r_kind)
      region.r_name region.r_line region.r_name
  in
  (* Inside a try / match-with-exception scrutinee, raise possibility
     is covered by the handlers: leak findings are suppressed there
     (other kinds, like a double close, still count). *)
  let suppress_leaks = ref false in
  (* Emit a leak finding at [loc] for every open region. *)
  let flag_raise env (loc : Location.t) desc =
    if not !suppress_leaks then
      List.iter (fun r -> emit loc Leak_on_raise (leak_msg r desc)) env.regions
  in
  (* Scan an expression for raising sites against the current open
     regions without changing region state (used for subexpressions
     the walker does not model structurally). *)
  let rec scan env (e : Parsetree.expression) =
    let case_scope (c : Parsetree.case) =
      { env with scope = scope_add_opaque (pattern_vars c.pc_lhs) env.scope }
    in
    match e.pexp_desc with
    | _ when env.regions = [] -> ()
    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> ()
    | Pexp_try (_, cases) ->
        (* the scrutinee's raises are covered; handler bodies still run
           inside the region *)
        List.iter (fun (c : Parsetree.case) -> scan (case_scope c) c.pc_rhs) cases
    | Pexp_match (scrut, cases)
      when List.exists
             (fun (c : Parsetree.case) ->
               match c.pc_lhs.ppat_desc with
               | Ppat_exception _ -> true
               | _ -> false)
             cases ->
        ignore scrut;
        List.iter (fun (c : Parsetree.case) -> scan (case_scope c) c.pc_rhs) cases
    | Pexp_match (scrut, cases) ->
        scan env scrut;
        List.iter
          (fun (c : Parsetree.case) ->
            let env' = case_scope c in
            (match c.pc_guard with Some g -> scan env' g | None -> ());
            scan env' c.pc_rhs)
          cases
    | Pexp_let (_, vbs, body) ->
        let env = { env with scope = bind_lambdas env.scope vbs } in
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match (peel vb.pvb_expr).pexp_desc with
            | Pexp_fun _ | Pexp_function _ -> ()
            | _ -> scan env vb.pvb_expr)
          vbs;
        let env =
          {
            env with
            scope =
              scope_add_opaque
                (List.concat_map
                   (fun (vb : Parsetree.value_binding) ->
                     pattern_vars vb.pvb_pat)
                   vbs)
                env.scope;
          }
        in
        scan env body
    | Pexp_apply (head, args) ->
        (let lvl, desc = classify_head prog fi env.scope head in
         let lvl, desc =
           if lvl <> No then (lvl, desc)
           else
             match (peel head).pexp_desc with
             | Pexp_ident { txt = Lident name; _ } -> (
                 match List.assoc_opt name env.scope.sc_lambdas with
                 | Some body ->
                     ( lambda_level prog fi
                         (scope_without name env.scope)
                         body,
                       Printf.sprintf "local function '%s'" name )
                 | None -> (No, ""))
             | _ -> (No, "")
         in
         match lvl with
         | No -> ()
         | Soft | Hard -> flag_raise env head.pexp_loc desc);
        List.iter
          (fun (_, (a : Parsetree.expression)) ->
            match (peel a).pexp_desc with
            | Pexp_fun _ | Pexp_function _ ->
                (* a literal callback handed to the callee runs inside
                   the region *)
                let params, core = peel_fun a in
                scan { env with scope = scope_add_opaque params env.scope } core
            | _ -> scan env a)
          args;
        scan env (peel head)
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ child -> scan env child);
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  (* The structural walk.  Returns the environment after the
     expression plus whether the path definitely terminated (raise or
     exit), in which case open regions are not the caller's concern on
     that path. *)
  let rec walk env (e : Parsetree.expression) : env * bool =
    (* a transfers annotation blesses the statement on its line *)
    let env =
      List.fold_left
        (fun env r ->
          if find_region env r <> None then close_region ~transfer:true env r
          else env)
        env
        (transfers_at (line_of e.pexp_loc))
    in
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
        let env, t = walk env a in
        if t then (env, true) else walk env b
    | Pexp_let (_, vbs, body) ->
        let env = { env with scope = bind_lambdas env.scope vbs } in
        let env =
          List.fold_left
            (fun env (vb : Parsetree.value_binding) ->
              walk_binding env vb)
            env vbs
        in
        walk env body
    | Pexp_ifthenelse (c, a, b) ->
        scan env c;
        let ea, ta = walk env a in
        let eb, tb = match b with Some b -> walk env b | None -> (env, false) in
        if ta && tb then (ea, true)
        else if ta then (eb, false)
        else if tb then (ea, false)
        else (join ea eb, false)
    | Pexp_match (scrut, cases) ->
        let has_exc =
          List.exists
            (fun (c : Parsetree.case) ->
              match c.pc_lhs.ppat_desc with
              | Ppat_exception _ -> true
              | _ -> false)
            cases
        in
        let env_scrut =
          if has_exc then
            (* raises of the scrutinee are covered by the handlers *)
            let e', _ = walk_protected env scrut in
            e'
          else begin
            match acquisition_of_app scrut with
            | Some _ -> env  (* region opens per case, below *)
            | None ->
                scan env scrut;
                env
          end
        in
        let acq = acquisition_of_app scrut in
        let branches =
          List.map
            (fun (c : Parsetree.case) ->
              let env_case =
                { env_scrut with
                  scope = scope_add_opaque (pattern_vars c.pc_lhs) env_scrut.scope }
              in
              let env_case =
                match (acq, c.pc_lhs.ppat_desc) with
                | Some kind, Ppat_var { txt; _ } ->
                    open_region env_case txt kind (line_of c.pc_lhs.ppat_loc)
                | Some kind, Ppat_tuple ({ ppat_desc = Ppat_var { txt; _ }; _ } :: _)
                  -> open_region env_case txt kind (line_of c.pc_lhs.ppat_loc)
                | _ -> env_case
              in
              (match c.pc_guard with Some g -> scan env_case g | None -> ());
              walk env_case c.pc_rhs)
            cases
        in
        join_branches env branches
    | Pexp_try (scrut, cases) ->
        let env', _ = walk_protected env scrut in
        List.iter
          (fun (c : Parsetree.case) ->
            let env_case =
              { env with scope = scope_add_opaque (pattern_vars c.pc_lhs) env.scope }
            in
            ignore (walk env_case c.pc_rhs))
          cases;
        (env', false)
    | Pexp_apply (head, args) -> walk_apply env e head args
    | Pexp_fun _ | Pexp_function _ -> (env, false)
    | Pexp_while (c, body) ->
        scan env c;
        let _ = walk env body in
        (env, false)
    | Pexp_for (_, a, b, _, body) ->
        scan env a;
        scan env b;
        let _ = walk env body in
        (env, false)
    | Pexp_constraint (inner, _) | Pexp_open (_, inner) -> walk env inner
    | _ ->
        scan env e;
        (env, false)
  (* walk a try/match-with-exception scrutinee: region effects apply,
     raising sites are covered by the handlers *)
  and walk_protected env scrut =
    let prev = !suppress_leaks in
    suppress_leaks := true;
    let result = walk env scrut in
    suppress_leaks := prev;
    result
  and acquisition_of_app (e : Parsetree.expression) =
    match (peel e).pexp_desc with
    | Pexp_apply (head, _) -> acquisition_of head
    | _ -> None
  and join_branches env = function
    | [] -> (env, false)
    | branches -> (
        match List.filter (fun (_, t) -> not t) branches with
        | [] -> (fst (List.hd branches), true)
        | (e0, _) :: rest ->
            (List.fold_left (fun acc (e, _) -> join acc e) e0 rest, false))
  and walk_binding env (vb : Parsetree.value_binding) =
    match (peel vb.pvb_expr).pexp_desc with
    | Pexp_fun _ | Pexp_function _ ->
        (* a local closure: analyze its body in a fresh region scope —
           it runs later, under whoever calls it *)
        let params, core = peel_fun vb.pvb_expr in
        let fresh =
          {
            regions = [];
            closed = StringSet.empty;
            scope = scope_add_opaque params env.scope;
          }
        in
        ignore (walk fresh core);
        env
    | _ -> (
        let rhs = peel vb.pvb_expr in
        (* peel a [try acq with handlers] guard off an acquisition *)
        let rhs_core =
          match rhs.pexp_desc with Pexp_try (s, _) -> peel s | _ -> rhs
        in
        match (vb.pvb_pat.ppat_desc, acquisition_of_app rhs_core) with
        | Ppat_var { txt; _ }, Some kind ->
            scan env rhs_core;  (* acquiring may itself raise: flags others *)
            open_region
              { env with scope = scope_add_opaque [ txt ] env.scope }
              txt kind (line_of vb.pvb_loc)
        | Ppat_tuple ({ ppat_desc = Ppat_var { txt; _ }; _ } :: _), Some kind ->
            scan env rhs_core;
            open_region
              { env with scope = scope_add_opaque [ txt ] env.scope }
              txt kind (line_of vb.pvb_loc)
        | pat, _ ->
            let env', _ = walk env rhs in
            let names =
              match pat with
              | Ppat_var { txt; _ } -> [ txt ]
              | _ -> pattern_vars vb.pvb_pat
            in
            { env' with scope = scope_add_opaque names env'.scope })
  and walk_apply env e head args =
    let plain =
      List.filter_map (function (Asttypes.Nolabel, a) -> Some a | _ -> None) args
    in
    match (peel head).pexp_desc with
    (* exit terminates the process; the OS reclaims everything *)
    | Pexp_ident { txt = Lident "exit"; _ } -> (env, true)
    | Pexp_ident { txt = Lident ("raise" | "raise_notrace" | "failwith" | "invalid_arg"); loc }
      ->
        flag_raise env loc "an explicit raise";
        (env, true)
    | Pexp_ident { txt; _ }
      when (match qualifier txt with Some "Fun" -> true | _ -> false)
           && String.equal (last_of txt) "protect" -> (
        let finally =
          List.find_map
            (function
              | (Asttypes.Labelled "finally", f) -> Some f
              | (Asttypes.Optional "finally", f) -> Some f
              | _ -> None)
            args
        in
        let env =
          match Option.map (resolve_lambda env) finally with
          | Some (Some flam) ->
              (* the finalizer runs with the regions still held: walk it
                 (raising before the release is flagged), then retire
                 every region it releases *)
              let _, fin_core = peel_fun flam in
              let releases_regions =
                List.filter (fun r -> releases_in fin_core r.r_name) env.regions
              in
              let _ = walk env fin_core in
              List.fold_left
                (fun env r -> close_region ~transfer:false env r.r_name)
                env releases_regions
          | _ -> env
        in
        (* the protected body runs now, under whatever is still open *)
        match plain with
        | body :: _ -> (
            match resolve_lambda env body with
            | Some blam ->
                let params, core = peel_fun blam in
                let _ =
                  walk { env with scope = scope_add_opaque params env.scope } core
                in
                (env, false)
            | None ->
                scan env body;
                (env, false))
        | [] -> (env, false))
    | _ -> (
        (* a direct release? *)
        match release_of head with
        | Some _ -> (
            match plain with
            | arg :: _ -> (
                let name = path_name arg in
                match find_region env name with
                | Some _ -> (close_region ~transfer:false env name, false)
                | None ->
                    if StringSet.mem name env.closed then
                      emit head.pexp_loc Double_close
                        (Printf.sprintf
                           "'%s' releases '%s', which was already released on \
                            this path — a double close can hit a recycled \
                            descriptor; make one owner responsible for the \
                            single close site"
                           (path_name head) name);
                    (env, false))
            | [] -> (env, false))
        | None -> (
            (* a lock acquisition in statement position? *)
            match acquisition_of head with
            | Some Lock -> (
                match plain with
                | m :: _ ->
                    ( open_region env (path_name m) Lock (line_of e.pexp_loc),
                      false )
                | [] -> (env, false))
            | Some _ | None ->
                (* calls to owns/releases-annotated functions hand
                   regions off; everything else is scanned for raises *)
                let callee =
                  match (peel head).pexp_desc with
                  | Pexp_ident { txt = Lident name; _ }
                    when not (StringSet.mem name env.scope.sc_opaque) ->
                      Hashtbl.find_opt prog.table (fi.fi_module, name)
                  | Pexp_ident { txt; _ } -> (
                      match qualifier txt with
                      | Some q -> resolve_qualified prog fi q (last_of txt)
                      | None -> None)
                  | _ -> None
                in
                let env =
                  match callee with
                  | Some fn when fn.fn_owns <> [] || fn.fn_releases <> [] ->
                      List.fold_left
                        (fun env p ->
                          match
                            List.find_index (String.equal p) fn.fn_params
                          with
                          | None -> env
                          | Some i -> (
                              match List.nth_opt plain i with
                              | None -> env
                              | Some arg ->
                                  let name = path_name arg in
                                  if find_region env name <> None then
                                    close_region ~transfer:true env name
                                  else env))
                        env
                        (fn.fn_owns @ fn.fn_releases)
                  | Some _ | None -> env
                in
                scan env e;
                (env, false)))
  in
  (* Walk every top-level function of the file. *)
  List.iter
    (fun fn ->
      let env0 =
        {
          regions = [];
          closed = StringSet.empty;
          scope = scope_add_opaque fn.fn_params scope_empty;
        }
      in
      (* an owns-annotated function starts with its parameter's region
         open: the body must release or hand it off on every path *)
      let env0 =
        List.fold_left
          (fun env p -> open_region env p Fd fn.fn_line)
          env0 fn.fn_owns
      in
      let env_end, terminated = walk env0 fn.fn_body in
      if not terminated then begin
        let returned = idents_of (tail_expr fn.fn_body) in
        List.iter
          (fun r ->
            if not (StringSet.mem r.r_name returned) then
              emit fn.fn_body.pexp_loc Unreleased
                (Printf.sprintf
                   "%s '%s' acquired at line %d in '%s' does not reach a \
                    release, handoff or return on the normal path; close it, \
                    or annotate the handoff ((* xksleak: owns/transfers %s *))"
                   (res_kind_name r.r_kind) r.r_name r.r_line fn.fn_name
                   r.r_name))
          env_end.regions
      end)
    fns;
  !findings

(* ------------------------------------------------------------------ *)
(* noraise verification                                               *)

let noraise_findings fns =
  List.filter_map
    (fun fn ->
      if fn.fn_noraise && fn.fn_level = Hard then
        Some
          {
            Report.file = fn.fn_file;
            line = fn.fn_line;
            cstart = fn.fn_cstart;
            cend = fn.fn_cend;
            rule = kind_id Noraise_violated;
            msg =
              Printf.sprintf
                "'%s' is annotated noraise but its body can raise on its own \
                 (an explicit raise or a partial call, per the may-raise \
                 fixpoint); fix the body or drop the annotation"
                fn.fn_name;
          }
      else None)
    fns

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)

let () =
  let json, roots = Report.parse_argv ~tool Sys.argv in
  let files = List.concat_map (fun r -> List.rev (Report.walk_dir r [])) roots in
  let infos =
    List.map
      (fun path ->
        let src = Report.read_file path in
        let structure = Report.parse_implementation ~tool path src in
        {
          fi_path = path;
          fi_module = module_of_path path;
          fi_anns = scan_annotations path src;
          fi_aliases = aliases_of_structure structure;
          fi_structure = structure;
        })
      files
  in
  let prog = { table = Hashtbl.create 256; modules = Hashtbl.create 64 } in
  let fns_by_file_tbl : (string, fn list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun fi ->
      Hashtbl.replace prog.modules fi.fi_module fi.fi_path;
      let fns = functions_of_file fi in
      Hashtbl.replace fns_by_file_tbl fi.fi_path fns;
      List.iter
        (fun fn ->
          (* first definition wins on duplicate names within a module
             (shadowing); later files never collide — module names are
             unique per scan *)
          if not (Hashtbl.mem prog.table (fn.fn_module, fn.fn_name)) then
            Hashtbl.replace prog.table (fn.fn_module, fn.fn_name) fn)
        (List.rev fns))
    infos;
  let fns_by_file fi =
    match Hashtbl.find_opt fns_by_file_tbl fi.fi_path with
    | Some fns -> fns
    | None -> []
  in
  compute_fixpoint prog infos fns_by_file;
  let all_fns = List.concat_map fns_by_file infos in
  let findings =
    noraise_findings all_fns
    @ List.concat_map (fun fi -> check_file prog fi (fns_by_file fi)) infos
  in
  Report.report ~tool ~json ~files_scanned:(List.length files) findings
