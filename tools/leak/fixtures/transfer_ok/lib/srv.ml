(* The serve-layer ownership chain in miniature: a builder returns the
   fd it configures (implicit transfer by return, with the bind
   failure path on release-and-reraise), the acceptor hands each
   connection fd into a task closure (explicit transfer), and the task
   owns its fd — the protect finalizer is the single close site.  The
   whole chain must pass clean. *)

(* xksleak: owns fd *)
let serve_conn fd =
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> ignore (Unix.read fd (Bytes.create 1) 0 1))

let submit f = f ()

let accept_one listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
      (* xksleak: transfers fd *)
      submit (fun () -> serve_conn fd)

let listener port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     Unix.close fd;
     raise e);
  fd
