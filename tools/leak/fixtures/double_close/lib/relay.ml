(* A drain whose empty-file cleanup runs after the normal-path close
   already released the channel: the second close_in can hit a
   recycled descriptor owned by another stream.  Exactly one owner
   may hold the close site. *)

let drain path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  if n = 0 then close_in ic;
  n
