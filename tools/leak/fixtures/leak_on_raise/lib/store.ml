(* A shard store whose read path instruments the lock section through
   an unknown closure (the hook may raise — the caller cannot bound
   it), and whose save path pushes the payload through a failpoint
   site while the output channel is open.  Neither region has an
   exception-safe release, so both raising sites must be flagged. *)

type t = {
  lock : Mutex.t;
  mutable hits : int;
  observe : (int -> unit) option;
}

let observe t n = match t.observe with None -> () | Some f -> f n

let read t =
  Mutex.lock t.lock;
  observe t t.hits;
  let v = t.hits in
  Mutex.unlock t.lock;
  v

let save t path =
  let oc = open_out_bin path in
  output_string oc (Failpoint.apply "store.save" (string_of_int t.hits));
  close_out oc
