(* Admission helpers called from release finalizers assert noraise —
   a raise inside a finalizer would mask the original exception.  The
   first helper still failwiths on a negative count: the assertion
   contradicts the may-raise fixpoint and must be reported.  The
   second is genuinely total and must stay clean. *)

(* xksleak: noraise *)
let clamp n = if n < 0 then failwith "negative quota" else n

(* xksleak: noraise *)
let note_release released total =
  if released > total then min released total else released
