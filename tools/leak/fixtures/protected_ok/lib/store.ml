(* The leak_on_raise store with the two safe forms applied: the lock
   section and the channel both release through a [Fun.protect]
   finalizer, so the same raising sites (the unknown observe closure,
   the failpoint) are exception-safe and the tree must pass clean. *)

type t = {
  lock : Mutex.t;
  mutable hits : int;
  observe : (int -> unit) option;
}

let observe t n = match t.observe with None -> () | Some f -> f n

let read t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      observe t t.hits;
      t.hits)

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Failpoint.apply "store.save" (string_of_int t.hits)))
