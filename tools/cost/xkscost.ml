(* xkscost — hot-path complexity and budget-discipline analysis.

   The ELCA/SLCA drivers are attractive precisely because of their
   complexity guarantees over sorted Dewey postings, and the serving
   layer's per-request deadlines only bound latency if every traversal
   loop actually reaches [Budget.tick].  Both properties are global
   (they hold or break across call chains, not single expressions) and
   both have regressed silently before — the PR 9 predicate-partition
   draft ran 20x slower than full enumeration because of an accidental
   quadratic list idiom in the scan path, and an unticked drain loop is
   invisible to the fault suite unless an injection happens to land in
   it.  This tool machine-enforces them with a two-pass whole-program
   scan of the directories on the command line (normally [lib bin]),
   built — like xkslint/xksrace/xksleak — on the compiler's own front
   end ([Parse.implementation] + hand-rolled walks).

   Pass 1 (call graph and hot set, cross-module).  Every [.ml] is
   parsed; every [let]-bound name (any nesting depth) becomes a node
   keyed [Module.name], with edges to every unqualified identifier it
   mentions (resolved within its own module) and every qualified
   [M.f] mention (resolved to the scanned file [m.ml]).  Mentions, not
   just call heads, so higher-order passing ([Array.iter process s1])
   keeps [process] reachable.  Three fixpoints run over this graph:

     hot      reachable from the entry points whose complexity is the
              paper's contract — [Engine.search]/[search_result],
              [Inverted.posting], every top-level binding of a file
              under a [lca] directory, plus anything annotated
              [(* xkscost: hot *)].
     ticking  reaches a budget charge: [Budget.tick]/[tick_opt]/[check]
              (through any alias chain ending in a [Budget] qualifier),
              directly or through a callee.
     vocab    mentions index data by name — an identifier or record
              field whose name contains one of the traversal stems
              [posting]/[stack]/[fragment]/[knode] — directly or
              through a same-module callee.

   Pass 2 (enforcement, per file, hot code only).  A {e loop} is a
   [while]/[for] body, the callback of a [List]/[Array]/[Hashtbl]/
   [Tree] iteration ([iter]/[map]/[fold]/[sort]/...), or the body of a
   self-recursive binding.  Two rule families:

   Complexity — inside hot loop bodies and the same-file functions they
   (transitively) mention:

   C1 [list-append]      [@] / [List.append] / [List.concat] /
                         [List.flatten]: the left operand is copied on
                         every iteration, turning a linear scan
                         quadratic (the PR 9 regression class).
   C2 [membership-scan]  [List.mem]/[assoc]/[nth] (and [..._opt]/[memq]
                         variants): a linear scan per iteration where
                         the scan path promises one pass over sorted
                         postings.
   C3 [hashtbl-fold]     [Hashtbl.fold] under iteration: rebuilds an
                         accumulator over the whole table per step.
   C4 [loop-alloc]       closure or tuple allocated per iteration of a
                         loop annotated [(* xkscost: tight *)] — minor-
                         GC churn is a stop-the-world barrier multiplier
                         under domains, so the tightest loops opt into
                         allocation-freedom checking.

   Budget discipline:

   B1 [unticked-loop]    a hot loop whose region (the loop expression
                         plus its same-module callees' vocabulary)
                         touches index data but reaches no
                         [Budget.tick]/[check] on any path of the call
                         graph: a request deadline cannot interrupt it.
                         Loops that compute the argument {e of} a tick
                         call are exempt by construction.

   Annotation grammar (comment on the flagged line or the line above):

     (* xkscost: hot *)                     binding: extra hot root
     (* xkscost: tight *)                   loop: enable C4 here
     (* xkscost: allow <rule> <reason> *)   suppress <rule> findings on
                                            this line
     (* xkscost: unticked <reason> *)       loop: B1 exemption with its
                                            safety argument (typically:
                                            pre-charged, k-bounded, or
                                            oracle-only path)

   Known approximations, by design (this is a linter, not a verifier):
   names are resolved per module, not per scope, so shadowing
   over-approximates; reachability ignores dead branches; the
   traversal vocabulary is nominal — a posting array renamed [xs]
   escapes B1, and a [stack] of something else is conservatively
   in.  Output, [--json], [--rules] staging and the 0/1/2 exit
   contract are the shared analyzer layer ([Xks_report.Report]). *)

module StringSet = Set.Make (String)
module Report = Xks_report.Report

let tool = "xkscost"

let all_rules =
  [ "list-append"; "membership-scan"; "hashtbl-fold"; "loop-alloc";
    "unticked-loop" ]

(* Traversal vocabulary: names that identify index data on the scan
   path.  Substring match, lowercased, so [postings], [stack_top] and
   [knodes_of] all count. *)
let vocab_stems = [ "posting"; "stack"; "fragment"; "knode" ]

(* Entry points that are hot without annotation: the budgeted search
   API, the posting fetch, and (seeded by path, below) every lib/lca
   driver. *)
let default_roots =
  [ ("Engine", "search"); ("Engine", "search_result");
    ("Inverted", "posting") ]

let budget_fns = [ "tick"; "tick_opt"; "check" ]

(* Iteration combinators whose callback body is a loop body. *)
let iterator_fns =
  [ ("List",
     [ "iter"; "iteri"; "map"; "mapi"; "rev_map"; "map2"; "iter2";
       "fold_left"; "fold_right"; "fold_left2"; "filter"; "filteri";
       "filter_map"; "concat_map"; "partition"; "for_all"; "exists";
       "find"; "find_opt"; "find_map"; "sort"; "sort_uniq"; "stable_sort" ]);
    ("Array",
     [ "iter"; "iteri"; "map"; "mapi"; "map2"; "iter2"; "fold_left";
       "fold_right"; "for_all"; "exists"; "sort"; "stable_sort" ]);
    ("Hashtbl", [ "iter"; "fold"; "filter_map_inplace" ]);
    ("Tree", [ "iter"; "fold" ]) ]

let is_iterator m f =
  match List.assoc_opt m iterator_fns with
  | Some fns -> List.mem f fns
  | None -> false

(* ------------------------------------------------------------------ *)
(* Annotations                                                        *)

type ann =
  | Hot
  | Tight
  | Allow of string  (* rule id; the reason is for the human reader *)
  | Unticked

let ann_marker = "(* xkscost: "

let scan_annotations path src =
  let anns : (int, ann list) Hashtbl.t = Hashtbl.create 16 in
  let add line a =
    let prev = match Hashtbl.find_opt anns line with Some l -> l | None -> [] in
    Hashtbl.replace anns line (a :: prev)
  in
  let reject line body =
    Printf.eprintf "xkscost: %s: line %d: unrecognized annotation %S\n" path
      line body;
    exit 2
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i text ->
      match
        let mlen = String.length ann_marker in
        let tlen = String.length text in
        let rec find from =
          if from + mlen > tlen then None
          else if String.equal (String.sub text from mlen) ann_marker then
            Some (from + mlen)
          else find (from + 1)
        in
        find 0
      with
      | None -> ()
      | Some start ->
          let stop =
            let rec close j =
              if j + 2 > String.length text then String.length text
              else if String.equal (String.sub text j 2) "*)" then j
              else close (j + 1)
            in
            close start
          in
          let body = String.trim (String.sub text start (stop - start)) in
          let keyword, arg =
            match String.index_opt body ' ' with
            | None -> (body, "")
            | Some sp ->
                ( String.sub body 0 sp,
                  String.trim
                    (String.sub body (sp + 1) (String.length body - sp - 1)) )
          in
          let first_word s =
            match String.index_opt s ' ' with
            | None -> s
            | Some sp -> String.sub s 0 sp
          in
          let line = i + 1 in
          (match keyword with
          | "hot" when arg = "" -> add line Hot
          | "tight" when arg = "" -> add line Tight
          | "allow" when arg <> "" ->
              let rule = first_word arg in
              let reason =
                String.trim
                  (String.sub arg (String.length rule)
                     (String.length arg - String.length rule))
              in
              if not (List.mem rule all_rules) then reject line body;
              if reason = "" then reject line body (* the why is the point *);
              add line (Allow rule)
          | "unticked" when arg <> "" -> add line Unticked
          | _ -> reject line body))
    lines;
  anns

let anns_at anns line =
  let at l = match Hashtbl.find_opt anns l with Some l -> l | None -> [] in
  at line @ at (line - 1)

let has_ann anns line p = List.exists p (anns_at anns line)

(* ------------------------------------------------------------------ *)
(* Locations and paths                                                *)

let line_of = Report.line_of
let cols_of = Report.cols_of

let last_of (lid : Longident.t) =
  match Longident.flatten lid with
  | [] -> ""
  | l -> List.nth l (List.length l - 1)

let qualifier (lid : Longident.t) =
  match lid with
  | Longident.Ldot (path, _) -> (
      match Longident.flatten path with
      | [] -> None
      | l -> Some (List.nth l (List.length l - 1)))
  | Longident.Lident _ | Longident.Lapply _ -> None

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let under_lca_dir path =
  List.exists (String.equal "lca") (String.split_on_char '/' path)

(* ------------------------------------------------------------------ *)
(* Mentions: the raw material of every graph edge                     *)

type mentions = {
  m_unqual : StringSet.t;  (* bare identifiers *)
  m_qual : (string * string) list;  (* (last module component, name) *)
  m_names : StringSet.t;  (* identifiers + record-field accesses: vocab *)
}

let mentions_of expr =
  let unqual = ref StringSet.empty in
  let qual = ref [] in
  let names = ref StringSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } ->
              unqual := StringSet.add x !unqual;
              names := StringSet.add x !names
          | Pexp_ident { txt; _ } -> (
              match qualifier txt with
              | Some q -> qual := (q, last_of txt) :: !qual
              | None -> ())
          | Pexp_field (_, { txt; _ }) | Pexp_setfield (_, { txt; _ }, _) ->
              names := StringSet.add (last_of txt) !names
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  { m_unqual = !unqual; m_qual = !qual; m_names = !names }

let stems_in names =
  List.filter
    (fun stem ->
      StringSet.exists
        (fun n ->
          let n = String.lowercase_ascii n in
          let sl = String.length stem and nl = String.length n in
          let rec find i = i + sl <= nl && (String.equal (String.sub n i sl) stem || find (i + 1)) in
          find 0)
        names)
    vocab_stems

(* ------------------------------------------------------------------ *)
(* Pass 1: nodes of the call graph                                    *)

type node = {
  nd_module : string;
  nd_name : string;
  nd_file : string;
  nd_line : int;
  nd_toplevel : bool;
  nd_hot_ann : bool;
  nd_body : Parsetree.expression;
  nd_mentions : mentions;
}

let key_of m f = m ^ "." ^ f
let nd_key n = key_of n.nd_module n.nd_name

type file_info = {
  fi_path : string;
  fi_anns : (int, ann list) Hashtbl.t;
  fi_structure : Parsetree.structure;
}

let nodes_of_file fi =
  let mname = module_of_path fi.fi_path in
  let out = ref [] in
  let add ~toplevel (vb : Parsetree.value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } ->
        out :=
          {
            nd_module = mname;
            nd_name = txt;
            nd_file = fi.fi_path;
            nd_line = line_of vb.pvb_loc;
            nd_toplevel = toplevel;
            nd_hot_ann =
              has_ann fi.fi_anns (line_of vb.pvb_loc) (function
                | Hot -> true
                | _ -> false);
            nd_body = vb.pvb_expr;
            nd_mentions = mentions_of vb.pvb_expr;
          }
          :: !out
    | _ -> ()
  in
  let nested =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          add ~toplevel:false vb;
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  let rec item (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            add ~toplevel:true vb;
            nested.expr nested vb.pvb_expr)
          vbs
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | Pstr_eval (e, _) -> nested.expr nested e
    | _ -> ()
  in
  List.iter item fi.fi_structure;
  !out

(* ------------------------------------------------------------------ *)
(* Fixpoints over the node graph                                      *)

type graph = {
  by_key : (string, node list) Hashtbl.t;
  by_site : (string * string * int, node) Hashtbl.t;  (* file, name, line *)
  hot : (string, unit) Hashtbl.t;
  ticking : (string, unit) Hashtbl.t;
  vocab : (string, StringSet.t) Hashtbl.t;  (* key -> matched stems *)
}

(* Keys a node's mentions resolve to: unqualified names within its own
   module, qualified names to any scanned module of that name. *)
let edges g (n : node) =
  let from_unqual =
    StringSet.fold
      (fun u acc ->
        let k = key_of n.nd_module u in
        if Hashtbl.mem g.by_key k then k :: acc else acc)
      n.nd_mentions.m_unqual []
  in
  let from_qual =
    List.filter_map
      (fun (m, f) ->
        let k = key_of m f in
        if Hashtbl.mem g.by_key k then Some k else None)
      n.nd_mentions.m_qual
  in
  from_unqual @ from_qual

(* Ticking keys a node mentions — unlike [edges] this includes the
   virtual [Budget.*] primitives, which need no scanned definition. *)
let mentions_ticking g (m : mentions) ~in_module =
  List.exists
    (fun (q, f) -> Hashtbl.mem g.ticking (key_of q f))
    m.m_qual
  || StringSet.exists
       (fun u -> Hashtbl.mem g.ticking (key_of in_module u))
       m.m_unqual

let build_graph infos =
  let nodes = List.concat_map nodes_of_file infos in
  let g =
    {
      by_key = Hashtbl.create 512;
      by_site = Hashtbl.create 512;
      hot = Hashtbl.create 256;
      ticking = Hashtbl.create 64;
      vocab = Hashtbl.create 256;
    }
  in
  List.iter
    (fun n ->
      let k = nd_key n in
      let prev =
        match Hashtbl.find_opt g.by_key k with Some l -> l | None -> []
      in
      Hashtbl.replace g.by_key k (n :: prev);
      Hashtbl.replace g.by_site (n.nd_file, n.nd_name, n.nd_line) n)
    nodes;
  (* Hot set: seeds, then forward reachability along mention edges. *)
  let seed_hot k = if not (Hashtbl.mem g.hot k) then Hashtbl.replace g.hot k () in
  List.iter
    (fun (m, f) ->
      let k = key_of m f in
      if Hashtbl.mem g.by_key k then seed_hot k)
    default_roots;
  List.iter
    (fun n ->
      if n.nd_hot_ann || (n.nd_toplevel && under_lca_dir n.nd_file) then
        seed_hot (nd_key n))
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if Hashtbl.mem g.hot (nd_key n) then
          List.iter
            (fun k ->
              if not (Hashtbl.mem g.hot k) then begin
                Hashtbl.replace g.hot k ();
                changed := true
              end)
            (edges g n))
      nodes
  done;
  (* Ticking set: the Budget primitives, then backward closure — a node
     ticks if it mentions a ticking key. *)
  List.iter (fun f -> Hashtbl.replace g.ticking (key_of "Budget" f) ()) budget_fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let k = nd_key n in
        if
          (not (Hashtbl.mem g.ticking k))
          && mentions_ticking g n.nd_mentions ~in_module:n.nd_module
        then begin
          Hashtbl.replace g.ticking k ();
          changed := true
        end)
      nodes
  done;
  (* Vocabulary set: which traversal stems a node's region mentions,
     closed over same-module callees. *)
  List.iter
    (fun n ->
      let k = nd_key n in
      let prev =
        match Hashtbl.find_opt g.vocab k with
        | Some s -> s
        | None -> StringSet.empty
      in
      Hashtbl.replace g.vocab k
        (List.fold_left
           (fun acc s -> StringSet.add s acc)
           prev
           (stems_in n.nd_mentions.m_names)))
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let k = nd_key n in
        let mine =
          match Hashtbl.find_opt g.vocab k with
          | Some s -> s
          | None -> StringSet.empty
        in
        let grown =
          StringSet.fold
            (fun u acc ->
              match Hashtbl.find_opt g.vocab (key_of n.nd_module u) with
              | Some s -> StringSet.union acc s
              | None -> acc)
            n.nd_mentions.m_unqual mine
        in
        if not (StringSet.equal grown mine) then begin
          Hashtbl.replace g.vocab k grown;
          changed := true
        end)
      nodes
  done;
  g

(* ------------------------------------------------------------------ *)
(* Pass 2: loops and idioms                                           *)

type loop = {
  l_loc : Location.t;
  l_all : Parsetree.expression;  (* the whole loop expression *)
  l_bodies : Parsetree.expression list;  (* literal per-iteration bodies *)
  l_in_tick_arg : bool;  (* computes the argument of a Budget charge *)
  l_what : string;  (* "while loop", "List.iter body", ... *)
}

let rec callback_body (e : Parsetree.expression) acc =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) ->
      (* Innermost body of the literal callback. *)
      let rec innermost (b : Parsetree.expression) =
        match b.pexp_desc with
        | Pexp_fun (_, _, _, b) -> innermost b
        | Pexp_newtype (_, b) -> innermost b
        | _ -> b
      in
      innermost body :: acc
  | Pexp_function cases ->
      List.fold_left
        (fun acc (c : Parsetree.case) -> c.pc_rhs :: acc)
        acc cases
  | Pexp_newtype (_, b) -> callback_body b acc
  | _ -> acc

type env = { in_hot : bool; in_tick_arg : bool }

let collect_loops g fi =
  let mname = module_of_path fi.fi_path in
  let loops = ref [] in
  let add env ?(what = "loop") loc all bodies =
    if env.in_hot then
      loops :=
        {
          l_loc = loc;
          l_all = all;
          l_bodies = bodies;
          l_in_tick_arg = env.in_tick_arg;
          l_what = what;
        }
        :: !loops
  in
  let rec walk env (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_while (_, body) ->
        add env ~what:"while loop" e.pexp_loc e [ body ];
        walk_children env e
    | Pexp_for (_, _, _, _, body) ->
        add env ~what:"for loop" e.pexp_loc e [ body ];
        walk_children env e
    | Pexp_let (_, vbs, body) ->
        List.iter (walk_vb env) vbs;
        walk env body
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        let q = qualifier txt and f = last_of txt in
        let plain = List.map snd args in
        (match q with
        | Some m when is_iterator m f ->
            add env
              ~what:(Printf.sprintf "%s.%s body" m f)
              e.pexp_loc e
              (List.fold_left
                 (fun acc a -> callback_body a acc)
                 [] plain)
        | _ -> ());
        let env' =
          match q with
          | Some "Budget" when List.mem f budget_fns ->
              { env with in_tick_arg = true }
          | _ -> env
        in
        List.iter (walk env') plain
    | _ -> walk_children env e
  and walk_children env e =
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ child -> walk env child);
      }
    in
    Ast_iterator.default_iterator.expr it e
  and walk_vb env (vb : Parsetree.value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } ->
        let key = key_of mname txt in
        let env' = { env with in_hot = env.in_hot || Hashtbl.mem g.hot key } in
        (match
           Hashtbl.find_opt g.by_site (fi.fi_path, txt, line_of vb.pvb_loc)
         with
        | Some n when StringSet.mem txt n.nd_mentions.m_unqual ->
            (* Self-recursive: the whole body iterates. *)
            add env'
              ~what:(Printf.sprintf "recursive function '%s'" txt)
              vb.pvb_loc vb.pvb_expr [ vb.pvb_expr ]
        | Some _ | None -> ());
        walk env' vb.pvb_expr
    | _ -> walk env vb.pvb_expr
  in
  let top = { in_hot = false; in_tick_arg = false } in
  let rec item (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter (walk_vb top) vbs
    | Pstr_eval (e, _) -> walk top e
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        List.iter item s
    | _ -> ()
  in
  List.iter item fi.fi_structure;
  !loops

(* The complexity idioms, matched at application heads. *)
let idiom_of q f =
  match (q, f) with
  | None, "@" ->
      Some
        ( "list-append",
          "'@' copies its whole left operand — inside a hot loop this is \
           O(n^2) accumulation (the PR 9 regression class); build with \
           cons / a scratch Int_vec and finish once, or justify with (* \
           xkscost: allow list-append <reason> *)" )
  | Some "List", ("append" | "concat" | "flatten") ->
      Some
        ( "list-append",
          Printf.sprintf
            "List.%s copies entire lists — inside a hot loop this is \
             O(n^2) accumulation; build with cons / a scratch Int_vec and \
             finish once, or justify with (* xkscost: allow list-append \
             <reason> *)"
            f )
  | ( Some "List",
      ( "mem" | "memq" | "mem_assoc" | "mem_assq" | "assoc" | "assq"
      | "assoc_opt" | "assq_opt" | "nth" | "nth_opt" ) ) ->
      Some
        ( "membership-scan",
          Printf.sprintf
            "List.%s scans linearly per call — inside a hot loop this is \
             quadratic membership; use a Hashtbl, a sorted array with \
             Bsearch, or justify with (* xkscost: allow membership-scan \
             <reason> *)"
            f )
  | Some "Hashtbl", "fold" ->
      Some
        ( "hashtbl-fold",
          "Hashtbl.fold under iteration walks the whole table per step; \
           hoist the fold out of the loop or justify with (* xkscost: \
           allow hashtbl-fold <reason> *)" )
  | _ -> None

let scan_idioms ~emit expr =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) -> (
              match idiom_of (qualifier txt) (last_of txt) with
              | Some (rule, msg) -> emit loc rule msg
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr

(* Per-iteration allocations inside a [tight]-annotated loop body. *)
let scan_allocs ~emit expr =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_fun _ | Pexp_function _ ->
              emit e.Parsetree.pexp_loc "loop-alloc"
                "closure allocated on every iteration of a tight loop; \
                 hoist it out of the loop or drop the (* xkscost: tight *) \
                 annotation"
          | Pexp_tuple _ ->
              emit e.Parsetree.pexp_loc "loop-alloc"
                "tuple allocated on every iteration of a tight loop; carry \
                 the components in separate mutable slots or drop the (* \
                 xkscost: tight *) annotation"
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr

let check_file g opts fi =
  let mname = module_of_path fi.fi_path in
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  let emit (loc : Location.t) rule msg =
    let line = line_of loc in
    let cstart, cend = cols_of loc in
    let allowed =
      has_ann fi.fi_anns line (function
        | Allow r -> String.equal r rule
        | _ -> false)
    in
    let key = (line, cstart, rule) in
    if Report.rule_enabled opts rule && (not allowed) && not (Hashtbl.mem seen key)
    then begin
      Hashtbl.add seen key ();
      findings :=
        { Report.file = fi.fi_path; line; cstart; cend; rule; msg } :: !findings
    end
  in
  let loops = collect_loops g fi in
  (* Same-file loop-context closure: functions a hot loop mentions are
     part of its per-iteration work, so their bodies carry the loop's
     complexity contract too. *)
  let lc : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec mark_lc name =
    let k = key_of mname name in
    if Hashtbl.mem g.hot k && not (Hashtbl.mem lc k) then begin
      Hashtbl.replace lc k ();
      List.iter
        (fun n ->
          if String.equal n.nd_file fi.fi_path then
            StringSet.iter mark_lc n.nd_mentions.m_unqual)
        (match Hashtbl.find_opt g.by_key k with Some l -> l | None -> [])
    end
  in
  List.iter
    (fun l ->
      let m = mentions_of l.l_all in
      StringSet.iter mark_lc m.m_unqual)
    loops;
  (* Complexity rules over loop bodies... *)
  List.iter (fun l -> List.iter (scan_idioms ~emit) l.l_bodies) loops;
  (* ...and over the bodies of same-file functions those loops call. *)
  Hashtbl.iter
    (fun k () ->
      List.iter
        (fun n ->
          if String.equal n.nd_file fi.fi_path then scan_idioms ~emit n.nd_body)
        (match Hashtbl.find_opt g.by_key k with Some l -> l | None -> []))
    lc;
  (* Tight loops: per-iteration allocation checks are opt-in. *)
  List.iter
    (fun l ->
      let tight =
        has_ann fi.fi_anns (line_of l.l_loc) (function
          | Tight -> true
          | _ -> false)
      in
      if tight then List.iter (scan_allocs ~emit) l.l_bodies)
    loops;
  (* Budget discipline: every hot traversal loop must reach a tick. *)
  List.iter
    (fun l ->
      if not l.l_in_tick_arg then begin
        let m = mentions_of l.l_all in
        let stems =
          List.fold_left
            (fun acc s -> StringSet.add s acc)
            StringSet.empty (stems_in m.m_names)
        in
        let stems =
          StringSet.fold
            (fun u acc ->
              match Hashtbl.find_opt g.vocab (key_of mname u) with
              | Some s -> StringSet.union acc s
              | None -> acc)
            m.m_unqual stems
        in
        let exempt =
          has_ann fi.fi_anns (line_of l.l_loc) (function
            | Unticked -> true
            | _ -> false)
        in
        if (not (StringSet.is_empty stems)) && not exempt then
          if not (mentions_ticking g m ~in_module:mname) then
            emit l.l_loc "unticked-loop"
              (Printf.sprintf
                 "hot %s traverses index data (%s) but reaches no \
                  Budget.tick/Budget.check on any call path — a request \
                  deadline cannot interrupt it; tick per element or \
                  annotate (* xkscost: unticked <reason> *)"
                 l.l_what
                 (String.concat ", " (StringSet.elements stems)))
      end)
    loops;
  !findings

(* ------------------------------------------------------------------ *)
(* Driver (walk, output and exit contract live in Report)             *)

let parse_file path =
  let src = Report.read_file path in
  {
    fi_path = path;
    fi_anns = scan_annotations path src;
    fi_structure = Report.parse_implementation ~tool path src;
  }

let () =
  let opts = Report.parse_argv_opts ~known_rules:all_rules ~tool Sys.argv in
  let files =
    List.concat_map
      (fun r -> List.rev (Report.walk_dir r []))
      opts.Report.roots
  in
  let infos = List.map parse_file files in
  let g = build_graph infos in
  let findings = List.concat_map (check_file g opts) infos in
  Report.report ~tool ~json:opts.Report.json
    ~files_scanned:(List.length files)
    findings
