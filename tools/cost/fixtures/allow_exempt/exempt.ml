(* The same idioms as quadratic_accumulate/unticked_loop, with the two
   escape hatches exercised: a per-line [allow <rule> <reason>] for a
   complexity finding and an [unticked <reason>] for a budget-rule
   finding.  Must pass clean. *)

(* xkscost: hot *)
let prepend_all groups =
  List.fold_left
    (fun acc g ->
      (* xkscost: allow list-append groups has at most 4 elements by construction *)
      acc @ g)
    [] groups

(* xkscost: hot *)
let drain stack =
  (* xkscost: unticked oracle-only path; the caller bounds the stack depth *)
  while !stack <> [] do
    match !stack with [] -> () | _ :: tl -> stack := tl
  done
