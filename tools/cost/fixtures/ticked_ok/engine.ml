(* A hot traversal that charges the budget on every element — directly
   in the drain loop, and through the call graph ([scan] ticks, so the
   Array.iter over postings that calls it is covered).  Must pass
   clean; the module/binding name [Engine.search] is one of xkscost's
   default hot roots, so no annotation is needed. *)

let scan budget stack = Array.iter (fun node -> Budget.tick budget node) stack

let search budget postings =
  let stack = ref (Array.to_list postings) in
  while !stack <> [] do
    Budget.tick_opt budget 1;
    match !stack with [] -> () | _ :: tl -> stack := tl
  done;
  Array.iter (fun frame -> scan budget frame) postings
