(* Hot traversals over index data with no reachable Budget charge: the
   drain loop pops through a helper that never ticks, and the postings
   sweep calls an opaque visitor.  Both must be flagged. *)

let pop stack =
  match !stack with
  | [] -> None
  | x :: tl ->
      stack := tl;
      Some x

(* xkscost: hot *)
let drain stack =
  while !stack <> [] do
    ignore (pop stack)
  done

(* xkscost: hot *)
let visit_all postings visit = Array.iter (fun p -> visit p) postings
