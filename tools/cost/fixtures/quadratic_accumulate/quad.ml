(* Quadratic accumulation inside hot loops: every idiom here re-copies
   an already-built structure per iteration.  Also carries the opt-in
   tight-loop allocation checks. *)

(* xkscost: hot *)
let flatten_all groups = List.fold_left (fun acc g -> acc @ g) [] groups

(* xkscost: hot *)
let widen xs = List.fold_left (fun acc x -> List.concat [ acc; [ x ] ]) [] xs

(* xkscost: hot *)
let pair_up xs ys =
  let out = ref [] in
  (* xkscost: tight *)
  List.iter (fun x -> List.iter (fun y -> out := (x, y) :: !out) ys) xs;
  !out
