(* Linear probes inside hot loops: each List.mem/assoc/nth call scans
   from the head, so the loop as a whole is quadratic; the Hashtbl.fold
   walks the entire table once per processed item. *)

(* xkscost: hot *)
let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs

(* xkscost: hot *)
let lookup_all keys table = List.map (fun k -> List.assoc k table) keys

(* xkscost: hot *)
let sample xs idxs = List.map (fun i -> List.nth xs i) idxs

(* xkscost: hot *)
let running_totals items counts =
  List.map (fun item -> Hashtbl.fold (fun _ v acc -> acc + v) counts item) items
