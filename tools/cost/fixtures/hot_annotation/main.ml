(* The annotation below seeds the hot set; reachability carries it
   across the module boundary into helper.ml. *)

(* xkscost: hot *)
let run stack = Helper.scan stack
