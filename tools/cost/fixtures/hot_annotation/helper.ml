(* Not hot on its own: nothing here is an entry point.  It becomes hot
   because main.ml's annotated root calls it — the unticked finding
   must land on the loop below, in this file. *)

let scan stack =
  while !stack <> [] do
    match !stack with [] -> () | _ :: tl -> stack := tl
  done
