(* Shared driver/reporting layer for the xks static analyzers.

   xkslint, xksrace and xksleak are separate binaries with one
   contract: scan the directory roots given on the command line, print
   findings in the compiler's own location format (or one JSON object
   under [--json]), and exit 0 clean / 1 findings / 2 usage-or-parse
   errors.  This module is that contract, factored out so the three
   tools cannot drift: the finding record, the deterministic sort, the
   text and JSON printers, the directory walk, the parse front end and
   the exit logic all live here.

   The JSON finding schema is shared by all tools:

     {"tool": <name>, "files_scanned": N,
      "findings": [{"file", "line", "cstart", "cend", "rule",
                    "message"}, ...]}

   with 1-based lines and 0-based column spans (compiler convention). *)

type finding = {
  file : string;
  line : int;
  cstart : int;  (* column span, 0-based, compiler convention *)
  cend : int;
  rule : string;
  msg : string;
}

(* --- locations --- *)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let cols_of (loc : Location.t) =
  ( loc.loc_start.pos_cnum - loc.loc_start.pos_bol,
    loc.loc_end.pos_cnum - loc.loc_end.pos_bol )

(* --- deterministic ordering: file, then line, then column, then rule --- *)

let sort findings =
  List.sort
    (fun a b ->
      let c = String.compare a.file b.file in
      if c <> 0 then c
      else
        let c = Int.compare a.line b.line in
        if c <> 0 then c
        else
          let c = Int.compare a.cstart b.cstart in
          if c <> 0 then c else String.compare a.rule b.rule)
    findings

(* --- source discovery and parsing --- *)

let rec walk_dir path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if String.length entry > 0 && not (Char.equal entry.[0] '.') then
          walk_dir (Filename.concat path entry) acc
        else acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_implementation ~tool path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> structure
  | exception Syntaxerr.Error _ ->
      Printf.eprintf "%s: %s: syntax error\n" tool path;
      exit 2

(* --- command line: [--json] [--rules ID[,ID...]] plus directory roots --- *)

type options = {
  json : bool;
  rules : string list option;  (* None = all rules enabled *)
  roots : string list;
}

let usage ~tool ~with_rules =
  Printf.eprintf "usage: %s [--json]%s DIR...\n" tool
    (if with_rules then " [--rules ID[,ID...]]" else "");
  exit 2

let parse_argv_opts ?known_rules ~tool argv =
  let json = ref false in
  let rules = ref None in
  let roots = ref [] in
  let n = Array.length argv in
  let rec go i =
    if i < n then
      match argv.(i) with
      | "--json" ->
          json := true;
          go (i + 1)
      | "--rules" -> (
          match known_rules with
          | None ->
              Printf.eprintf "%s: --rules is not supported by this tool\n" tool;
              exit 2
          | Some known ->
              if i + 1 >= n then usage ~tool ~with_rules:true;
              let ids =
                String.split_on_char ',' argv.(i + 1)
                |> List.map String.trim
                |> List.filter (fun s -> s <> "")
              in
              if ids = [] then usage ~tool ~with_rules:true;
              List.iter
                (fun id ->
                  if not (List.mem id known) then begin
                    Printf.eprintf "%s: unknown rule id %S (known: %s)\n" tool
                      id
                      (String.concat ", " known);
                    exit 2
                  end)
                ids;
              rules := Some ids;
              go (i + 2))
      | arg ->
          roots := arg :: !roots;
          go (i + 1)
  in
  go 1;
  let roots = List.rev !roots in
  if roots = [] then usage ~tool ~with_rules:(known_rules <> None);
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "%s: no such file or directory: %s\n" tool r;
        exit 2
      end)
    roots;
  { json = !json; rules = !rules; roots }

let rule_enabled opts id =
  match opts.rules with None -> true | Some ids -> List.mem id ids

(* The historical two-value form, kept for tools without rule staging. *)
let parse_argv ~tool argv =
  let opts = parse_argv_opts ~tool argv in
  (opts.json, opts.roots)

(* --- output --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_text f =
  Printf.printf "File \"%s\", line %d, characters %d-%d:\n[%s] %s\n" f.file
    f.line f.cstart f.cend f.rule f.msg

let print_json ~tool ~files_scanned findings =
  print_string "{\n";
  Printf.printf "  \"tool\": \"%s\",\n" tool;
  Printf.printf "  \"files_scanned\": %d,\n" files_scanned;
  Printf.printf "  \"findings\": [";
  List.iteri
    (fun i f ->
      Printf.printf
        "%s\n    {\"file\": \"%s\", \"line\": %d, \"cstart\": %d, \"cend\": \
         %d, \"rule\": \"%s\", \"message\": \"%s\"}"
        (if i = 0 then "" else ",")
        (json_escape f.file) f.line f.cstart f.cend (json_escape f.rule)
        (json_escape f.msg))
    findings;
  if findings <> [] then print_string "\n  ";
  print_string "]\n}\n"

(* Print the (sorted) findings and exit with the shared contract: 0
   clean, 1 findings (with a one-line summary on stderr in text mode). *)
let report ~tool ~json ~files_scanned findings =
  let findings = sort findings in
  if json then print_json ~tool ~files_scanned findings
  else List.iter print_text findings;
  match findings with
  | [] -> exit 0
  | _ :: _ ->
      if not json then
        Printf.eprintf "%s: %d finding(s) in %d file(s) (%d files scanned)\n"
          tool (List.length findings)
          (List.length
             (List.sort_uniq String.compare
                (List.map (fun f -> f.file) findings)))
          files_scanned;
      exit 1
