(* Golden-fixture runner shared by the xks analyzers.

   Every analyzer (xkslint, xksrace, xksleak, xkscost) pins its
   behaviour on a fixture corpus: one directory per scenario under
   fixtures/, one expected output per scenario under expected/.  The
   per-fixture dune rules used to be copy-pasted across the four tools
   (one with-stdout-to + one diff stanza per fixture); this runner is
   that contract factored out, so each tool's dune file shrinks to a
   single rule and a new fixture needs no build-system edit — just the
   fixture tree and its pinned expected file.

   Contract enforced per fixture <name> (discovered from expected/):

     expected/<name>.out   run `TOOL fixtures/<name>`; stdout must equal
                           the pinned file, and the exit status must be
                           1 exactly when the pinned file is non-empty
                           (the analyzers' 0-clean/1-findings contract).
     expected/<name>.json  run `TOOL --json fixtures/<name>`; stdout
                           must equal the pinned file (exit 0 or 1).

   Every fixture directory must have a pinned .out — an unpinned
   fixture is an error, not a silent skip.  Generated outputs are left
   next to the runner as <name>.out.gen / <name>.json.gen for
   inspection; `--update` rewrites the pinned files from the actual
   output instead of diffing (run it via `dune exec` from the tool's
   source directory when a rule legitimately changes).

   Exit: 0 all fixtures match, 1 any mismatch, 2 usage error. *)

let usage () =
  prerr_endline
    "usage: golden --tool TOOL --fixtures DIR --expected DIR [--update]\n\
     \  [--tool-arg ARG]...  extra argument passed to TOOL before the \
     fixture";
  exit 2

type config = {
  tool : string;
  fixtures : string;
  expected : string;
  update : bool;
  tool_args : string list;
}

let parse_argv argv =
  let tool = ref None
  and fixtures = ref None
  and expected = ref None
  and update = ref false
  and tool_args = ref [] in
  let n = Array.length argv in
  let value i = if i + 1 >= n then usage () else argv.(i + 1) in
  let rec go i =
    if i < n then
      match argv.(i) with
      | "--tool" ->
          tool := Some (value i);
          go (i + 2)
      | "--fixtures" ->
          fixtures := Some (value i);
          go (i + 2)
      | "--expected" ->
          expected := Some (value i);
          go (i + 2)
      | "--tool-arg" ->
          tool_args := value i :: !tool_args;
          go (i + 2)
      | "--update" ->
          update := true;
          go (i + 1)
      | _ -> usage ()
  in
  go 1;
  match (!tool, !fixtures, !expected) with
  | Some tool, Some fixtures, Some expected ->
      { tool; fixtures; expected; update = !update;
        tool_args = List.rev !tool_args }
  | _ -> usage ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let entries_with_suffix dir suffix =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun e ->
         if Filename.check_suffix e suffix then
           Some (Filename.chop_suffix e suffix)
         else None)
  |> List.sort String.compare

(* Run the tool, capturing stdout into [out_file] (stderr goes to a
   sibling .err file shown only on failure).  Only exit codes 0 and 1
   are part of the analyzer contract; anything else is a runner-level
   failure. *)
let run_tool cfg ~args ~out_file =
  let err_file = out_file ^ ".err" in
  let cmd =
    Filename.quote_command cfg.tool ~stdout:out_file ~stderr:err_file
      (cfg.tool_args @ args)
  in
  let code = Sys.command cmd in
  if code <> 0 && code <> 1 then begin
    Printf.eprintf "golden: %s exited %d (not 0/1) on: %s\n%s" cfg.tool code
      (String.concat " " args) (read_file err_file);
    exit 1
  end;
  (code, read_file out_file)

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la, y :: lb when String.equal x y -> go (i + 1) la lb
    | x :: _, y :: _ -> Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<end of output>")
    | [], y :: _ -> Some (i, "<end of output>", y)
  in
  go 1 la lb

let check_one cfg ~failures ~name ~suffix ~args =
  let pinned = Filename.concat cfg.expected (name ^ suffix) in
  let out_file = name ^ suffix ^ ".gen" in
  let code, actual = run_tool cfg ~args ~out_file in
  if cfg.update then begin
    if not (Sys.file_exists pinned) || read_file pinned <> actual then begin
      write_file pinned actual;
      Printf.printf "golden: updated %s\n" pinned
    end
  end
  else begin
    let want = read_file pinned in
    if String.equal suffix ".out" && (code = 1) <> (want <> "") then begin
      incr failures;
      Printf.eprintf
        "golden: %s: exit %d disagrees with pinned expectation (%s findings)\n"
        name code
        (if want <> "" then "some" else "no")
    end;
    if not (String.equal want actual) then begin
      incr failures;
      match first_diff want actual with
      | None -> assert false
      | Some (line, e, a) ->
          Printf.eprintf
            "golden: %s: output differs from %s at line %d\n\
             \  expected: %s\n\
             \  actual:   %s\n\
             (full actual output left in %s)\n"
            name pinned line e a out_file
    end
  end

let () =
  let cfg = parse_argv Sys.argv in
  if not (Sys.file_exists cfg.tool) then begin
    Printf.eprintf "golden: no such tool: %s\n" cfg.tool;
    exit 2
  end;
  List.iter
    (fun d ->
      if not (Sys.file_exists d && Sys.is_directory d) then begin
        Printf.eprintf "golden: no such directory: %s\n" d;
        exit 2
      end)
    [ cfg.fixtures; cfg.expected ];
  let outs = entries_with_suffix cfg.expected ".out" in
  let jsons = entries_with_suffix cfg.expected ".json" in
  (* Every fixture must be pinned: a fixture tree with no expected .out
     would otherwise never run and silently rot. *)
  Sys.readdir cfg.fixtures |> Array.to_list |> List.sort String.compare
  |> List.iter (fun f ->
         if
           Sys.is_directory (Filename.concat cfg.fixtures f)
           && not (List.mem f outs)
         then begin
           Printf.eprintf "golden: fixture %s/%s has no pinned %s/%s.out\n"
             cfg.fixtures f cfg.expected f;
           exit 1
         end);
  let failures = ref 0 in
  List.iter
    (fun name ->
      check_one cfg ~failures ~name ~suffix:".out"
        ~args:[ Filename.concat cfg.fixtures name ])
    outs;
  List.iter
    (fun name ->
      check_one cfg ~failures ~name ~suffix:".json"
        ~args:[ "--json"; Filename.concat cfg.fixtures name ])
    jsons;
  if !failures > 0 then begin
    Printf.eprintf "golden: %d mismatch(es)\n" !failures;
    exit 1
  end
