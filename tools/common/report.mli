(** Shared driver/reporting layer for the xks static analyzers
    (xkslint, xksrace, xksleak).

    One contract for all three binaries: findings print in the
    compiler's location format or as one JSON object under [--json]
    with the unified schema [{file, line, cstart, cend, rule,
    message}]; exit status is 0 clean, 1 findings, 2 usage or parse
    errors. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  cstart : int;  (** column span, 0-based, compiler convention *)
  cend : int;
  rule : string;  (** kebab-case rule id, e.g. ["leak-on-raise"] *)
  msg : string;
}

val line_of : Location.t -> int
(** 1-based start line of a compiler location. *)

val cols_of : Location.t -> int * int
(** 0-based [(start, end)] column span of a compiler location. *)

val sort : finding list -> finding list
(** Deterministic report order: file, then line, then column, then
    rule id. *)

val walk_dir : string -> string list -> string list
(** [walk_dir root acc] prepends every [.ml] file under [root]
    (dot-entries skipped, entries visited in sorted order) to [acc];
    the result is reverse-sorted, so callers [List.rev] it. *)

val read_file : string -> string
(** Whole file as a string; the channel is closed on any exit. *)

val parse_implementation : tool:string -> string -> string -> Parsetree.structure
(** [parse_implementation ~tool path src] parses [src] with the
    compiler front end, locations anchored to [path].  Exits 2 with a
    diagnostic on [tool]'s behalf on a syntax error. *)

type options = {
  json : bool;  (** [--json] present *)
  rules : string list option;  (** [--rules] filter; [None] = all rules *)
  roots : string list;  (** directory roots to scan *)
}

val parse_argv_opts :
  ?known_rules:string list -> tool:string -> string array -> options
(** Parse [argv] into {!options}.  [--rules ID[,ID...]] is accepted only
    when [known_rules] is given (so CI can stage rules in one id at a
    time); an unknown id, an empty root list or a nonexistent root exits
    2. *)

val rule_enabled : options -> string -> bool
(** Whether findings of rule [id] should be emitted under the parsed
    [--rules] filter (always [true] without one). *)

val parse_argv : tool:string -> string array -> bool * string list
(** Parse [argv] into ([--json] present, directory roots) — the
    historical two-value form of {!parse_argv_opts} for tools without
    rule staging.  Exits 2 on an empty root list or a nonexistent
    root. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal. *)

val print_text : finding -> unit
(** One finding in the two-line compiler format. *)

val print_json : tool:string -> files_scanned:int -> finding list -> unit
(** The whole report as one JSON object on stdout. *)

val report : tool:string -> json:bool -> files_scanned:int -> finding list -> unit
(** Sort, print (text or JSON) and exit: 0 when clean, 1 with findings
    (text mode adds a one-line stderr summary). *)
