(** Differential oracle for ranked top-k retrieval.

    The streaming scan behind [Engine.search ~rank:`Bm25 ~k]
    ({!Xks_lca.Topk}) prunes work with a score bound; its soundness
    claim is that the pruned answer is {e indistinguishable} from
    scoring every fragment and keeping the best [k].  These checks test
    exactly that, by structural equality on the full hit lists — LCA
    ids, BM25 scores (bit-for-bit: both sides sum the same per-keyword
    contributions in the same [`Rarest] order), pruned fragments and
    SLCA tags. *)

val check_query :
  ?tag:string -> ?k:int -> Xks_core.Engine.t -> string list ->
  Invariant.violation list
(** Compare [search ~rank:`Bm25 ~k] against the [k]-prefix (default
    [k = 10]) of the sorted full-enumeration answer for one query.
    [tag] prefixes the violation detail (e.g. with the query text). *)

val check_batch :
  ?k:int -> Xks_core.Engine.t -> string list list ->
  Invariant.violation list
(** The batch executor must serve the sequential streaming answer under
    every serving regime: cold and cache-warm, sequentially (jobs=1)
    and from a 4-domain pool — in particular the cache key must keep
    ranked entries apart from unranked ones. *)

val check_workload :
  ?k:int -> Xks_core.Engine.t -> string list list ->
  Invariant.violation list
(** {!check_query} on every query, then {!check_batch} over the whole
    workload. *)
