module Tree = Xks_xml.Tree
module Inverted = Xks_index.Inverted
module Query = Xks_core.Query
module Rtf = Xks_core.Rtf
module Pipeline = Xks_core.Pipeline
module Naive = Xks_lca.Naive

type impl = {
  name : string;
  compute : Tree.t -> int array array -> int list;
}

let elca_impls =
  [
    { name = "Indexed_stack.elca"; compute = Xks_lca.Indexed_stack.elca };
    { name = "Stack_algos.elca"; compute = Xks_lca.Stack_algos.elca };
    { name = "Tree_scan.elca"; compute = Xks_lca.Tree_scan.elca };
  ]

let slca_impls =
  [
    {
      name = "Slca.indexed_lookup_eager";
      compute = Xks_lca.Slca.indexed_lookup_eager;
    };
    { name = "Stack_algos.slca"; compute = Xks_lca.Stack_algos.slca };
    { name = "Scan_eager.slca"; compute = Xks_lca.Scan_eager.slca };
    { name = "Multiway.slca"; compute = Xks_lca.Multiway.slca };
  ]

let show_ids ids =
  "[" ^ String.concat "; " (List.map string_of_int ids) ^ "]"

let diff ~stage ~reference doc postings impl =
  let expected = reference doc postings in
  let got = impl.compute doc postings in
  if List.equal Int.equal expected got then []
  else
    [
      Invariant.
        {
          rule = "oracle-" ^ stage;
          detail =
            Printf.sprintf "%s disagrees with the naive %s: naive %s, got %s"
              impl.name stage (show_ids expected) (show_ids got);
        };
    ]

let elca ?(impls = elca_impls) doc postings =
  List.concat_map (diff ~stage:"elca" ~reference:Naive.elca doc postings) impls

let slca ?(impls = slca_impls) doc postings =
  List.concat_map (diff ~stage:"slca" ~reference:Naive.slca doc postings) impls

(* One full differential + invariant audit of a query. *)
let check_query ?(tag = "") idx keywords =
  let contextualise violations =
    match tag with
    | "" -> violations
    | t ->
        List.map
          (fun (x : Invariant.violation) ->
            { x with Invariant.detail = t ^ ": " ^ x.Invariant.detail })
          violations
  in
  match Query.make idx keywords with
  | exception Invalid_argument _ -> []
  | q ->
      let doc = q.Query.doc in
      let postings = q.Query.postings in
      let out = ref [] in
      let push vs = out := vs :: !out in
      (* Static shape of the inputs. *)
      Array.iteri
        (fun i p ->
          push
            (Invariant.posting ~word:q.Query.keywords.(i) doc p);
          push (Invariant.doc_order doc p))
        postings;
      (* Differential: every LCA algorithm against the naive one. *)
      push (elca doc postings);
      push (slca doc postings);
      (* Pipeline invariants downstream of the (checked) ELCA stage. *)
      let elcas = Naive.elca doc postings in
      let rtfs = Rtf.get_rtfs q elcas in
      List.iter (fun r -> push (Invariant.rtf q r)) rtfs;
      List.iter
        (fun (r : Rtf.t) -> push (Invariant.doc_order doc r.Rtf.knodes))
        rtfs;
      (* Valid-contributor pruning post-conditions on the real pipeline
         output. *)
      let result =
        Pipeline.run_query ~lca:Pipeline.Elca_indexed_stack
          ~pruning:Pipeline.Valid_contributor q
      in
      if
        List.length result.Pipeline.rtfs
        = List.length result.Pipeline.fragments
      then
        List.iter2
          (fun r f -> push (Invariant.valid_contributor_post q r f))
          result.Pipeline.rtfs result.Pipeline.fragments
      else
        push
          [
            Invariant.
              {
                rule = "pipeline-arity";
                detail =
                  Printf.sprintf
                    "pipeline produced %d RTFs but %d pruned fragments"
                    (List.length result.Pipeline.rtfs)
                    (List.length result.Pipeline.fragments);
              };
          ];
      contextualise (List.concat (List.rev !out))

let check_workload idx queries =
  List.concat_map
    (fun keywords ->
      check_query ~tag:(String.concat " " keywords) idx keywords)
    queries
