(** Dynamic invariant checks — the runtime complement of [xkslint].

    Every check returns the list of violated invariants (empty = clean)
    rather than raising, so callers can aggregate across a workload and
    report everything at once.  The checks cover the fragile implicit
    contracts the pipeline relies on:

    - posting lists are sorted, duplicate-free and in-range;
    - keyword-node arrays are in document order, and preorder-rank order
      agrees with {!Xks_xml.Dewey.compare};
    - RTFs are well-formed (Definition 2): keyword nodes inside the LCA
      subtree, genuinely matching a query keyword, and jointly covering
      every keyword;
    - fragments are connected (every member's parent is a member);
    - valid-contributor pruning respects its Definition 4
      post-conditions (subset of the raw RTF, root preserved, no query
      keyword lost, a single child of its label kept). *)

type violation = { rule : string; detail : string }

val to_string : violation -> string
(** ["[rule] detail"]. *)

val posting : ?word:string -> Xks_xml.Tree.t -> int array -> violation list
(** Sorted ascending, duplicate-free, every id inside the document. *)

val index : Xks_index.Inverted.t -> violation list
(** {!posting} over the whole vocabulary. *)

val doc_order : Xks_xml.Tree.t -> int array -> violation list
(** The id array is in document order {e by Dewey code}: catches both
    unsorted arrays and any divergence between preorder ranks and
    {!Xks_xml.Dewey.compare}. *)

val rtf :
  ?require_coverage:bool -> Xks_core.Query.t -> Xks_core.Rtf.t ->
  violation list
(** Well-formedness of one raw RTF.  [require_coverage] (default [true])
    additionally demands that the dispatched keyword nodes cover every
    query keyword — guaranteed when the LCA list is the ELCA set. *)

val fragment : Xks_xml.Tree.t -> Xks_core.Fragment.t -> violation list
(** Connectivity: root is a member, every member lies in the root's
    subtree and has its parent in the fragment. *)

val valid_contributor_post :
  ?cid_mode:Xks_index.Cid.mode -> Xks_core.Query.t -> Xks_core.Rtf.t ->
  Xks_core.Fragment.t -> violation list
(** Definition 4 post-conditions of [Prune.valid_contributor] applied to
    one RTF and its pruned fragment. *)
