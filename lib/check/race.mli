(** Dynamic race detection for the sharded cache — the runtime
    complement of [tools/race/xksrace].

    The static analyzer proves the lock discipline is followed
    {e syntactically}; this journal replays what actually happened at
    run time.  Feed {!instrument} to {!Xks_exec.Cache.create}, drive the
    cache from several domains, then {!check}: every [Read]/[Write] a
    shard reported must fall inside a [Lock]/[Unlock] section opened by
    the same domain, locks must not be re-taken while held, and no
    section may be left open.

    Recording is lock-free (CAS append) so the journal never serializes
    the contention it is observing; sequence numbers are taken while the
    producer holds the shard mutex, which makes each shard's slice of
    the journal consistent with its critical-section order. *)

type op = Lock | Unlock | Read | Write

type event = { domain : int; shard : int; op : op; seq : int }

type t

val create : unit -> t

val record : t -> shard:int -> op -> unit
(** Append one event, stamped with the calling domain and the next
    global sequence number.  Safe to call from any domain. *)

val instrument : t -> int -> Xks_exec.Cache.access -> unit
(** Adapter with the exact shape of {!Xks_exec.Cache.create}'s
    [?instrument] argument: [instrument t] records every cache access
    into [t]. *)

val events : t -> event list
(** The journal in sequence order. *)

val length : t -> int

val check : t -> Invariant.violation list
(** Replay the journal against the lock-held invariant.  Violation
    rules: [race-double-lock], [race-foreign-unlock],
    [race-unheld-unlock], [race-access-wrong-holder],
    [race-unlocked-access], [race-leaked-lock].  Empty = every access
    respected the discipline. *)
