(** Dynamic race detection for the sharded cache — the runtime
    complement of [tools/race/xksrace].

    The static analyzer proves the lock discipline is followed
    {e syntactically}; this journal replays what actually happened at
    run time.  Feed {!instrument} to {!Xks_exec.Cache.create}, drive the
    cache from several domains, then {!check}: exclusive
    [Lock]/[Unlock] sections must overlap nothing, shared
    [Rlock]/[Runlock] sections may overlap each other but never a write
    section, every [Write] must fall inside a write section opened by
    the same domain, every [Read] inside a write or read section opened
    by the same domain, and no section may be left open.

    Recording is lock-free (CAS append) so the journal never serializes
    the contention it is observing; sequence numbers are taken while
    the producer's section is open, which makes each shard's slice of
    the journal consistent with its real-time section order. *)

type op = Lock | Unlock | Rlock | Runlock | Read | Write

type event = { domain : int; shard : int; op : op; seq : int }

type t

val create : unit -> t

val record : t -> shard:int -> op -> unit
(** Append one event, stamped with the calling domain and the next
    global sequence number.  Safe to call from any domain. *)

val instrument : t -> int -> Xks_exec.Cache.access -> unit
(** Adapter with the exact shape of {!Xks_exec.Cache.create}'s
    [?instrument] argument: [instrument t] records every cache access
    into [t]. *)

val events : t -> event list
(** The journal in sequence order. *)

val length : t -> int

val check : t -> Invariant.violation list
(** Replay the journal against the reader/writer-lock invariant.
    Violation rules: [race-double-lock], [race-lock-amid-readers],
    [race-foreign-unlock], [race-unheld-unlock],
    [race-rlock-under-writer], [race-unheld-read-unlock],
    [race-write-under-read-lock], [race-access-wrong-holder],
    [race-unlocked-access], [race-leaked-lock],
    [race-leaked-read-lock].  Empty = every access respected the
    discipline. *)
