module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey
module Bsearch = Xks_util.Bsearch
module Inverted = Xks_index.Inverted
module Klist = Xks_index.Klist
module Query = Xks_core.Query
module Rtf = Xks_core.Rtf
module Fragment = Xks_core.Fragment
module Node_info = Xks_core.Node_info
module Prune = Xks_core.Prune

type violation = { rule : string; detail : string }

let v rule fmt = Printf.ksprintf (fun detail -> { rule; detail }) fmt
let to_string { rule; detail } = Printf.sprintf "[%s] %s" rule detail

(* ------------------------------------------------------------------ *)
(* Posting lists                                                      *)

let posting ?(word = "?") doc ids =
  let n = Tree.size doc in
  let out = ref [] in
  Array.iteri
    (fun i id ->
      if id < 0 || id >= n then
        out :=
          v "posting-range" "word %S: id %d outside the document (size %d)"
            word id n
          :: !out;
      if i > 0 && ids.(i - 1) >= id then
        out :=
          v "posting-order"
            "word %S: ids.(%d)=%d >= ids.(%d)=%d (unsorted or duplicate)" word
            (i - 1)
            ids.(i - 1)
            i id
          :: !out)
    ids;
  List.rev !out

let index idx =
  let doc = Inverted.doc idx in
  List.concat_map
    (fun word -> posting ~word doc (Inverted.posting idx word))
    (Inverted.vocabulary idx)

(* ------------------------------------------------------------------ *)
(* Document order                                                     *)

let doc_order doc ids =
  let out = ref [] in
  Array.iteri
    (fun i id ->
      if i > 0 then begin
        let prev = ids.(i - 1) in
        let dp = (Tree.node doc prev).dewey and dc = (Tree.node doc id).dewey in
        if Dewey.compare dp dc >= 0 then
          out :=
            v "doc-order"
              "node array not in document order at index %d: Dewey %s \
               (id %d) does not precede Dewey %s (id %d)"
              i (Dewey.to_string dp) prev (Dewey.to_string dc) id
            :: !out
      end)
    ids;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* RTF well-formedness                                                *)

let is_keyword_node (q : Query.t) id =
  Array.exists (fun p -> Bsearch.mem p id) q.postings

let rtf ?(require_coverage = true) (q : Query.t) (r : Rtf.t) =
  let doc = q.doc in
  let n = Tree.size doc in
  let out = ref [] in
  let push x = out := x :: !out in
  if r.lca < 0 || r.lca >= n then
    push (v "rtf-root" "LCA id %d outside the document (size %d)" r.lca n)
  else begin
    let root = Tree.node doc r.lca in
    Array.iteri
      (fun i id ->
        if i > 0 && r.knodes.(i - 1) >= id then
          push
            (v "rtf-knodes-order"
               "RTF at %d: keyword nodes unsorted or duplicated at index %d"
               r.lca i);
        if id < 0 || id >= n then
          push (v "rtf-knodes-range" "RTF at %d: keyword node id %d invalid" r.lca id)
        else begin
          if not (Tree.in_subtree ~root (Tree.node doc id)) then
            push
              (v "rtf-containment"
                 "RTF at %d: keyword node %d (Dewey %s) outside the LCA subtree"
                 r.lca id
                 (Dewey.to_string (Tree.node doc id).dewey));
          if not (is_keyword_node q id) then
            push
              (v "rtf-keyword-node"
                 "RTF at %d: member %d matches no query keyword" r.lca id)
        end)
      r.knodes;
    if require_coverage then begin
      let k = Query.k q in
      let mask =
        Array.fold_left
          (fun m id -> Klist.union m (Query.node_klist q id))
          Klist.empty r.knodes
      in
      if not (Klist.is_full ~k mask) then
        push
          (v "rtf-coverage"
             "RTF at %d: keyword nodes cover only %d of %d query keywords"
             r.lca (Klist.cardinal mask) k)
    end
  end;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Fragment connectivity                                              *)

let fragment doc (f : Fragment.t) =
  let n = Tree.size doc in
  let out = ref [] in
  let push x = out := x :: !out in
  if f.root < 0 || f.root >= n then
    push (v "fragment-root" "fragment root %d outside the document" f.root)
  else begin
    let root = Tree.node doc f.root in
    if not (Fragment.mem f f.root) then
      push (v "fragment-root" "fragment root %d is not a member" f.root);
    Array.iter
      (fun id ->
        if id < 0 || id >= n then
          push (v "fragment-range" "fragment member %d outside the document" id)
        else begin
          let node = Tree.node doc id in
          if not (Tree.in_subtree ~root node) then
            push
              (v "fragment-containment"
                 "member %d (Dewey %s) outside the subtree of root %d" id
                 (Dewey.to_string node.dewey) f.root);
          if id <> f.root && not (Fragment.mem f node.parent) then
            push
              (v "fragment-connectivity"
                 "member %d (Dewey %s) is disconnected: parent %d not in \
                  the fragment"
                 id
                 (Dewey.to_string node.dewey)
                 node.parent)
        end)
      f.members
  end;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Valid-contributor post-conditions (Definition 4)                   *)

let covered_keywords (q : Query.t) members =
  Array.fold_left
    (fun m id -> Klist.union m (Query.node_klist q id))
    Klist.empty members

let valid_contributor_post ?cid_mode (q : Query.t) (r : Rtf.t)
    (pruned : Fragment.t) =
  let doc = q.doc in
  let out = ref (fragment doc pruned) in
  let push x = out := x :: !out in
  if pruned.root <> r.lca then
    push
      (v "prune-root" "pruned fragment root %d differs from the RTF LCA %d"
         pruned.root r.lca);
  let raw = Rtf.raw_fragment q r in
  Array.iter
    (fun id ->
      if not (Fragment.mem raw id) then
        push
          (v "prune-subset"
             "pruned fragment member %d is not a member of the raw RTF at %d"
             id r.lca))
    pruned.members;
  (* Keyword preservation: rule 2(a) only discards a child whose keyword
     set is strictly covered by a sibling's, and rule 2(b) keeps one
     representative per keyword-set/content pair — so pruning never
     loses a query keyword the raw RTF covered. *)
  let raw_mask = covered_keywords q raw.members in
  let pruned_mask = covered_keywords q pruned.members in
  if pruned_mask <> raw_mask then
    push
      (v "prune-keyword-loss"
         "RTF at %d: pruning changed keyword coverage (%d keywords before, \
          %d after)"
         r.lca
         (Klist.cardinal raw_mask)
         (Klist.cardinal pruned_mask));
  (* Rule 1: a single child of its label under a kept node is always
     kept. *)
  let info_tree = Node_info.construct ?cid_mode q r in
  let rec walk (info : Node_info.info) =
    if Fragment.mem pruned info.id then begin
      List.iter
        (fun (g : Node_info.label_group) ->
          match (g.counter, g.group_children) with
          | 1, [ only ] ->
              if not (Fragment.mem pruned only.id) then
                push
                  (v "prune-single-child"
                     "RTF at %d: node %d discarded its only '%s'-labelled \
                      child %d (Definition 4 rule 1 keeps it)"
                     r.lca info.id
                     (Tree.label_name doc (Tree.node doc only.id))
                     only.id)
          | _ -> ())
        (Node_info.label_groups info);
      List.iter walk info.rtf_children
    end
  in
  walk (Node_info.root info_tree);
  List.rev !out
