(* Differential oracle for the streaming top-k path: Engine.search with
   ~rank:`Bm25 ~k must return exactly the k-prefix of the sorted
   full-enumeration answer — same LCAs, same scores, same pruned
   fragments — on every query, and the batch executor must serve the
   identical answer cold, cache-warm, sequentially and from a pool.

   The comparison is structural (=) on the whole hit list, floats
   included: both sides prepare the query with the same `Rarest keyword
   permutation and sum the same per-keyword BM25 contributions in the
   same order (Rank.score_tf), so even the score bits must agree.  Any
   drift — a fragment admitted by an unsound bound, a tie broken the
   wrong way, a cache entry served across rank modes — shows up as a
   violation. *)

module Engine = Xks_core.Engine
module Exec = Xks_exec.Exec
module Pool = Xks_exec.Pool

let prefix k l = List.filteri (fun i _ -> i < k) l

let hit_desc (h : Engine.hit) =
  Printf.sprintf "lca=%d score=%.6g" h.rtf.Xks_core.Rtf.lca h.score

let hits_desc hits = String.concat "; " (List.map hit_desc hits)

let violation ?(tag = "") rule fmt =
  Printf.ksprintf
    (fun detail ->
      let detail = if tag = "" then detail else tag ^ ": " ^ detail in
      { Invariant.rule; detail })
    fmt

let compare_hits ?tag ~rule ~what expected got =
  if got = expected then []
  else if List.length got <> List.length expected then
    [
      violation ?tag rule "%s returned %d hit(s), expected %d: [%s] vs [%s]"
        what (List.length got)
        (List.length expected)
        (hits_desc got) (hits_desc expected);
    ]
  else
    (* Same length: name the first position that disagrees. *)
    let rec first i gs es =
      match (gs, es) with
      | g :: gs', e :: es' -> if g = e then first (i + 1) gs' es' else Some i
      | [], [] | _ :: _, [] | [], _ :: _ -> None
    in
    let at =
      match first 0 got expected with Some i -> i | None -> List.length got
    in
    [
      violation ?tag rule "%s diverges at rank %d: [%s] vs [%s]" what at
        (hits_desc got) (hits_desc expected);
    ]

let check_query ?tag ?(k = 10) engine ws =
  let topk = (Engine.search_result ~rank:`Bm25 ~k engine ws).Engine.hits in
  let full = (Engine.search_result ~rank:`Bm25 engine ws).Engine.hits in
  compare_hits ?tag ~rule:"topk-equivalence"
    ~what:(Printf.sprintf "streaming top-%d" k)
    (prefix k full) topk

let batch_jobs = 4

let check_batch ?(k = 10) engine queries =
  let expected =
    List.map
      (fun ws -> (Engine.search_result ~rank:`Bm25 ~k engine ws).Engine.hits)
      queries
  in
  let audit what (results : Engine.hit list array) =
    List.concat
      (List.mapi
         (fun i (ws, exp) ->
           let tag = String.concat " " ws in
           compare_hits ~tag ~rule:"topk-batch" ~what exp results.(i))
         (List.combine queries expected))
  in
  let run ?pool what =
    let cache = Exec.Cache.create ~max_bytes:(8 * 1024 * 1024) () in
    let cold =
      Exec.search_batch ?pool ~cache ~rank:`Bm25 ~k engine queries
    in
    let warm =
      Exec.search_batch ?pool ~cache ~rank:`Bm25 ~k engine queries
    in
    audit (what ^ " cold") cold @ audit (what ^ " warm") warm
  in
  run "jobs=1"
  @ Pool.with_pool ~size:batch_jobs ~oversubscribe:true (fun pool ->
        run ~pool (Printf.sprintf "jobs=%d" batch_jobs))

let check_workload ?k engine queries =
  List.concat_map
    (fun ws ->
      check_query ~tag:(String.concat " " ws) ?k engine ws)
    queries
  @ check_batch ?k engine queries
