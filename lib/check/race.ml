(* Dynamic complement of tools/race/xksrace: a lock-free access journal
   filled by the cache's [instrument] hook and replayed against the
   reader/writer-lock invariant.

   Events are appended with a CAS loop (never a lock of our own — the
   journal must not serialize the contention it is observing) and carry
   a global sequence number.  The producer protocol (Exec.Cache) takes
   the sequence number while the relevant section is open, so for any
   single shard the sequence order is consistent with its real-time
   section order — which is what the replay needs.  Per shard the
   journal must read as: exclusive [Lock … Unlock] sections that
   overlap nothing, shared [Rlock … Runlock] sections that may overlap
   each other freely, every [Write] inside an exclusive section opened
   by the same domain, and every [Read] inside an exclusive or shared
   section opened by the same domain.  (Two events of one writer
   section can never interleave a reader's pair: the rwlock excludes
   the sections in real time and every event is recorded strictly
   inside its section, so the monotone sequence numbers separate
   them.) *)

type op = Lock | Unlock | Rlock | Runlock | Read | Write

let op_name = function
  | Lock -> "lock"
  | Unlock -> "unlock"
  | Rlock -> "rlock"
  | Runlock -> "runlock"
  | Read -> "read"
  | Write -> "write"

type event = { domain : int; shard : int; op : op; seq : int }

type t = { next_seq : int Atomic.t; events : event list Atomic.t }

let create () = { next_seq = Atomic.make 0; events = Atomic.make [] }

let record t ~shard op =
  let e =
    {
      domain = (Domain.self () :> int);
      shard;
      op;
      seq = Atomic.fetch_and_add t.next_seq 1;
    }
  in
  let rec push () =
    let old = Atomic.get t.events in
    if not (Atomic.compare_and_set t.events old (e :: old)) then push ()
  in
  push ()

let instrument t shard op =
  record t ~shard
    (match op with
    | Xks_exec.Cache.Lock -> Lock
    | Xks_exec.Cache.Unlock -> Unlock
    | Xks_exec.Cache.Rlock -> Rlock
    | Xks_exec.Cache.Runlock -> Runlock
    | Xks_exec.Cache.Read -> Read
    | Xks_exec.Cache.Write -> Write)

let events t =
  List.sort
    (fun a b -> Int.compare a.seq b.seq)
    (Atomic.get t.events)

let length t = List.length (Atomic.get t.events)

let describe e =
  Printf.sprintf "seq %d: domain %d %s on shard %d" e.seq e.domain
    (op_name e.op) e.shard

(* Replay one shard's journal slice: an exclusive [writer] of the shard
   (or none) plus the multiset of domains holding shared read sections,
   advanced event by event. *)
let check t =
  let violations = ref [] in
  let flag rule e detail =
    violations :=
      { Invariant.rule; detail = Printf.sprintf "%s (%s)" detail (describe e) }
      :: !violations
  in
  (* shard -> exclusive holder *)
  let writers : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* (shard, domain) -> open shared-section count *)
  let readers : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  let reader_count shard =
    Hashtbl.fold
      (fun (s, _) n acc -> if s = shard then acc + n else acc)
      readers 0
  in
  let holds_read e =
    match Hashtbl.find_opt readers (e.shard, e.domain) with
    | Some n -> n > 0
    | None -> false
  in
  List.iter
    (fun e ->
      let writer = Hashtbl.find_opt writers e.shard in
      match e.op with
      | Lock -> (
          match writer with
          | Some d ->
              flag "race-double-lock" e
                (Printf.sprintf
                   "shard %d write-locked while domain %d already holds it"
                   e.shard d)
          | None ->
              if reader_count e.shard > 0 then
                flag "race-lock-amid-readers" e
                  (Printf.sprintf
                     "shard %d write-locked while %d read section(s) are open"
                     e.shard (reader_count e.shard))
              else Hashtbl.replace writers e.shard e.domain)
      | Unlock -> (
          match writer with
          | Some d when d = e.domain -> Hashtbl.remove writers e.shard
          | Some d ->
              flag "race-foreign-unlock" e
                (Printf.sprintf "shard %d is held by domain %d" e.shard d)
          | None -> flag "race-unheld-unlock" e "shard is not write-locked")
      | Rlock -> (
          match writer with
          | Some d ->
              flag "race-rlock-under-writer" e
                (Printf.sprintf
                   "read section opened on shard %d while domain %d holds the \
                    write lock"
                   e.shard d)
          | None ->
              let key = (e.shard, e.domain) in
              let n =
                match Hashtbl.find_opt readers key with Some n -> n | None -> 0
              in
              Hashtbl.replace readers key (n + 1))
      | Runlock -> (
          match Hashtbl.find_opt readers (e.shard, e.domain) with
          | Some n when n > 0 ->
              if n = 1 then Hashtbl.remove readers (e.shard, e.domain)
              else Hashtbl.replace readers (e.shard, e.domain) (n - 1)
          | Some _ | None ->
              flag "race-unheld-read-unlock" e
                "domain closed a read section it never opened")
      | Write -> (
          match writer with
          | Some d when d = e.domain -> ()
          | Some d ->
              flag "race-access-wrong-holder" e
                (Printf.sprintf "shard %d is held by domain %d" e.shard d)
          | None ->
              if holds_read e then
                flag "race-write-under-read-lock" e
                  "guarded shard state written inside a shared read section"
              else
                flag "race-unlocked-access" e
                  "guarded shard state written with no lock held")
      | Read -> (
          match writer with
          | Some d when d = e.domain -> ()
          | Some d ->
              flag "race-access-wrong-holder" e
                (Printf.sprintf "shard %d is held by domain %d" e.shard d)
          | None ->
              if not (holds_read e) then
                flag "race-unlocked-access" e
                  "guarded shard state read with no section open"))
    (events t);
  Hashtbl.iter
    (fun shard d ->
      violations :=
        {
          Invariant.rule = "race-leaked-lock";
          detail =
            Printf.sprintf
              "shard %d still write-locked by domain %d at end of journal"
              shard d;
        }
        :: !violations)
    writers;
  Hashtbl.iter
    (fun (shard, d) n ->
      if n > 0 then
        violations :=
          {
            Invariant.rule = "race-leaked-read-lock";
            detail =
              Printf.sprintf
                "shard %d: %d read section(s) of domain %d still open at end \
                 of journal"
                shard n d;
          }
          :: !violations)
    readers;
  List.rev !violations
