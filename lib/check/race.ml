(* Dynamic complement of tools/race/xksrace: a lock-free access journal
   filled by the cache's [instrument] hook and replayed against the
   lock-held invariant.

   Events are appended with a CAS loop (never a lock of our own — the
   journal must not serialize the contention it is observing) and carry
   a global sequence number.  The producer protocol (Exec.Cache) takes
   the sequence number while the shard mutex is held, so for any single
   shard the sequence order is consistent with its critical-section
   order, which is exactly what the replay needs: per shard, the journal
   must read as well-nested [Lock … accesses … Unlock] sections, every
   Read/Write falling inside a section opened by the same domain. *)

type op = Lock | Unlock | Read | Write

let op_name = function
  | Lock -> "lock"
  | Unlock -> "unlock"
  | Read -> "read"
  | Write -> "write"

type event = { domain : int; shard : int; op : op; seq : int }

type t = { next_seq : int Atomic.t; events : event list Atomic.t }

let create () = { next_seq = Atomic.make 0; events = Atomic.make [] }

let record t ~shard op =
  let e =
    {
      domain = (Domain.self () :> int);
      shard;
      op;
      seq = Atomic.fetch_and_add t.next_seq 1;
    }
  in
  let rec push () =
    let old = Atomic.get t.events in
    if not (Atomic.compare_and_set t.events old (e :: old)) then push ()
  in
  push ()

let instrument t shard op =
  record t ~shard
    (match op with
    | Xks_exec.Cache.Lock -> Lock
    | Xks_exec.Cache.Unlock -> Unlock
    | Xks_exec.Cache.Read -> Read
    | Xks_exec.Cache.Write -> Write)

let events t =
  List.sort
    (fun a b -> Int.compare a.seq b.seq)
    (Atomic.get t.events)

let length t = List.length (Atomic.get t.events)

let describe e =
  Printf.sprintf "seq %d: domain %d %s on shard %d" e.seq e.domain
    (op_name e.op) e.shard

(* Replay one shard's journal slice: a [holder] of the shard mutex (or
   none), advanced event by event. *)
let check t =
  let violations = ref [] in
  let flag rule e detail =
    violations :=
      { Invariant.rule; detail = Printf.sprintf "%s (%s)" detail (describe e) }
      :: !violations
  in
  let holders : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match (e.op, Hashtbl.find_opt holders e.shard) with
      | Lock, Some d ->
          flag "race-double-lock" e
            (Printf.sprintf
               "shard %d locked while domain %d already holds it" e.shard d)
      | Lock, None -> Hashtbl.replace holders e.shard e.domain
      | Unlock, Some d when d = e.domain -> Hashtbl.remove holders e.shard
      | Unlock, Some d ->
          flag "race-foreign-unlock" e
            (Printf.sprintf "shard %d is held by domain %d" e.shard d)
      | Unlock, None -> flag "race-unheld-unlock" e "shard is not locked"
      | (Read | Write), Some d when d = e.domain -> ()
      | (Read | Write), Some d ->
          flag "race-access-wrong-holder" e
            (Printf.sprintf "shard %d is held by domain %d" e.shard d)
      | (Read | Write), None ->
          flag "race-unlocked-access" e
            "guarded shard state accessed with no lock held")
    (events t);
  Hashtbl.iter
    (fun shard d ->
      violations :=
        {
          Invariant.rule = "race-leaked-lock";
          detail =
            Printf.sprintf
              "shard %d still held by domain %d at end of journal" shard d;
        }
        :: !violations)
    holders;
  List.rev !violations
