(** Differential oracle: cross-check the optimised LCA algorithms and
    the pruning pipeline against the naive reference implementations in
    {!Xks_lca.Naive}.

    The naive implementations decide full containment by direct
    posting-list scans over preorder ranges — no stacks, no binary
    search, no Dewey arithmetic — so they are the trusted side of every
    comparison.  A disagreement is reported as a violation naming the
    implementation, the stage and both result lists. *)

type impl = {
  name : string;  (** shown in violation reports *)
  compute : Xks_xml.Tree.t -> int array array -> int list;
}

val elca_impls : impl list
(** [Indexed_stack.elca], [Stack_algos.elca], [Tree_scan.elca]. *)

val slca_impls : impl list
(** [Slca.indexed_lookup_eager], [Stack_algos.slca], [Scan_eager.slca],
    [Multiway.slca]. *)

val elca :
  ?impls:impl list -> Xks_xml.Tree.t -> int array array ->
  Invariant.violation list
(** Compare each implementation against {!Xks_lca.Naive.elca}.  Pass a
    custom [impls] to audit a new or deliberately broken algorithm. *)

val slca :
  ?impls:impl list -> Xks_xml.Tree.t -> int array array ->
  Invariant.violation list
(** Compare each implementation against {!Xks_lca.Naive.slca}. *)

val check_query :
  ?tag:string -> Xks_index.Inverted.t -> string list ->
  Invariant.violation list
(** Full audit of one query: posting/document-order invariants, every
    ELCA and SLCA implementation against the naive reference, RTF
    well-formedness over the naive ELCA set, and Definition 4
    post-conditions on the real ValidRTF pipeline output.  [tag]
    prefixes every violation (e.g. with the query text).  Queries the
    index cannot prepare (no keywords survive normalisation) check
    vacuously. *)

val check_workload :
  Xks_index.Inverted.t -> string list list -> Invariant.violation list
(** {!check_query} over a workload, tagging each violation with its
    query. *)
