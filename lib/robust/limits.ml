type t = {
  max_depth : int;
  max_attrs : int;
  max_text_bytes : int;
  max_nodes : int;
}

exception
  Limit_exceeded of {
    line : int;
    col : int;
    limit : string;
    value : int;
    max : int;
  }

let default =
  {
    max_depth = 1024;
    max_attrs = 1024;
    max_text_bytes = 1 lsl 30;
    max_nodes = 1 lsl 26;
  }

let unlimited =
  {
    max_depth = max_int;
    max_attrs = max_int;
    max_text_bytes = max_int;
    max_nodes = max_int;
  }

let exceeded ~line ~col ~limit ~value ~max =
  raise (Limit_exceeded { line; col; limit; value; max })

let error_to_string = function
  | Limit_exceeded { line; col; limit; value; max } ->
      Some
        (Printf.sprintf
           "input limit exceeded at line %d, column %d: %s = %d (cap %d)" line
           col limit value max)
  | _ -> None
