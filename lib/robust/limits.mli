(** Ingestion limits: hard caps on what a parsed document may cost.

    Adversarial inputs — deeply nested element bombs, megabyte attribute
    lists, entity-heavy text — must fail with a structured error before
    they exhaust the stack or the heap.  {!Xks_xml.Sax} (and therefore
    {!Xks_xml.Parser}, {!Xks_index.Stream_index} and
    {!Xks_core.Engine.of_file}) checks these caps while scanning and
    raises {!Limit_exceeded} with the input position. *)

type t = {
  max_depth : int;  (** maximum element nesting depth *)
  max_attrs : int;  (** maximum attributes on one element *)
  max_text_bytes : int;
      (** maximum total decoded character-data / attribute-value /
          entity-expansion bytes in the document *)
  max_nodes : int;  (** maximum total elements in the document *)
}

exception
  Limit_exceeded of {
    line : int;  (** 1-based input position of the violation *)
    col : int;
    limit : string;  (** which cap, e.g. ["max_depth"] *)
    value : int;  (** the offending value *)
    max : int;  (** the cap it crossed *)
  }

val default : t
(** Safe defaults for serving untrusted input: depth 1024, 1024
    attributes per element, 1 GiB of text, 2^26 elements — far above any
    legitimate DBLP/XMark corpus, far below what exhausts a process. *)

val unlimited : t
(** No caps ([max_int] everywhere) — the pre-hardening behaviour. *)

val exceeded : line:int -> col:int -> limit:string -> value:int -> max:int -> 'a
(** Raise {!Limit_exceeded}. *)

val error_to_string : exn -> string option
(** Render a {!Limit_exceeded}; [None] for other exceptions. *)
