(** Cooperative query budgets: wall-clock deadline + visited-node cap.

    A budget is threaded through the pipeline stages (keyword-node
    collection, Indexed-Stack ELCA, RTF partitioning, pruning), which
    call {!tick} as they visit nodes.  When the budget is exhausted the
    current stage raises {!Exhausted}; {!Xks_core.Engine.search} catches
    it and degrades to a cheaper algorithm instead of failing the query.

    The node counter is checked on every tick; the clock only every
    [check_interval] ticked nodes, so a deadline is honoured to within
    one check interval of pipeline work.

    A budget is {e single-domain} state: its counters are plain mutable
    fields, so a [t] must only ever be ticked by one domain.  Parallel
    execution layers create one budget per query on the domain that runs
    it ({!Xks_exec.Exec.search_batch} does exactly this), and
    {!Xks_core.Pipeline} forces striped pruning back to one domain when
    a budget is present. *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Node_budget  (** more nodes were visited than allowed *)

exception Exhausted of reason
(** Raised by {!tick} (and {!check}) on exhaustion. *)

type t

val create :
  ?now:(unit -> float) -> ?check_interval:int -> ?deadline_ms:int ->
  ?max_nodes:int -> unit -> t
(** A fresh budget.  [deadline_ms] is relative to [now ()] at creation
    time ([now] defaults to [Unix.gettimeofday]; tests inject a fake
    clock).  Omitted components are unlimited.  [check_interval]
    (default 128) is the number of ticked nodes between clock checks.
    @raise Invalid_argument on a negative [deadline_ms], [max_nodes] or
    non-positive [check_interval]. *)

val renew : t -> t
(** A copy with the visited-node counter reset to zero but the {e same}
    absolute deadline — what each degradation fallback gets: a fresh
    node allowance, no extra time. *)

val tick : t -> int -> unit
(** [tick b n] records [n] more visited nodes.
    @raise Exhausted when the cap or the deadline is hit. *)

val tick_opt : t option -> int -> unit
(** [tick] through an optional budget; [None] is a no-op (the unbudgeted
    fast path). *)

val check : t -> unit
(** Check both components without consuming nodes.
    @raise Exhausted when the cap or the deadline is hit. *)

val visited : t -> int
(** Nodes ticked so far. *)

val reason_to_string : reason -> string
(** ["deadline"] or ["node budget"], for messages. *)
