type reason = Deadline | Node_budget

exception Exhausted of reason

type t = {
  deadline : float option;  (* absolute seconds on [now]'s clock *)
  max_nodes : int option;
  now : unit -> float;
  check_interval : int;
  mutable visited : int;
  mutable until_clock : int;  (* ticked nodes left before a clock check *)
}

let create ?(now = Unix.gettimeofday) ?(check_interval = 128) ?deadline_ms
    ?max_nodes () =
  (match deadline_ms with
  | Some ms when ms < 0 -> invalid_arg "Budget.create: negative deadline"
  | _ -> ());
  (match max_nodes with
  | Some n when n < 0 -> invalid_arg "Budget.create: negative node budget"
  | _ -> ());
  if check_interval <= 0 then
    invalid_arg "Budget.create: non-positive check interval";
  let deadline =
    Option.map (fun ms -> now () +. (float_of_int ms /. 1000.)) deadline_ms
  in
  { deadline; max_nodes; now; check_interval; visited = 0; until_clock = 0 }

let renew b = { b with visited = 0; until_clock = 0 }

let check_deadline b =
  match b.deadline with
  | Some d when b.now () > d -> raise (Exhausted Deadline)
  | _ -> ()

let check_nodes b =
  match b.max_nodes with
  | Some m when b.visited > m -> raise (Exhausted Node_budget)
  | _ -> ()

let check b =
  check_nodes b;
  check_deadline b

let tick b n =
  Xks_trace.Trace.incr Xks_trace.Trace.Budget_ticks;
  b.visited <- b.visited + n;
  check_nodes b;
  if b.deadline <> None then begin
    b.until_clock <- b.until_clock - n;
    if b.until_clock <= 0 then begin
      b.until_clock <- b.check_interval;
      check_deadline b
    end
  end

let tick_opt bo n = match bo with None -> () | Some b -> tick b n
let visited b = b.visited

let reason_to_string = function
  | Deadline -> "deadline"
  | Node_budget -> "node budget"
