(** Bounded admission control for {!Xks_serve}: a lock-free gate that
    caps the number of outstanding (admitted but not yet finished)
    connections at [workers + queue].

    The gate is the server's only buffer.  [workers] models the pool's
    in-flight budget and [queue] the connections allowed to wait for a
    worker; once [outstanding] reaches the sum, {!try_admit} rejects and
    the accept loop sheds the connection with a 503 — overload never
    turns into unbounded queueing.  All state is {!Atomic}, so the
    accept loop and the worker domains never contend on a lock. *)

type t

type decision =
  | Admitted
  | Rejected of { outstanding : int; capacity : int }
      (** the observed count and the cap it crossed, for the 503 body *)

val create : workers:int -> queue:int -> t
(** A fresh gate with capacity [workers + queue].
    @raise Invalid_argument when [workers < 1] or [queue < 0]. *)

val capacity : t -> int
(** [workers + queue]. *)

val try_admit : t -> decision
(** Claim one admission slot (CAS loop; succeeds or rejects, never
    blocks).  Every [Admitted] must be paired with exactly one
    {!release} when the connection finishes. *)

val release : t -> unit
(** Return an admission slot.
    @raise Invalid_argument on release without a matching admit. *)

val outstanding : t -> int
(** Currently admitted, not yet released. *)

val admitted_total : t -> int
val rejected_total : t -> int
(** Monotonic totals since {!create}. *)

val to_error : outstanding:int -> t -> exn
(** The rejection as a positioned {!Limits.Limit_exceeded} (limit
    ["admission_outstanding"], position 0:0 — the gate has no input
    position), so 503 bodies render through the same
    {!Limits.error_to_string} channel as every other cap. *)
