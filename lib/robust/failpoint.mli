(** Failpoints: deterministic fault injection for tests.

    Production I/O sites ({!Xks_index.Persist.load},
    {!Xks_xml.Sax.parse_file}) read files through {!read_file}, naming
    their site.  A test enables an action on that site to simulate a
    torn write (truncation), a bit flip, or a mid-read I/O error, then
    asserts the system degrades instead of crashing.  With no action
    enabled the passthrough costs one hashtable probe.

    Sites in this codebase: ["persist.read"] (index file bytes),
    ["sax.read"] (XML file bytes) and ["serve.read"] (HTTP socket read
    chunks, {!Xks_serve.Server.read_site}).

    The registry is global mutable state — tests using it must not run
    failpoint cases concurrently; {!with_failpoint} scopes an action and
    always clears it. *)

type action =
  | Raise of exn  (** the site raises [exn] (e.g. a mid-read [Sys_error]) *)
  | Truncate of int  (** the site sees only the first [n] bytes *)
  | Corrupt of int
      (** byte at offset [n mod length] is bit-flipped (xor 0xFF) *)

val enable : ?skip:int -> string -> action -> unit
(** Arm [site] with [action]; the first [skip] (default 0) triggers pass
    through unharmed.  Re-enabling replaces the previous action. *)

val disable : string -> unit
(** Disarm [site] (no-op when not armed). *)

val clear_all : unit -> unit
(** Disarm every site and reset hit counters. *)

val hits : string -> int
(** How many times [site] was reached (armed or not) since the last
    {!clear_all}. *)

val apply : string -> string -> string
(** [apply site data] passes [data] through [site]'s action: returns it
    unchanged when disarmed or skipping, truncated/corrupted, or raises
    the armed exception.  Always counts a hit. *)

val read_file : site:string -> string -> string
(** Read a whole binary file, then {!apply} the site's action — the
    injectable reader used by [Persist] and [Sax].
    @raise Sys_error if the file cannot be read (or as injected). *)

val with_failpoint : ?skip:int -> string -> action -> (unit -> 'a) -> 'a
(** [with_failpoint site action f] runs [f] with [site] armed, disarming
    it afterwards even if [f] raises. *)
