(* Bounded admission for the serving layer: one CAS-guarded counter of
   outstanding (admitted but not yet finished) connections, capped at
   [workers + queue].  The gate is the *only* buffering the server has —
   a connection that cannot be admitted is rejected immediately (503 at
   the HTTP layer), never parked in an unbounded accept backlog.

   The counter is a single [Atomic.t] so the accept loop never takes a
   lock: [try_admit] is a compare-and-set loop, [release] an atomic
   decrement.  Totals are plain atomic counters for the stats line. *)

type t = {
  workers : int;
  queue : int;
  outstanding : int Atomic.t;
  admitted_total : int Atomic.t;
  rejected_total : int Atomic.t;
}

type decision = Admitted | Rejected of { outstanding : int; capacity : int }

let create ~workers ~queue =
  if workers < 1 then invalid_arg "Admission.create: workers must be >= 1";
  if queue < 0 then invalid_arg "Admission.create: queue must be >= 0";
  {
    workers;
    queue;
    outstanding = Atomic.make 0;
    admitted_total = Atomic.make 0;
    rejected_total = Atomic.make 0;
  }

let capacity t = t.workers + t.queue

let try_admit t =
  let cap = capacity t in
  let rec loop () =
    let n = Atomic.get t.outstanding in
    if n >= cap then begin
      Atomic.incr t.rejected_total;
      Rejected { outstanding = n; capacity = cap }
    end
    else if Atomic.compare_and_set t.outstanding n (n + 1) then begin
      Atomic.incr t.admitted_total;
      Admitted
    end
    else loop ()
  in
  loop ()

let release t =
  let n = Atomic.fetch_and_add t.outstanding (-1) in
  if n <= 0 then begin
    (* restore before failing so a buggy double-release in a test does
       not wedge the gate for everyone else *)
    Atomic.incr t.outstanding;
    invalid_arg "Admission.release: no outstanding admission"
  end

let outstanding t = Atomic.get t.outstanding
let admitted_total t = Atomic.get t.admitted_total
let rejected_total t = Atomic.get t.rejected_total

(* The rejection rendered in PR 1's positioned-cap idiom: admission is a
   limit like [max_depth], except the "position" is the gate itself.
   Callers get the same exception constructor and the same
   [Limits.error_to_string] rendering as every other cap. *)
let to_error ~outstanding:value t =
  Limits.Limit_exceeded
    {
      line = 0;
      col = 0;
      limit = "admission_outstanding";
      value;
      max = capacity t;
    }
