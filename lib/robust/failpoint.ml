type action = Raise of exn | Truncate of int | Corrupt of int

type entry = { mutable action : action; mutable skip : int }

let armed : (string, entry) Hashtbl.t = Hashtbl.create 8
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 8

let enable ?(skip = 0) site action =
  if skip < 0 then invalid_arg "Failpoint.enable: negative skip";
  Hashtbl.replace armed site { action; skip }

let disable site = Hashtbl.remove armed site

let clear_all () =
  Hashtbl.reset armed;
  Hashtbl.reset counters

let hits site =
  match Hashtbl.find_opt counters site with Some r -> !r | None -> 0

let count site =
  match Hashtbl.find_opt counters site with
  | Some r -> incr r
  | None -> Hashtbl.add counters site (ref 1)

let apply site data =
  count site;
  match Hashtbl.find_opt armed site with
  | None -> data
  | Some e when e.skip > 0 ->
      e.skip <- e.skip - 1;
      data
  | Some { action = Raise exn; _ } -> raise exn
  | Some { action = Truncate n; _ } ->
      String.sub data 0 (max 0 (min n (String.length data)))
  | Some { action = Corrupt n; _ } ->
      if String.length data = 0 then data
      else begin
        let b = Bytes.of_string data in
        let i = ((n mod Bytes.length b) + Bytes.length b) mod Bytes.length b in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
        Bytes.unsafe_to_string b
      end

let read_file ~site path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  apply site data

let with_failpoint ?skip site action f =
  enable ?skip site action;
  Fun.protect ~finally:(fun () -> disable site) f
