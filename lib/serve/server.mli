(** Overload-safe HTTP/1.1 serving of keyword search over a Unix-domain
    socket.

    The request flow is admission → deadline → pool → ladder → response:
    the accept loop claims a slot from a bounded
    {!Xks_robust.Admission} gate (capacity [workers + queue]) and hands
    admitted connections to {!Xks_exec.Pool} workers; connections over
    capacity are shed immediately with [503] + [Retry-After] — overload
    never becomes unbounded queueing.  Each request runs under the
    configured {!Xks_robust.Budget} recipe, so slow queries degrade down
    the ValidRTF → MaxMatch → SLCA ladder instead of hogging a worker;
    the JSON response carries the [degraded] reason and budget class.
    Keep-alive connections hold their admission slot until they close.

    Endpoints (all [GET], JSON bodies, [x-request-id] on every
    response):
    - [/search?q=w1+w2&algorithm=validrtf&limit=10] — run a query
    - [/health] — liveness probe
    - [/stats] — live counter snapshot (also {!stats})

    Shutdown: {!request_shutdown} (typically from a SIGTERM/SIGINT
    handler — it only flips an atomic, so it is signal-safe) makes
    {!run} stop accepting, drain in-flight connections up to the drain
    deadline, then cut the survivors with [shutdown(2)] and join the
    pool.  {!run} returning means every connection is closed and
    released. *)

type config = {
  socket_path : string;  (** Unix-domain socket path (replaced if stale) *)
  workers : int;  (** pool size = in-flight request budget *)
  queue : int;  (** admitted connections allowed to wait for a worker *)
  deadline_ms : int option;  (** per-request budget deadline *)
  max_nodes : int option;  (** per-request budget node cap *)
  idle_timeout_ms : int;  (** keep-alive wait for a request's first byte *)
  read_timeout_ms : int;  (** total cap on reading one request head+body *)
  write_timeout_ms : int;  (** cap on writing one response *)
  drain_timeout_ms : int;  (** graceful-shutdown drain budget *)
  retry_after_s : int;  (** advertised in 503 rejections *)
  algorithm : Xks_core.Engine.algorithm;  (** default algorithm *)
  cache_mb : int;  (** result-cache budget; [0] disables the cache *)
  max_hits : int;  (** cap on hits serialized per response *)
  http_limits : Http.limits;  (** request parsing caps *)
  log : string -> unit;  (** diagnostics sink (never stdout) *)
}

val default_config : socket_path:string -> unit -> config
(** Pool-sized workers, queue [2 × workers], 200 ms deadline, 5 s idle /
    2 s read / 2 s write / 2 s drain, 8 MiB cache,
    {!Http.default_limits}, silent log. *)

type t

val create : config -> Xks_core.Engine.t -> t
(** Bind the socket, spawn the worker pool, and ignore [SIGPIPE]
    process-wide (a worker writing to a half-closed socket must get
    [EPIPE], not die).
    @raise Unix.Unix_error when the socket cannot be bound (the CLI's
    exit-code-5 channel).
    @raise Failure when [socket_path] exists and is not a socket.
    @raise Invalid_argument on nonsensical sizes. *)

val run : t -> unit
(** Serve until {!request_shutdown}, then drain (or cut) every
    connection, shut the pool down, remove the socket file, and log the
    final {!stats_line}.  Call from the domain that owns the server;
    blocks. *)

val request_shutdown : t -> unit
(** Flip the stop flag (atomic, signal-safe).  {!run} observes it
    within its 50 ms accept tick. *)

type stats = {
  accepted : int;  (** connections admitted *)
  served : int;  (** responses fully written (any status) *)
  rejected : int;  (** connections shed with 503 at admission *)
  timed_out : int;  (** read/write timeouts that cost a connection *)
  aborted : int;  (** connections cut at the drain deadline *)
  active : int;  (** currently admitted, not yet finished *)
}

val stats : t -> stats
(** Live snapshot (also served at [/stats]). *)

val stats_line : stats -> string
(** One-line rendering, the final line {!run} logs. *)

val config : t -> config

val read_site : string
(** Failpoint site ["serve.read"]: every socket read chunk passes
    through it, so tests inject torn/corrupt/failing reads mid-request
    (see {!Xks_robust.Failpoint}). *)
