(* Incremental HTTP/1.1 request parsing and response serialization —
   dependency-free, over plain strings.

   The reader accumulates raw bytes ([feed]) and yields at most one
   complete request per [next] call, so pipelined requests and torn
   reads (a request split across arbitrary [read] boundaries) both fall
   out of the same code path.  Every dimension of the head is capped
   with a positioned {!Xks_robust.Limits.Limit_exceeded} (PR 1's cap
   idiom): caps are enforced even while the head is still incomplete —
   a request line that never ends cannot grow the buffer past its cap.

   Deliberately out of scope (rejected as [Bad_request], never
   half-handled): chunked transfer encoding, HTTP/2, multiline header
   continuations, and protocol versions other than 1.0/1.1. *)

module Limits = Xks_robust.Limits

type limits = {
  max_request_line_bytes : int;
  max_header_bytes : int;
  max_headers : int;
  max_body_bytes : int;
}

let default_limits =
  {
    max_request_line_bytes = 8192;
    max_header_bytes = 32768;
    max_headers = 128;
    max_body_bytes = 65536;
  }

exception Bad_request of string

type request = {
  meth : string;
  target : string;
  path : string;
  params : (string * string) list;
  version : int;
  headers : (string * string) list;
  body : string;
}

type reader = { limits : limits; mutable pending : string }

let reader limits = { limits; pending = "" }
let feed r s = if s <> "" then r.pending <- r.pending ^ s
let pending_bytes r = String.length r.pending

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

(* --- percent decoding --- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Bad_request "malformed percent-encoding")

let percent_decode ~plus_is_space s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' ->
        if !i + 2 >= n then raise (Bad_request "malformed percent-encoding");
        Buffer.add_char b
          (Char.chr ((hex_val s.[!i + 1] lsl 4) lor hex_val s.[!i + 2]));
        i := !i + 2
    | '+' when plus_is_space -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query qs =
  String.split_on_char '&' qs
  |> List.filter (fun s -> s <> "")
  |> List.map (fun kv ->
         match String.index_opt kv '=' with
         | None -> (percent_decode ~plus_is_space:true kv, "")
         | Some i ->
             ( percent_decode ~plus_is_space:true (String.sub kv 0 i),
               percent_decode ~plus_is_space:true
                 (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode ~plus_is_space:false target, [])
  | Some i ->
      ( percent_decode ~plus_is_space:false (String.sub target 0 i),
        parse_query (String.sub target (i + 1) (String.length target - i - 1))
      )

(* --- incremental head parsing --- *)

(* A line ends at '\n'; a trailing '\r' is stripped, so CRLF and bare
   LF are both accepted (robustness over strictness for the line
   terminator only). *)
let next_line s pos =
  match String.index_from_opt s pos '\n' with
  | None -> None
  | Some nl ->
      let stop = if nl > pos && s.[nl - 1] = '\r' then nl - 1 else nl in
      Some (String.sub s pos (stop - pos), nl + 1)

let parse_request_line line =
  match List.filter (fun t -> t <> "") (String.split_on_char ' ' line) with
  | [ m; t; "HTTP/1.1" ] -> (m, t, 1)
  | [ m; t; "HTTP/1.0" ] -> (m, t, 0)
  | [ _; _; v ] -> raise (Bad_request ("unsupported protocol: " ^ v))
  | _ -> raise (Bad_request "malformed request line")

let next r =
  let s = r.pending in
  let len = String.length s in
  let lim = r.limits in
  (* Tolerate blank line(s) between pipelined requests. *)
  let rec skip_blank pos =
    match next_line s pos with Some ("", p) -> skip_blank p | _ -> pos
  in
  let start = skip_blank 0 in
  let keep_tail () =
    if start > 0 then r.pending <- String.sub s start (len - start)
  in
  if start >= len then begin
    r.pending <- "";
    None
  end
  else
    match next_line s start with
    | None ->
        (* Unterminated request line: the cap applies to the bytes
           already buffered, or a hostile client could grow the buffer
           forever one byte at a time. *)
        let sofar = len - start in
        if sofar > lim.max_request_line_bytes then
          Limits.exceeded ~line:1 ~col:sofar ~limit:"max_request_line_bytes"
            ~value:sofar ~max:lim.max_request_line_bytes;
        keep_tail ();
        None
    | Some (reqline, after_reqline) ->
        let rl_len = String.length reqline in
        if rl_len > lim.max_request_line_bytes then
          Limits.exceeded ~line:1 ~col:rl_len ~limit:"max_request_line_bytes"
            ~value:rl_len ~max:lim.max_request_line_bytes;
        let meth, target, version = parse_request_line reqline in
        let rec read_headers acc count line_no pos =
          let head_bytes = pos - start in
          if head_bytes > lim.max_header_bytes then
            Limits.exceeded ~line:line_no ~col:0 ~limit:"max_header_bytes"
              ~value:head_bytes ~max:lim.max_header_bytes;
          match next_line s pos with
          | None ->
              (* Same incremental rule for a head that never ends. *)
              if len - start > lim.max_header_bytes then
                Limits.exceeded ~line:line_no ~col:0 ~limit:"max_header_bytes"
                  ~value:(len - start) ~max:lim.max_header_bytes;
              `Incomplete
          | Some ("", p) -> `Done (List.rev acc, line_no, p)
          | Some (hline, p) ->
              if count + 1 > lim.max_headers then
                Limits.exceeded ~line:line_no ~col:0 ~limit:"max_headers"
                  ~value:(count + 1) ~max:lim.max_headers;
              (match String.index_opt hline ':' with
              | None | Some 0 -> raise (Bad_request "malformed header line")
              | Some i ->
                  let name =
                    String.lowercase_ascii (String.trim (String.sub hline 0 i))
                  in
                  let value =
                    String.trim
                      (String.sub hline (i + 1) (String.length hline - i - 1))
                  in
                  read_headers ((name, value) :: acc) (count + 1) (line_no + 1)
                    p)
        in
        (match read_headers [] 0 2 after_reqline with
        | `Incomplete ->
            keep_tail ();
            None
        | `Done (headers, line_no, body_start) ->
            if List.mem_assoc "transfer-encoding" headers then
              raise (Bad_request "transfer-encoding not supported");
            let content_length =
              match List.assoc_opt "content-length" headers with
              | None -> 0
              | Some v -> (
                  match int_of_string_opt (String.trim v) with
                  | Some n when n >= 0 -> n
                  | Some _ | None ->
                      raise (Bad_request "malformed content-length"))
            in
            if content_length > lim.max_body_bytes then
              Limits.exceeded ~line:line_no ~col:0 ~limit:"max_body_bytes"
                ~value:content_length ~max:lim.max_body_bytes;
            if len - body_start < content_length then begin
              keep_tail ();
              None
            end
            else begin
              let body = String.sub s body_start content_length in
              let rest = body_start + content_length in
              r.pending <- String.sub s rest (len - rest);
              let path, params = split_target target in
              Some { meth; target; path; params; version; headers; body }
            end)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.equal (String.sub s i m) sub || at (i + 1)) in
  m = 0 || at 0

let keep_alive req =
  match header req "connection" with
  | None -> req.version >= 1
  | Some v ->
      let v = String.lowercase_ascii v in
      if contains_sub v "close" then false
      else if contains_sub v "keep-alive" then true
      else req.version >= 1

(* --- responses --- *)

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let response ?(headers = []) ?(content_type = "application/json") ~status body
    =
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_reason status));
  Buffer.add_string b (Printf.sprintf "content-type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "content-length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b
