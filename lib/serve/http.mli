(** Incremental HTTP/1.1 request parsing and response serialization.

    A {!reader} accumulates raw socket bytes and yields complete
    requests one at a time, so torn reads (a request head split across
    arbitrary [read] boundaries) and pipelining (several requests in one
    read) share a single code path.  Request-line, header and body sizes
    are hard-capped with positioned {!Xks_robust.Limits.Limit_exceeded}
    errors — enforced even on heads that are still incomplete, so a
    client that never sends the terminator cannot grow the buffer past
    the cap.  Malformed syntax raises {!Bad_request}.

    CRLF and bare-LF line endings are both accepted.  Chunked transfer
    encoding, header continuations and protocol versions other than
    HTTP/1.0 / HTTP/1.1 are rejected as {!Bad_request}. *)

type limits = {
  max_request_line_bytes : int;  (** cap on the request line *)
  max_header_bytes : int;  (** cap on the whole head (line + headers) *)
  max_headers : int;  (** cap on the number of header fields *)
  max_body_bytes : int;  (** cap on [content-length] *)
}

val default_limits : limits
(** 8 KiB request line, 32 KiB head, 128 headers, 64 KiB body. *)

exception Bad_request of string
(** Malformed request syntax (the 400 channel, distinct from the
    {!Xks_robust.Limits.Limit_exceeded} cap channel). *)

type request = {
  meth : string;  (** e.g. ["GET"] — uppercase as sent *)
  target : string;  (** raw request target, undecoded *)
  path : string;  (** percent-decoded path component *)
  params : (string * string) list;
      (** decoded query parameters, in order; ['+'] decodes to space *)
  version : int;  (** [1] for HTTP/1.1, [0] for HTTP/1.0 *)
  headers : (string * string) list;
      (** names lowercased, values trimmed, in order *)
  body : string;  (** exactly [content-length] bytes (default 0) *)
}

type reader

val reader : limits -> reader
(** A fresh incremental reader. *)

val feed : reader -> string -> unit
(** Append raw bytes from the socket. *)

val next : reader -> request option
(** Parse (and consume) the next complete request, or [None] when the
    buffered bytes do not yet form one.  Call repeatedly to drain
    pipelined requests.
    @raise Bad_request on malformed syntax.
    @raise Xks_robust.Limits.Limit_exceeded when a cap is crossed (also
    for incomplete heads already larger than their cap). *)

val pending_bytes : reader -> int
(** Bytes buffered but not yet consumed. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (first occurrence). *)

val keep_alive : request -> bool
(** Whether the connection persists after this request: HTTP/1.1
    defaults to [true] unless [Connection: close]; HTTP/1.0 defaults to
    [false] unless [Connection: keep-alive]. *)

val status_reason : int -> string
(** Reason phrase for a status code. *)

val response :
  ?headers:(string * string) list ->
  ?content_type:string ->
  status:int ->
  string ->
  string
(** Serialize a complete response with [content-length] (and
    [content-type], default [application/json]) computed from the
    body. *)
