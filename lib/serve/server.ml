(* Overload-safe HTTP/1.1 serving over a Unix-domain socket.

   Request flow: admission → deadline → pool → ladder → response.  The
   accept loop (the caller's domain) claims a slot from the lock-free
   [Admission] gate; an admitted connection is registered in the
   connection table and handed to an [Exec.Pool] worker, a rejected one
   is shed immediately with a 503 + Retry-After — the gate's
   [workers + queue] bound is the only buffering in the system.  Each
   worker owns its connection end to end: it parses requests
   incrementally under idle/read caps, runs the query under the
   configured [Budget] recipe (slow queries ride the ValidRTF → MaxMatch
   → SLCA degradation ladder; the JSON response carries the [degraded]
   reason and budget class), and answers on the same socket under a
   write cap.  A keep-alive connection holds its admission slot for its
   whole lifetime, so overload shows up at connect time, never as an
   unbounded backlog.

   Shutdown state machine (driven by [run] after [request_shutdown]
   flips the atomic stop flag, e.g. from a SIGTERM handler):

     accepting --stop--> draining --all done--> closed
                            | drain deadline
                            v
                         aborting (shutdown(2) every live socket,
                                   wait for the workers, then closed)

   Workers observe the stop flag between requests and answer with
   [Connection: close], so draining converges; sockets cut at the
   deadline wake their worker's blocking read immediately.  The
   per-connection cleanup path is the single place that closes the fd,
   removes the table entry and releases the admission slot, whichever
   way the connection ends.

   Lock discipline (machine-checked by xksrace): the connection table is
   guarded by [mutex]; every counter, and the stop flag, is an
   [Atomic.t] shared freely between the accept domain and the workers. *)

module Engine = Xks_core.Engine
module Fragment = Xks_core.Fragment
module Exec = Xks_exec.Exec
module Pool = Xks_exec.Pool
module Cache = Xks_exec.Cache
module Budget = Xks_robust.Budget
module Limits = Xks_robust.Limits
module Admission = Xks_robust.Admission
module Failpoint = Xks_robust.Failpoint
module Trace = Xks_trace.Trace
module Json = Xks_trace.Json

let read_site = "serve.read"

type config = {
  socket_path : string;
  workers : int;
  queue : int;
  deadline_ms : int option;
  max_nodes : int option;
  idle_timeout_ms : int;
  read_timeout_ms : int;
  write_timeout_ms : int;
  drain_timeout_ms : int;
  retry_after_s : int;
  algorithm : Engine.algorithm;
  cache_mb : int;
  max_hits : int;
  http_limits : Http.limits;
  log : string -> unit;
}

let default_config ~socket_path () =
  {
    socket_path;
    workers = Pool.default_size ();
    queue = 2 * Pool.default_size ();
    deadline_ms = Some 200;
    max_nodes = None;
    idle_timeout_ms = 5_000;
    read_timeout_ms = 2_000;
    write_timeout_ms = 2_000;
    drain_timeout_ms = 2_000;
    retry_after_s = 1;
    algorithm = Engine.Validrtf;
    cache_mb = 8;
    max_hits = 50;
    http_limits = Http.default_limits;
    log = (fun _ -> ());
  }

type stats = {
  accepted : int;
  served : int;
  rejected : int;
  timed_out : int;
  aborted : int;
  active : int;
}

type t = {
  cfg : config;
  engine : Engine.t;
  pool : Pool.t;
  cache : Cache.t option;
  admission : Admission.t;
  listen_fd : Unix.file_descr;
  stop_flag : bool Atomic.t;
  accepted : int Atomic.t;
  served : int Atomic.t;
  timed_out : int Atomic.t;
  aborted : int Atomic.t;
  next_conn_id : int Atomic.t;
  mutex : Mutex.t;
  (* xksrace: guarded_by mutex *)
  conns : (int, Unix.file_descr) Hashtbl.t;
}

let config t = t.cfg

let stats t =
  {
    accepted = Atomic.get t.accepted;
    served = Atomic.get t.served;
    rejected = Admission.rejected_total t.admission;
    timed_out = Atomic.get t.timed_out;
    aborted = Atomic.get t.aborted;
    active = Admission.outstanding t.admission;
  }

let stats_line (s : stats) =
  Printf.sprintf
    "serve: accepted=%d served=%d rejected=%d timed_out=%d aborted=%d \
     active=%d"
    s.accepted s.served s.rejected s.timed_out s.aborted s.active

(* --- construction --- *)

let remove_stale_socket path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_SOCK -> Unix.unlink path
  | Unix.S_REG | Unix.S_DIR | Unix.S_CHR | Unix.S_BLK | Unix.S_LNK
  | Unix.S_FIFO ->
      failwith (Printf.sprintf "serve: %s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Open, bind and listen on the control socket.  Ownership of the fd
   transfers to the caller by return; until then the bind/listen
   failure path releases it before re-raising. *)
let acquire_listener cfg =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen fd (cfg.workers + cfg.queue + 16)
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  fd

let create cfg engine =
  if cfg.max_hits < 1 then invalid_arg "Server.create: max_hits must be >= 1";
  let admission = Admission.create ~workers:cfg.workers ~queue:cfg.queue in
  (* A worker writing to a half-closed socket must get EPIPE, not kill
     the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  remove_stale_socket cfg.socket_path;
  (* Anything that can refuse its configuration (the cache validates
     max_bytes) runs before any resource is acquired; the pool — whose
     domains are themselves a resource — comes next, and the listener
     last, shutting the pool down if the socket can't be had.  This
     ordering keeps every raise path free of stranded domains and fds. *)
  let cache =
    if cfg.cache_mb > 0 then
      Some (Cache.create ~max_bytes:(cfg.cache_mb * 1024 * 1024) ())
    else None
  in
  let pool = Pool.create ~size:cfg.workers ~oversubscribe:true () in
  let listen_fd =
    try acquire_listener cfg
    with e ->
      Pool.shutdown pool;
      raise e
  in
  {
    cfg;
    engine;
    pool;
    cache;
    admission;
    listen_fd;
    stop_flag = Atomic.make false;
    accepted = Atomic.make 0;
    served = Atomic.make 0;
    timed_out = Atomic.make 0;
    aborted = Atomic.make 0;
    next_conn_id = Atomic.make 1;
    mutex = Mutex.create ();
    conns = Hashtbl.create 64;
  }

let request_shutdown t = Atomic.set t.stop_flag true

(* --- socket I/O with timeouts --- *)

let ms_to_s ms = float_of_int ms /. 1000.

type write_outcome = W_ok | W_timeout | W_closed

let try_write fd s =
  let n = String.length s in
  let rec go off =
    if off >= n then W_ok
    else
      match Unix.write_substring fd s off (n - off) with
      | 0 -> W_closed
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          W_timeout
      | exception Unix.Unix_error (_, _, _) -> W_closed
  in
  go 0

type read_outcome =
  | R_request of Http.request
  | R_eof
  | R_timeout
  | R_error of exn  (* Bad_request or Limit_exceeded from the parser *)

(* Read until the buffered bytes form a complete request.  The idle cap
   ([idle_ms], defaulting to the configured idle timeout) applies while
   waiting for a request's first byte; once any byte of the head has
   arrived the (total, not per-read) read cap takes over, so a client
   trickling one byte per second cannot hold a worker beyond
   [read_timeout_ms]. *)
let read_request ?idle_ms t reader fd =
  let idle_ms =
    match idle_ms with Some ms -> ms | None -> t.cfg.idle_timeout_ms
  in
  let chunk = Bytes.create 4096 in
  let started =
    ref
      (if Http.pending_bytes reader > 0 then Some (Unix.gettimeofday ())
       else None)
  in
  let rec go () =
    match Http.next reader with
    | Some req -> R_request req
    | exception (Http.Bad_request _ as e) -> R_error e
    | exception (Limits.Limit_exceeded _ as e) -> R_error e
    | None ->
        let timeout =
          match !started with
          | None -> ms_to_s idle_ms
          | Some t0 ->
              ms_to_s t.cfg.read_timeout_ms -. (Unix.gettimeofday () -. t0)
        in
        if timeout <= 0. then R_timeout
        else begin
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> R_eof
          | n ->
              if !started = None then started := Some (Unix.gettimeofday ());
              Http.feed reader
                (Failpoint.apply read_site (Bytes.sub_string chunk 0 n));
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              R_timeout
          | exception Unix.Unix_error (_, _, _) -> R_eof
        end
  in
  go ()

(* --- request handling (runs on a pool worker) --- *)

let rec take n l =
  match l with [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let algorithm_of_string = function
  | "validrtf" -> Some Engine.Validrtf
  | "maxmatch" -> Some Engine.Maxmatch
  | "maxmatch-original" -> Some Engine.Maxmatch_original
  | _ -> None

let algorithm_name = function
  | Engine.Validrtf -> "validrtf"
  | Engine.Maxmatch -> "maxmatch"
  | Engine.Maxmatch_original -> "maxmatch-original"

let rank_of_string = function
  | "heuristic" -> Some `Heuristic
  | "bm25" -> Some `Bm25
  | "doc" -> Some `Doc
  | _ -> None

let rank_name = function
  | `Heuristic -> "heuristic"
  | `Bm25 -> "bm25"
  | `Doc -> "doc"

let budget_spec t =
  if t.cfg.deadline_ms = None && t.cfg.max_nodes = None then None
  else
    Some { Exec.deadline_ms = t.cfg.deadline_ms; max_nodes = t.cfg.max_nodes }

let err_obj trace_id msg =
  Json.Obj [ ("id", Json.String trace_id); ("error", Json.String msg) ]

let hit_json h =
  Json.Obj
    [
      ("score", Json.Float h.Engine.score);
      ("slca", Json.Bool h.Engine.is_slca);
      ("nodes", Json.Int (Fragment.size h.Engine.fragment));
    ]

let search_response t trace_id req =
  let q = match List.assoc_opt "q" req.Http.params with Some q -> q | None -> "" in
  let keywords =
    String.split_on_char ' ' q |> List.filter (fun w -> w <> "")
  in
  if keywords = [] then (400, err_obj trace_id "missing or empty q parameter")
  else
    let algorithm =
      match List.assoc_opt "algorithm" req.Http.params with
      | None -> Some t.cfg.algorithm
      | Some a -> algorithm_of_string a
    in
    match algorithm with
    | None -> (400, err_obj trace_id "unknown algorithm")
    | Some algorithm -> (
        let limit =
          match List.assoc_opt "limit" req.Http.params with
          | None -> 10
          | Some v -> (
              match int_of_string_opt v with
              | Some n when n >= 0 -> n
              | Some _ | None -> -1)
        in
        let rank =
          match List.assoc_opt "rank" req.Http.params with
          | None -> Some `Heuristic
          | Some r -> rank_of_string r
        in
        (* k must be a positive integer; anything else is a client
           error, not a silent default. *)
        let k =
          match List.assoc_opt "k" req.Http.params with
          | None -> Some None
          | Some v -> (
              match int_of_string_opt v with
              | Some n when n >= 1 -> Some (Some n)
              | Some _ | None -> None)
        in
        if limit < 0 then (400, err_obj trace_id "malformed limit")
        else
          match (rank, k) with
          | None, (Some _ | None) -> (400, err_obj trace_id "unknown rank")
          | Some _, None -> (400, err_obj trace_id "malformed k")
          | Some rank, Some k -> (
          let limit = if limit > t.cfg.max_hits then t.cfg.max_hits else limit in
          let budget = budget_spec t in
          match
            Exec.search_batch_results ?cache:t.cache ~algorithm ~rank ?k
              ?budget t.engine [ keywords ]
          with
          | results ->
              let r = results.(0) in
              let degraded =
                match r.Engine.degraded with
                | None -> Json.Null
                | Some reason -> Json.String (Budget.reason_to_string reason)
              in
              ( 200,
                Json.Obj
                  [
                    ("id", Json.String trace_id);
                    ( "query",
                      Json.List (List.map (fun w -> Json.String w) keywords)
                    );
                    ("algorithm", Json.String (algorithm_name algorithm));
                    ("rank", Json.String (rank_name rank));
                    ( "k",
                      match k with None -> Json.Null | Some k -> Json.Int k );
                    ( "budget_class",
                      Json.String (Exec.budget_class_of budget) );
                    ("degraded", degraded);
                    ("total", Json.Int (List.length r.Engine.hits));
                    ( "hits",
                      Json.List (List.map hit_json (take limit r.Engine.hits))
                    );
                  ] )
          | exception Invalid_argument msg -> (400, err_obj trace_id msg)))

let stats_json t =
  let s = stats t in
  Json.Obj
    [
      ("accepted", Json.Int s.accepted);
      ("served", Json.Int s.served);
      ("rejected", Json.Int s.rejected);
      ("timed_out", Json.Int s.timed_out);
      ("aborted", Json.Int s.aborted);
      ("active", Json.Int s.active);
      ("capacity", Json.Int (Admission.capacity t.admission));
    ]

let route t trace_id req =
  if req.Http.meth <> "GET" then
    (405, err_obj trace_id ("method not allowed: " ^ req.Http.meth))
  else
    match req.Http.path with
    | "/search" -> search_response t trace_id req
    | "/health" ->
        ( 200,
          Json.Obj
            [ ("id", Json.String trace_id); ("status", Json.String "ok") ] )
    | "/stats" -> (200, stats_json t)
    | p -> (404, err_obj trace_id ("no such endpoint: " ^ p))

let respond t fd ~close ~status ~trace_id body_obj =
  let headers = [ ("x-request-id", trace_id) ] in
  let headers =
    if close then ("connection", "close") :: headers else headers
  in
  let resp = Http.response ~headers ~status (Json.to_string body_obj) in
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO (ms_to_s t.cfg.write_timeout_ms);
  match try_write fd resp with
  | W_ok ->
      Atomic.incr t.served;
      Trace.incr Trace.Requests_served;
      `Sent
  | W_timeout ->
      Atomic.incr t.timed_out;
      Trace.incr Trace.Requests_timed_out;
      `Gone
  | W_closed -> `Gone

let parse_error_message e =
  match Limits.error_to_string e with
  | Some msg -> msg
  | None -> ( match e with Http.Bad_request msg -> msg | _ -> "bad request")

(* One worker owns the whole connection: parse → route → respond, then
   loop while keep-alive holds.  Parse errors answer 400 and close (the
   framing is unknown past the error); a mid-request read timeout
   answers 408 best-effort and closes; the idle timeout between
   requests is a silent, normal close. *)
let conn_loop t conn_id fd =
  let reader = Http.reader t.cfg.http_limits in
  let req_seq = ref 0 in
  let rec loop () =
    (* Once the stop flag is up, one final read under a short idle cap
       picks up a request that was already in flight when the flag
       flipped — it gets its response (carrying [connection: close])
       instead of a silent close; 20 ms of silence means the client
       really was idle between requests.  Either way the iteration is
       the last one, so draining converges. *)
    let stopping = Atomic.get t.stop_flag in
    let idle_ms =
      if stopping then min 20 t.cfg.idle_timeout_ms
      else t.cfg.idle_timeout_ms
    in
    match read_request ~idle_ms t reader fd with
    | R_eof -> ()
    | R_timeout ->
        if Http.pending_bytes reader > 0 then begin
          Atomic.incr t.timed_out;
          Trace.incr Trace.Requests_timed_out;
          let trace_id = Printf.sprintf "c%d.r%d" conn_id (!req_seq + 1) in
          (match
             respond t fd ~close:true ~status:408 ~trace_id
               (err_obj trace_id "request read timed out")
           with
          | `Sent | `Gone -> ())
        end
    | R_error e ->
        incr req_seq;
        let trace_id = Printf.sprintf "c%d.r%d" conn_id !req_seq in
        (match
           respond t fd ~close:true ~status:400 ~trace_id
             (err_obj trace_id (parse_error_message e))
         with
        | `Sent | `Gone -> ())
    | R_request req -> (
        incr req_seq;
        let trace_id = Printf.sprintf "c%d.r%d" conn_id !req_seq in
        let close =
          stopping || Atomic.get t.stop_flag || not (Http.keep_alive req)
        in
        let status, body =
          Trace.with_span "serve.request" (fun () -> route t trace_id req)
        in
        match respond t fd ~close ~status ~trace_id body with
        | `Sent -> if not close then loop ()
        | `Gone -> ())
  in
  loop ()

(* xksleak: owns fd *)
let serve_conn t conn_id fd =
  let cleanup () =
    Mutex.protect t.mutex (fun () -> Hashtbl.remove t.conns conn_id);
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
    Admission.release t.admission
  in
  Fun.protect ~finally:cleanup (fun () ->
      match conn_loop t conn_id fd with
      | () -> ()
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception e ->
          (* last-resort isolation: a handler bug costs one connection,
             never the worker (an escape would kill the pool domain) *)
          t.cfg.log
            (Printf.sprintf "serve: conn %d: handler escape: %s" conn_id
               (Printexc.to_string e)))

(* --- accept loop (runs on the caller's domain) --- *)

(* xksleak: owns fd *)
let reject_503 t fd ~outstanding ~capacity =
  Fun.protect
    ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Trace.incr Trace.Requests_rejected;
      let detail =
        match
          Limits.error_to_string (Admission.to_error ~outstanding t.admission)
        with
        | Some s -> s
        | None -> "overloaded"
      in
      let body =
        Json.to_string
          (Json.Obj
             [
               ("error", Json.String "overloaded");
               ("detail", Json.String detail);
               ("outstanding", Json.Int outstanding);
               ("capacity", Json.Int capacity);
               ("retry_after_s", Json.Int t.cfg.retry_after_s);
             ])
      in
      let resp =
        Http.response ~status:503
          ~headers:
            [
              ("retry-after", string_of_int t.cfg.retry_after_s);
              ("connection", "close");
            ]
          body
      in
      (* best-effort, short cap: the accept loop must never block on a
         slow rejected client *)
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.2;
      match try_write fd resp with W_ok | W_timeout | W_closed -> ())

(* xksleak: owns fd *)
let handle_accept t fd =
  match Admission.try_admit t.admission with
  | Admission.Rejected { outstanding; capacity } ->
      reject_503 t fd ~outstanding ~capacity
  | Admission.Admitted -> (
      Atomic.incr t.accepted;
      Trace.incr Trace.Requests_accepted;
      let conn_id = Atomic.fetch_and_add t.next_conn_id 1 in
      Mutex.protect t.mutex (fun () -> Hashtbl.replace t.conns conn_id fd);
      (* the task closure takes the fd with it; the single close site
         is serve_conn's cleanup finalizer, and the Pool_closed race
         below is the new owner declining the handoff *)
      (* xksleak: transfers fd *)
      match Pool.submit t.pool (fun () -> serve_conn t conn_id fd) with
      | () -> ()
      | exception Pool.Pool_closed ->
          (* shutdown raced this accept: cut the connection cleanly *)
          Mutex.protect t.mutex (fun () -> Hashtbl.remove t.conns conn_id);
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          Admission.release t.admission;
          Atomic.incr t.aborted;
          Trace.incr Trace.Requests_aborted)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ -> handle_accept t fd
          | exception
              Unix.Unix_error
                ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --- shutdown --- *)

let drain t =
  (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
  let deadline =
    Unix.gettimeofday () +. ms_to_s t.cfg.drain_timeout_ms
  in
  let rec wait () =
    if Admission.outstanding t.admission = 0 then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Unix.sleepf 0.01;
      wait ()
    end
  in
  if not (wait ()) then begin
    let victims =
      Mutex.protect t.mutex (fun () ->
          Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [])
    in
    t.cfg.log
      (Printf.sprintf "serve: drain deadline, aborting %d connection(s)"
         (List.length victims));
    List.iter
      (fun fd ->
        Atomic.incr t.aborted;
        Trace.incr Trace.Requests_aborted;
        (* shutdown(2), not close: the worker still owns the fd; this
           just wakes its blocking read/write immediately *)
        try Unix.shutdown fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error (_, _, _) -> ())
      victims;
    let rec settle () =
      if Admission.outstanding t.admission > 0 then begin
        Unix.sleepf 0.005;
        settle ()
      end
    in
    settle ()
  end;
  (match Pool.shutdown t.pool with
  | () -> ()
  | exception Pool.Pool_closed -> ());
  (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
  t.cfg.log (stats_line (stats t))

let run t =
  accept_loop t;
  drain t
