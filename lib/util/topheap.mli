(** Fixed-capacity top-k selection with deterministic tie-breaking.

    A size-k binary min-heap over [(score, id)] pairs carrying an
    arbitrary payload.  The order is total: a candidate beats a kept
    entry when its score is strictly higher, or the scores tie and its
    id is strictly smaller — so for XML search, ties between equal-score
    fragments resolve to Dewey document order (smaller LCA preorder id
    first).  The root of the heap is the worst kept entry; on a full
    heap its score is the admission threshold the early-termination
    bound is compared against. *)

type 'a node = { score : float; id : int; payload : 'a }

type 'a t

val create : capacity:int -> 'a t
(** Empty heap keeping at most [capacity] entries.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool

val min : 'a t -> 'a node option
(** The worst kept entry (the admission threshold), if any. *)

val min_score : 'a t -> float
(** Score of {!min}; [neg_infinity] when empty — so it is always a
    valid lower bound on admission. *)

val admits : 'a t -> score:float -> id:int -> bool
(** Would [insert] keep this candidate?  True when the heap is not yet
    full, the score strictly beats the root's, or the scores tie and
    [id] is smaller than the root's. *)

val insert : 'a t -> score:float -> id:int -> 'a -> bool
(** Add a candidate, evicting the current worst entry when full and
    beaten.  Returns whether the candidate was kept. *)

val to_sorted_list : 'a t -> (float * int * 'a) list
(** Kept entries best-first: score descending, ties by id ascending. *)
