(* Per-domain scratch buffers for hot query paths.

   The RTF pipeline used to build short-lived intermediate id
   collections (candidate lists, merged posting sets) as linked lists
   per query.  Sequentially that is only minor-GC churn; under several
   domains every minor collection is a stop-the-world barrier across
   ALL domains, so per-query allocation is precisely what made cold
   multi-domain batches anti-scale.  These buffers amortise that: each
   domain keeps its own free list of [Int_vec]s (domain-local storage,
   so no locking and no sharing), and a checked-out buffer retains its
   capacity across queries.

   The free list is a LIFO so nested [with_ints] calls work: the inner
   call simply checks out a second buffer. *)

let pool : Int_vec.t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_ints f =
  let free = Domain.DLS.get pool in
  let v =
    match !free with
    | v :: rest ->
        free := rest;
        v
    | [] -> Int_vec.create ~capacity:256 ()
  in
  Int_vec.clear v;
  Fun.protect ~finally:(fun () -> free := v :: !free) (fun () -> f v)
