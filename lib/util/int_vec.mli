(** Growable integer arrays.

    A minimal dynamic array of unboxed [int]s (OCaml 5.1 has no stdlib
    [Dynarray] yet), used to accumulate posting lists and node-id sets
    without boxing. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
(** @raise Invalid_argument on out-of-range index. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument on out-of-range index. *)

val clear : t -> unit
(** Reset the length to 0, keeping the capacity. *)

val to_array : t -> int array
(** A fresh array of the current contents. *)

val iter : (int -> unit) -> t -> unit
val last : t -> int
(** @raise Invalid_argument when empty. *)

val pop : t -> int
(** Remove and return the last element.
    @raise Invalid_argument when empty. *)

val sort_uniq : t -> unit
(** Sort ascending and drop duplicates, in place (the length shrinks by
    the number of duplicates).  Allocation-free: heapsort over the
    backing array — meant for {!Scratch} buffers on hot query paths. *)
