(* Fixed-capacity top-k selection as a binary min-heap over
   (score, id) with a total, deterministic order: entry A is kept over
   entry B when A.score > B.score, or the scores tie and A.id < B.id.
   The root is therefore the *worst* kept entry — the admission
   threshold — and [insert] on a full heap replaces the root only when
   the candidate strictly beats it under that order.  Equal (score, id)
   pairs never arise from the search pipeline (ids are distinct LCA
   node ids), but the order handles them anyway: the incumbent wins. *)

type 'a node = { score : float; id : int; payload : 'a }

type 'a t = {
  capacity : int;
  mutable filled : int;
  (* Physical storage is allocated lazily on the first insert so the
     empty heap needs no dummy payload. *)
  mutable heap : 'a node array;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Topheap.create: capacity must be >= 1";
  { capacity; filled = 0; heap = [||] }

let capacity t = t.capacity
let length t = t.filled
let is_full t = t.filled = t.capacity

(* [worse a b]: a loses to b — a would be evicted before b. *)
let worse a b = a.score < b.score || (a.score = b.score && a.id > b.id)

let min t = if t.filled = 0 then None else Some t.heap.(0)
let min_score t = if t.filled = 0 then neg_infinity else t.heap.(0).score

let admits t ~score ~id =
  t.filled < t.capacity
  ||
  let r = t.heap.(0) in
  score > r.score || (score = r.score && id < r.id)

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if worse h.(i) h.(p) then begin
      let tmp = h.(i) in
      h.(i) <- h.(p);
      h.(p) <- tmp;
      sift_up h p
    end
  end

let rec sift_down h size i =
  let l = (2 * i) + 1 in
  if l < size then begin
    let r = l + 1 in
    let worst = if worse h.(l) h.(i) then l else i in
    let worst = if r < size && worse h.(r) h.(worst) then r else worst in
    if worst <> i then begin
      let tmp = h.(i) in
      h.(i) <- h.(worst);
      h.(worst) <- tmp;
      sift_down h size worst
    end
  end

let insert t ~score ~id payload =
  let n = { score; id; payload } in
  if t.filled < t.capacity then begin
    if Array.length t.heap = 0 then t.heap <- Array.make t.capacity n;
    t.heap.(t.filled) <- n;
    t.filled <- t.filled + 1;
    sift_up t.heap (t.filled - 1);
    true
  end
  else if worse t.heap.(0) n then begin
    t.heap.(0) <- n;
    sift_down t.heap t.filled 0;
    true
  end
  else false

(* Best-first: score descending, ties by id ascending. *)
let to_sorted_list t =
  let kept = Array.sub t.heap 0 t.filled in
  Array.sort (fun a b -> if worse a b then 1 else if worse b a then -1 else 0) kept;
  Array.fold_right (fun n acc -> (n.score, n.id, n.payload) :: acc) kept []
