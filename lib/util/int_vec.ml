type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }
let length v = v.len

let push v x =
  if v.len = Array.length v.data then begin
    let data = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i = if i < 0 || i >= v.len then invalid_arg "Int_vec: index"
let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x
let clear v = v.len <- 0
let to_array v = Array.sub v.data 0 v.len

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let last v = if v.len = 0 then invalid_arg "Int_vec.last: empty" else v.data.(v.len - 1)

let pop v =
  if v.len = 0 then invalid_arg "Int_vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

(* In-place heapsort + compaction: sorting a scratch buffer must not
   allocate (the whole point of the buffer is to keep the query path off
   the minor heap), which rules out [Array.sort] on a [to_array] copy. *)
let sort_uniq v =
  let a = v.data and n = v.len in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec sift_down root limit =
    let child = (2 * root) + 1 in
    if child < limit then begin
      let child =
        if child + 1 < limit && a.(child + 1) > a.(child) then child + 1
        else child
      in
      if a.(child) > a.(root) then begin
        swap root child;
        sift_down child limit
      end
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift_down i n
  done;
  for i = n - 1 downto 1 do
    swap 0 i;
    sift_down 0 i
  done;
  if n > 0 then begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    v.len <- !w
  end
