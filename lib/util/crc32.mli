(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), pure OCaml.

    Used by {!Xks_index.Persist} to checksum on-disk index files so
    truncation and bit flips are detected before corrupt postings are
    served. *)

val sub : string -> pos:int -> len:int -> int32
(** CRC-32 of [len] bytes of [s] starting at [pos].
    @raise Invalid_argument if the range is outside [s]. *)

val string : string -> int32
(** CRC-32 of the whole string. *)

val to_le_bytes : int32 -> string
(** The checksum as 4 little-endian bytes (the on-disk encoding). *)

val of_le_bytes : string -> pos:int -> int32
(** Read 4 little-endian bytes back as a checksum.
    @raise Invalid_argument if fewer than 4 bytes remain at [pos]. *)
