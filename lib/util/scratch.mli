(** Per-domain reusable scratch buffers.

    [with_ints f] runs [f] with an {!Int_vec} checked out of the calling
    domain's free list (cleared, capacity retained from earlier uses)
    and returns it on exit, including on exceptions.  Nesting is fine —
    an inner call checks out a further buffer.  The buffer must not
    escape [f] ({!Int_vec.to_array} a copy if the result must outlive
    the call) and must not be handed to another domain.

    Purpose: keep per-query intermediate id collections off the minor
    heap.  Under multiple domains every minor collection is a
    stop-the-world barrier across all domains, so allocation that is
    harmless sequentially is exactly what makes parallel batches
    anti-scale. *)

val with_ints : (Int_vec.t -> 'a) -> 'a
