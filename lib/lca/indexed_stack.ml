module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey
module Bsearch = Xks_util.Bsearch
module Trace = Xks_trace.Trace

type entry = {
  node : Tree.node;  (* an ELCA candidate: a full container *)
  mutable child_ranges : (int * int) list;
      (* preorder ranges of candidate children already determined, most
         recent first; disjoint, each inside [node]'s range *)
}

(* Does [u]'s subtree hold, for every keyword, a witness outside every
   full container strictly below [u]?  [child_ranges] only accelerates the
   scan; correctness rests on the [fc] validation of each probe. *)
let is_elca ?budget doc postings (u : Tree.node) child_ranges =
  let ranges = List.rev child_ranges (* ascending start *) in
  let u_depth = Dewey.depth u.dewey in
  let witness_for posting =
    let rec probe pos =
      Xks_robust.Budget.tick_opt budget 1;
      if pos > u.subtree_end then false
      else
        match Bsearch.first_in_range posting ~lo:pos ~hi:u.subtree_end with
        | None -> false
        | Some x -> (
            (* xkscost: unticked prefix skip over u's disjoint child ranges; probe ticks each probe *)
            match List.find_opt (fun (lo, hi) -> x >= lo && x <= hi) ranges with
            | Some (_, hi) -> probe (hi + 1)
            | None -> (
                match Probe.fc doc postings (Tree.node doc x) with
                | None -> assert false (* no list is empty here *)
                | Some f ->
                    Dewey.depth f.dewey <= u_depth || probe (f.subtree_end + 1)))
    in
    probe u.id
  in
  Array.for_all witness_for postings

let elca ?budget doc postings =
  let k = Array.length postings in
  (* xkscost: unticked k-bounded: one emptiness test per keyword list *)
  if k = 0 || Array.exists (fun s -> Array.length s = 0) postings then []
  else begin
    let s1 = postings.(Probe.smallest_list_index postings) in
    let results = ref [] in
    let stack = ref [] in
    let ancestor_or_self (a : Tree.node) (b : Tree.node) =
      Dewey.is_ancestor_or_self a.dewey b.dewey
    in
    (* Pop [e], emit it if it passes the check, and hand its range to the
       entry below (its ancestor when the stack is non-empty). *)
    let pop_and_check () =
      match !stack with
      | [] -> assert false
      | e :: rest ->
          Trace.incr Trace.Elca_popped;
          (* Ticked so the post-driver drain (and the unwind spine) stays
             under the deadline even when no new occurrence arrives. *)
          Xks_robust.Budget.tick_opt budget 1;
          stack := rest;
          if is_elca ?budget doc postings e.node e.child_ranges then
            results := e.node.id :: !results;
          let range = (e.node.id, e.node.subtree_end) in
          (match rest with
          | parent :: _ -> parent.child_ranges <- range :: parent.child_ranges
          | [] -> ());
          range
    in
    let process v =
      Trace.incr Trace.Nodes_visited;
      Xks_robust.Budget.tick_opt budget 1;
      let x =
        match Probe.fc doc postings (Tree.node doc v) with
        | Some n -> n
        | None -> assert false
      in
      (* Close candidates that are not ancestors of [x]; collect the
         ranges of those lying under [x] (they become [x]'s candidate
         children when the stack empties below them). *)
      let pending = ref [] in
      let rec unwind () =
        match !stack with
        | e :: _ when not (ancestor_or_self e.node x) ->
            let range = pop_and_check () in
            if !stack = [] && ancestor_or_self x e.node then
              pending := range :: !pending;
            unwind ()
        | _ -> ()
      in
      unwind ();
      match !stack with
      | e :: _ when e.node.id = x.id ->
          (* Candidate already open; nothing to add ([pending] is empty:
             anything popped went to this entry). *)
          ()
      | _ ->
          Trace.incr Trace.Elca_pushed;
          stack := { node = x; child_ranges = !pending } :: !stack
    in
    Array.iter process s1;
    while !stack <> [] do
      ignore (pop_and_check ())
    done;
    List.sort Int.compare !results
  end
