(** ELCA computation from posting lists — the paper's [getLCA] stage.

    The Indexed Stack algorithm of Xu & Papakonstantinou (EDBT 2008)
    computes all ELCA ("interesting LCA") nodes without touching the tree
    beyond the posting lists: for each occurrence [v] of the rarest
    keyword the ELCA candidate [elca_can v] is the deepest full container
    of [v] (every ELCA arises this way); candidates nest along root-leaf
    paths as [v] sweeps left to right, so a stack tracks the open ones.
    When a candidate [u] is popped it is checked: for every keyword there
    must be a witness occurrence in [u]'s subtree lying outside every full
    container strictly below [u].  The check probes the posting list with
    binary searches, first skipping the ranges of [u]'s already-determined
    candidate children, and validates each probe [x] by requiring that
    [fc x] — the deepest full container of [x] — is not strictly below
    [u]; invalid probes skip the whole subtree of [fc x], so each probe
    either succeeds or jumps over a maximal full container.

    Results are returned in document order. *)

val is_elca :
  ?budget:Xks_robust.Budget.t ->
  Xks_xml.Tree.t ->
  int array array -> Xks_xml.Tree.node -> (int * int) list -> bool
(** [is_elca doc postings u child_ranges] is the pop-time witness check:
    does [u]'s subtree hold, for every keyword, an occurrence outside
    every full container strictly below [u]?  [child_ranges] are the
    preorder ranges of [u]'s already-determined candidate children
    (most recent first) — they only accelerate the probe scan; passing
    [[]] is correct but slower.  [budget] is ticked once per witness
    probe, so a deadline interrupts even a root-sized scan.  Shared
    with {!Topk}, whose streaming driver must agree with {!elca}
    exactly. *)

val elca :
  ?budget:Xks_robust.Budget.t -> Xks_xml.Tree.t -> int array array -> int list
(** Ids of all ELCA nodes for the query whose posting lists are given,
    in document order.  Empty when some keyword has no occurrence or the
    query is empty.  [budget] is ticked once per occurrence of the
    rarest keyword (the algorithm's outer loop), once per pop (so the
    post-driver drain of the open stack is interruptible) and once per
    witness probe (via {!is_elca}).
    @raise Xks_robust.Budget.Exhausted when the budget runs out. *)
