module Tree = Xks_xml.Tree
module Klist = Xks_index.Klist

type masks = { own : int array; sub : int array }

let compute_masks doc postings =
  let n = Tree.size doc in
  let k = Array.length postings in
  let own = Array.make n Klist.empty in
  (* xkscost: unticked pre-charged: run_query charges every posting entry up front; one mask write per entry *)
  Array.iteri
    (fun i posting ->
      let bit = Klist.singleton ~k i in
      (* xkscost: unticked pre-charged: same posting sweep, inner loop *)
      Array.iter (fun id -> own.(id) <- Klist.union own.(id) bit) posting)
    postings;
  let sub = Array.copy own in
  (* Children have larger preorder ids than their parent, so a descending
     pass folds every subtree into its root. *)
  for id = n - 1 downto 1 do
    let parent = (Tree.node doc id).parent in
    sub.(parent) <- Klist.union sub.(parent) sub.(id)
  done;
  { own; sub }

let full_containers doc postings =
  let k = Array.length postings in
  let { sub; _ } = compute_masks doc postings in
  let acc = ref [] in
  (* xkscost: unticked baseline: O(n) reference scan; the pipeline charges per result after it, and production serving uses the indexed stack *)
  for id = Tree.size doc - 1 downto 0 do
    if Klist.is_full ~k sub.(id) then acc := id :: !acc
  done;
  !acc

let slca doc postings =
  let k = Array.length postings in
  let { sub; _ } = compute_masks doc postings in
  let has_full_child (node : Tree.node) =
    (* xkscost: unticked baseline: one child-mask read per child, amortised O(n) across the scan *)
    Array.exists (fun (c : Tree.node) -> Klist.is_full ~k sub.(c.id)) node.children
  in
  (* xkscost: unticked baseline: O(n) reference scan; the pipeline charges per result after it, and production serving uses the indexed stack *)
  Tree.fold
    (fun acc node ->
      if Klist.is_full ~k sub.(node.id) && not (has_full_child node) then
        node.id :: acc
      else acc)
    [] doc
  |> List.rev

let elca doc postings =
  let k = Array.length postings in
  let { own; sub } = compute_masks doc postings in
  (* A keyword occurrence under child [c] survives the exclusion iff [c]'s
     subtree is not a full container (containment is upward-monotone, so a
     full container below [c] would make [c] full as well). *)
  let is_elca (node : Tree.node) =
    Klist.is_full ~k sub.(node.id)
    &&
    let surviving =
      (* xkscost: unticked baseline: one child-mask fold per node, amortised O(n) across the scan *)
      Array.fold_left
        (fun acc (c : Tree.node) ->
          if Klist.is_full ~k sub.(c.id) then acc
          else Klist.union acc sub.(c.id))
        own.(node.id) node.children
    in
    Klist.is_full ~k surviving
  in
  (* xkscost: unticked baseline: O(n) reference scan; the pipeline charges per result after it, and production serving uses the indexed stack *)
  Tree.fold (fun acc node -> if is_elca node then node.id :: acc else acc) [] doc
  |> List.rev
