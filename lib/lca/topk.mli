(** Top-k ELCA retrieval with score-bounded early termination.

    The same scan as {!Indexed_stack.elca} — identical driver list,
    stack discipline and witness check — except that every popped
    fragment is scored on the fly (from posting-range counts, under the
    RTF dispatch semantics: each keyword occurrence belongs to the
    deepest emitted LCA containing it) and only the best k are kept in
    a {!Xks_util.Topheap}.  The scan stops early once the heap is full
    and an upper bound over the still-unconsumed keyword occurrences is
    strictly below the heap's minimum score: the knodes of distinct
    RTFs partition keyword occurrences, so [avail_i = df_i − Σ emitted
    tf_i] caps any future fragment's tf, and [bound] (monotone in each
    component) caps its score.  The surviving candidates are exactly
    the k best fragments of the full enumeration under
    (score desc, LCA id asc) — {!Xks_check} pins the equivalence.

    The scoring callbacks live with the caller ({!Xks_core.Rank}); this
    module only promises to call them with exact RTF term frequencies
    and a true per-keyword availability vector. *)

type candidate = {
  lca : int;  (** ELCA node id *)
  score : float;
  tf : int array;  (** per-keyword dispatched-occurrence counts *)
  knodes : int array;
      (** sorted, distinct keyword-node ids dispatched to this LCA —
          identical to the full pipeline's {!Xks_core.Rtf.t}[.knodes] *)
}

type outcome = {
  top : candidate list;  (** best-first: score desc, ties by LCA id asc *)
  early_exit : bool;  (** the scan stopped with work remaining *)
  scanned : int;  (** driver-list occurrences processed *)
}

val run :
  ?budget:Xks_robust.Budget.t ->
  k:int ->
  score:(lca:int -> tf:int array -> float) ->
  bound:(avail:int array -> float) ->
  Xks_xml.Tree.t ->
  int array array ->
  outcome
(** [run ~k ~score ~bound doc postings] keeps the k best fragments.
    [score] must be monotone nondecreasing in every [tf] component and
    [bound ~avail] must be an upper bound on [score] over all tf vectors
    with [tf_i <= avail_i] — {!Xks_core.Rank} provides both; early
    termination is unsound otherwise.  [budget] ticks once per driver
    occurrence, as {!Indexed_stack.elca} does.  Ticks the
    [topk.early_exit] / [topk.pruned_postings] trace counters when the
    bound fires.
    @raise Invalid_argument when [k < 1].
    @raise Xks_robust.Budget.Exhausted when the budget runs out. *)
