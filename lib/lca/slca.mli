(** SLCA computation from posting lists.

    The Indexed Lookup Eager algorithm of Xu & Papakonstantinou (SIGMOD
    2005): for each occurrence [v] of the rarest keyword, the candidate
    [slca_can v] is the deepest full container of [v] (computed with
    [lm]/[rm] probes on the other lists); the SLCAs are the candidates
    that are not ancestors of other candidates.  Time
    [O(k |S1| d log |S|)] where [S1] is the smallest list.

    This powers the {e original} MaxMatch baseline, which works on SLCA
    fragments only. *)

val indexed_lookup_eager :
  ?budget:Xks_robust.Budget.t -> Xks_xml.Tree.t -> int array array -> int list
(** Ids of all SLCA nodes, in document order.  Empty when some keyword has
    no occurrence (or the query is empty).  [budget] is ticked once per
    occurrence of the rarest keyword, so a request deadline interrupts
    the candidate sweep.
    @raise Xks_robust.Budget.Exhausted when the budget runs out. *)

val filter_minimal : Xks_xml.Tree.t -> int list -> int list
(** [filter_minimal doc ids] keeps the ids with no other id strictly
    inside their subtree.  [ids] must be sorted and duplicate-free
    (document order); used by every candidate-based SLCA algorithm. *)
