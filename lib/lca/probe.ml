module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey
module Bsearch = Xks_util.Bsearch

let ancestor_at doc (n : Tree.node) d =
  if d < 0 || d > Dewey.depth n.dewey then invalid_arg "Probe.ancestor_at";
  let rec up (n : Tree.node) =
    if Dewey.depth n.dewey = d then n
    else
      match Tree.parent_node doc n with
      | Some p -> up p
      | None -> assert false (* d >= 0 = depth of the root *)
  in
  up n

let closest_lca_depth doc posting (x : Tree.node) =
  if Array.length posting = 0 then None
  else
    let depth_with id = Dewey.lca_depth x.dewey (Tree.node doc id).dewey in
    let left = Bsearch.left_match posting x.id in
    let right = Bsearch.right_match posting x.id in
    match (left, right) with
    | None, None -> None
    | Some l, None -> Some (depth_with l)
    | None, Some r -> Some (depth_with r)
    | Some l, Some r -> Some (max (depth_with l) (depth_with r))

let fc doc postings (x : Tree.node) =
  (* xkscost: unticked k-bounded: two binary-search probes per keyword list; every caller ticks per candidate before probing *)
  let rec loop i depth =
    if i = Array.length postings then Some depth
    else
      match closest_lca_depth doc postings.(i) x with
      | None -> None
      | Some d -> loop (i + 1) (min depth d)
  in
  match loop 0 (Dewey.depth x.dewey) with
  | None -> None
  | Some depth -> Some (ancestor_at doc x depth)

let smallest_list_index postings =
  if Array.length postings = 0 then invalid_arg "Probe.smallest_list_index";
  let best = ref 0 in
  (* xkscost: unticked k-bounded: one length read per keyword list *)
  for i = 1 to Array.length postings - 1 do
    if Array.length postings.(i) < Array.length postings.(!best) then best := i
  done;
  !best
