module Tree = Xks_xml.Tree

(* In document order, a candidate has a candidate strictly below it iff
   its immediate successor is in its subtree (preorder ranges are
   intervals), so one linear sweep removes all non-minimal ones. *)
let rec filter_minimal doc = function
  | [] -> []
  | [ x ] -> [ x ]
  | x :: (y :: _ as rest) ->
      if y <= (Tree.node doc x).subtree_end then filter_minimal doc rest
      else x :: filter_minimal doc rest

let indexed_lookup_eager doc postings =
  let k = Array.length postings in
  if k = 0 || Array.exists (fun s -> Array.length s = 0) postings then []
  else begin
    let s1 = postings.(Probe.smallest_list_index postings) in
    (* Candidate per occurrence of the rarest keyword: its deepest full
       container.  [fc] cannot return [None] here since no list is
       empty. *)
    let candidate v =
      Xks_trace.Trace.incr Xks_trace.Trace.Nodes_visited;
      match Probe.fc doc postings (Tree.node doc v) with
      | Some n -> n.id
      | None -> assert false
    in
    let cands =
      Array.to_list (Array.map candidate s1) |> List.sort_uniq Int.compare
    in
    filter_minimal doc cands
  end
