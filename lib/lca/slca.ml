module Tree = Xks_xml.Tree

(* In document order, a candidate has a candidate strictly below it iff
   its immediate successor is in its subtree (preorder ranges are
   intervals), so one linear sweep removes all non-minimal ones. *)
let rec filter_minimal doc = function
  | [] -> []
  | [ x ] -> [ x ]
  | x :: (y :: _ as rest) ->
      if y <= (Tree.node doc x).subtree_end then filter_minimal doc rest
      else x :: filter_minimal doc rest

let indexed_lookup_eager ?budget doc postings =
  let k = Array.length postings in
  (* xkscost: unticked k-bounded: one emptiness test per keyword list *)
  if k = 0 || Array.exists (fun s -> Array.length s = 0) postings then []
  else begin
    let s1 = postings.(Probe.smallest_list_index postings) in
    (* Candidate per occurrence of the rarest keyword: its deepest full
       container.  [fc] cannot return [None] here since no list is
       empty. *)
    let candidate v =
      Xks_trace.Trace.incr Xks_trace.Trace.Nodes_visited;
      Xks_robust.Budget.tick_opt budget 1;
      match Probe.fc doc postings (Tree.node doc v) with
      | Some n -> n.id
      | None -> assert false
    in
    (* Collect candidates in a per-domain scratch buffer and sort in
       place: the intermediate array + list of the old
       [Array.map |> to_list |> sort_uniq] chain was per-query minor-GC
       churn, which under multiple domains means stop-the-world
       barriers.  Minimality filtering reads straight from the sorted
       buffer (same test as [filter_minimal]: a candidate survives iff
       its successor is outside its subtree). *)
    Xks_util.Scratch.with_ints (fun buf ->
        Array.iter (fun v -> Xks_util.Int_vec.push buf (candidate v)) s1;
        Xks_util.Int_vec.sort_uniq buf;
        let n = Xks_util.Int_vec.length buf in
        let acc = ref [] in
        for i = n - 1 downto 0 do
          let x = Xks_util.Int_vec.get buf i in
          if
            i = n - 1
            || Xks_util.Int_vec.get buf (i + 1) > (Tree.node doc x).subtree_end
          then acc := x :: !acc
        done;
        !acc)
  end
