(* Top-k ELCA retrieval with score-bounded early termination.

   The scan is [Indexed_stack.elca] verbatim — same driver list, same
   stack discipline, same [is_elca] witness check — with two additions:

   1. Each stack entry also tracks [passed]: the preorder ranges of the
      *maximal* already-emitted ELCAs strictly inside it.  When an entry
      pops and passes the witness check, its per-keyword term frequency
      under the RTF dispatch semantics (every keyword occurrence goes to
      the deepest emitted LCA containing it) is

        tf_i = |posting_i ∩ range(u)| − Σ over passed |posting_i ∩ r|

      which is exact because any ELCA nested in [u] is pushed and popped
      while [u] is still on the stack, so [u]'s emitted-descendant set
      is final at its own pop.  A passed child contributes its own range
      to its parent's [passed]; a failed child contributes the ranges it
      had collected (they stay maximal and disjoint).

   2. A consumed-occurrence upper bound drives early exit.  Let
      [consumed_i] be the total tf_i over emitted fragments; the knodes
      of distinct RTFs partition keyword occurrences, so any fragment
      emitted later satisfies tf_i <= avail_i = df_i − consumed_i, and
      [bound ~avail] (monotone in each tf) caps its score.  Once the
      heap holds k fragments and the bound is *strictly* below the
      heap's minimum score, no unseen fragment can enter the top k —
      strictness matters because score ties break toward the smaller
      LCA id, and ancestors (smaller preorder ids) pop late.  The
      check runs at two sites:

      - after each driver occurrence, where success skips the rest of
        the driver scan and the whole drain (all future fragments are
        covered by the bound), and

      - after each drain pop, where success skips the remaining spine.
        This is where the exit usually fires in practice: popping the
        last container of a keyword drives its avail to zero, and the
        bound collapses to -inf — every occurrence of that keyword is
        dispatched, so no surviving ancestor (in particular the root,
        whose witness scan over its accumulated child ranges is the
        single most expensive pop) can still be an ELCA.

      [Topk_pruned_postings] records the total avail at exit time: the
      keyword occurrences the exit freed us from ever dispatching. *)

module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey
module Bsearch = Xks_util.Bsearch
module Topheap = Xks_util.Topheap
module Trace = Xks_trace.Trace

type candidate = {
  lca : int;
  score : float;
  tf : int array;
  knodes : int array;
}

type outcome = { top : candidate list; early_exit : bool; scanned : int }

type entry = {
  node : Tree.node;
  mutable child_ranges : (int * int) list;
  mutable passed : (int * int) list;
      (* maximal emitted-ELCA ranges inside [node], disjoint *)
}

let run ?budget ~k ~score ~bound doc postings =
  if k < 1 then invalid_arg "Topk.run: k must be >= 1";
  let nk = Array.length postings in
  (* xkscost: unticked k-bounded: one emptiness test per keyword list *)
  if nk = 0 || Array.exists (fun s -> Array.length s = 0) postings then
    { top = []; early_exit = false; scanned = 0 }
  else begin
    let s1 = postings.(Probe.smallest_list_index postings) in
    let n1 = Array.length s1 in
    let heap = Topheap.create ~capacity:k in
    let consumed = Array.make nk 0 in
    let stack = ref [] in
    (* Emitted-ELCA ranges not (yet) inside any open stack entry: when
       the stack empties, the popped entry's accounted ranges survive
       here until an entry containing them is pushed — possibly much
       later and much shallower (e.g. the document root, whose tf must
       still exclude every occurrence dispatched to earlier subtrees).
       Orphans are always disjoint from every open entry's range, so
       only a newly pushed entry can absorb them. *)
    let orphans = ref [] in
    (* [orphans] and every [passed] list stay sorted descending by
       range start: ranges are handed up / orphaned in document order,
       so prepending preserves the order, and the ranges a new entry
       [x] contains are exactly the prefix with [lo >= x.id] (closed
       ranges end before the scan position inside [x], so they cannot
       start after [x.subtree_end]).  That makes claiming them a
       prefix take — amortised O(1) per push, where a predicate
       partition over the whole list is quadratic across the scan. *)
    let split_inside cutoff ranges =
      (* xkscost: unticked amortised prefix take: each range is claimed at most once per handoff, and every handoff happens under a ticked pop/push *)
      let rec go acc = function
        | ((lo, _) as r) :: rest when lo >= cutoff -> go (r :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      go [] ranges
    in
    let ancestor_or_self (a : Tree.node) (b : Tree.node) =
      Dewey.is_ancestor_or_self a.dewey b.dewey
    in
    let count_dispatched posting (u : Tree.node) passed =
      List.fold_left
        (fun acc (lo, hi) ->
          (* One binary search per passed range: ticked so an emit over a
             long accounting list is interruptible. *)
          Xks_robust.Budget.tick_opt budget 1;
          acc - Bsearch.count_in_range posting ~lo ~hi)
        (Bsearch.count_in_range posting ~lo:u.id ~hi:u.subtree_end)
        passed
    in
    let emit (u : Tree.node) passed =
      let tf = Array.map (fun p -> count_dispatched p u passed) postings in
      Array.iteri (fun i c -> consumed.(i) <- consumed.(i) + c) tf;
      let s = score ~lca:u.id ~tf in
      ignore (Topheap.insert heap ~score:s ~id:u.id (tf, passed) : bool)
    in
    (* Pop [e]; emit it if it passes the check; hand its range (and the
       emitted ranges it accounts for) to the entry below. *)
    let pop_and_check () =
      match !stack with
      | [] -> assert false
      | e :: rest ->
          Trace.incr Trace.Elca_popped;
          (* Ticked so the post-driver drain (and the unwind spine) stays
             under the deadline even when no new occurrence arrives. *)
          Xks_robust.Budget.tick_opt budget 1;
          stack := rest;
          let range = (e.node.id, e.node.subtree_end) in
          let passed_up =
            if Indexed_stack.is_elca ?budget doc postings e.node e.child_ranges
            then begin
              emit e.node e.passed;
              [ range ]
            end
            else e.passed
          in
          (match rest with
          | parent :: _ ->
              parent.child_ranges <- range :: parent.child_ranges;
              (* xkscost: allow list-append passed_up is [range] or the popped entry's own ranges, handed up exactly once — amortised O(1) per pop *)
              parent.passed <- passed_up @ parent.passed
          (* xkscost: allow list-append same single handoff as above, to the orphan pool *)
          | [] -> orphans := passed_up @ !orphans);
          range
    in
    let process v =
      Trace.incr Trace.Nodes_visited;
      Xks_robust.Budget.tick_opt budget 1;
      let x =
        match Probe.fc doc postings (Tree.node doc v) with
        | Some n -> n
        | None -> assert false
      in
      let pending = ref [] in
      let rec unwind () =
        match !stack with
        | e :: _ when not (ancestor_or_self e.node x) ->
            let range = pop_and_check () in
            if !stack = [] && ancestor_or_self x e.node then
              pending := range :: !pending;
            unwind ()
        | _ -> ()
      in
      unwind ();
      match !stack with
      | e :: _ when e.node.id = x.id -> ()
      | _ ->
          Trace.incr Trace.Elca_pushed;
          (* Absorb the orphaned emitted ranges that [x] contains: [x]
             is the first open entry to contain them (any lower entry
             pushed since they were orphaned would have absorbed them
             already, and entries below [x] are its ancestors). *)
          let absorbed, outside = split_inside x.id !orphans in
          orphans := outside;
          (* Steal from the nearest open ancestor the emitted ranges
             [x] contains: they popped before [x] opened, so they were
             handed to what was then the stack top — a node above [x].
             Applied at every push, this keeps each range at the
             deepest open entry containing it, which is exactly what
             the tf subtraction in [emit] needs.  (At most one source
             is nonempty: an open ancestor would itself have absorbed
             any orphan inside [x].) *)
          let inside =
            match !stack with
            | parent :: _ ->
                let mine, theirs = split_inside x.id parent.passed in
                parent.passed <- theirs;
                (* xkscost: allow list-append mine and absorbed are both prefix takes claimed exactly once per range *)
                mine @ absorbed
            | [] -> absorbed
          in
          stack := { node = x; child_ranges = !pending; passed = inside } :: !stack
    in
    let early = ref false in
    (* Work remains (driver tail or un-popped stack entries): see
       whether the bound already rules every future fragment out. *)
    let try_exit () =
      if Topheap.is_full heap then begin
        let avail =
          (* xkscost: unticked k-bounded: one length/counter read per keyword *)
          Array.mapi (fun j p -> Array.length p - consumed.(j)) postings
        in
        if bound ~avail < Topheap.min_score heap then begin
          early := true;
          Trace.incr Trace.Topk_early_exit;
          Trace.add Trace.Topk_pruned_postings
            (* xkscost: unticked k-bounded: sums the k per-keyword avail counters *)
            (Array.fold_left ( + ) 0 avail)
        end
      end
    in
    let i = ref 0 in
    while (not !early) && !i < n1 do
      process s1.(!i);
      incr i;
      if !i < n1 || !stack <> [] then try_exit ()
    done;
    while (not !early) && !stack <> [] do
      ignore (pop_and_check () : int * int);
      if !stack <> [] then try_exit ()
    done;
    stack := [];
    (* Materialise keyword nodes only for the k winners: posting entries
       in the winner's range minus its emitted-descendant ranges, merged
       and deduplicated.  The passed ranges are disjoint, so sorting
       them once lets each posting be filtered in a single merge sweep
       (postings are ascending). *)
    let knodes_of lca_id passed =
      let u = Tree.node doc lca_id in
      let passed =
        List.sort (fun (a, _) (b, _) -> Int.compare a b) passed
      in
      Xks_util.Scratch.with_ints (fun out ->
          Array.iter
            (fun posting ->
              let lo = Bsearch.lower_bound posting u.id in
              let hi = Bsearch.upper_bound posting u.subtree_end in
              let remaining = ref passed in
              for j = lo to hi - 1 do
                (* One posting entry per iteration: ticked so
                   materialising a huge winner subtree is interruptible. *)
                Xks_robust.Budget.tick_opt budget 1;
                let id = posting.(j) in
                (* xkscost: unticked monotone prefix skip over the sorted passed ranges; the enclosing for loop ticks per posting entry *)
                let rec advance = function
                  | (_, b) :: rest when b < id -> advance rest
                  | l -> l
                in
                remaining := advance !remaining;
                match !remaining with
                | (a, _) :: _ when id >= a -> ()
                | (_, _) :: _ | [] -> Xks_util.Int_vec.push out id
              done)
            postings;
          Xks_util.Int_vec.sort_uniq out;
          Xks_util.Int_vec.to_array out)
    in
    let top =
      List.map
        (fun (s, id, (tf, passed)) ->
          { lca = id; score = s; tf; knodes = knodes_of id passed })
        (Topheap.to_sorted_list heap)
    in
    { top; early_exit = !early; scanned = !i }
  end
