module Tree = Xks_xml.Tree
module Bsearch = Xks_util.Bsearch

let slca doc postings =
  let k = Array.length postings in
  (* xkscost: unticked k-bounded: one emptiness test per keyword list *)
  if k = 0 || Array.exists (fun s -> Array.length s = 0) postings then []
  else begin
    let candidates = ref [] in
    (* xkscost: unticked baseline: SLCA cross-check for tests/stress; serving uses Slca.indexed_lookup_eager, which ticks per driver occurrence *)
    let rec step pos =
      (* Heads: the first occurrence of each keyword at or past [pos];
         the step ends when some keyword is exhausted. *)
      (* xkscost: unticked k-bounded: one binary search per keyword list per step *)
      let rec heads i anchor =
        if i = k then Some anchor
        else
          match Bsearch.right_match postings.(i) pos with
          | Some h -> heads (i + 1) (max anchor h)
          | None -> None
      in
      match heads 0 (-1) with
      | None -> ()
      | Some anchor ->
          (match Probe.fc doc postings (Tree.node doc anchor) with
          | Some c -> candidates := c.id :: !candidates
          | None -> assert false (* no list is empty *));
          step (anchor + 1)
    in
    step 0;
    let cands = List.sort_uniq Int.compare !candidates in
    Slca.filter_minimal doc cands
  end
