module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey

let in_range (node : Tree.node) id = id >= node.id && id <= node.subtree_end

let is_full_container doc postings id =
  let node = Tree.node doc id in
  (* xkscost: unticked oracle: brute-force reference used only by tests and the check oracle, never on the serving path *)
  Array.for_all (fun s -> Array.exists (in_range node) s) postings

let full_containers doc postings =
  (* xkscost: unticked oracle: O(n * occurrences) reference, test/check-oracle only *)
  Tree.fold
    (fun acc (n : Tree.node) ->
      if is_full_container doc postings n.id then n.id :: acc else acc)
    [] doc
  |> List.rev

let slca doc postings =
  let fcs = full_containers doc postings in
  let strict_desc a b =
    let na = Tree.node doc a and nb = Tree.node doc b in
    Dewey.is_ancestor na.dewey nb.dewey
  in
  (* xkscost: unticked oracle: quadratic minimality filter, test/check-oracle only *)
  List.filter (fun a -> not (List.exists (fun b -> strict_desc a b) fcs)) fcs

let elca doc postings =
  let fcs = full_containers doc postings in
  let keeps (n : Tree.node) =
    (* Occurrences surviving the exclusion: in the subtree of [n] but not
       in the subtree of any full container strictly below [n]. *)
    let excluded id =
      (* xkscost: unticked oracle: per-occurrence exclusion scan, test/check-oracle only *)
      List.exists
        (fun f ->
          f <> n.id
          && in_range n f
          && in_range (Tree.node doc f) id)
        fcs
    in
    (* xkscost: unticked oracle: witness scan straight off Definition 3, test/check-oracle only *)
    Array.for_all
      (fun s ->
        (* xkscost: unticked oracle: same witness scan, inner occurrence sweep *)
        Array.exists (fun id -> in_range n id && not (excluded id)) s)
      postings
  in
  (* xkscost: unticked oracle: visits every tree node, test/check-oracle only *)
  Tree.fold (fun acc n -> if keeps n then n.id :: acc else acc) [] doc
  |> List.rev

let lca_of_witnesses doc postings =
  let k = Array.length postings in
  (* xkscost: unticked k-bounded: one emptiness test per keyword list *)
  if Array.exists (fun s -> Array.length s = 0) postings || k = 0 then []
  else begin
    let acc = ref [] in
    (* xkscost: unticked oracle: exponential witness enumeration, test/check-oracle only *)
    let rec go i current_lca =
      if i = k then acc := current_lca :: !acc
      else
        (* xkscost: unticked oracle: same witness enumeration, one branch per occurrence *)
        Array.iter
          (fun id ->
            let d = (Tree.node doc id).dewey in
            go (i + 1) (Dewey.lca current_lca d))
          postings.(i)
    in
    (* xkscost: unticked oracle: drives the witness enumeration, test/check-oracle only *)
    Array.iter
      (fun id -> go 1 (Tree.node doc id).dewey)
      postings.(0);
    let ids =
      List.filter_map (fun d ->
          Option.map (fun (n : Tree.node) -> n.id) (Tree.find_by_dewey doc d))
        !acc
    in
    List.sort_uniq Int.compare ids
  end
