module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey
module Klist = Xks_index.Klist

(* The merged stream: every keyword node once, in document order, with
   its query-keyword bitset. *)
let merged_stream postings =
  let k = Array.length postings in
  let masks = Hashtbl.create 256 in
  (* xkscost: unticked baseline: ELCA/SLCA cross-check for tests/stress/bench; serving uses Indexed_stack.elca, which ticks per node *)
  Array.iteri
    (fun i s ->
      let bit = Klist.singleton ~k i in
      (* xkscost: unticked baseline: same posting sweep, inner loop *)
      Array.iter
        (fun id ->
          let m =
            match Hashtbl.find_opt masks id with
            | Some m -> m
            | None -> Klist.empty
          in
          Hashtbl.replace masks id (Klist.union m bit))
        s)
    postings;
  (* xkscost: allow hashtbl-fold runs once to materialise the stream — the iterator argument is evaluated before any loop starts *)
  Hashtbl.fold (fun id m acc -> (id, m) :: acc) masks []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

type entry = {
  node_id : int;
  mutable total : Klist.t;  (* keywords anywhere in the subtree *)
  mutable free : Klist.t;
      (* own content plus subtrees of non-full-container children *)
  mutable slca_below : bool;
}

(* Stack discipline: the path stack always contains at least the root
   while the merged stream is being scanned.  An empty stack here means
   the pop loop over-popped — fail loudly with the Dewey position being
   visited instead of a bare [Failure "hd"]. *)
let stack_top path ~at =
  match path with
  | top :: _ -> top
  | [] ->
      invalid_arg
        (Printf.sprintf
           "Stack_algos: empty path stack while visiting Dewey %s \
            (stack discipline violated)"
           (Dewey.to_string at))

(* Generic driver: scans the merged stream maintaining the path stack;
   [on_pop] sees each finalised entry together with its parent. *)
let scan doc postings ~on_pop =
  let k = Array.length postings in
  (* xkscost: unticked k-bounded: one emptiness test per keyword list *)
  if k = 0 || Array.exists (fun s -> Array.length s = 0) postings then ()
  else begin
    let root_entry =
      { node_id = 0; total = Klist.empty; free = Klist.empty; slca_below = false }
    in
    (* The stack as a growable path; index = depth. *)
    let path = ref [ root_entry ] (* top first; bottom is the root *) in
    let depth () = List.length !path - 1 in
    let pop () =
      match !path with
      | e :: (parent :: _ as rest) ->
          path := rest;
          parent.total <- Klist.union parent.total e.total;
          if not (Klist.is_full ~k e.total) then
            parent.free <- Klist.union parent.free e.total;
          if e.slca_below then parent.slca_below <- true;
          on_pop ~k e ~parent:(Some parent)
      | [ e ] ->
          path := [];
          on_pop ~k e ~parent:None
      | [] -> assert false
    in
    let push_to dewey =
      (* Extend the path with the components of [dewey] beyond the
         current depth (callers ensure the stack is a prefix). *)
      (* xkscost: unticked baseline: each path entry is pushed once per stream step; serving uses Indexed_stack.elca, which ticks per node *)
      for d = depth () to Dewey.depth dewey - 1 do
        let parent = stack_top !path ~at:dewey in
        let comp = Dewey.component dewey d in
        let child = (Tree.node doc parent.node_id).children.(comp) in
        path :=
          { node_id = child.id; total = Klist.empty; free = Klist.empty;
            slca_below = false }
          :: !path
      done
    in
    let visit (id, mask) =
      let dewey = (Tree.node doc id).dewey in
      let common =
        (* Depth up to which the stack already matches [dewey]. *)
        Dewey.lca_depth
          (Tree.node doc (stack_top !path ~at:dewey).node_id).dewey
          dewey
      in
      (* xkscost: unticked baseline: each path entry pops once, amortised by the pushes above *)
      while depth () > common do
        pop ()
      done;
      push_to dewey;
      let top = stack_top !path ~at:dewey in
      top.total <- Klist.union top.total mask;
      top.free <- Klist.union top.free mask
    in
    (* xkscost: unticked baseline: one visit per distinct keyword node; cross-check only, off the serving path *)
    List.iter visit (merged_stream postings);
    (* xkscost: unticked baseline: drains the remaining path spine, at most one pop per pushed entry *)
    while !path <> [] do
      pop ()
    done
  end

let slca doc postings =
  let acc = ref [] in
  scan doc postings ~on_pop:(fun ~k e ~parent ->
      if Klist.is_full ~k e.total && not e.slca_below then begin
        acc := e.node_id :: !acc;
        match parent with Some p -> p.slca_below <- true | None -> ()
      end);
  List.sort Int.compare !acc

let elca doc postings =
  let acc = ref [] in
  scan doc postings ~on_pop:(fun ~k e ~parent:_ ->
      if Klist.is_full ~k e.free then acc := e.node_id :: !acc);
  List.sort Int.compare !acc
