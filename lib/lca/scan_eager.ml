module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey

let slca doc postings =
  let k = Array.length postings in
  (* xkscost: unticked k-bounded: one emptiness test per keyword list *)
  if k = 0 || Array.exists (fun s -> Array.length s = 0) postings then []
  else begin
    let anchor = Probe.smallest_list_index postings in
    let s1 = postings.(anchor) in
    (* One forward cursor per non-anchor list, pointing at the first
       element >= the current anchor occurrence. *)
    let cursors = Array.make k 0 in
    let closest_depth i v_node =
      let s = postings.(i) in
      let n = Array.length s in
      let vid = (v_node : Tree.node).id in
      (* xkscost: unticked baseline: SLCA cross-check for tests/stress; cursors only move forward, amortised one step per occurrence *)
      while cursors.(i) < n && s.(cursors.(i)) < vid do
        cursors.(i) <- cursors.(i) + 1
      done;
      let depth_with id = Dewey.lca_depth v_node.dewey (Tree.node doc id).dewey in
      let right =
        if cursors.(i) < n then Some (depth_with s.(cursors.(i))) else None
      in
      let left =
        if cursors.(i) > 0 then Some (depth_with s.(cursors.(i) - 1)) else None
      in
      match (left, right) with
      | None, None -> assert false (* the list is non-empty *)
      | Some d, None | None, Some d -> d
      | Some l, Some r -> max l r
    in
    let candidate v =
      let v_node = Tree.node doc v in
      let depth = ref (Dewey.depth v_node.dewey) in
      (* xkscost: unticked k-bounded: one cursor probe per keyword list *)
      for i = 0 to k - 1 do
        if i <> anchor then depth := min !depth (closest_depth i v_node)
      done;
      (Probe.ancestor_at doc v_node !depth).id
    in
    let cands =
      (* xkscost: unticked baseline: SLCA cross-check for tests/stress; serving uses Slca.indexed_lookup_eager, which ticks per driver occurrence *)
      Array.to_list (Array.map candidate s1) |> List.sort_uniq Int.compare
    in
    Slca.filter_minimal doc cands
  end
