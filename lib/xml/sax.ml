module Limits = Xks_robust.Limits
module Failpoint = Xks_robust.Failpoint

exception Error of { line : int; col : int; message : string }

type handler = {
  on_start : string -> (string * string) list -> unit;
  on_text : string -> unit;
  on_end : string -> unit;
}

let handler ?(on_start = fun _ _ -> ()) ?(on_text = fun _ -> ())
    ?(on_end = fun _ -> ()) () =
  { on_start; on_text; on_end }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;
  limits : Limits.t;
  mutable n_nodes : int;  (* elements started so far *)
  mutable n_text : int;  (* decoded text/attribute/entity bytes so far *)
  mutable depth : int;  (* current element nesting depth *)
}

let fail st message =
  raise (Error { line = st.line; col = st.pos - st.bol + 1; message })

let limit_fail st limit value max =
  Limits.exceeded ~line:st.line ~col:(st.pos - st.bol + 1) ~limit ~value ~max

let charge_text st n =
  st.n_text <- st.n_text + n;
  if st.n_text > st.limits.Limits.max_text_bytes then
    limit_fail st "max_text_bytes" st.n_text st.limits.Limits.max_text_bytes

let eof st = st.pos >= String.length st.src
let peek st = st.src.[st.pos]

let advance st =
  if st.src.[st.pos] = '\n' then begin
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  end;
  st.pos <- st.pos + 1

let next st =
  if eof st then fail st "unexpected end of input";
  let c = peek st in
  advance st;
  c

let expect st c =
  let g = next st in
  if g <> c then fail st (Printf.sprintf "expected %C, got %C" c g)

let expect_string st s = String.iter (fun c -> expect st c) s
let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if eof st || not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Decode a reference after the '&' has been consumed. *)
let parse_reference st =
  let start = st.pos in
  let rec find () =
    if eof st then fail st "unterminated entity reference"
    else if peek st = ';' then begin
      let body = String.sub st.src start (st.pos - start) in
      advance st;
      body
    end
    else begin
      advance st;
      find ()
    end
  in
  let body = find () in
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ -> (
      let code =
        if String.length body > 1 && body.[0] = '#' then
          let digits = String.sub body 1 (String.length body - 1) in
          if String.length digits > 0 && (digits.[0] = 'x' || digits.[0] = 'X')
          then
            int_of_string_opt
              ("0x" ^ String.sub digits 1 (String.length digits - 1))
          else int_of_string_opt digits
        else None
      in
      match code with
      | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
      | Some _ -> "?" (* non-ASCII references degrade to a placeholder *)
      | None -> fail st (Printf.sprintf "unknown entity &%s;" body))

let parse_attr_value st =
  let quote = next st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted value";
  let buf = Buffer.create 16 in
  let rec loop () =
    let c = next st in
    if c = quote then Buffer.contents buf
    else if c = '&' then begin
      let expansion = parse_reference st in
      charge_text st (String.length expansion);
      Buffer.add_string buf expansion;
      loop ()
    end
    else begin
      charge_text st 1;
      Buffer.add_char buf c;
      loop ()
    end
  in
  loop ()

let parse_attrs st =
  let rec loop n acc =
    skip_space st;
    if eof st then fail st "unterminated tag"
    else
      match peek st with
      | '>' | '/' | '?' -> List.rev acc
      | _ ->
          if n + 1 > st.limits.Limits.max_attrs then
            limit_fail st "max_attrs" (n + 1) st.limits.Limits.max_attrs;
          let name = parse_name st in
          skip_space st;
          expect st '=';
          skip_space st;
          let value = parse_attr_value st in
          loop (n + 1) ((name, value) :: acc)
  in
  loop 0 []

let skip_until st stop =
  let n = String.length stop in
  let rec loop () =
    if st.pos + n > String.length st.src then fail st ("unterminated " ^ stop)
    else if String.sub st.src st.pos n = stop then
      for _ = 1 to n do
        advance st
      done
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_doctype st =
  let depth = ref 1 in
  while !depth > 0 do
    match next st with
    | '<' -> incr depth
    | '>' -> decr depth
    | '[' ->
        let bd = ref 1 in
        while !bd > 0 do
          match next st with
          | '[' -> incr bd
          | ']' -> decr bd
          | _ -> ()
        done
    | _ -> ()
  done

(* Element content after the opening tag; [stack]-free: recursion depth
   mirrors element depth, as in the DOM parser. *)
let rec parse_content h st name =
  let text = Buffer.create 16 in
  let flush_text () =
    if Buffer.length text > 0 then begin
      h.on_text (Buffer.contents text);
      Buffer.clear text
    end
  in
  let rec loop () =
    if eof st then fail st (Printf.sprintf "unterminated element <%s>" name)
    else if peek st = '<' then begin
      advance st;
      if eof st then fail st "dangling '<'"
      else if peek st = '/' then begin
        flush_text ();
        advance st;
        let closing = parse_name st in
        if closing <> name then
          fail st
            (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing
               name);
        skip_space st;
        expect st '>';
        h.on_end name
      end
      else if looking_at st "!--" then begin
        expect_string st "!--";
        skip_until st "-->";
        loop ()
      end
      else if looking_at st "![CDATA[" then begin
        expect_string st "![CDATA[";
        let start = st.pos in
        let rec cdata () =
          if looking_at st "]]>" then begin
            charge_text st (st.pos - start);
            Buffer.add_string text (String.sub st.src start (st.pos - start));
            expect_string st "]]>"
          end
          else if eof st then fail st "unterminated CDATA section"
          else begin
            advance st;
            cdata ()
          end
        in
        cdata ();
        loop ()
      end
      else if peek st = '?' then begin
        advance st;
        skip_until st "?>";
        loop ()
      end
      else begin
        flush_text ();
        parse_element h st;
        loop ()
      end
    end
    else if peek st = '&' then begin
      advance st;
      let expansion = parse_reference st in
      charge_text st (String.length expansion);
      Buffer.add_string text expansion;
      loop ()
    end
    else begin
      charge_text st 1;
      Buffer.add_char text (peek st);
      advance st;
      loop ()
    end
  in
  loop ()

(* An element whose '<' has been consumed. *)
and parse_element h st =
  st.n_nodes <- st.n_nodes + 1;
  if st.n_nodes > st.limits.Limits.max_nodes then
    limit_fail st "max_nodes" st.n_nodes st.limits.Limits.max_nodes;
  st.depth <- st.depth + 1;
  if st.depth > st.limits.Limits.max_depth then
    limit_fail st "max_depth" st.depth st.limits.Limits.max_depth;
  let name = parse_name st in
  let attrs = parse_attrs st in
  if eof st then fail st "unterminated tag";
  (match next st with
  | '/' ->
      expect st '>';
      h.on_start name attrs;
      h.on_end name
  | '>' ->
      h.on_start name attrs;
      parse_content h st name
  | c -> fail st (Printf.sprintf "unexpected %C in tag" c));
  st.depth <- st.depth - 1

let parse_prolog st =
  let rec loop () =
    skip_space st;
    if eof st then fail st "no root element"
    else if looking_at st "<?" then begin
      expect_string st "<?";
      skip_until st "?>";
      loop ()
    end
    else if looking_at st "<!--" then begin
      expect_string st "<!--";
      skip_until st "-->";
      loop ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      expect_string st "<!";
      skip_doctype st;
      loop ()
    end
    else if peek st = '<' then advance st
    else fail st "expected '<'"
  in
  loop ()

let parse_string ?(limits = Limits.default) h src =
  let st =
    { src; pos = 0; line = 1; bol = 0; limits; n_nodes = 0; n_text = 0;
      depth = 0 }
  in
  parse_prolog st;
  parse_element h st;
  let rec epilogue () =
    skip_space st;
    if not (eof st) then
      if looking_at st "<!--" then begin
        expect_string st "<!--";
        skip_until st "-->";
        epilogue ()
      end
      else if looking_at st "<?" then begin
        expect_string st "<?";
        skip_until st "?>";
        epilogue ()
      end
      else fail st "content after the root element"
  in
  epilogue ()

let read_site = "sax.read"

let parse_file ?limits h path =
  parse_string ?limits h (Failpoint.read_file ~site:read_site path)

let error_to_string = function
  | Error { line; col; message } ->
      Some
        (Printf.sprintf "XML parse error at line %d, column %d: %s" line col
           message)
  | _ -> None
