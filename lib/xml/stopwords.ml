(* The classic English stop-word list (the one behind Lucene's default
   English analyzer, extended with the common function words of the
   syger.com list the paper points to). *)
let words =
  [
    "a"; "about"; "above"; "after"; "again"; "against"; "all"; "am"; "an";
    "and"; "any"; "are"; "aren"; "as"; "at"; "be"; "because"; "been";
    "before"; "being"; "below"; "between"; "both"; "but"; "by"; "can";
    "cannot"; "could"; "couldn"; "did"; "didn"; "do"; "does"; "doesn";
    "doing"; "don"; "down"; "during"; "each"; "few"; "for"; "from";
    "further"; "had"; "hadn"; "has"; "hasn"; "have"; "haven"; "having";
    "he"; "her"; "here"; "hers"; "herself"; "him"; "himself"; "his"; "how";
    "i"; "if"; "in"; "into"; "is"; "isn"; "it"; "its"; "itself"; "let";
    "me"; "more"; "most"; "mustn"; "my"; "myself"; "no"; "nor"; "not";
    "of"; "off"; "on"; "once"; "only"; "or"; "other"; "ought"; "our";
    "ours"; "ourselves"; "out"; "over"; "own"; "same"; "shan"; "she";
    "should"; "shouldn"; "so"; "some"; "such"; "than"; "that"; "the";
    "their"; "theirs"; "them"; "themselves"; "then"; "there"; "these";
    "they"; "this"; "those"; "through"; "to"; "too"; "under"; "until";
    "up"; "very"; "was"; "wasn"; "we"; "were"; "weren"; "what"; "when";
    "where"; "which"; "while"; "who"; "whom"; "why"; "with"; "won";
    "would"; "wouldn"; "you"; "your"; "yours"; "yourself"; "yourselves";
    "s"; "t"; "ll"; "re"; "ve"; "d"; "m";
  ]

let set =
  (* Populated once at module initialisation, only read (Hashtbl.mem)
     afterwards — safe to share across domains. *)
  (* xkslint: allow module-state *)
  let h = Hashtbl.create 256 in
  List.iter (fun w -> Hashtbl.replace h w ()) words;
  h

let is_stopword w = Hashtbl.mem set w
let all () = words
