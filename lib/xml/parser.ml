exception Error of { line : int; col : int; message : string }

(* The DOM view is a fold over the SAX event stream: a stack of open
   elements accumulates text and children until the matching end tag. *)

type frame = {
  f_label : string;
  f_attrs : (string * string) list;
  f_text : Buffer.t;
  mutable f_children : Tree.builder list;  (* reversed *)
}

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let trim_text s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do
    incr i
  done;
  while !j >= !i && is_space s.[!j] do
    decr j
  done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

let builder_of_events feed =
  let stack = ref [] in
  let root = ref None in
  let on_start name attrs =
    stack :=
      { f_label = name; f_attrs = attrs; f_text = Buffer.create 16;
        f_children = [] }
      :: !stack
  in
  let on_text s =
    match !stack with
    | frame :: _ -> Buffer.add_string frame.f_text s
    | [] -> assert false (* SAX only emits text inside the root element *)
  in
  let on_end _name =
    match !stack with
    | frame :: rest ->
        let built =
          Tree.elem ~attrs:frame.f_attrs
            ~text:(trim_text (Buffer.contents frame.f_text))
            frame.f_label
            (List.rev frame.f_children)
        in
        (match rest with
        | parent :: _ -> parent.f_children <- built :: parent.f_children
        | [] -> root := Some built);
        stack := rest
    | [] -> assert false (* ends pair with starts *)
  in
  feed (Sax.handler ~on_start ~on_text ~on_end ());
  match !root with
  | Some b -> b
  | None -> assert false (* SAX guarantees exactly one root element *)

let translate f =
  try f () with
  | Sax.Error { line; col; message } -> raise (Error { line; col; message })

let parse_string ?limits src =
  translate (fun () ->
      Tree.build (builder_of_events (fun h -> Sax.parse_string ?limits h src)))

let parse_file ?limits path =
  translate (fun () ->
      Tree.build (builder_of_events (fun h -> Sax.parse_file ?limits h path)))

let error_to_string = function
  | Error { line; col; message } ->
      Some
        (Printf.sprintf "XML parse error at line %d, column %d: %s" line col
           message)
  | _ -> None
