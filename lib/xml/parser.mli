(** XML parser.

    A small, dependency-free XML parser sufficient for the document
    classes the paper processes (DBLP, XMark): elements, attributes,
    character data, CDATA sections, comments, processing instructions and
    the XML declaration, with the five predefined entities and numeric
    character references.  DTDs are skipped, namespaces are kept verbatim
    in names.

    Mixed content is flattened: all character data directly under an
    element is concatenated (whitespace-trimmed at both ends) into the
    element's [text], preserving the paper's model in which a node has a
    label and an optional value. *)

exception Error of { line : int; col : int; message : string }
(** Raised on malformed input, with 1-based position. *)

val parse_string : ?limits:Xks_robust.Limits.t -> string -> Tree.t
(** [parse_string s] parses a complete XML document.
    @raise Error on malformed input.
    @raise Xks_robust.Limits.Limit_exceeded when [limits] (default
    {!Xks_robust.Limits.default}) is crossed — depth, attribute, text
    or node bombs are rejected with position info rather than parsed. *)

val parse_file : ?limits:Xks_robust.Limits.t -> string -> Tree.t
(** [parse_file path] reads and parses [path].
    @raise Error on malformed input.
    @raise Xks_robust.Limits.Limit_exceeded when [limits] is crossed.
    @raise Sys_error if the file cannot be read. *)

val error_to_string : exn -> string option
(** Render an {!Error}; [None] for other exceptions. *)
