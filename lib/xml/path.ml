type axis = Child | Descendant
type nametest = Name of string | Any

type pred =
  | Attr_exists of string
  | Attr_eq of string * string
  | Child_text_eq of string * string
  | Self_text_eq of string
  | Position of int

type step = { axis : axis; test : nametest; preds : pred list }
type t = step list

(* --- parsing --- *)

type cursor = { src : string; mutable pos : int }

let fail c msg =
  invalid_arg
    (Printf.sprintf "Path.parse: %s at offset %d in %S" msg c.pos c.src)

let eof c = c.pos >= String.length c.src
let peek c = c.src.[c.pos]
let advance c = c.pos <- c.pos + 1

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.src && String.sub c.src c.pos n = s

let eat c s =
  if looking_at c s then c.pos <- c.pos + String.length s
  else fail c (Printf.sprintf "expected %S" s)

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = '.'

let parse_name c =
  let start = c.pos in
  while (not (eof c)) && is_name_char (peek c) do
    advance c
  done;
  if c.pos = start then fail c "expected a name";
  String.sub c.src start (c.pos - start)

let parse_quoted c =
  if eof c || peek c <> '\'' then fail c "expected a quoted value";
  advance c;
  let start = c.pos in
  while (not (eof c)) && peek c <> '\'' do
    advance c
  done;
  if eof c then fail c "unterminated quoted value";
  let v = String.sub c.src start (c.pos - start) in
  advance c;
  v

let parse_pred c =
  eat c "[";
  let pred =
    if eof c then fail c "empty predicate"
    else if peek c = '@' then begin
      advance c;
      let name = parse_name c in
      if (not (eof c)) && peek c = '=' then begin
        advance c;
        Attr_eq (name, parse_quoted c)
      end
      else Attr_exists name
    end
    else if peek c = '.' then begin
      advance c;
      eat c "=";
      Self_text_eq (parse_quoted c)
    end
    else if peek c >= '0' && peek c <= '9' then begin
      let start = c.pos in
      while (not (eof c)) && peek c >= '0' && peek c <= '9' do
        advance c
      done;
      let n = int_of_string (String.sub c.src start (c.pos - start)) in
      if n < 1 then fail c "positions are 1-based";
      Position n
    end
    else begin
      let name = parse_name c in
      eat c "=";
      Child_text_eq (name, parse_quoted c)
    end
  in
  eat c "]";
  pred

let parse_step c axis =
  let test =
    if (not (eof c)) && peek c = '*' then begin
      advance c;
      Any
    end
    else Name (parse_name c)
  in
  let preds = ref [] in
  while (not (eof c)) && peek c = '[' do
    preds := parse_pred c :: !preds
  done;
  { axis; test; preds = List.rev !preds }

let parse src =
  let c = { src; pos = 0 } in
  if eof c || peek c <> '/' then fail c "paths must start with '/' or '//'";
  let steps = ref [] in
  while not (eof c) do
    let axis =
      if looking_at c "//" then begin
        eat c "//";
        Descendant
      end
      else begin
        eat c "/";
        Child
      end
    in
    steps := parse_step c axis :: !steps
  done;
  match List.rev !steps with
  | [] -> fail c "empty path"
  | steps -> steps

let pred_to_string = function
  | Attr_exists a -> Printf.sprintf "[@%s]" a
  | Attr_eq (a, v) -> Printf.sprintf "[@%s='%s']" a v
  | Child_text_eq (n, v) -> Printf.sprintf "[%s='%s']" n v
  | Self_text_eq v -> Printf.sprintf "[.='%s']" v
  | Position n -> Printf.sprintf "[%d]" n

let to_string steps =
  String.concat ""
    (List.map
       (fun s ->
         (match s.axis with Child -> "/" | Descendant -> "//")
         ^ (match s.test with Name n -> n | Any -> "*")
         ^ String.concat "" (List.map pred_to_string s.preds))
       steps)

(* --- evaluation --- *)

let name_matches doc test (n : Tree.node) =
  match test with Any -> true | Name name -> Tree.label_name doc n = name

let non_position_pred doc (n : Tree.node) = function
  | Attr_exists a -> List.mem_assoc a n.attrs
  | Attr_eq (a, v) -> (
      match List.assoc_opt a n.attrs with
      | Some value -> String.equal value v
      | None -> false)
  | Child_text_eq (name, v) ->
      Array.exists
        (fun (c : Tree.node) ->
          Tree.label_name doc c = name && String.equal c.text v)
        n.children
  | Self_text_eq v -> String.equal n.text v
  | Position _ -> true (* handled separately, per parent group *)

(* Apply one predicate to candidates grouped by parent (XPath position
   semantics: the index counts matches under the same parent). *)
let apply_pred doc pred candidates =
  match pred with
  | Position k ->
      let seen = Hashtbl.create 8 in
      List.filter
        (fun (n : Tree.node) ->
          let count =
            match Hashtbl.find_opt seen n.parent with Some c -> c | None -> 0
          in
          Hashtbl.replace seen n.parent (count + 1);
          count + 1 = k)
        candidates
  | (Attr_exists _ | Attr_eq _ | Child_text_eq _ | Self_text_eq _) as p ->
      List.filter (fun n -> non_position_pred doc n p) candidates

let dedup_sorted nodes =
  let sorted =
    List.sort (fun (a : Tree.node) b -> Int.compare a.id b.id) nodes
  in
  let rec uniq = function
    | (a : Tree.node) :: (b :: _ as rest) ->
        if a.id = b.id then uniq rest else a :: uniq rest
    | l -> l
  in
  uniq sorted

let eval doc steps =
  (* The context starts at a virtual super-root whose only child is the
     root element, so "/a" tests the root element's name. *)
  let initial = `Super in
  let children_of = function
    | `Super -> [ Tree.root doc ]
    | `Node (n : Tree.node) -> Array.to_list n.children
  in
  let descendants_of ctx =
    match ctx with
    | `Super -> Tree.fold (fun acc n -> n :: acc) [] doc |> List.rev
    | `Node (n : Tree.node) ->
        List.init (n.subtree_end - n.id) (fun i -> Tree.node doc (n.id + 1 + i))
  in
  let step_once ctxs step =
    let candidates =
      List.concat_map
        (fun ctx ->
          (match step.axis with
          | Child -> children_of ctx
          | Descendant -> descendants_of ctx)
          |> List.filter (name_matches doc step.test))
        ctxs
      |> dedup_sorted
    in
    List.fold_left (fun cs p -> apply_pred doc p cs) candidates step.preds
  in
  let final =
    List.fold_left
      (fun ctxs step ->
        List.map (fun n -> `Node n) (step_once ctxs step))
      [ initial ] steps
  in
  dedup_sorted
    (List.map (function `Node n -> n | `Super -> assert false) final)

let eval_ids doc steps = List.map (fun (n : Tree.node) -> n.id) (eval doc steps)
