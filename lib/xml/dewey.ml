type t = int array

let root = [||]

let of_array a =
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Dewey.of_array: negative component")
    a;
  Array.copy a

let of_list l = of_array (Array.of_list l)
let to_list = Array.to_list

let child d i =
  if i < 0 then invalid_arg "Dewey.child: negative rank";
  let n = Array.length d in
  let r = Array.make (n + 1) i in
  Array.blit d 0 r 0 n;
  r

let parent d =
  let n = Array.length d in
  if n = 0 then None else Some (Array.sub d 0 (n - 1))

let depth = Array.length

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if Int.equal i la then if Int.equal i lb then 0 else -1
    else if Int.equal i lb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let equal a b = compare a b = 0

let is_ancestor_or_self a d =
  let la = Array.length a and ld = Array.length d in
  Int.compare la ld <= 0
  &&
  let rec loop i = Int.equal i la || (Int.equal a.(i) d.(i) && loop (i + 1)) in
  loop 0

let is_ancestor a d =
  Int.compare (Array.length a) (Array.length d) < 0 && is_ancestor_or_self a d

let lca_depth a b =
  let n = Int.min (Array.length a) (Array.length b) in
  (* Plain int comparisons in the scan loop: both operands are array
     indices, so the polymorphic specialisation is exact and the bounds
     check reads better than an Int.compare dance. *)
  (* xkslint: allow poly-compare *)
  let rec loop i = if i < n && Int.equal a.(i) b.(i) then loop (i + 1) else i in
  loop 0

let lca a b = Array.sub a 0 (lca_depth a b)

let lca_list = function
  | [] -> invalid_arg "Dewey.lca_list: empty list"
  | d :: ds -> List.fold_left lca d ds

let prefix d n =
  if n < 0 || Int.compare n (Array.length d) > 0 then invalid_arg "Dewey.prefix";
  Array.sub d 0 n

let component d i = d.(i)

let to_string d =
  let b = Buffer.create (2 * (Array.length d + 1)) in
  Buffer.add_char b '0';
  Array.iter
    (fun c ->
      Buffer.add_char b '.';
      Buffer.add_string b (string_of_int c))
    d;
  Buffer.contents b

let of_string s =
  match String.split_on_char '.' s with
  | "0" :: rest ->
      of_list
        (List.map
           (fun p ->
             match int_of_string_opt p with
             | Some c when c >= 0 -> c
             | Some _ | None -> invalid_arg "Dewey.of_string")
           rest)
  | _ -> invalid_arg "Dewey.of_string"

let pp fmt d = Format.pp_print_string fmt (to_string d)
