(** Streaming (SAX-style) XML parsing.

    Emits begin-element / text / end-element events through callbacks
    without materialising a tree — the same event stream {!Parser} builds
    its {!Tree.t} from.  Use this to scan documents whose tree would be
    the dominant memory cost (e.g. counting words, shredding straight
    into an index).

    The full input text is held in memory (no incremental refill); what
    streaming saves is the tree, typically several times the text size.

    Supported syntax is exactly {!Parser}'s: elements, attributes,
    character data with the predefined entities and numeric references,
    CDATA, comments, processing instructions, an optional DOCTYPE
    (skipped).

    Parsing is governed by {!Xks_robust.Limits}: nesting depth,
    attribute count, decoded text bytes and element count are capped
    (default {!Xks_robust.Limits.default}) so adversarial inputs fail
    with a structured {!Xks_robust.Limits.Limit_exceeded} instead of
    exhausting the stack or heap. *)

exception Error of { line : int; col : int; message : string }
(** Raised on malformed input, with 1-based position. *)

type handler = {
  on_start : string -> (string * string) list -> unit;
      (** element name and attributes, at every opening (or
          self-closing) tag *)
  on_text : string -> unit;
      (** one call per character-data or CDATA segment, decoded,
          untrimmed; never called with [""] *)
  on_end : string -> unit;  (** element name, at every closing tag *)
}

val handler :
  ?on_start:(string -> (string * string) list -> unit) ->
  ?on_text:(string -> unit) -> ?on_end:(string -> unit) -> unit -> handler
(** A handler with the given callbacks; omitted ones do nothing. *)

val parse_string : ?limits:Xks_robust.Limits.t -> handler -> string -> unit
(** Scan a complete document, firing events in document order.
    @raise Error on malformed input.
    @raise Xks_robust.Limits.Limit_exceeded when [limits] (default
    {!Xks_robust.Limits.default}) is crossed. *)

val parse_file : ?limits:Xks_robust.Limits.t -> handler -> string -> unit
(** @raise Error on malformed input.
    @raise Xks_robust.Limits.Limit_exceeded when [limits] is crossed.
    @raise Sys_error if the file cannot be read.

    The file bytes pass through the {!Xks_robust.Failpoint} site
    {!read_site}, so tests can inject truncation or I/O errors. *)

val read_site : string
(** The failpoint site name for file reads, ["sax.read"]. *)

val error_to_string : exn -> string option
(** Render an {!Error}; [None] for other exceptions. *)
