type t = int

type table = {
  by_name : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable next : int;
}

let create_table () =
  { by_name = Hashtbl.create 64; names = Array.make 64 ""; next = 0 }

let intern tbl s =
  match Hashtbl.find_opt tbl.by_name s with
  | Some id -> id
  | None ->
      let id = tbl.next in
      if Int.equal id (Array.length tbl.names) then begin
        let names = Array.make (2 * id) "" in
        Array.blit tbl.names 0 names 0 id;
        tbl.names <- names
      end;
      tbl.names.(id) <- s;
      tbl.next <- id + 1;
      Hashtbl.add tbl.by_name s id;
      id

let find tbl s = Hashtbl.find_opt tbl.by_name s

let name tbl id =
  if id < 0 || Int.compare id tbl.next >= 0 then
    invalid_arg "Label.name: unknown id";
  tbl.names.(id)

let count tbl = tbl.next
let equal = Int.equal
let compare = Int.compare
