(** BM25-style relevance scoring and the top-k early-termination bound.

    Scores a fragment from statistics already in hand: per-keyword
    document frequencies ({!Query.t}[.dfs], fetched once by
    {!Query.make}), the corpus pivot ({!Query.t}[.avg_df]) and the
    fragment's term-frequency vector (how many dispatched keyword nodes
    match each query keyword).  Nodes play the role of BM25's documents:
    [idf_i = ln (1 + (N − df_i + 0.5) / (df_i + 0.5))] with [N] the node
    count, and each keyword contributes a saturating, monotone
    nondecreasing function of its tf.  Monotonicity is load-bearing:
    {!bound} caps the score of {e any} fragment whose tf vector is
    componentwise at most [avail], which is what makes
    {!Xks_lca.Topk.run}'s early exit safe (DESIGN.md §5g derives it).

    The total order on hits is (score descending, LCA id ascending) —
    equal-score fragments resolve to Dewey document order. *)

type params = { k1 : float;  (** saturation, [>= 0] *) b : float  (** pivot strength, in [[0, 1]] *) }

val default_params : params
(** [{k1 = 1.2; b = 0.75}] — the textbook BM25 defaults. *)

type weights
(** Per-query scoring weights: one idf per keyword plus the saturation
    coefficient.  Build once per query, score many fragments. *)

val weights : ?params:params -> Query.t -> weights
(** @raise Invalid_argument when [k1 < 0] or [b] is outside [[0, 1]]. *)

val idf : nodes:int -> df:int -> float
(** The raw idf term (exposed for tests): nonnegative, decreasing
    in [df]. *)

val contribution : weights -> int -> int -> float
(** [contribution w i tf]: keyword [i]'s share for term frequency [tf].
    [0] when [tf <= 0]; monotone nondecreasing in [tf]. *)

val score_tf : weights -> int array -> float
(** Sum of {!contribution} over a per-keyword tf vector. *)

val tf_of_rtf : Query.t -> Rtf.t -> int array
(** The RTF's tf vector, from the query's own postings (the index is
    not consulted): [tf.(i)] is how many of [rtf.knodes] lie in
    posting [i]. *)

val score_rtf : weights -> Query.t -> Rtf.t -> float
(** [score_tf w (tf_of_rtf q rtf)] — the scorer both the streaming
    top-k driver and the full-enumeration oracle agree on. *)

val bound : weights -> avail:int array -> float
(** Upper bound on {!score_tf} over every tf vector componentwise
    [<= avail]; [neg_infinity] when some component is [<= 0] (every
    fragment needs at least one node per keyword). *)
