(** Relaxed Tightest Fragments — the [getRTF] stage of Algorithm 1.

    Given the interesting LCA nodes (from [getLCA]) in document order,
    every keyword node is dispatched to the {e deepest} LCA node that is
    its ancestor-or-self ("the last RTF in LCAs whose root is the ancestor
    of or the same as d").  Keyword nodes under no LCA node belong to no
    partition and are dropped.  The raw RTF of an LCA node is then its
    keyword nodes plus all nodes on the paths to the LCA root — the
    fragments Definition 2 characterises. *)

type t = {
  lca : int;  (** id of the RTF's LCA root *)
  knodes : int array;  (** sorted ids of the keyword nodes dispatched here *)
}

val get_rtfs : ?budget:Xks_robust.Budget.t -> Query.t -> int list -> t list
(** [get_rtfs q lcas] dispatches the keyword nodes of [q] over the
    document-ordered LCA ids [lcas].  RTFs come back in document order of
    their LCA; an LCA that receives no keyword node yields an RTF with an
    empty [knodes] (cannot happen when [lcas] are full containers).
    [budget] is charged one tick per keyword node dispatched.
    @raise Xks_robust.Budget.Exhausted when the budget runs out. *)

val raw_fragment : Query.t -> t -> Fragment.t
(** The unpruned RTF: keyword nodes plus connecting paths up to the
    LCA. *)

val keyword_node_ids : ?budget:Xks_robust.Budget.t -> Query.t -> int array
(** All keyword nodes of the query (union of posting lists), sorted.
    [budget] is ticked once per posting occurrence merged, so a deadline
    interrupts the union itself.
    @raise Xks_robust.Budget.Exhausted when the budget runs out. *)
