module Klist = Xks_index.Klist
module Cid = Xks_index.Cid

(* Children of [info] surviving Definition 4, document order preserved
   within each label group.

   Note a deliberate deviation from the paper's pseudocode: Algorithm 1
   keeps one [usedCIDs] set per label group, which would also discard a
   child whose content feature collides with a sibling of a {e
   different} keyword set; Definition 4's rule 2(b) compares contents
   only among siblings with {e equal} keyword sets, so content features
   are tracked per keyword set here.  EXPERIMENTS.md discusses the
   discrepancy; test_prune.ml pins the behaviour. *)
let valid_children (info : Node_info.info) =
  let keep_of_group (g : Node_info.label_group) =
    if g.counter = 1 then g.group_children
    else begin
      let used_cids_by_knum = Hashtbl.create 4 in
      let cid_used knum c =
        match Hashtbl.find_opt used_cids_by_knum knum with
        | Some cids -> List.exists (Cid.equal c) !cids
        | None -> false
      in
      let record knum c =
        match Hashtbl.find_opt used_cids_by_knum knum with
        | Some cids -> cids := c :: !cids
        | None -> Hashtbl.add used_cids_by_knum knum (ref [ c ])
      in
      List.filter
        (fun (ch : Node_info.info) ->
          if Hashtbl.mem used_cids_by_knum ch.klist then
            if cid_used ch.klist ch.cid then false
            else begin
              record ch.klist ch.cid;
              true
            end
          else if Klist.covered_by_any ch.klist g.chklist then false
          else begin
            record ch.klist ch.cid;
            true
          end)
        g.group_children
    end
  in
  List.concat_map keep_of_group (Node_info.label_groups info)

(* Children surviving MaxMatch's contributor test: no sibling (any label)
   with a strictly larger keyword set. *)
let contributor_children (info : Node_info.info) =
  let all_knums =
    List.map (fun (c : Node_info.info) -> c.klist) info.rtf_children
    |> List.sort_uniq Int.compare |> Array.of_list
  in
  List.filter
    (fun (ch : Node_info.info) -> not (Klist.covered_by_any ch.klist all_knums))
    info.rtf_children

let collect select t =
  let members = ref [] in
  let rec go (info : Node_info.info) =
    members := info.id :: !members;
    Xks_trace.Trace.incr Xks_trace.Trace.Frag_nodes_kept;
    let kept = select info in
    Xks_trace.Trace.add Xks_trace.Trace.Frag_nodes_pruned
      (List.length info.rtf_children - List.length kept);
    List.iter go kept
  in
  let root = Node_info.root t in
  go root;
  Fragment.make ~root:root.id ~members:!members

let valid_contributor t = collect valid_children t
let contributor t = collect contributor_children t
let keep_all t = collect (fun (i : Node_info.info) -> i.rtf_children) t
