module Budget = Xks_robust.Budget
module Trace = Xks_trace.Trace

type lca_algorithm = Elca_indexed_stack | Elca_tree_scan | Slca_only
type pruning = Valid_contributor | Contributor | No_pruning

type result = {
  query : Query.t;
  lcas : int list;
  rtfs : Rtf.t list;
  fragments : Fragment.t list;
}

let get_lcas ?budget lca (q : Query.t) =
  if not (Query.has_results q) then []
  else
    match lca with
    | Elca_indexed_stack -> Xks_lca.Indexed_stack.elca ?budget q.doc q.postings
    | Elca_tree_scan ->
        let lcas = Xks_lca.Tree_scan.elca q.doc q.postings in
        Budget.tick_opt budget (List.length lcas);
        lcas
    | Slca_only ->
        (* Ticked per occurrence of the rarest keyword inside the sweep —
           strictly finer than the old per-result charge, and a deadline
           now interrupts the sweep itself. *)
        Xks_lca.Slca.indexed_lookup_eager ?budget q.doc q.postings

(* Prune every RTF, optionally striping the work over several domains;
   pruning touches only immutable query state and RTF-local tables, so
   the parallel run is observationally identical.  A budgeted run is
   always sequential: the budget counter is mutable shared state. *)
let prune_all ?cid_mode ?budget ~domains q pruning rtfs =
  let prune (rtf : Rtf.t) =
    Budget.tick_opt budget (1 + Array.length rtf.knodes);
    let info = Node_info.construct ?cid_mode q rtf in
    match pruning with
    | Valid_contributor -> Prune.valid_contributor info
    | Contributor -> Prune.contributor info
    | No_pruning -> Prune.keep_all info
  in
  let domains = if budget = None then domains else 1 in
  let n = List.length rtfs in
  if domains <= 1 || n < 2 * domains then List.map prune rtfs
  else begin
    let input = Array.of_list rtfs in
    let output = Array.make n None in
    let worker stripe () =
      let i = ref stripe in
      while !i < n do
        output.(!i) <- Some (prune input.(!i));
        i := !i + domains
      done
    in
    let spawned =
      List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function Some f -> f | None -> assert false (* all stripes ran *))
         output)
  end

let run_query ?cid_mode ?(domains = 1) ?budget ~lca ~pruning q =
  (* getKeywordNodes already happened in [Query.make]; charge its cost
     (the posting entries the query holds) up front so oversized queries
     exhaust a node budget before any LCA work starts. *)
  Budget.tick_opt budget
    (Array.fold_left (fun acc p -> acc + Array.length p) 0 q.Query.postings);
  let lcas = Trace.with_span "lca" (fun () -> get_lcas ?budget lca q) in
  let rtfs = Trace.with_span "rtf" (fun () -> Rtf.get_rtfs ?budget q lcas) in
  { query = q; lcas; rtfs;
    fragments =
      Trace.with_span "prune" (fun () ->
          prune_all ?cid_mode ?budget ~domains q pruning rtfs) }

let run ?cid_mode ~lca ~pruning idx ws =
  run_query ?cid_mode ~lca ~pruning (Query.make idx ws)
