module Tree = Xks_xml.Tree

type t = { lca : int; knodes : int array }

(* Union of all posting lists.  The lists are already sorted, so a
   k-way merge into a per-domain scratch buffer produces the sorted,
   deduplicated union directly — the previous cons-everything-then-
   [List.sort_uniq] version allocated a list cell per occurrence on
   every query, which is minor-GC pressure the multicore batch path
   cannot afford (each minor collection stops all domains). *)
let keyword_node_ids ?budget (q : Query.t) =
  let postings = q.postings in
  let k = Array.length postings in
  let heads = Array.make (max 1 k) 0 in
  Xks_util.Scratch.with_ints (fun out ->
      let exhausted = ref false in
      let last = ref min_int in
      while not !exhausted do
        (* One merge step per posting occurrence: ticked so a deadline
           interrupts the union itself, not just the later dispatch. *)
        Xks_robust.Budget.tick_opt budget 1;
        let best = ref (-1) in
        (* xkscost: unticked k-bounded: one head comparison per keyword list *)
        for i = 0 to k - 1 do
          if heads.(i) < Array.length postings.(i) then
            let v = postings.(i).(heads.(i)) in
            if !best < 0 || v < postings.(!best).(heads.(!best)) then best := i
        done;
        match !best with
        | -1 -> exhausted := true
        | i ->
            let v = postings.(i).(heads.(i)) in
            heads.(i) <- heads.(i) + 1;
            if v <> !last then begin
              Xks_util.Int_vec.push out v;
              last := v
            end
      done;
      Xks_util.Int_vec.to_array out)

let get_rtfs ?budget (q : Query.t) lcas =
  let doc = q.doc in
  let knodes = keyword_node_ids ?budget q in
  let buckets = List.map (fun a -> (a, Xks_util.Int_vec.create ())) lcas in
  (* Sweep keyword nodes in document order, keeping a stack of the LCA
     intervals that contain the current position; the top of the stack is
     the deepest LCA ancestor. *)
  let stack = ref [] in
  let remaining = ref buckets in
  let dispatch id =
    Xks_robust.Budget.tick_opt budget 1;
    (* Open the LCA intervals starting at or before [id]. *)
    (* xkscost: unticked amortised: each LCA interval is opened exactly once across the sweep; dispatch ticks per keyword node *)
    let rec open_intervals () =
      match !remaining with
      | ((a, _) as entry) :: rest when a <= id ->
          remaining := rest;
          stack := entry :: !stack;
          open_intervals ()
      | _ -> ()
    in
    open_intervals ();
    (* Close the intervals that ended before [id]. *)
    (* xkscost: unticked amortised: each open interval is closed exactly once across the sweep; dispatch ticks per keyword node *)
    let rec close_intervals () =
      match !stack with
      | (a, _) :: rest when (Tree.node doc a).subtree_end < id ->
          stack := rest;
          close_intervals ()
      | _ -> ()
    in
    close_intervals ();
    match !stack with
    | (_, bucket) :: _ -> Xks_util.Int_vec.push bucket id
    | [] -> () (* keyword node under no LCA: not part of any partition *)
  in
  Array.iter dispatch knodes;
  List.map
    (fun (a, bucket) -> { lca = a; knodes = Xks_util.Int_vec.to_array bucket })
    buckets

let raw_fragment (q : Query.t) { lca; knodes } =
  let doc = q.doc in
  let members = ref [] in
  let add_path id =
    let rec up id =
      if id <> lca then begin
        members := id :: !members;
        up (Tree.node doc id).parent
      end
    in
    up id
  in
  Array.iter add_path knodes;
  Fragment.make ~root:lca ~members:!members
