module Tree = Xks_xml.Tree

type t = { lca : int; knodes : int array }

let keyword_node_ids (q : Query.t) =
  let all =
    Array.fold_left
      (fun acc posting -> Array.fold_left (fun acc id -> id :: acc) acc posting)
      [] q.postings
  in
  Array.of_list (List.sort_uniq Int.compare all)

let get_rtfs ?budget (q : Query.t) lcas =
  let doc = q.doc in
  let knodes = keyword_node_ids q in
  Xks_robust.Budget.tick_opt budget (Array.length knodes);
  let buckets = List.map (fun a -> (a, Xks_util.Int_vec.create ())) lcas in
  (* Sweep keyword nodes in document order, keeping a stack of the LCA
     intervals that contain the current position; the top of the stack is
     the deepest LCA ancestor. *)
  let stack = ref [] in
  let remaining = ref buckets in
  let dispatch id =
    (* Open the LCA intervals starting at or before [id]. *)
    let rec open_intervals () =
      match !remaining with
      | ((a, _) as entry) :: rest when a <= id ->
          remaining := rest;
          stack := entry :: !stack;
          open_intervals ()
      | _ -> ()
    in
    open_intervals ();
    (* Close the intervals that ended before [id]. *)
    let rec close_intervals () =
      match !stack with
      | (a, _) :: rest when (Tree.node doc a).subtree_end < id ->
          stack := rest;
          close_intervals ()
      | _ -> ()
    in
    close_intervals ();
    match !stack with
    | (_, bucket) :: _ -> Xks_util.Int_vec.push bucket id
    | [] -> () (* keyword node under no LCA: not part of any partition *)
  in
  Array.iter dispatch knodes;
  List.map
    (fun (a, bucket) -> { lca = a; knodes = Xks_util.Int_vec.to_array bucket })
    buckets

let raw_fragment (q : Query.t) { lca; knodes } =
  let doc = q.doc in
  let members = ref [] in
  let add_path id =
    let rec up id =
      if id <> lca then begin
        members := id :: !members;
        up (Tree.node doc id).parent
      end
    in
    up id
  in
  Array.iter add_path knodes;
  Fragment.make ~root:lca ~members:!members
