(** High-level search engine facade — the public entry point.

    Wraps document loading, indexing, algorithm selection and result
    rendering:

    {[
      let engine = Engine.of_file "catalog.xml" in
      let hits = Engine.search engine [ "xml"; "keyword"; "search" ] in
      List.iter (fun h -> print_string (Engine.render engine h)) hits
    ]}

    Serving untrusted traffic, two robustness hooks apply
    ({!Xks_robust}): document loading is capped by ingestion
    {!Xks_robust.Limits}, and {!search} accepts a {!Xks_robust.Budget}
    under which an expensive query degrades to a cheaper algorithm
    instead of running away — see {!hit.degraded}. *)

type t

type algorithm =
  | Validrtf  (** the paper's algorithm (default) *)
  | Maxmatch  (** revised MaxMatch — same RTFs, contributor pruning *)
  | Maxmatch_original  (** VLDB'08 MaxMatch — SLCA fragments only *)

type rank_mode = [ `Heuristic | `Bm25 | `Doc ]
(** Hit ordering: [`Heuristic] (default) is {!Ranking}'s structural
    score; [`Bm25] is {!Rank}'s BM25 over posting statistics — with
    [?k] on ValidRTF it enables the streaming top-k scan with
    score-bounded early termination ({!Xks_lca.Topk}); [`Doc] returns
    hits in document order of their LCA. *)

type hit = {
  fragment : Fragment.t;
  rtf : Rtf.t;
  score : float;
  is_slca : bool;  (** whether the fragment root is an SLCA node *)
  degraded : Xks_robust.Budget.reason option;
      (** [None] for a full-fidelity answer; [Some r] when the query
          budget ran out and the hits come from a cheaper algorithm
          further down the ladder (see {!search}) *)
}

val of_doc : Xks_xml.Tree.t -> t
(** Index a document already in memory. *)

val of_index : Xks_index.Inverted.t -> t
(** Adopt an already-built index (e.g. {!Xks_index.Persist.load}) and
    its document. *)

val of_file : ?limits:Xks_robust.Limits.t -> string -> t
(** Parse and index an XML file.
    @raise Xks_xml.Parser.Error on malformed XML.
    @raise Xks_robust.Limits.Limit_exceeded when [limits] (default
    {!Xks_robust.Limits.default}) is crossed. *)

val of_string : ?limits:Xks_robust.Limits.t -> string -> t
(** Parse and index an XML document given as a string. *)

val doc : t -> Xks_xml.Tree.t
val index : t -> Xks_index.Inverted.t

val id : t -> int
(** A process-unique identity, fresh for every constructed engine
    (including {!of_index} over a reloaded index).  {!Xks_exec.Cache}
    keys entries by it so results cached for one engine are never served
    for another — rebuilding or reloading an index invalidates the old
    entries by construction. *)

type search_result = {
  hits : hit list;
  degraded : Xks_robust.Budget.reason option;
      (** the first exhaustion reason of a degraded run — carried even
          when [hits] is empty, which the per-hit tag cannot express *)
}

val search_result :
  ?algorithm:algorithm -> ?cid_mode:Xks_index.Cid.mode -> ?rank:rank_mode ->
  ?k:int -> ?budget:Xks_robust.Budget.t -> t -> string list -> search_result
(** Like {!search}, returning the hits together with the degradation
    status of the whole run.  Prefer this over {!degraded_reason} when a
    degraded query may legitimately return zero hits: a budgeted query
    over a keyword that does not occur degrades (the budget charges the
    other keywords' postings) yet produces an empty hit list, and only
    [degraded] keeps that signal.  A degraded run also records exactly
    one {!Xks_trace.Trace.degradation} event on the current trace. *)

val search :
  ?algorithm:algorithm -> ?cid_mode:Xks_index.Cid.mode -> ?rank:rank_mode ->
  ?k:int -> ?budget:Xks_robust.Budget.t -> t -> string list -> hit list
(** [search e ws] runs the query.  Keywords are deduplicated and sorted
    rarest-first (shortest posting list first) before the pipeline runs
    — duplicates and keyword order never change the result set.  Hits
    are ordered by [rank] (default [`Heuristic]).  The empty hit list
    means some keyword does not occur.

    [k] keeps only the best [k] hits.  Under [~rank:`Bm25] on ValidRTF
    this switches to the streaming top-k scan: fragments are scored
    during the ELCA traversal, only the [k] winners are constructed and
    pruned, and the scan terminates early once the per-keyword
    availability bound proves no unseen fragment can enter the top k
    (DESIGN.md §5g) — the result is {e identical} to ranking the full
    enumeration and keeping its k-prefix, ties broken by document
    order.  Under other rank modes (or other algorithms) [k] simply
    truncates the ranked hit list.
    @raise Invalid_argument when [k < 1].

    With a [budget], the run is governed: when it exhausts mid-pipeline
    the engine falls down the ladder ValidRTF → revised MaxMatch →
    SLCA-only, granting each cheaper attempt a renewed node allowance
    under the {e same} deadline; the final SLCA-only attempt runs
    unbudgeted, so a budgeted search always returns.  Degraded hits
    carry [degraded = Some reason] (the first exhaustion).  Without
    [budget] the behaviour (and cost) is exactly the unbudgeted
    pipeline.
    @raise Invalid_argument on an empty query. *)

val degraded_reason : hit list -> Xks_robust.Budget.reason option
(** The degradation tag of a result set ([None] also for the empty
    list — use {!search_result} to distinguish an empty degraded answer
    from an empty full-fidelity one). *)

val run :
  ?algorithm:algorithm -> ?cid_mode:Xks_index.Cid.mode ->
  ?budget:Xks_robust.Budget.t -> t -> string list -> Pipeline.result
(** The raw pipeline result, for callers that need stage outputs.
    Unlike {!search} this does not degrade:
    @raise Xks_robust.Budget.Exhausted when [budget] runs out. *)

val hits_of_result :
  ?rank:rank_mode -> ?k:int -> t -> Pipeline.result -> hit list
(** Turn a pipeline result into scored hits (what {!search} does after
    running the pipeline); exposed for callers that build queries
    themselves, e.g. {!Labeled}.  [`Bm25] here always scores the full
    enumeration ([k] is a plain prefix); hits come back with
    [degraded = None].
    @raise Invalid_argument when [k < 1]. *)

val render : ?xml:bool -> t -> hit -> string
(** Pretty tree view of a hit (or XML when [xml] is [true]). *)

val stats : t -> string
(** One-line document/index statistics. *)
