module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey

type scored = { fragment : Fragment.t; rtf : Rtf.t; score : float }

let score (q : Query.t) (rtf : Rtf.t) frag =
  let root = Tree.node q.doc rtf.lca in
  let depth = float_of_int (Dewey.depth root.dewey) in
  let knode_count =
    (* xkscost: unticked pre-charged: scores RTFs the pipeline already materialised — get_rtfs ticked once per keyword node counted here *)
    Array.fold_left
      (fun acc kn -> if Fragment.mem frag kn then acc + 1 else acc)
      0 rtf.knodes
  in
  let density =
    float_of_int knode_count /. float_of_int (max 1 (Fragment.size frag))
  in
  let coverage = log (1.0 +. float_of_int knode_count) in
  (1.0 +. depth) *. density *. (1.0 +. coverage)

let sort_scored scored =
  List.sort
    (fun a b ->
      let c = Float.compare b.score a.score in
      if c <> 0 then c else Int.compare a.rtf.lca b.rtf.lca)
    scored

let rank_by scorer (result : Pipeline.result) =
  (* xkscost: unticked pre-charged: one scoring pass over the already-budgeted pipeline result, |rtfs| bounded by the ticked LCA sweep *)
  List.map2
    (fun rtf fragment ->
      { fragment; rtf; score = scorer result.query rtf fragment })
    result.rtfs result.fragments
  |> sort_scored

let rank result = rank_by score result

let score_with_prior prior (q : Query.t) (rtf : Rtf.t) frag =
  let structural =
    Elemrank.score prior rtf.lca *. float_of_int (Tree.size q.doc)
  in
  score q rtf frag *. structural

let rank_with_prior prior result = rank_by (score_with_prior prior) result
