module Klist = Xks_index.Klist

type t = { node_count : int; df : string -> int }

let build idx =
  {
    node_count = (Xks_index.Inverted.stats idx).Xks_index.Inverted.nodes;
    (* O(1) posting-length lookup — never fetches the list, never ticks
       [Postings_scanned]. *)
    df = Xks_index.Inverted.df idx;
  }

let idf_of ~node_count df =
  log (float_of_int (node_count + 1) /. float_of_int (df + 1)) +. 1.0

let idf t w = idf_of ~node_count:t.node_count (t.df w)

let fragment_score t (q : Query.t) (rtf : Rtf.t) frag =
  let k = Query.k q in
  (* Query keywords score off the frequencies the query already holds
     ([Query.dfs]); the index is not consulted again. *)
  let idfs = Array.map (idf_of ~node_count:t.node_count) q.dfs in
  (* Term frequency: how many surviving keyword nodes match each query
     keyword. *)
  let tf = Array.make k 0 in
  Array.iter
    (fun kn ->
      if Fragment.mem frag kn then
        List.iter
          (fun i -> tf.(i) <- tf.(i) + 1)
          (Klist.to_indices ~k (Query.node_klist q kn)))
    rtf.knodes;
  let raw = ref 0.0 in
  Array.iteri
    (fun i count ->
      if count > 0 then raw := !raw +. (float_of_int count *. idfs.(i)))
    tf;
  !raw /. (1.0 +. log (float_of_int (max 1 (Fragment.size frag))))

let rank t (result : Pipeline.result) =
  let scored =
    List.map2
      (fun rtf fragment ->
        {
          Ranking.fragment;
          rtf;
          score = fragment_score t result.query rtf fragment;
        })
      result.rtfs result.fragments
  in
  List.sort
    (fun (a : Ranking.scored) b ->
      let c = Float.compare b.score a.score in
      if c <> 0 then c else Int.compare a.rtf.lca b.rtf.lca)
    scored
