(* BM25-style scoring over the statistics the query already holds.

   Nodes play the role of documents: df_i is keyword i's posting length
   (how many nodes contain it — [Query.dfs], fetched once by
   [Query.make]) and N is the document's node count.  A fragment's term
   frequency tf_i is the number of keyword-i nodes its RTF received
   under the dispatch semantics.  The per-keyword contribution is the
   saturating form

     contribution_i(tf) = idf_i * tf * (k1 + 1)
                          / ((1 + k1*b/pivot) * tf + k1*(1 - b))

   with pivot the corpus average posting length ([Query.avg_df]).  For
   tf >= 0 this is monotone nondecreasing in tf (the derivative is
   proportional to k1*(1-b) >= 0; at b = 1 it is constant from tf = 1
   up), which is exactly what the early-termination bound needs:
   contribution_i(avail_i) caps contribution_i(tf) for any tf <=
   avail_i.  Classic BM25's per-document length normalisation has no
   sound position-independent analogue for fragments that do not exist
   yet, so length dampening enters only through the corpus pivot. *)

type params = { k1 : float; b : float }

let default_params = { k1 = 1.2; b = 0.75 }

type weights = {
  params : params;
  idfs : float array;  (* per query keyword *)
  sat : float;  (* 1 + k1*b/pivot: the tf coefficient of the denominator *)
}

let idf ~nodes ~df =
  let n = float_of_int nodes and d = float_of_int df in
  log (1. +. ((n -. d +. 0.5) /. (d +. 0.5)))

let weights ?(params = default_params) (q : Query.t) =
  if not (params.k1 >= 0.) then invalid_arg "Rank.weights: k1 must be >= 0";
  if not (params.b >= 0. && params.b <= 1.) then
    invalid_arg "Rank.weights: b must be in [0, 1]";
  let nodes = Xks_xml.Tree.size q.doc in
  {
    params;
    idfs = Array.map (fun df -> idf ~nodes ~df) q.dfs;
    sat = 1. +. (params.k1 *. params.b /. Float.max 1. q.avg_df);
  }

let contribution w i tf =
  if tf <= 0 then 0.
  else
    let tf = float_of_int tf in
    w.idfs.(i) *. tf *. (w.params.k1 +. 1.)
    /. ((w.sat *. tf) +. (w.params.k1 *. (1. -. w.params.b)))

let score_tf w tf =
  let acc = ref 0. in
  Array.iteri (fun i c -> acc := !acc +. contribution w i c) tf;
  !acc

(* An RTF's tf vector: how many of its dispatched keyword nodes contain
   each query keyword (a node holding two keywords counts toward both).
   Reads only the query's own postings — the index is never consulted. *)
let tf_of_rtf (q : Query.t) (rtf : Rtf.t) =
  (* xkscost: unticked pre-charged: scores RTFs the pipeline already materialised — get_rtfs ticked once per keyword node counted here *)
  Array.map
    (fun posting ->
      (* xkscost: unticked pre-charged: same knode sweep as the outer map, one binary search per dispatched node *)
      Array.fold_left
        (fun acc kn -> if Xks_util.Bsearch.mem posting kn then acc + 1 else acc)
        0 rtf.knodes)
    q.postings

let score_rtf w q rtf = score_tf w (tf_of_rtf q rtf)

let bound w ~avail =
  (* Every fragment holds at least one node per keyword, so exhausted
     availability on any keyword rules all future fragments out. *)
  if Array.exists (fun a -> a <= 0) avail then neg_infinity
  else score_tf w avail
