module Tree = Xks_xml.Tree
module Klist = Xks_index.Klist
module Cid = Xks_index.Cid

type info = {
  id : int;
  label : Xks_xml.Label.t;
  mutable klist : Klist.t;
  mutable cid : Cid.t;
  mutable rtf_children : info list;
}

type t = { root_info : info; by_id : (int, info) Hashtbl.t }

let construct ?(cid_mode = Cid.Approx) (q : Query.t) (rtf : Rtf.t) =
  let doc = q.doc in
  let by_id = Hashtbl.create (4 * Array.length rtf.knodes) in
  let fresh id =
    {
      id;
      label = (Tree.node doc id).label;
      klist = Klist.empty;
      cid = Cid.empty;
      rtf_children = [];
    }
  in
  (* Get-or-create the info of an RTF member, linking it under its parent
     (which is created on the way to the root). *)
  (* xkscost: unticked pre-charged: prune_all ticks 1+|knodes| per RTF before construct; each path node is created once *)
  let rec obtain id =
    match Hashtbl.find_opt by_id id with
    | Some info -> info
    | None ->
        let info = fresh id in
        Hashtbl.add by_id id info;
        if id <> rtf.lca then begin
          let parent = obtain (Tree.node doc id).parent in
          parent.rtf_children <- info :: parent.rtf_children
        end;
        info
  in
  let transfer id klist cid =
    (* Push a keyword node's information to itself and every ancestor up
       to the RTF root (constructing step, lines 5-12). *)
    (* xkscost: unticked pre-charged: one klist/cid push per path node, under prune_all's per-RTF charge *)
    let rec up id =
      let info = obtain id in
      info.klist <- Klist.union info.klist klist;
      info.cid <- Cid.merge info.cid cid;
      if id <> rtf.lca then up (Tree.node doc id).parent
    in
    up id
  in
  (* Keyword-node features come from the index's precomputed table when
     it is available (Approx mode only — the table stores (min, max)
     pairs).  The fallback re-tokenises the node as before; it covers
     Exact mode and queries built by [of_postings] without a table. *)
  let feature kn =
    match cid_mode with
    | Cid.Approx when Array.length q.approx_cids > 0 -> q.approx_cids.(kn)
    | Cid.Approx | Cid.Exact ->
        Cid.of_words cid_mode (Tree.content_words doc (Tree.node doc kn))
  in
  (* xkscost: unticked pre-charged: prune_all ticked one per knode transferred here *)
  Array.iter
    (fun kn ->
      let klist = Query.node_klist q kn in
      transfer kn klist (feature kn))
    rtf.knodes;
  let root_info = obtain rtf.lca in
  (* Children were prepended as discovered; keyword nodes arrive in
     document order but path sharing can disorder siblings, so sort. *)
  (* xkscost: unticked pre-charged: one sibling sort per RTF member, under prune_all's per-RTF charge *)
  Hashtbl.iter
    (fun _ info ->
      info.rtf_children <-
        (* xkscost: unticked pre-charged: sorts each member's sibling list once; total work is |members| log *)
        List.sort (fun a b -> Int.compare a.id b.id) info.rtf_children)
    by_id;
  { root_info; by_id }

let root t = t.root_info

type label_group = {
  group_label : Xks_xml.Label.t;
  counter : int;
  chklist : int array;
  group_children : info list;
}

let label_groups info =
  let order = ref [] in
  let groups = Hashtbl.create 8 in
  (* xkscost: unticked pre-charged: one grouping pass over a node's RTF children, inside the pruning walk prune_all charged for *)
  List.iter
    (fun (child : info) ->
      match Hashtbl.find_opt groups child.label with
      | Some members -> members := child :: !members
      | None ->
          Hashtbl.add groups child.label (ref [ child ]);
          order := child.label :: !order)
    info.rtf_children;
  List.rev_map
    (fun label ->
      let members =
        (* [order] only records labels inserted into [groups] above. *)
        match Hashtbl.find_opt groups label with
        | Some members -> List.rev !members
        | None -> assert false
      in
      let chklist =
        List.map (fun (i : info) -> i.klist) members
        |> List.sort_uniq Int.compare |> Array.of_list
      in
      {
        group_label = label;
        counter = List.length members;
        chklist;
        group_children = members;
      })
    !order

let info_of t id = Hashtbl.find_opt t.by_id id
