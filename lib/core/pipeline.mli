(** The four-stage skeleton shared by ValidRTF and MaxMatch.

    Algorithm 1's shape: [getKeywordNodes] (the prepared {!Query}), a
    [getLCA] stage, [getRTF], and a pruning stage.  {!Validrtf} and
    {!Maxmatch} instantiate the two varying stages. *)

type lca_algorithm =
  | Elca_indexed_stack  (** all interesting LCA nodes (the paper) *)
  | Elca_tree_scan  (** same semantics by full tree scan (A2 ablation) *)
  | Slca_only  (** SLCA nodes only (original MaxMatch) *)

type pruning =
  | Valid_contributor  (** Definition 4 (ValidRTF) *)
  | Contributor  (** MaxMatch's mechanism *)
  | No_pruning  (** raw RTFs *)

type result = {
  query : Query.t;
  lcas : int list;  (** document order *)
  rtfs : Rtf.t list;
  fragments : Fragment.t list;  (** one per LCA, same order *)
}

val run_query :
  ?cid_mode:Xks_index.Cid.mode -> ?domains:int ->
  ?budget:Xks_robust.Budget.t -> lca:lca_algorithm -> pruning:pruning ->
  Query.t -> result
(** [domains] (default 1) prunes the RTFs on that many OCaml domains in
    parallel — pruning is per-RTF-local, so this is safe; it pays off on
    queries with many RTFs (high-frequency keywords).  Results are
    identical to the sequential run.

    [budget] makes the run cooperative: posting entries are charged up
    front, then the LCA stage, keyword-node dispatch and per-RTF pruning
    tick as they visit nodes.  A budgeted run is forced sequential
    (the budget counter is shared mutable state).
    @raise Xks_robust.Budget.Exhausted when the budget runs out;
    {!Xks_core.Engine.search} catches this and degrades instead. *)

val run :
  ?cid_mode:Xks_index.Cid.mode -> lca:lca_algorithm -> pruning:pruning ->
  Xks_index.Inverted.t -> string list -> result
(** [run idx ws] prepares the query and calls {!run_query}.
    @raise Invalid_argument as {!Query.make}. *)
