(** MaxMatch (Liu & Chen, VLDB 2008) — the paper's baseline.

    Two variants:
    - {!run_revised} — the "revised MaxMatch" of the paper's footnote 10:
      SLCA search replaced by the Indexed Stack LCA algorithm (so it works
      on the same RTFs as ValidRTF) and full upward information transfer;
      pruning uses the original contributor mechanism.
    - {!run_original} — the VLDB'08 algorithm: SLCA-rooted fragments only,
      contributor pruning (A3 ablation). *)

val run_revised : Xks_index.Inverted.t -> string list -> Pipeline.result
val run_original : Xks_index.Inverted.t -> string list -> Pipeline.result

val run_revised_query :
  ?budget:Xks_robust.Budget.t -> Query.t -> Pipeline.result

val run_original_query :
  ?budget:Xks_robust.Budget.t -> Query.t -> Pipeline.result
(** The [_query] forms run on a prepared query; [budget] makes them
    cooperative as in {!Pipeline.run_query}.
    @raise Xks_robust.Budget.Exhausted when the budget runs out. *)
