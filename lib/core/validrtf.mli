(** ValidRTF — Algorithm 1 of the paper.

    Retrieves the meaningful RTFs of a keyword query: all interesting LCA
    nodes via the Indexed Stack algorithm, their RTFs via keyword-node
    dispatch, and valid-contributor pruning (Definition 4) of each RTF. *)

val run :
  ?cid_mode:Xks_index.Cid.mode -> Xks_index.Inverted.t -> string list ->
  Pipeline.result
(** [run idx ws] executes ValidRTF for query [ws].  [cid_mode] selects the
    paper's [(min, max)] content feature (default) or the exact content
    sets (A1 ablation).
    @raise Invalid_argument as {!Query.make}. *)

val run_query :
  ?cid_mode:Xks_index.Cid.mode -> ?budget:Xks_robust.Budget.t -> Query.t ->
  Pipeline.result
(** As {!run} on a prepared query (what the benchmarks time).
    @raise Xks_robust.Budget.Exhausted when [budget] runs out. *)
