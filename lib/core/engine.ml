module Tree = Xks_xml.Tree
module Budget = Xks_robust.Budget
module Trace = Xks_trace.Trace

(* [doc] carries the interned label table and [index] the inverted
   index; both are mutable internally but written only while
   parse/build constructs them — engines share them strictly
   read-only. *)
(* xksrace: domain_safe doc and index are frozen before the engine is shared *)
type t = { id : int; doc : Tree.t; index : Xks_index.Inverted.t }
type algorithm = Validrtf | Maxmatch | Maxmatch_original
type rank_mode = [ `Heuristic | `Bm25 | `Doc ]

(* Engine identity for result caches ([Xks_exec.Cache]): every engine —
   even one adopting a reloaded index via [of_index] — gets a fresh id,
   so entries cached against a previous engine can never be served for a
   new one. *)
(* xkslint: allow module-state *)
let next_id = Atomic.make 0

type hit = {
  fragment : Fragment.t;
  rtf : Rtf.t;
  score : float;
  is_slca : bool;
  degraded : Budget.reason option;
}

let of_doc doc =
  { id = Atomic.fetch_and_add next_id 1; doc; index = Xks_index.Inverted.build doc }

let of_index index =
  {
    id = Atomic.fetch_and_add next_id 1;
    doc = Xks_index.Inverted.doc index;
    index;
  }

let of_file ?limits path = of_doc (Xks_xml.Parser.parse_file ?limits path)
let of_string ?limits s = of_doc (Xks_xml.Parser.parse_string ?limits s)
let id e = e.id
let doc e = e.doc
let index e = e.index

let run ?(algorithm = Validrtf) ?cid_mode ?budget e ws =
  (* Rarest keyword first: the dedup is shared with every caller of
     [Query.make]; the rarity sort additionally puts the shortest
     posting list in the driver seat of the stack walks. *)
  let q = Query.make ~order:`Rarest e.index ws in
  match algorithm with
  | Validrtf -> Validrtf.run_query ?cid_mode ?budget q
  | Maxmatch -> Maxmatch.run_revised_query ?budget q
  | Maxmatch_original -> Maxmatch.run_original_query ?budget q

(* [indexed_lookup_eager] returns ascending ids, so membership is a
   binary search instead of an O(hits × slcas) list scan. *)
let slca_table (q : Query.t) =
  lazy
    (Trace.with_span "slca_tag" (fun () ->
         if Query.has_results q then
           Array.of_list (Xks_lca.Slca.indexed_lookup_eager q.doc q.postings)
         else [||]))

let check_k = function
  | Some k when k < 1 -> invalid_arg "Engine.search: k must be >= 1"
  | Some _ | None -> ()

let truncate k l =
  match k with None -> l | Some k -> List.filteri (fun i _ -> i < k) l

(* Full-enumeration BM25: score every RTF from posting statistics and
   sort (score desc, LCA id asc) — the order the streaming top-k driver
   must agree with. *)
let bm25_scored (result : Pipeline.result) =
  let w = Rank.weights result.query in
  let scored =
    (* xkscost: unticked pre-charged: scores the already-budgeted pipeline result; tf reads were charged by get_rtfs *)
    List.map2
      (fun rtf fragment ->
        { Ranking.fragment; rtf; score = Rank.score_rtf w result.query rtf })
      result.rtfs result.fragments
  in
  (* xkscost: unticked pre-charged: sorts the already-materialised scored list, |rtfs| bounded by the ticked LCA sweep *)
  List.sort
    (fun (a : Ranking.scored) b ->
      let c = Float.compare b.score a.score in
      if c <> 0 then c else Int.compare a.rtf.lca b.rtf.lca)
    scored

let hits_of_result ?(rank = (`Heuristic : rank_mode)) ?k (_ : t) result =
  check_k k;
  let slcas = slca_table result.Pipeline.query in
  let hit (scored : Ranking.scored) =
    {
      fragment = scored.fragment;
      rtf = scored.rtf;
      score = scored.score;
      is_slca = Xks_util.Bsearch.mem (Lazy.force slcas) scored.rtf.lca;
      degraded = None;
    }
  in
  let scored =
    Trace.with_span "rank" (fun () ->
        match rank with
        | `Heuristic -> Ranking.rank result
        | `Bm25 -> bm25_scored result
        | `Doc ->
            List.sort
              (fun (a : Ranking.scored) b -> Int.compare a.rtf.lca b.rtf.lca)
              (Ranking.rank result))
  in
  List.map hit (truncate k scored)

(* The streaming top-k fast path (BM25 + k over ValidRTF): scan once
   with score-bounded early termination, then construct and prune only
   the k winning fragments instead of every RTF. *)
let topk_hits ?cid_mode ?budget ~k e ws =
  let q = Query.make ~order:`Rarest e.index ws in
  (* Same up-front posting charge as [Pipeline.run_query]. *)
  Budget.tick_opt budget
    (Array.fold_left (fun acc p -> acc + Array.length p) 0 q.Query.postings);
  let w = Rank.weights q in
  let outcome =
    Trace.with_span "topk" (fun () ->
        Xks_lca.Topk.run ?budget ~k
          ~score:(fun ~lca:_ ~tf -> Rank.score_tf w tf)
          ~bound:(fun ~avail -> Rank.bound w ~avail)
          q.Query.doc q.Query.postings)
  in
  let slcas = slca_table q in
  Trace.with_span "prune" (fun () ->
      List.map
        (fun (c : Xks_lca.Topk.candidate) ->
          Budget.tick_opt budget (1 + Array.length c.knodes);
          let rtf = { Rtf.lca = c.lca; knodes = c.knodes } in
          let fragment =
            Prune.valid_contributor (Node_info.construct ?cid_mode q rtf)
          in
          {
            fragment;
            rtf;
            score = c.score;
            is_slca = Xks_util.Bsearch.mem (Lazy.force slcas) c.lca;
            degraded = None;
          })
        outcome.Xks_lca.Topk.top)

(* The graceful-degradation ladder: each cheaper algorithm retries with a
   renewed node allowance (same absolute deadline); the floor — original
   MaxMatch, SLCA fragments only — runs unbudgeted so a budgeted search
   always returns.  Hits carry the first exhaustion reason. *)
let next_cheaper = function
  | Validrtf -> Some Maxmatch
  | Maxmatch -> Some Maxmatch_original
  | Maxmatch_original -> None

type search_result = { hits : hit list; degraded : Budget.reason option }

let search_result ?(algorithm = Validrtf) ?cid_mode
    ?(rank = (`Heuristic : rank_mode)) ?k ?budget e ws =
  check_k k;
  Trace.with_span "search" (fun () ->
      let attempt alg budget =
        match (rank, k) with
        | `Bm25, Some kk -> (
            match alg with
            | Validrtf -> topk_hits ?cid_mode ?budget ~k:kk e ws
            | Maxmatch | Maxmatch_original ->
                (* Down-ladder (or explicitly cheaper) top-k: full
                   enumeration, BM25-scored, k-prefix — still
                   score-tagged, just without the early-exit scan. *)
                hits_of_result ~rank ?k e
                  (run ~algorithm:alg ?cid_mode ?budget e ws))
        | (`Bm25 | `Heuristic | `Doc), (Some _ | None) ->
            hits_of_result ~rank ?k e
              (run ~algorithm:alg ?cid_mode ?budget e ws)
      in
      match budget with
      | None -> { hits = attempt algorithm None; degraded = None }
      | Some b -> (
          let rec ladder alg b =
            match attempt alg (Some b) with
            | hits -> (hits, None)
            | exception Budget.Exhausted reason -> (
                match next_cheaper alg with
                | Some alg' ->
                    let hits, _ = ladder alg' (Budget.renew b) in
                    (hits, Some reason)
                | None -> (attempt Maxmatch_original None, Some reason))
          in
          match ladder algorithm b with
          | hits, None -> { hits; degraded = None }
          | hits, Some reason ->
              (* One event per degraded search, recorded whether or not
                 any hit survived to carry the tag. *)
              Trace.degradation (Budget.reason_to_string reason);
              {
                hits =
                  List.map
                    (fun (h : hit) -> { h with degraded = Some reason })
                    hits;
                degraded = Some reason;
              }))

let search ?algorithm ?cid_mode ?rank ?k ?budget e ws =
  (search_result ?algorithm ?cid_mode ?rank ?k ?budget e ws).hits

let degraded_reason hits =
  List.find_map (fun (h : hit) -> h.degraded) hits

let render ?(xml = false) e hit =
  if xml then Fragment.to_xml e.doc hit.fragment
  else Fragment.render e.doc hit.fragment

let stats e =
  Printf.sprintf "%d nodes, %d distinct labels, %d indexed words"
    (Tree.size e.doc)
    (Xks_xml.Label.count (Tree.labels e.doc))
    (Xks_index.Inverted.vocabulary_size e.index)
