module Tree = Xks_xml.Tree
module Budget = Xks_robust.Budget
module Trace = Xks_trace.Trace

(* [doc] carries the interned label table and [index] the inverted
   index; both are mutable internally but written only while
   parse/build constructs them — engines share them strictly
   read-only. *)
(* xksrace: domain_safe doc and index are frozen before the engine is shared *)
type t = { id : int; doc : Tree.t; index : Xks_index.Inverted.t }
type algorithm = Validrtf | Maxmatch | Maxmatch_original

(* Engine identity for result caches ([Xks_exec.Cache]): every engine —
   even one adopting a reloaded index via [of_index] — gets a fresh id,
   so entries cached against a previous engine can never be served for a
   new one. *)
(* xkslint: allow module-state *)
let next_id = Atomic.make 0

type hit = {
  fragment : Fragment.t;
  rtf : Rtf.t;
  score : float;
  is_slca : bool;
  degraded : Budget.reason option;
}

let of_doc doc =
  { id = Atomic.fetch_and_add next_id 1; doc; index = Xks_index.Inverted.build doc }

let of_index index =
  {
    id = Atomic.fetch_and_add next_id 1;
    doc = Xks_index.Inverted.doc index;
    index;
  }

let of_file ?limits path = of_doc (Xks_xml.Parser.parse_file ?limits path)
let of_string ?limits s = of_doc (Xks_xml.Parser.parse_string ?limits s)
let id e = e.id
let doc e = e.doc
let index e = e.index

let run ?(algorithm = Validrtf) ?cid_mode ?budget e ws =
  (* Rarest keyword first: the dedup is shared with every caller of
     [Query.make]; the rarity sort additionally puts the shortest
     posting list in the driver seat of the stack walks. *)
  let q = Query.make ~order:`Rarest e.index ws in
  match algorithm with
  | Validrtf -> Validrtf.run_query ?cid_mode ?budget q
  | Maxmatch -> Maxmatch.run_revised_query ?budget q
  | Maxmatch_original -> Maxmatch.run_original_query ?budget q

let hits_of_result ?(rank = true) (_ : t) result =
  let slcas =
    (* [indexed_lookup_eager] returns ascending ids, so membership is a
       binary search instead of an O(hits × slcas) list scan. *)
    lazy
      (Trace.with_span "slca_tag" (fun () ->
           let q = result.Pipeline.query in
           if Query.has_results q then
             Array.of_list (Xks_lca.Slca.indexed_lookup_eager q.doc q.postings)
           else [||]))
  in
  let hit (scored : Ranking.scored) =
    {
      fragment = scored.fragment;
      rtf = scored.rtf;
      score = scored.score;
      is_slca = Xks_util.Bsearch.mem (Lazy.force slcas) scored.rtf.lca;
      degraded = None;
    }
  in
  let scored = Trace.with_span "rank" (fun () -> Ranking.rank result) in
  let scored =
    if rank then scored
    else
      List.sort (fun (a : Ranking.scored) b -> Int.compare a.rtf.lca b.rtf.lca) scored
  in
  List.map hit scored

(* The graceful-degradation ladder: each cheaper algorithm retries with a
   renewed node allowance (same absolute deadline); the floor — original
   MaxMatch, SLCA fragments only — runs unbudgeted so a budgeted search
   always returns.  Hits carry the first exhaustion reason. *)
let next_cheaper = function
  | Validrtf -> Some Maxmatch
  | Maxmatch -> Some Maxmatch_original
  | Maxmatch_original -> None

type search_result = { hits : hit list; degraded : Budget.reason option }

let search_result ?(algorithm = Validrtf) ?cid_mode ?rank ?budget e ws =
  Trace.with_span "search" (fun () ->
      let attempt alg budget =
        hits_of_result ?rank e (run ~algorithm:alg ?cid_mode ?budget e ws)
      in
      match budget with
      | None -> { hits = attempt algorithm None; degraded = None }
      | Some b -> (
          let rec ladder alg b =
            match attempt alg (Some b) with
            | hits -> (hits, None)
            | exception Budget.Exhausted reason -> (
                match next_cheaper alg with
                | Some alg' ->
                    let hits, _ = ladder alg' (Budget.renew b) in
                    (hits, Some reason)
                | None -> (attempt Maxmatch_original None, Some reason))
          in
          match ladder algorithm b with
          | hits, None -> { hits; degraded = None }
          | hits, Some reason ->
              (* One event per degraded search, recorded whether or not
                 any hit survived to carry the tag. *)
              Trace.degradation (Budget.reason_to_string reason);
              {
                hits =
                  List.map
                    (fun (h : hit) -> { h with degraded = Some reason })
                    hits;
                degraded = Some reason;
              }))

let search ?algorithm ?cid_mode ?rank ?budget e ws =
  (search_result ?algorithm ?cid_mode ?rank ?budget e ws).hits

let degraded_reason hits =
  List.find_map (fun (h : hit) -> h.degraded) hits

let render ?(xml = false) e hit =
  if xml then Fragment.to_xml e.doc hit.fragment
  else Fragment.render e.doc hit.fragment

let stats e =
  Printf.sprintf "%d nodes, %d distinct labels, %d indexed words"
    (Tree.size e.doc)
    (Xks_xml.Label.count (Tree.labels e.doc))
    (Xks_index.Inverted.vocabulary_size e.index)
