let run_revised_query ?budget q =
  Xks_trace.Trace.with_span "maxmatch" (fun () ->
      Pipeline.run_query ?budget ~lca:Elca_indexed_stack ~pruning:Contributor q)

let run_original_query ?budget q =
  Xks_trace.Trace.with_span "maxmatch_original" (fun () ->
      Pipeline.run_query ?budget ~lca:Slca_only ~pruning:Contributor q)

let run_revised idx ws = run_revised_query (Query.make idx ws)
let run_original idx ws = run_original_query (Query.make idx ws)
