module Tokenizer = Xks_xml.Tokenizer
module Klist = Xks_index.Klist

type t = {
  doc : Xks_xml.Tree.t;
  keywords : string array;
  postings : int array array;
  approx_cids : Xks_index.Cid.t array;
  dfs : int array;
  avg_df : float;
}

(* Per-keyword document frequency is just the posting length — [make]
   already fetched the lists to order keywords rarest-first, so the
   ranking layer must never re-fetch them from the index. *)
(* xkscost: unticked k-bounded: one length read per keyword list *)
let dfs_of postings = Array.map Array.length postings

let make ?(order = `Given) idx ws =
  let seen = Hashtbl.create 8 in
  let keywords =
    (* Each argument may carry several words ("xml search"); split into
       tokens (stop words kept — a user typing one deserves the empty
       posting, not a silently changed query). *)
    List.concat_map (Tokenizer.words ~keep_stopwords:true) ws
    |> List.filter_map (fun w ->
           if Hashtbl.mem seen w then None
           else begin
             Hashtbl.add seen w ();
             Some w
           end)
  in
  if keywords = [] then invalid_arg "Query.make: empty query";
  if List.length keywords > Klist.max_keywords then
    invalid_arg "Query.make: too many keywords";
  let keywords = Array.of_list keywords in
  let postings =
    Array.map (fun w -> Xks_index.Inverted.posting idx w) keywords
  in
  let keywords, postings =
    match order with
    | `Given -> (keywords, postings)
    | `Rarest ->
        (* Shortest posting list first (ties keep query order, so the
           permutation is deterministic).  The stack-based ELCA/SLCA
           walks drive off the smallest list and probe the others, so a
           rarity-sorted query puts the driver at index 0 and the most
           selective probes first.  The keyword {e set} is unchanged —
           every LCA semantics is order-invariant. *)
        let order = Array.init (Array.length keywords) Fun.id in
        (* xkscost: unticked k-bounded: sorts the k-entry permutation, comparing posting lengths only *)
        Array.sort
          (fun i j ->
            let c =
              Int.compare (Array.length postings.(i))
                (Array.length postings.(j))
            in
            if c <> 0 then c else Int.compare i j)
          order;
        ( Array.map (fun i -> keywords.(i)) order,
          (* xkscost: unticked k-bounded: permutes the k posting-list pointers, not their contents *)
          Array.map (fun i -> postings.(i)) order )
  in
  {
    doc = Xks_index.Inverted.doc idx;
    keywords;
    postings;
    approx_cids = Xks_index.Inverted.approx_cids idx;
    dfs = dfs_of postings;
    avg_df = (Xks_index.Inverted.stats idx).avg_posting_len;
  }

let of_postings ?(approx_cids = [||]) doc ~keywords postings =
  if keywords = [] then invalid_arg "Query.of_postings: empty query";
  if List.length keywords <> Array.length postings then
    invalid_arg "Query.of_postings: arity mismatch";
  if List.length (List.sort_uniq String.compare keywords) <> List.length keywords
  then invalid_arg "Query.of_postings: duplicate keyword";
  if List.exists (fun w -> w = "") keywords then
    invalid_arg "Query.of_postings: empty keyword";
  let n = Xks_xml.Tree.size doc in
  Array.iter
    (fun posting ->
      Array.iteri
        (fun i id ->
          if id < 0 || id >= n then
            invalid_arg "Query.of_postings: id out of range";
          if i > 0 && posting.(i - 1) >= id then
            invalid_arg "Query.of_postings: posting not sorted")
        posting)
    postings;
  if Array.length approx_cids <> 0
     && Array.length approx_cids <> Xks_xml.Tree.size doc
  then invalid_arg "Query.of_postings: approx_cids size mismatch";
  let dfs = dfs_of postings in
  (* No index in sight: fall back to the mean of the query's own
     posting lengths as the corpus pivot. *)
  let avg_df =
    if Array.length dfs = 0 then 0.
    else
      float_of_int (Array.fold_left ( + ) 0 dfs)
      /. float_of_int (Array.length dfs)
  in
  { doc; keywords = Array.of_list keywords; postings; approx_cids; dfs; avg_df }

let k q = Array.length q.keywords
let df q i = q.dfs.(i)
(* xkscost: unticked k-bounded: one emptiness test per keyword list *)
let has_results q = Array.for_all (fun s -> Array.length s > 0) q.postings

let keyword_index q w =
  let w = Tokenizer.normalize w in
  let rec loop i =
    if i = Array.length q.keywords then None
    else if String.equal q.keywords.(i) w then Some i
    else loop (i + 1)
  in
  loop 0

let node_klist q id =
  let k = k q in
  let mask = ref Klist.empty in
  (* xkscost: unticked k-bounded: one binary search per keyword list; callers tick per node looked up *)
  Array.iteri
    (fun i posting ->
      if Xks_util.Bsearch.mem posting id then
        mask := Klist.union !mask (Klist.singleton ~k i))
    q.postings;
  !mask

let pp fmt q =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_seq
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Format.pp_print_string)
    (Array.to_seq q.keywords)
