(** Prepared keyword queries.

    A query [Q = {w1 .. wk}] bound to a document and its inverted index:
    keywords are normalised, deduplicated (keeping first occurrences), and
    their posting lists fetched.  All downstream stages (getLCA, getRTF,
    pruning) work off this value. *)

type t = private {
  doc : Xks_xml.Tree.t;
  keywords : string array;  (** normalised, distinct, in query order *)
  postings : int array array;  (** one sorted id array per keyword *)
  approx_cids : Xks_index.Cid.t array;
      (** per-node approximate content features, indexed by node id —
          {!Xks_index.Inverted.approx_cids} when the query was prepared
          from an index, [[||]] (unavailable) otherwise.  Lets the
          pruning stage skip re-tokenising the document per query. *)
  dfs : int array;
      (** per-keyword document frequency: [dfs.(i) = Array.length
          postings.(i)].  {!make} already fetches every posting to order
          keywords rarest-first, so ranking reads df here rather than
          re-fetching from the index. *)
  avg_df : float;
      (** corpus length pivot for BM25 normalisation:
          {!Xks_index.Inverted.stats}[.avg_posting_len] when prepared
          from an index; the mean of [dfs] under {!of_postings}. *)
}

val make :
  ?order:[ `Given | `Rarest ] -> Xks_index.Inverted.t -> string list -> t
(** [make idx ws] prepares the query [ws] against [idx].  Every input
    string is tokenised (so ["xml search"] contributes two keywords) and
    duplicates are dropped, keeping first occurrences.

    [order] selects the keyword order of the prepared query: [`Given]
    (default) keeps first-occurrence order; [`Rarest] sorts keywords by
    ascending posting-list length (ties keep query order), which puts
    the stack algorithms' driver list at index 0 and the most selective
    probes first — {!Xks_core.Engine} uses it.  The keyword {e set}, and
    therefore every LCA/RTF result, is identical under both orders; only
    keyword {e positions} (bit indices, {!keyword_index}) differ.
    @raise Invalid_argument if no keyword remains after tokenisation and
    deduplication, or if there are more than {!Xks_index.Klist.max_keywords}
    distinct keywords. *)

val of_postings :
  ?approx_cids:Xks_index.Cid.t array ->
  Xks_xml.Tree.t -> keywords:string list -> int array array -> t
(** [of_postings doc ~keywords postings] builds a query whose posting
    lists were computed elsewhere (e.g. filtered by {!Labeled} conditions
    or fetched via {!Xks_index.Rel_store}).  Keywords must be distinct and
    non-empty; each posting list must be sorted, duplicate-free and
    reference ids of [doc].  [approx_cids] (default [[||]], meaning
    unavailable) forwards a precomputed per-node feature table — pass the
    source index's {!Xks_index.Inverted.approx_cids} when postings were
    merely filtered, as {!Scoped} does.
    @raise Invalid_argument when those conditions fail, the arities
    differ, or [approx_cids] is non-empty with a length other than the
    document size. *)

val k : t -> int
(** Number of (distinct) keywords. *)

val df : t -> int -> int
(** [df q i] is keyword [i]'s document frequency, [q.dfs.(i)]. *)

val has_results : t -> bool
(** [false] iff some keyword never occurs in the document — then every
    LCA-based semantics returns the empty result. *)

val keyword_index : t -> string -> int option
(** Position of a (normalised) keyword in the query. *)

val node_klist : t -> int -> Xks_index.Klist.t
(** [node_klist q id] is the bitset of query keywords occurring in node
    [id]'s own content (by posting-list membership). *)

val pp : Format.formatter -> t -> unit
