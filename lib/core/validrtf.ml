let run_query ?cid_mode ?budget q =
  Xks_trace.Trace.with_span "validrtf" (fun () ->
      Pipeline.run_query ?cid_mode ?budget ~lca:Elca_indexed_stack
        ~pruning:Valid_contributor q)

let run ?cid_mode idx ws = run_query ?cid_mode (Query.make idx ws)
