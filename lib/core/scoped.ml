module Tree = Xks_xml.Tree
module Path = Xks_xml.Path

let restrict_postings doc ~scope postings =
  let ranges =
    List.map (fun id -> (id, (Tree.node doc id).subtree_end)) scope
  in
  let in_scope id =
    (* Scope lists are small (path results); a linear check keeps this
       simple.  Ranges are disjoint or nested, either way membership is
       a simple interval test. *)
    List.exists (fun (lo, hi) -> id >= lo && id <= hi) ranges
  in
  Array.map
    (fun posting ->
      Array.to_list posting |> List.filter in_scope |> Array.of_list)
    postings

let query idx ~path ws =
  let doc = Xks_index.Inverted.doc idx in
  let scope = Path.eval_ids doc (Path.parse path) in
  let base = Query.make idx ws in
  let postings = restrict_postings doc ~scope base.Query.postings in
  Query.of_postings ~approx_cids:base.Query.approx_cids doc
    ~keywords:(Array.to_list base.Query.keywords)
    postings

let search ?algorithm engine ~path ws =
  let q = query (Engine.index engine) ~path ws in
  let result =
    match algorithm with
    | None | Some Engine.Validrtf -> Validrtf.run_query q
    | Some Engine.Maxmatch -> Maxmatch.run_revised_query q
    | Some Engine.Maxmatch_original -> Maxmatch.run_original_query q
  in
  Engine.hits_of_result engine result
