(* Minimal JSON: just enough for trace exports and the BENCH_* files.
   No external dependency — the container policy forbids adding one. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then begin
        (* %.17g round-trips but is noisy; ms precision is plenty here. *)
        let s = Printf.sprintf "%.6g" f in
        Buffer.add_string buf s;
        (* "1e+06" and "1.5" are valid JSON; a bare "1" printed from a
           float is too — keep it as is. *)
      end
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail !pos "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail !pos "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some code -> code
                | None -> fail !pos "bad \\u escape"
              in
              pos := !pos + 4;
              (* Keep it simple: BMP code points as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail !pos (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail start "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail start "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_list = function
  | List l -> Some l
  | Null | Bool _ | Int _ | Float _ | String _ | Obj _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null | Bool _ | String _ | List _ | Obj _ -> None

let to_int = function
  | Int i -> Some i
  | Null | Bool _ | Float _ | String _ | List _ | Obj _ -> None

let to_str = function
  | String s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None
