(** Query observability: per-stage wall-clock spans and monotonic
    counters for Algorithm 1's getKeywordNodes → getLCA → getRTF →
    prune → rank pipeline.

    The layer is pull-free and globally gated: instrumentation points in
    {!Xks_core}, {!Xks_lca}, {!Xks_index} and {!Xks_robust} call {!add}
    / {!with_span} unconditionally, and when no trace is installed (the
    default) each call is a single load-and-branch no-op — queries
    without observers pay nothing measurable.  Install a trace around a
    query with {!with_current}:

    {[
      let t = Trace.create () in
      let hits = Trace.with_current t (fun () -> Engine.search e ws) in
      prerr_string (Trace.summary t)
    ]}

    The layer is domain-aware: the current-trace slot is atomic,
    counters are atomic (pruning may stripe over domains, and
    [Xks_exec.Exec.search_batch] runs whole queries on worker domains
    that tick into the installing domain's trace), and degradation
    events are pushed with a CAS loop.  Spans, in contrast, are recorded
    {e only} on the domain that installed the trace — a span call from
    any other domain is a silent no-op, so the span stack never needs a
    lock.  A trace accumulates across queries until replaced — snapshot
    with {!counter}/{!counters}. *)

type counter =
  | Postings_scanned  (** posting-list entries fetched from the index *)
  | Nodes_visited  (** nodes touched by the LCA stage *)
  | Elca_pushed  (** candidates pushed on the Indexed Stack *)
  | Elca_popped  (** candidates popped (and ELCA-checked) *)
  | Frag_nodes_kept  (** RTF nodes surviving pruning *)
  | Frag_nodes_pruned  (** RTF children discarded by pruning *)
  | Budget_ticks  (** {!Xks_robust.Budget.tick} calls *)
  | Degradations  (** degraded searches (budget exhaustion) *)
  | Cache_hits  (** {!Xks_exec} result-cache lookups answered *)
  | Cache_misses  (** result-cache lookups that ran the pipeline *)
  | Cache_evictions  (** result-cache entries evicted by LRU pressure *)
  | Requests_accepted  (** connections admitted by {!Xks_serve} *)
  | Requests_served  (** HTTP responses completed (any status) *)
  | Requests_rejected  (** connections shed with 503 at admission *)
  | Requests_timed_out  (** connections closed by a read/write timeout *)
  | Requests_aborted  (** in-flight connections cut at the drain deadline *)
  | Topk_pruned_postings
      (** driver-posting entries skipped by top-k early termination *)
  | Topk_early_exit
      (** top-k scans that stopped before exhausting the driver list *)

val all_counters : counter list
val counter_name : counter -> string
(** Stable snake_case name, also the JSON key. *)

type span = {
  label : string;  (** stage name, e.g. ["lca"] *)
  depth : int;  (** nesting depth (0 = outermost) *)
  seq : int;  (** start order among the trace's spans *)
  ms : float;  (** elapsed wall-clock milliseconds *)
}

type t

val create : unit -> t
(** A fresh trace: all counters zero, no spans, no events. *)

(** {2 Installing} *)

val set_current : t option -> unit
(** Install ([Some t]) or remove ([None]) the global current trace.
    Installing adopts the calling domain as the trace's span owner.
    Prefer {!with_current}, which restores the previous trace. *)

val get_current : unit -> t option
val enabled : unit -> bool

val with_current : t -> (unit -> 'a) -> 'a
(** Run with [t] installed; the previous current trace is restored on
    exit (also on exception). *)

(** {2 Recording (no-ops when no trace is installed)} *)

val add : counter -> int -> unit
val incr : counter -> unit

val degradation : string -> unit
(** Record a degradation event (e.g. the budget-exhaustion reason) and
    bump {!constructor:Degradations}.  Called by
    {!Xks_core.Engine.search} even when the degraded result is empty —
    the trace keeps the signal the hit list cannot carry. *)

val span_begin : string -> unit
val span_end : string -> unit
(** [span_end label] closes the innermost open span when its label
    matches; a mismatch is dropped silently (an exception may have
    unwound past the opener).  Both are no-ops on any domain other than
    the one that installed the trace.  Prefer {!with_span}. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f] under a named span, exception-safe.  When disabled this is
    exactly [f ()] after one branch. *)

(** {2 Reading} *)

val counter : t -> counter -> int
val counters : t -> (string * int) list
(** All counters, in {!all_counters} order, by {!counter_name}. *)

val spans : t -> span list
(** Completed spans in start order. *)

val degradation_events : t -> string list
(** Reasons recorded by {!degradation}, oldest first. *)

val summary : t -> string
(** Multi-line human-readable report (the CLI's [--stats] output):
    indented stage timings, counters, degradation events. *)

val to_json : t -> Json.t
(** [{"spans": [{"label","depth","ms"}...], "counters": {...},
    "degradations": [...]}] — the [--trace-json] document. *)
