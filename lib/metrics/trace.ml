(* Per-query observability: stage spans + monotonic counters.

   One global "current trace" slot keeps the disabled fast path to a
   single load-and-branch per instrumentation point — the pipeline's hot
   loops tick counters unconditionally, so when no trace is installed
   the cost must be negligible.  The slot is an [Atomic.t] and the
   counters are atomic because work may run on several domains (striped
   pruning, [Xks_exec] batch execution); spans are recorded only on the
   domain that installed the trace, so the span stack stays
   single-domain mutable state. *)

type counter =
  | Postings_scanned
  | Nodes_visited
  | Elca_pushed
  | Elca_popped
  | Frag_nodes_kept
  | Frag_nodes_pruned
  | Budget_ticks
  | Degradations
  | Cache_hits
  | Cache_misses
  | Cache_evictions
  | Requests_accepted
  | Requests_served
  | Requests_rejected
  | Requests_timed_out
  | Requests_aborted
  | Topk_pruned_postings
  | Topk_early_exit

let counter_index = function
  | Postings_scanned -> 0
  | Nodes_visited -> 1
  | Elca_pushed -> 2
  | Elca_popped -> 3
  | Frag_nodes_kept -> 4
  | Frag_nodes_pruned -> 5
  | Budget_ticks -> 6
  | Degradations -> 7
  | Cache_hits -> 8
  | Cache_misses -> 9
  | Cache_evictions -> 10
  | Requests_accepted -> 11
  | Requests_served -> 12
  | Requests_rejected -> 13
  | Requests_timed_out -> 14
  | Requests_aborted -> 15
  | Topk_pruned_postings -> 16
  | Topk_early_exit -> 17

let n_counters = 18

let all_counters =
  [
    Postings_scanned; Nodes_visited; Elca_pushed; Elca_popped;
    Frag_nodes_kept; Frag_nodes_pruned; Budget_ticks; Degradations;
    Cache_hits; Cache_misses; Cache_evictions; Requests_accepted;
    Requests_served; Requests_rejected; Requests_timed_out;
    Requests_aborted; Topk_pruned_postings; Topk_early_exit;
  ]

let counter_name = function
  | Postings_scanned -> "postings_scanned"
  | Nodes_visited -> "nodes_visited"
  | Elca_pushed -> "elca_pushed"
  | Elca_popped -> "elca_popped"
  | Frag_nodes_kept -> "frag_nodes_kept"
  | Frag_nodes_pruned -> "frag_nodes_pruned"
  | Budget_ticks -> "budget_ticks"
  | Degradations -> "degradations"
  | Cache_hits -> "cache_hits"
  | Cache_misses -> "cache_misses"
  | Cache_evictions -> "cache_evictions"
  | Requests_accepted -> "requests_accepted"
  | Requests_served -> "requests_served"
  | Requests_rejected -> "requests_rejected"
  | Requests_timed_out -> "requests_timed_out"
  | Requests_aborted -> "requests_aborted"
  | Topk_pruned_postings -> "topk.pruned_postings"
  | Topk_early_exit -> "topk.early_exit"

type span = { label : string; depth : int; seq : int; ms : float }

type t = {
  counters : int Atomic.t array;
  owner : int Atomic.t;  (* id of the domain that installed the trace *)
  events : string list Atomic.t;  (* degradation reasons, reverse order *)
  (* The span fields are deliberately unsynchronized: [owns] gates
     every write so only the domain that installed the trace touches
     them (worker domains tick the atomic counters only). *)
  (* xksrace: domain_safe owner-domain protocol, every write gated by owns *)
  mutable stack : (string * int * float) list;  (* label, seq, start s *)
  (* xksrace: domain_safe owner-domain protocol, every write gated by owns *)
  mutable closed : span list;  (* reverse completion order *)
  (* xksrace: domain_safe owner-domain protocol, every write gated by owns *)
  mutable next_seq : int;
}

let domain_id () = (Domain.self () :> int)

let create () =
  {
    counters = Array.init n_counters (fun _ -> Atomic.make 0);
    owner = Atomic.make (domain_id ());
    events = Atomic.make [];
    stack = [];
    closed = [];
    next_seq = 0;
  }

let current : t option Atomic.t = Atomic.make None

let set_current o =
  (match o with Some t -> Atomic.set t.owner (domain_id ()) | None -> ());
  Atomic.set current o

let get_current () = Atomic.get current
let enabled () = Atomic.get current <> None

let add c n =
  match Atomic.get current with
  | None -> ()
  | Some t -> ignore (Atomic.fetch_and_add t.counters.(counter_index c) n : int)

let incr c = add c 1

let push_event t reason =
  let rec loop () =
    let old = Atomic.get t.events in
    if not (Atomic.compare_and_set t.events old (reason :: old)) then loop ()
  in
  loop ()

let degradation reason =
  match Atomic.get current with
  | None -> ()
  | Some t ->
      push_event t reason;
      ignore
        (Atomic.fetch_and_add t.counters.(counter_index Degradations) 1 : int)

let now = Unix.gettimeofday

(* Spans mutate the trace's stack, which is not synchronised: only the
   installing domain records them.  Worker domains (striped pruning,
   batch execution) still tick the atomic counters above. *)
let owns t = Atomic.get t.owner = domain_id ()

let span_begin label =
  match Atomic.get current with
  | None -> ()
  | Some t when not (owns t) -> ()
  | Some t ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      t.stack <- (label, seq, now ()) :: t.stack

let span_end label =
  match Atomic.get current with
  | None -> ()
  | Some t when not (owns t) -> ()
  | Some t -> (
      match t.stack with
      | (l, seq, t0) :: rest when l = label ->
          t.stack <- rest;
          t.closed <-
            {
              label;
              depth = List.length rest;
              seq;
              ms = (now () -. t0) *. 1000.;
            }
            :: t.closed
      | _ -> () (* unmatched end: drop rather than corrupt the stack *))

let with_span label f =
  match Atomic.get current with
  | None -> f ()
  | Some _ ->
      span_begin label;
      Fun.protect ~finally:(fun () -> span_end label) f

let with_current t f =
  let saved = Atomic.get current in
  set_current (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set current saved) f

let counter t c = Atomic.get t.counters.(counter_index c)
let counters t = List.map (fun c -> (counter_name c, counter t c)) all_counters

let spans t =
  List.sort (fun a b -> Int.compare a.seq b.seq) t.closed

let degradation_events t = List.rev (Atomic.get t.events)

let summary t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "-- trace: stage timings --\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3f ms\n"
           (String.make (2 * s.depth) ' ')
           (24 - (2 * s.depth))
           s.label s.ms))
    (spans t);
  Buffer.add_string buf "-- trace: counters --\n";
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "%-24s %10d\n" name v))
    (counters t);
  (match degradation_events t with
  | [] -> ()
  | events ->
      Buffer.add_string buf "-- trace: degradations --\n";
      List.iter
        (fun e -> Buffer.add_string buf (Printf.sprintf "degraded: %s\n" e))
        events);
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("label", Json.String s.label);
                   ("depth", Json.Int s.depth);
                   ("ms", Json.Float s.ms);
                 ])
             (spans t)) );
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (counters t))
      );
      ( "degradations",
        Json.List
          (List.map (fun e -> Json.String e) (degradation_events t)) );
    ]
