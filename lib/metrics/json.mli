(** Minimal JSON values: printing and parsing, dependency-free.

    Used by {!Trace.to_json}, the CLI's [--trace-json] and the bench
    harness's [BENCH_*.json] artifacts (and their smoke validation).
    Printing always produces valid JSON — non-finite floats become
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

exception Parse_error of string

val parse : string -> t
(** Parse a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_list : t -> t list option
val to_float : t -> float option
(** Accepts both [Float] and [Int]. *)

val to_int : t -> int option
val to_str : t -> string option
