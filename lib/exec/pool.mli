(** A fixed-size pool of worker {!Domain}s over per-worker
    work-stealing deques.

    One pool amortises domain spawn cost over many batches: workers
    park on a condition variable between jobs, so an idle pool costs
    nothing but the parked domains.  Submission round-robins tasks
    across per-worker {!Deque}s; a worker pops its own deque (LIFO) and
    steals from the others (FIFO) only when it runs dry, so a busy pool
    never serializes on a shared queue lock.  The pool schedules opaque
    closures — {!Exec.search_batch} layers the query semantics on
    top. *)

type t

val default_size : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — one worker per
    available core, leaving a core for the submitting domain. *)

val create : ?size:int -> ?oversubscribe:bool -> unit -> t
(** Spawn a pool of [size] (default {!default_size}) worker domains.
    Unless [oversubscribe] is set (default [false]), the worker count
    is capped at [Domain.recommended_domain_count ()]: extra CPU-bound
    domains add no parallelism but stretch every minor-GC
    stop-the-world barrier, which is precisely the measured cause of
    the cold-path anti-scaling this pool design fixed.  Pass
    [~oversubscribe:true] when the exact domain count is the point —
    contention tests, or the serving layer whose admission control is
    derived from the configured worker count.
    @raise Invalid_argument when [size < 1]. *)

val size : t -> int
(** Number of worker domains actually spawned (after the cap). *)

exception Pool_closed
(** Raised deterministically by {!submit}, {!run_all} and {!shutdown}
    itself once the pool has been shut down — the caller always learns
    it lost the race, instead of the outcome depending on queue state. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one fire-and-forget job on the next worker's deque
    (round-robin).  Jobs must not raise — an escaping exception kills
    its worker.  Prefer {!run_all}, which captures results and
    exceptions.
    @raise Pool_closed on a pool that was {!shutdown}. *)

exception Task_error of exn
(** Wraps the first exception a {!run_all} task raised. *)

val run_all : t -> (unit -> 'a) list -> 'a array
(** Run every thunk on the pool and wait for all of them; result [i] is
    thunk [i]'s value (input order, regardless of completion order or
    which worker — owner or thief — ran it).  Thunks are handed over in
    chunks (a few per worker), so a large batch costs a handful of
    submissions rather than one per task; work-stealing rebalances
    uneven chunks.  When a thunk raised, the whole batch still runs to
    completion and the first failure (in input order) is re-raised as
    {!Task_error}.  When the pool is shut down concurrently with
    submission, the already-submitted chunks are drained, then
    {!Pool_closed} is raised — never a hang.  Must not be called from a
    pool worker of the same pool — the nested batch could wait on jobs
    queued behind its own caller. *)

val shutdown : t -> unit
(** Drain already-queued jobs (every deque runs dry before any worker
    exits), then join every worker.  Exactly one caller (under
    concurrency, the first to take the pool lock) performs the join and
    returns; every other and every later call raises {!Pool_closed}, as
    do subsequent {!submit}/{!run_all} calls.
    @raise Pool_closed when the pool was already shut down. *)

val with_pool : ?size:int -> ?oversubscribe:bool -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down on exit
    (also on exception). *)
