(** A readers-writer lock: many concurrent readers, one exclusive
    writer.

    Built on a mutex and a condition variable (OCaml's stdlib has no
    rwlock).  No writer preference — see the implementation note on why
    that is the right trade for the cache's read-mostly workload.  A
    read section must not upgrade to a write section (that deadlocks,
    as with any non-reentrant lock); release and re-take instead. *)

type t

val create : unit -> t

val read_lock : t -> unit
(** Enter a shared read section; blocks only while a writer holds the
    lock. *)

val read_unlock : t -> unit

val write_lock : t -> unit
(** Enter the exclusive write section; blocks until every reader and
    writer has left. *)

val write_unlock : t -> unit

val read : t -> (unit -> 'a) -> 'a
(** [read t f] runs [f] inside a read section (released on exception). *)

val write : t -> (unit -> 'a) -> 'a
(** [write t f] runs [f] inside the write section (released on
    exception). *)
