(* A readers-writer lock over a mutex and one condition variable.

   Any number of readers may hold the lock together; a writer holds it
   alone.  OCaml's stdlib has no rwlock, and the cache's find path is
   exactly the read-mostly workload the primitive exists for: lookups
   from every pool worker overlap freely, and only insert/evict/clear
   serialize.

   No writer preference: a writer waits for the readers present when it
   arrived *and* any that slip in while it sleeps.  For the cache this
   is the right trade — reads outnumber writes by orders of magnitude,
   every section is a few memory operations, and the workloads are
   finite batches, so starvation windows are bounded in practice.
   [Condition.broadcast] (never [signal]) on every release: the waiters
   are a mix of readers (any number may proceed) and writers (one may),
   and a lost wake-up here would be a deadlock.

   Lock discipline (machine-checked by xksrace): [readers] and [writer]
   are guarded by [mutex], and every access below sits between
   [Mutex.lock]/[Mutex.unlock] on it. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* any state change a waiter could be blocked on *)
  mutable readers : int;  (* xksrace: guarded_by mutex *)
  mutable writer : bool;  (* xksrace: guarded_by mutex *)
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    readers = 0;
    writer = false;
  }

let read_lock t =
  Mutex.lock t.mutex;
  while t.writer do
    Condition.wait t.cond t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex

let read_unlock t =
  Mutex.lock t.mutex;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let write_lock t =
  Mutex.lock t.mutex;
  while t.writer || t.readers > 0 do
    Condition.wait t.cond t.mutex
  done;
  t.writer <- true;
  Mutex.unlock t.mutex

let write_unlock t =
  Mutex.lock t.mutex;
  t.writer <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
