(* Batch query execution: fan independent queries out over a Domain
   pool, front them with the sharded result cache, and preserve the
   exact sequential semantics per query.

   Safety argument, in one place: a worker touches (1) the engine's
   document tree and inverted index — immutable post-build (see
   Inverted's interface; the sharing audit in test/test_index.ml pins
   it), (2) its own Query/RTF/pruning state — freshly allocated per
   query, (3) its own Budget — created on the worker at query start, so
   the mutable tick counters stay single-domain, (4) the Trace counters
   — atomic — and the cache shards — mutex-guarded.  Nothing else is
   shared, so a batch run is observationally identical to the
   sequential loop. *)

module Engine = Xks_core.Engine
module Budget = Xks_robust.Budget
module Pool = Pool
module Cache = Cache

type budget_spec = { deadline_ms : int option; max_nodes : int option }

let budget_class_of = function
  | None | Some { deadline_ms = None; max_nodes = None } -> Cache.unbudgeted
  | Some { deadline_ms; max_nodes } ->
      let part prefix = function
        | None -> prefix ^ "-"
        | Some v -> prefix ^ string_of_int v
      in
      part "t" deadline_ms ^ ":" ^ part "n" max_nodes

let search_batch_results ?pool ?cache ?(algorithm = Engine.Validrtf) ?cid_mode
    ?rank ?k ?budget engine queries =
  let budget_class = budget_class_of budget in
  let fresh_budget () =
    (* Created on the domain that runs the query, at the moment it
       starts: the deadline clock begins exactly where the sequential
       loop would start it, and the mutable counters never cross a
       domain boundary. *)
    match budget with
    | None | Some { deadline_ms = None; max_nodes = None } -> None
    | Some { deadline_ms; max_nodes } ->
        Some (Budget.create ?deadline_ms ?max_nodes ())
  in
  let run_one ws () =
    let compute () =
      Engine.search_result ~algorithm ?cid_mode ?rank ?k
        ?budget:(fresh_budget ()) engine ws
    in
    match cache with
    | None -> compute ()
    | Some c -> (
        match Cache.key ~engine ~algorithm ?rank ?k ~budget_class ws with
        | None -> compute () (* empty query: let the engine raise *)
        | Some k -> (
            match Cache.find c k with
            | Some result -> result
            | None ->
                let result = compute () in
                Cache.add c k result;
                result))
  in
  let thunks = List.map run_one queries in
  match pool with
  | Some p -> Pool.run_all p thunks
  | None -> Array.of_list (List.map (fun f -> f ()) thunks)

let search_batch ?pool ?cache ?algorithm ?cid_mode ?rank ?k ?budget engine
    queries =
  Array.map
    (fun (r : Engine.search_result) -> r.hits)
    (search_batch_results ?pool ?cache ?algorithm ?cid_mode ?rank ?k ?budget
       engine queries)
