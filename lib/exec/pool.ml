(* A fixed-size Domain worker pool over per-worker work-stealing
   deques.

   The previous design fed every worker from one mutex/condvar queue:
   each of a batch's tasks cost a lock round-trip and a condvar signal
   on the single shared mutex, and profiling the cold throughput sweep
   showed the workers serializing on exactly that hand-off.  Now every
   worker owns a [Deque]: submission round-robins across the deques, a
   worker pops its own deque LIFO and only when dry sweeps the others,
   stealing FIFO.  The pool mutex is left with the slow paths — parking
   idle workers and the stop flag — so a busy pool never touches it.

   Worker count is capped at [Domain.recommended_domain_count ()]
   unless [oversubscribe] is set: domains above the core count cannot
   add parallelism, but each extra CPU-bound domain makes every minor
   GC's stop-the-world barrier wait on one more descheduled domain —
   the measured cause of the cold jobs>1 anti-scaling this design
   replaces.  [oversubscribe] exists for the contention tests and the
   serving layer (whose admission control must honour the configured
   worker count exactly).

   Lock discipline (machine-checked by xksrace): [stop] and [idlers]
   are guarded by [mutex]; each deque guards itself; [cursor] is
   atomic.  Lock order is pool [mutex] before any deque mutex —
   [submit] pushes and workers scan [has_work] while holding the pool
   mutex, and deque operations never take the pool mutex.  [workers] is
   owner-managed — written by [create] before the pool value is shared
   and read/cleared by the single caller that wins the [stop] flip in
   [shutdown]. *)

type t = {
  size : int;  (* actual worker count, after capping *)
  mutex : Mutex.t;
  wake : Condition.t;  (* new work while workers are parked, or shutdown *)
  deques : (unit -> unit) Deque.t array;  (* slot i is worker i's deque *)
  cursor : int Atomic.t;  (* round-robin submission target *)
  mutable idlers : int;  (* xksrace: guarded_by mutex *)
  mutable stop : bool;  (* xksrace: guarded_by mutex *)
  (* xksrace: domain_safe owner-managed; see the lock-discipline note above *)
  mutable workers : unit Domain.t list;  (* [] after [shutdown] *)
}

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

(* Any task anywhere?  Scans own deque first so the caller's next pop
   is the likely hit.  Deque lengths are read under each deque's own
   mutex; callers that need the answer to be stable (the park/exit
   decision) additionally hold the pool mutex, which [submit] also
   holds while pushing. *)
let has_work p i =
  let n = Array.length p.deques in
  let rec go j = j < n && ((not (Deque.is_empty p.deques.((i + j) mod n))) || go (j + 1)) in
  go 0

let worker p i () =
  (* Own deque LIFO first, then one stealing sweep over the others. *)
  let try_take () =
    match Deque.pop p.deques.(i) with
    | Some _ as job -> job
    | None ->
        let n = Array.length p.deques in
        let rec sweep j =
          if j = n then None
          else
            match Deque.steal p.deques.((i + j) mod n) with
            | Some _ as job -> job
            | None -> sweep (j + 1)
        in
        sweep 1
  in
  let rec loop () =
    match try_take () with
    | Some job ->
        job ();
        loop ()
    | None ->
        (* Ran dry: decide between parking and exiting under the pool
           lock, re-checking for work published since the sweep (the
           shutdown drain guarantee lives here: a worker only exits
           once no deque holds work *and* the stop flag is up). *)
        Mutex.lock p.mutex;
        let continue_ =
          if has_work p i then true
          else if p.stop then false
          else begin
            p.idlers <- p.idlers + 1;
            let rec await () =
              Condition.wait p.wake p.mutex;
              if has_work p i then true else if p.stop then false else await ()
            in
            let r = await () in
            p.idlers <- p.idlers - 1;
            r
          end
        in
        Mutex.unlock p.mutex;
        if continue_ then loop ()
  in
  loop ()

let create ?size ?(oversubscribe = false) () =
  let requested =
    match size with
    | None -> default_size ()
    | Some s when s >= 1 -> s
    | Some _ -> invalid_arg "Pool.create: size must be >= 1"
  in
  let size =
    if oversubscribe then requested
    else min requested (max 1 (Domain.recommended_domain_count ()))
  in
  let p =
    {
      size;
      mutex = Mutex.create ();
      wake = Condition.create ();
      deques = Array.init size (fun _ -> Deque.create ());
      cursor = Atomic.make 0;
      idlers = 0;
      stop = false;
      workers = [];
    }
  in
  p.workers <- List.init size (fun i -> Domain.spawn (worker p i));
  p

let size p = p.size

exception Pool_closed

let submit p job =
  (* The stop check and the push are atomic under the pool mutex:
     [shutdown] flips [stop] under the same mutex, so a submission
     either lands before the flip (and the drain guarantee runs it) or
     observes it and raises — a job can never slip into a deque no
     worker will visit again. *)
  Mutex.lock p.mutex;
  if p.stop then begin
    Mutex.unlock p.mutex;
    raise Pool_closed
  end;
  let target =
    (* [land max_int] keeps the index non-negative across wrap-around *)
    Atomic.fetch_and_add p.cursor 1 land max_int mod Array.length p.deques
  in
  Deque.push p.deques.(target) job;
  if p.idlers > 0 then Condition.signal p.wake;
  Mutex.unlock p.mutex

exception Task_error of exn

let run_all p thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  let results = Array.make n None in
  let remaining = Atomic.make n in
  let done_mutex = Mutex.create () in
  let done_cond = Condition.create () in
  let finish k =
    (* Publish the slots before the count: the waiter only reads
       [results] after [remaining] reaches zero, and the atomic
       decrement orders the writes. *)
    if Atomic.fetch_and_add remaining (-k) = k then begin
      Mutex.lock done_mutex;
      Condition.broadcast done_cond;
      Mutex.unlock done_mutex
    end
  in
  (* Chunked hand-off: a batch of 400 queries becomes ~4 chunks per
     worker, not 400 submissions — each chunk is one deque push, and a
     thief that steals one rebalances a whole slice of the batch. *)
  let nchunks = if n = 0 then 0 else min n (4 * p.size) in
  let bounds c = (c * n / nchunks, (c + 1) * n / nchunks) in
  let submit_chunk c =
    let lo, hi = bounds c in
    submit p (fun () ->
        for idx = lo to hi - 1 do
          results.(idx) <-
            Some (match thunks.(idx) () with v -> Ok v | exception e -> Error e)
        done;
        finish (hi - lo))
  in
  let closed =
    let rec go c =
      if c = nchunks then false
      else
        match submit_chunk c with
        | () -> go (c + 1)
        | exception Pool_closed ->
            (* The pool was shut down mid-submission.  This and every
               later chunk will never run: take their slots out of
               [remaining] ourselves so the wait below terminates once
               the already-submitted chunks drain, then report the
               failure — the old design left [remaining] short and the
               waiter blocked on [done_cond] forever. *)
            let lo, _ = bounds c in
            finish (n - lo);
            true
    in
    go 0
  in
  Mutex.lock done_mutex;
  while Atomic.get remaining > 0 do
    Condition.wait done_cond done_mutex
  done;
  Mutex.unlock done_mutex;
  if closed then raise Pool_closed;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise (Task_error e)
      | None -> assert false (* remaining = 0 ⇒ every slot was written *))
    results

(* Exactly one caller wins the [stop] flip and joins the workers; every
   concurrent or later caller sees [already = true] and gets the same
   deterministic [Pool_closed] that [submit] raises — racing shutdowns
   used to return silently whether or not the workers were joined yet,
   which let a "successful" second shutdown overlap a pool still
   draining. *)
let shutdown p =
  Mutex.lock p.mutex;
  let already = p.stop in
  p.stop <- true;
  Condition.broadcast p.wake;
  Mutex.unlock p.mutex;
  if already then raise Pool_closed;
  List.iter Domain.join p.workers;
  p.workers <- []

let with_pool ?size ?oversubscribe f =
  let p = create ?size ?oversubscribe () in
  Fun.protect
    ~finally:(fun () ->
      (* tolerate [f] having shut the pool down itself *)
      match shutdown p with () -> () | exception Pool_closed -> ())
    (fun () -> f p)
