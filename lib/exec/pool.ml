(* A fixed-size Domain worker pool with a mutex/condvar work queue.

   Workers block on [wake] while the queue is empty; [submit] enqueues a
   closure and signals.  Shutdown is graceful: workers drain whatever is
   already queued, then exit.  The pool carries no knowledge of queries
   — [Exec] builds the batch semantics on top of [run_all].

   Lock discipline (machine-checked by xksrace): the queue and the stop
   flag are guarded by [mutex]; [workers] is owner-managed — it is
   written by [create] before the pool value is shared and read/cleared
   by the single caller that wins the [stop] flip in [shutdown], after
   the workers have been woken. *)

type t = {
  size : int;
  mutex : Mutex.t;
  wake : Condition.t;  (* new work or shutdown *)
  work : (unit -> unit) Queue.t;  (* xksrace: guarded_by mutex *)
  mutable stop : bool;  (* xksrace: guarded_by mutex *)
  (* xksrace: domain_safe owner-managed; see the lock-discipline note above *)
  mutable workers : unit Domain.t list;  (* [] after [shutdown] *)
}

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

let worker p () =
  (* xksrace: requires_lock mutex *)
  let rec next () =
    match Queue.take_opt p.work with
    | Some job -> Some job
    | None ->
        if p.stop then None
        else begin
          Condition.wait p.wake p.mutex;
          next ()
        end
  in
  let rec loop () =
    Mutex.lock p.mutex;
    let job = next () in
    Mutex.unlock p.mutex;
    match job with
    | None -> ()
    | Some job ->
        job ();
        loop ()
  in
  loop ()

let create ?size () =
  let size =
    match size with
    | None -> default_size ()
    | Some s when s >= 1 -> s
    | Some _ -> invalid_arg "Pool.create: size must be >= 1"
  in
  let p =
    {
      size;
      mutex = Mutex.create ();
      wake = Condition.create ();
      work = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  p.workers <- List.init size (fun _ -> Domain.spawn (worker p));
  p

let size p = p.size

exception Pool_closed

let submit p job =
  Mutex.lock p.mutex;
  if p.stop then begin
    Mutex.unlock p.mutex;
    raise Pool_closed
  end;
  Queue.add job p.work;
  Condition.signal p.wake;
  Mutex.unlock p.mutex

exception Task_error of exn

let run_all p thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  let results = Array.make n None in
  let remaining = Atomic.make n in
  let done_mutex = Mutex.create () in
  let done_cond = Condition.create () in
  Array.iteri
    (fun i f ->
      submit p (fun () ->
          let r =
            match f () with
            | v -> Ok v
            | exception e -> Error e
          in
          (* Publish the slot before the count: the waiter only reads
             [results] after [remaining] reaches zero, and the atomic
             decrement orders the two writes. *)
          results.(i) <- Some r;
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock done_mutex;
            Condition.broadcast done_cond;
            Mutex.unlock done_mutex
          end))
    thunks;
  Mutex.lock done_mutex;
  while Atomic.get remaining > 0 do
    Condition.wait done_cond done_mutex
  done;
  Mutex.unlock done_mutex;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise (Task_error e)
      | None -> assert false (* remaining = 0 ⇒ every slot was written *))
    results

(* Exactly one caller wins the [stop] flip and joins the workers; every
   concurrent or later caller sees [already = true] and gets the same
   deterministic [Pool_closed] that [submit] raises — racing shutdowns
   used to return silently whether or not the workers were joined yet,
   which let a "successful" second shutdown overlap a pool still
   draining. *)
let shutdown p =
  Mutex.lock p.mutex;
  let already = p.stop in
  p.stop <- true;
  Condition.broadcast p.wake;
  Mutex.unlock p.mutex;
  if already then raise Pool_closed;
  List.iter Domain.join p.workers;
  p.workers <- []

let with_pool ?size f =
  let p = create ?size () in
  Fun.protect
    ~finally:(fun () ->
      (* tolerate [f] having shut the pool down itself *)
      match shutdown p with () -> () | exception Pool_closed -> ())
    (fun () -> f p)
