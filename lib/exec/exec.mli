(** Batch query execution over a {!Pool} of worker domains, fronted by
    the sharded {!Cache} of query results.

    Queries in a batch are independent: each one sees exactly the
    sequential {!Xks_core.Engine.search} semantics — same hits, same
    order, same per-query budget and degradation ladder — whatever the
    pool size.  The engine's document tree and inverted index are
    immutable after construction (see {!Xks_index.Inverted}), so workers
    share them read-only; every piece of mutable per-query state
    (query, pruning, budget) lives on the domain that runs the query. *)

module Pool = Pool
module Cache = Cache

type budget_spec = { deadline_ms : int option; max_nodes : int option }
(** A budget {e recipe}: {!Xks_robust.Budget.t} is single-domain mutable
    state, so the batch API takes the limits and materialises a fresh
    budget per query on the worker domain that runs it (the deadline
    clock starts when the query starts, as in a sequential loop). *)

val budget_class_of : budget_spec option -> string
(** The cache budget-class string of a spec — {!Cache.unbudgeted} for
    [None] or an empty spec, ["t<ms>:n<nodes>"] otherwise (["-"] for an
    absent limit).  Queries run under equal limits share cache entries;
    budgeted and unbudgeted runs never mix. *)

val search_batch_results :
  ?pool:Pool.t -> ?cache:Cache.t -> ?algorithm:Xks_core.Engine.algorithm ->
  ?cid_mode:Xks_index.Cid.mode -> ?rank:Xks_core.Engine.rank_mode ->
  ?k:int -> ?budget:budget_spec ->
  Xks_core.Engine.t -> string list list -> Xks_core.Engine.search_result array
(** Run a batch of queries; result [i] answers query [i] (input order,
    regardless of completion order).  With a [pool] the queries fan out
    over its workers; without one they run sequentially on the calling
    domain.  With a [cache], each query is first looked up (and its
    computed result inserted on a miss); [rank] and [k] are part of the
    cache key, so ranked and unranked runs of the same keywords never
    share entries.  A query that raises — e.g. an
    empty keyword list — aborts the batch with {!Pool.Task_error} (the
    raw exception when no pool is used) after all tasks finish. *)

val search_batch :
  ?pool:Pool.t -> ?cache:Cache.t -> ?algorithm:Xks_core.Engine.algorithm ->
  ?cid_mode:Xks_index.Cid.mode -> ?rank:Xks_core.Engine.rank_mode ->
  ?k:int -> ?budget:budget_spec ->
  Xks_core.Engine.t -> string list list -> Xks_core.Engine.hit list array
(** {!search_batch_results} projected to the hit lists. *)
