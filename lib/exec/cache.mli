(** Sharded LRU cache of whole query results, with read-mostly shards.

    Keys capture everything that determines a search answer: the engine
    {e instance} ({!Xks_core.Engine.id} — a rebuilt or reloaded index
    makes a new engine, so entries cached for the old one can never be
    served), the normalised keyword set (sorted and deduplicated, since
    {!Xks_core.Engine.search} is order- and duplicate-invariant), the
    algorithm, the ranking parameters (rank mode and top-k limit), and
    a budget class string.  Values are whole
    {!Xks_core.Engine.search_result}s, shared structurally — they are
    immutable.

    The table is split into N independent shards, each behind a
    {!Rwlock}: lookups run in a shared read section (concurrent pool
    workers hitting one shard overlap instead of serializing), while
    insert, evict and clear take the exclusive write lock.  Recency is
    tracked by per-entry atomic stamps from a global atomic clock — a
    hit is an atomic store, not linked-list surgery — and eviction
    scans the shard for the minimum stamp under the write lock, so
    eviction order is exactly least-recently-accessed.  Capacity is
    approximate bytes, split evenly across shards.  Every lookup and
    eviction ticks the {!Xks_trace.Trace} cache counters as well as the
    cache's own {!stats}. *)

type key = private {
  engine_id : int;
  words : string list;  (** normalised, sorted, distinct *)
  algorithm : string;
  rank : string;  (** rank-mode name: "heuristic", "bm25" or "doc" *)
  k : int;  (** top-k limit; [0] = unlimited *)
  budget_class : string;
}

val unbudgeted : string
(** The budget class of an ungoverned query ("unbudgeted"). *)

val key :
  engine:Xks_core.Engine.t -> algorithm:Xks_core.Engine.algorithm ->
  ?rank:Xks_core.Engine.rank_mode -> ?k:int ->
  budget_class:string -> string list -> key option
(** Normalise a raw query into its cache key: tokenise every input
    string ({!Xks_xml.Tokenizer.words}, stop words kept — mirroring
    {!Xks_core.Query.make}), deduplicate and sort.  [rank] (default
    [`Heuristic], the engine's default) and [k] (default unlimited)
    must match what the engine will be asked to do: keys of differently
    ranked or truncated runs never collide.  [None] when no keyword
    survives (such a query raises in the engine and must not be
    cached). *)

type t

type access = Lock | Unlock | Rlock | Runlock | Read | Write
(** One instrumented shard access, as reported to [instrument]:
    [Lock]/[Unlock] bracket an exclusive write section,
    [Rlock]/[Runlock] a shared read section (several may overlap on one
    shard — that is the design), and [Read]/[Write] are accesses to the
    shard's guarded state inside whichever section is open.  Consumed
    by [Xks_check.Race] to replay the journal against the
    reader/writer-lock invariant: a [Write] needs the write section, a
    [Read] either kind, and write sections may never overlap anything. *)

val create :
  ?shards:int -> ?instrument:(int -> access -> unit) -> max_bytes:int ->
  unit -> t
(** A cache of at most ~[max_bytes] (approximate accounting) split over
    [shards] (default 8, rounded up to a power of two) independent
    shards.  When [instrument] is given it is called as
    [instrument shard_index access] from inside every cache operation
    (section events from the locking wrappers themselves, [Read]/[Write]
    between them); it runs on the calling domain with the section still
    open, so it must be cheap and must not call back into the cache.
    @raise Invalid_argument on [shards < 1] or negative [max_bytes]. *)

val shard_count : t -> int

val shard_index : t -> key -> int
(** The shard a key hashes to (in [0, shard_count)).  Exposed so tests
    can construct deliberate shard collisions for contention stress. *)

val find : t -> key -> Xks_core.Engine.search_result option
(** Lookup; a hit refreshes the entry's LRU stamp.  Runs in a shared
    read section — concurrent [find]s on one shard do not serialize.
    Ticks {!Xks_trace.Trace.Cache_hits} / [Cache_misses]. *)

val add : t -> key -> Xks_core.Engine.search_result -> unit
(** Insert (or refresh) an entry, evicting least-recently-used entries
    of the same shard while over capacity.  A result costlier than a
    whole shard is not cached at all. *)

val clear : t -> unit
(** Drop every entry (stat counters are kept). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** live entries across all shards *)
  bytes : int;  (** approximate live bytes across all shards *)
}

val stats : t -> stats
(** Cumulative hit/miss/eviction counts and a live-size snapshot. *)
