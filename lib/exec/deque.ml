(* A mutex-guarded work-stealing deque: one per pool worker.

   The owner pushes and pops at the bottom (LIFO — freshly pushed work
   is cache-hot), thieves steal from the top (FIFO — the oldest task,
   which for chunked batches is also the biggest remaining slice of
   work).  A single mutex per deque is deliberate: operations are a few
   loads and stores, and the whole point of per-worker deques is that
   this mutex is *uncontended* on the owner's fast path — stealing only
   touches it when a worker has run dry.  (A Chase-Lev lock-free deque
   would shave the futex fast path; it would also need fences this repo
   cannot machine-check.  The xksrace/lock-journal tooling verifies
   mutex discipline, so the mutex variant is the one we can keep
   honest.)

   Storage is a growable ring buffer: [head] is the logical index of
   the oldest element, [tail] the next free slot; both only grow, and
   [buf.(i land (capacity - 1))] holds logical slot [i] (capacity is a
   power of two). *)

type 'a t = {
  mutex : Mutex.t;
  mutable buf : 'a option array;  (* xksrace: guarded_by mutex *)
  mutable head : int;  (* xksrace: guarded_by mutex *)
  mutable tail : int;  (* xksrace: guarded_by mutex *)
}

let create ?(capacity = 16) () =
  let rec pow2 acc = if acc >= capacity && acc >= 2 then acc else pow2 (acc * 2) in
  {
    mutex = Mutex.create ();
    buf = Array.make (pow2 2) None;
    head = 0;
    tail = 0;
  }

(* xksrace: requires_lock mutex *)
let grow d =
  let old = d.buf in
  let n = Array.length old in
  let buf = Array.make (2 * n) None in
  for i = d.head to d.tail - 1 do
    buf.(i land ((2 * n) - 1)) <- old.(i land (n - 1))
  done;
  d.buf <- buf

let push d x =
  Mutex.protect d.mutex (fun () ->
      if d.tail - d.head = Array.length d.buf then grow d;
      d.buf.(d.tail land (Array.length d.buf - 1)) <- Some x;
      d.tail <- d.tail + 1)

(* xksrace: requires_lock mutex *)
let take d i =
  let slot = i land (Array.length d.buf - 1) in
  let x = d.buf.(slot) in
  d.buf.(slot) <- None;
  (* the slot is cleared so the buffer never pins a dead task closure *)
  x

let pop d =
  Mutex.protect d.mutex (fun () ->
      if d.tail = d.head then None
      else begin
        d.tail <- d.tail - 1;
        take d d.tail
      end)

let steal d =
  Mutex.protect d.mutex (fun () ->
      if d.tail = d.head then None
      else begin
        let x = take d d.head in
        d.head <- d.head + 1;
        x
      end)

let length d = Mutex.protect d.mutex (fun () -> d.tail - d.head)

let is_empty d = length d = 0
