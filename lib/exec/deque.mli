(** A mutex-guarded work-stealing deque (one per {!Pool} worker).

    The owner works the bottom — {!push} then {!pop} is LIFO, so a
    worker runs its freshest (cache-hot) task first — while thieves
    {!steal} from the top in FIFO order, taking the oldest task.  With
    {!Pool.run_all}'s chunked submission the oldest task is also the
    largest remaining slice of the batch, so one steal rebalances a lot
    of work.

    Every operation takes the deque's own mutex; the concurrency win
    over a shared queue is that the owner's mutex is uncontended unless
    someone is actively stealing from it.  All operations are safe from
    any domain. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty deque ([capacity] is just the initial ring size — deques
    grow on demand, rounded up to a power of two). *)

val push : 'a t -> 'a -> unit
(** Owner: add a task at the bottom. *)

val pop : 'a t -> 'a option
(** Owner: remove the most recently pushed task (LIFO), [None] when
    empty. *)

val steal : 'a t -> 'a option
(** Thief: remove the oldest task (FIFO), [None] when empty. *)

val length : 'a t -> int

val is_empty : 'a t -> bool
