(* Sharded LRU cache of whole query results.

   The key identifies everything that determines a search answer: the
   engine instance (by its process-unique id — a rebuilt or reloaded
   index makes a new engine, so stale entries can never be served), the
   normalised keyword *set* (sorted, deduplicated — Engine.search is
   order- and duplicate-invariant), the algorithm, and a budget class
   (two queries governed by the same limits share an entry; an
   unbudgeted query never shares with a budgeted one).

   Concurrency: N independently mutex-guarded shards, so concurrent
   lookups from pool workers contend only when they hash to the same
   shard.  Capacity is split evenly across shards and accounted in
   approximate bytes; eviction is strict LRU per shard.  The lock
   discipline is machine-checked two ways: statically by xksrace (the
   guarded_by/requires_lock/locks annotations below) and dynamically by
   Xks_check.Race over the journal produced through [instrument]. *)

module Engine = Xks_core.Engine
module Fragment = Xks_core.Fragment
module Trace = Xks_trace.Trace

type key = {
  engine_id : int;
  words : string list;  (* normalised, sorted, distinct *)
  algorithm : string;
  budget_class : string;
}

let algorithm_name = function
  | Engine.Validrtf -> "validrtf"
  | Engine.Maxmatch -> "maxmatch"
  | Engine.Maxmatch_original -> "maxmatch_original"

let unbudgeted = "unbudgeted"

let key ~engine ~algorithm ~budget_class ws =
  let words =
    List.concat_map
      (Xks_xml.Tokenizer.words ~keep_stopwords:true)
      ws
    |> List.sort_uniq String.compare
  in
  match words with
  | [] -> None
  | _ :: _ ->
      Some
        {
          engine_id = Engine.id engine;
          words;
          algorithm = algorithm_name algorithm;
          budget_class;
        }

(* Doubly-linked LRU list, newest at the front. *)
type node = {
  nkey : key;
  value : Engine.search_result;
  cost : int;
  mutable newer : node option;  (* xksrace: guarded_by mutex *)
  mutable older : node option;  (* xksrace: guarded_by mutex *)
}

type access = Lock | Unlock | Read | Write

type shard = {
  idx : int;
  mutex : Mutex.t;
  capacity : int;
  table : (key, node) Hashtbl.t;  (* xksrace: guarded_by mutex *)
  mutable newest : node option;  (* xksrace: guarded_by mutex *)
  mutable oldest : node option;  (* xksrace: guarded_by mutex *)
  mutable bytes : int;  (* xksrace: guarded_by mutex *)
}

type t = {
  shards : shard array;
  mask : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  instrument : (int -> access -> unit) option;
}

let rec power_of_two n acc = if acc >= n then acc else power_of_two n (acc * 2)

let create ?(shards = 8) ?instrument ~max_bytes () =
  if shards < 1 then invalid_arg "Cache.create: shards must be >= 1";
  if max_bytes < 0 then invalid_arg "Cache.create: negative capacity";
  let n = power_of_two shards 1 in
  let capacity = max_bytes / n in
  {
    shards =
      Array.init n (fun idx ->
          {
            idx;
            mutex = Mutex.create ();
            table = Hashtbl.create 64;
            newest = None;
            oldest = None;
            bytes = 0;
            capacity;
          });
    mask = n - 1;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    instrument;
  }

let shard_count t = Array.length t.shards
let shard_index t k = Hashtbl.hash k land t.mask
let shard_of t k = t.shards.(shard_index t k)

let observe t s a =
  match t.instrument with
  | None -> ()
  | Some f -> f s.idx a

(* Approximate heap footprint of a cached result, in bytes: per-hit
   record overhead plus the fragment's node set.  Only relative sizes
   matter — the knob is --cache-mb, not an exact accounting. *)
let cost_of (r : Engine.search_result) =
  List.fold_left
    (fun acc (h : Engine.hit) -> acc + 160 + (24 * Fragment.size h.fragment))
    128 r.hits

(* Shard-internal list surgery; caller holds the shard mutex. *)

(* xksrace: requires_lock mutex *)
let unlink s n =
  (match n.newer with
  | Some nw -> nw.older <- n.older
  | None -> s.newest <- n.older);
  (match n.older with
  | Some ol -> ol.newer <- n.newer
  | None -> s.oldest <- n.newer);
  n.newer <- None;
  n.older <- None

(* xksrace: requires_lock mutex *)
let push_front s n =
  n.older <- s.newest;
  n.newer <- None;
  (match s.newest with
  | Some old_front -> old_front.newer <- Some n
  | None -> s.oldest <- Some n);
  s.newest <- Some n

(* xksrace: locks mutex *)
let locked t s f =
  Mutex.lock s.mutex;
  observe t s Lock;
  Fun.protect
    ~finally:(fun () ->
      observe t s Unlock;
      Mutex.unlock s.mutex)
    f

let find t k =
  let s = shard_of t k in
  let result =
    locked t s (fun () ->
        observe t s Read;
        match Hashtbl.find_opt s.table k with
        | None -> None
        | Some n ->
            observe t s Write;
            unlink s n;
            push_front s n;
            Some n.value)
  in
  (match result with
  | Some _ ->
      Atomic.incr t.hits;
      Trace.incr Trace.Cache_hits
  | None ->
      Atomic.incr t.misses;
      Trace.incr Trace.Cache_misses);
  result

let add t k value =
  let s = shard_of t k in
  let cost = cost_of value in
  if cost <= s.capacity then begin
    let evicted =
      locked t s (fun () ->
          observe t s Write;
          (match Hashtbl.find_opt s.table k with
          | Some old ->
              unlink s old;
              Hashtbl.remove s.table k;
              s.bytes <- s.bytes - old.cost
          | None -> ());
          let n = { nkey = k; value; cost; newer = None; older = None } in
          Hashtbl.replace s.table k n;
          push_front s n;
          s.bytes <- s.bytes + cost;
          let evicted = ref 0 in
          while s.bytes > s.capacity do
            match s.oldest with
            | None -> assert false (* bytes > 0 ⇒ a node exists *)
            | Some victim ->
                unlink s victim;
                Hashtbl.remove s.table victim.nkey;
                s.bytes <- s.bytes - victim.cost;
                incr evicted
          done;
          !evicted)
    in
    if evicted > 0 then begin
      ignore (Atomic.fetch_and_add t.evictions evicted : int);
      Trace.add Trace.Cache_evictions evicted
    end
  end

let clear t =
  Array.iter
    (fun s ->
      locked t s (fun () ->
          observe t s Write;
          Hashtbl.reset s.table;
          s.newest <- None;
          s.oldest <- None;
          s.bytes <- 0))
    t.shards

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

let stats t =
  let entries = ref 0 and bytes = ref 0 in
  Array.iter
    (fun s ->
      locked t s (fun () ->
          observe t s Read;
          entries := !entries + Hashtbl.length s.table;
          bytes := !bytes + s.bytes))
    t.shards;
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    entries = !entries;
    bytes = !bytes;
  }
