(* Sharded LRU cache of whole query results, with read-mostly shards.

   The key identifies everything that determines a search answer: the
   engine instance (by its process-unique id — a rebuilt or reloaded
   index makes a new engine, so stale entries can never be served), the
   normalised keyword *set* (sorted, deduplicated — Engine.search is
   order- and duplicate-invariant), the algorithm, the ranking
   parameters (rank mode and k — a ranked top-k query must never be
   served a stale unranked entry and vice versa), and a budget class
   (two queries governed by the same limits share an entry; an
   unbudgeted query never shares with a budgeted one).

   Concurrency: N independent shards, each behind a [Rwlock].  Lookups
   — the overwhelmingly common operation on a warm cache — run in a
   shared read section, so concurrent pool workers hitting the same
   shard no longer serialize; only insert, evict and clear take the
   exclusive write lock.  What makes the read path read-only is the LRU
   representation: instead of a doubly-linked recency list (whose
   find-time unlink/push-front surgery forced every lookup to be a
   writer), each entry carries an atomic stamp from a cache-global
   atomic clock.  A hit bumps the entry's stamp — an atomic store,
   legal under the shared latch — and eviction scans the shard for the
   minimum stamp while holding the write lock (shards are small, and
   eviction already pays a hash-table delete).  Stamps strictly
   increase, so eviction order is exactly least-recently-accessed, as
   the LRU tests pin.

   Capacity is split evenly across shards and accounted in approximate
   bytes.  The lock discipline is machine-checked two ways: statically
   by xksrace (the guarded_by/requires_lock/locks annotations below)
   and dynamically by Xks_check.Race over the journal produced through
   [instrument], whose replay understands overlapping read sections. *)

module Engine = Xks_core.Engine
module Fragment = Xks_core.Fragment
module Trace = Xks_trace.Trace

type key = {
  engine_id : int;
  words : string list;  (* normalised, sorted, distinct *)
  algorithm : string;
  rank : string;
  k : int;  (* 0 = unlimited (no top-k truncation) *)
  budget_class : string;
}

let algorithm_name = function
  | Engine.Validrtf -> "validrtf"
  | Engine.Maxmatch -> "maxmatch"
  | Engine.Maxmatch_original -> "maxmatch_original"

let rank_name = function
  | `Heuristic -> "heuristic"
  | `Bm25 -> "bm25"
  | `Doc -> "doc"

let unbudgeted = "unbudgeted"

let key ~engine ~algorithm ?(rank = `Heuristic) ?k ~budget_class ws =
  let words =
    List.concat_map
      (Xks_xml.Tokenizer.words ~keep_stopwords:true)
      ws
    |> List.sort_uniq String.compare
  in
  match words with
  | [] -> None
  | _ :: _ ->
      Some
        {
          engine_id = Engine.id engine;
          words;
          algorithm = algorithm_name algorithm;
          rank = rank_name rank;
          k = (match k with None -> 0 | Some k -> k);
          budget_class;
        }

type node = {
  nkey : key;
  value : Engine.search_result;
  cost : int;
  stamp : int Atomic.t;  (* global-clock tick of the last access *)
}

type access = Lock | Unlock | Rlock | Runlock | Read | Write

type shard = {
  idx : int;
  lock : Rwlock.t;
  capacity : int;
  table : (key, node) Hashtbl.t;  (* xksrace: guarded_by lock *)
  mutable bytes : int;  (* xksrace: guarded_by lock *)
}

type t = {
  shards : shard array;
  mask : int;
  clock : int Atomic.t;  (* LRU stamp source, shared by all shards *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  instrument : (int -> access -> unit) option;
}

let rec power_of_two target acc =
  if acc >= target then acc else power_of_two target (acc * 2)

let create ?(shards = 8) ?instrument ~max_bytes () =
  if shards < 1 then invalid_arg "Cache.create: shards must be >= 1";
  if max_bytes < 0 then invalid_arg "Cache.create: negative capacity";
  let n = power_of_two shards 1 in
  let capacity = max_bytes / n in
  {
    shards =
      Array.init n (fun idx ->
          {
            idx;
            lock = Rwlock.create ();
            table = Hashtbl.create 64;
            bytes = 0;
            capacity;
          });
    mask = n - 1;
    clock = Atomic.make 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    instrument;
  }

let shard_count t = Array.length t.shards
let shard_index t k = Hashtbl.hash k land t.mask
let shard_of t k = t.shards.(shard_index t k)

let observe t s a =
  match t.instrument with
  | None -> ()
  | Some f -> f s.idx a

(* Approximate heap footprint of a cached result, in bytes: per-hit
   record overhead plus the fragment's node set.  Only relative sizes
   matter — the knob is --cache-mb, not an exact accounting. *)
let cost_of (r : Engine.search_result) =
  (* xkscost: unticked maintenance: cache accounting is off the query budget — one size read per already-computed hit *)
  List.fold_left
    (fun acc (h : Engine.hit) -> acc + 160 + (24 * Fragment.size h.fragment))
    128 r.hits

(* The two locking wrappers.  [read_locked] sections may overlap each
   other (that is the point); they must only read the guarded shard
   state — plus atomic stamp bumps, which need no latch of their own.
   [write_locked] is exclusive, as the old per-shard mutex was. *)

(* The instrument hook is arbitrary user code: it may raise (the fault
   suite's hooks do, deliberately).  Every [observe] inside a lock
   section therefore runs under the same protection as the section
   body — including the unlock-side observe, which must not be able to
   skip the unlock itself.  The release event is journalled before the
   actual unlock so replay never sees a write overlapping a section
   that was still read-held. *)

(* xksrace: locks lock *)
let read_locked t s f =
  Rwlock.read_lock s.lock;
  Fun.protect
    ~finally:(fun () ->
      Fun.protect
        ~finally:(fun () -> Rwlock.read_unlock s.lock)
        (fun () -> observe t s Runlock))
    (fun () ->
      observe t s Rlock;
      f ())

(* xksrace: locks lock *)
let write_locked t s f =
  Rwlock.write_lock s.lock;
  Fun.protect
    ~finally:(fun () ->
      Fun.protect
        ~finally:(fun () -> Rwlock.write_unlock s.lock)
        (fun () -> observe t s Unlock))
    (fun () ->
      observe t s Lock;
      f ())

let find t k =
  let s = shard_of t k in
  let result =
    read_locked t s (fun () ->
        observe t s Read;
        match Hashtbl.find_opt s.table k with
        | None -> None
        | Some n ->
            (* LRU refresh without list surgery: bump the entry's stamp
               to the next global clock tick.  Concurrent hits on the
               same entry race to the newer tick — either order is a
               correct recency. *)
            Atomic.set n.stamp (Atomic.fetch_and_add t.clock 1);
            Some n.value)
  in
  (match result with
  | Some _ ->
      Atomic.incr t.hits;
      Trace.incr Trace.Cache_hits
  | None ->
      Atomic.incr t.misses;
      Trace.incr Trace.Cache_misses);
  result

(* Evict the least-recently-stamped entry; caller holds the write
   lock, which excludes the readers that bump stamps, so the scan is
   stable. *)
(* xksrace: requires_lock lock *)
let evict_lru s =
  let victim =
    (* xkscost: unticked maintenance: eviction runs under the shard write lock, off the query budget *)
    Hashtbl.fold (* xkscost: allow hashtbl-fold one LRU scan per eviction by design; the shard table is capacity-bounded *)
      (fun _ n best ->
        match best with
        | Some b when Atomic.get b.stamp <= Atomic.get n.stamp -> best
        | Some _ | None -> Some n)
      s.table None
  in
  match victim with
  | None -> assert false (* bytes > 0 ⇒ an entry exists *)
  | Some v ->
      Hashtbl.remove s.table v.nkey;
      s.bytes <- s.bytes - v.cost

let add t k value =
  let s = shard_of t k in
  let cost = cost_of value in
  if cost <= s.capacity then begin
    let evicted =
      write_locked t s (fun () ->
          observe t s Write;
          (match Hashtbl.find_opt s.table k with
          | Some old ->
              Hashtbl.remove s.table k;
              s.bytes <- s.bytes - old.cost
          | None -> ());
          let n =
            {
              nkey = k;
              value;
              cost;
              stamp = Atomic.make (Atomic.fetch_and_add t.clock 1);
            }
          in
          Hashtbl.replace s.table k n;
          s.bytes <- s.bytes + cost;
          let count = ref 0 in
          (* xkscost: unticked maintenance: eviction loop under the shard write lock, off the query budget; each pass frees bytes so it terminates *)
          while s.bytes > s.capacity do
            evict_lru s;
            incr count
          done;
          !count)
    in
    if evicted > 0 then begin
      ignore (Atomic.fetch_and_add t.evictions evicted : int);
      Trace.add Trace.Cache_evictions evicted
    end
  end

let clear t =
  Array.iter
    (fun s ->
      write_locked t s (fun () ->
          observe t s Write;
          Hashtbl.reset s.table;
          s.bytes <- 0))
    t.shards

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

let stats t =
  let entries = ref 0 and bytes = ref 0 in
  Array.iter
    (fun s ->
      read_locked t s (fun () ->
          observe t s Read;
          entries := !entries + Hashtbl.length s.table;
          bytes := !bytes + s.bytes))
    t.shards;
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    entries = !entries;
    bytes = !bytes;
  }
