(** Binary save/load of inverted indexes, with integrity checking.

    A compact, self-describing on-disk format so large corpora are
    indexed once and reopened instantly (the paper's counterpart is the
    shredded PostgreSQL database persisting across runs).  Format
    ["XKSIDX2\n"]:

    - magic, then a CRC-32 (little-endian u32) of everything after it,
    - the word count,
    - per word: a byte length, a CRC-32 of the section, then the word,
      its occurrence count, and its posting list with ids delta- and
      varint-encoded (posting lists are sorted, so gaps are small).

    The per-word framing lets {!decode} report {e which} word section a
    bit flip or torn write damaged; truncation, trailing garbage and
    overflowing varints all fail with a byte position.  Files in the
    old ["XKSIDX1\n"] format (no checksums) are still readable.

    The document itself is saved separately as XML ({!Xks_xml.Writer});
    {!load} re-attaches a loaded index to it and verifies that posting
    ids are in range. *)

type table = (string * int * int array) list
(** [(word, occurrences, posting)] rows, sorted by word. *)

val save : string -> Inverted.t -> unit
(** [save path idx] writes the index.
    @raise Sys_error on I/O failure. *)

val load : string -> Xks_xml.Tree.t -> Inverted.t
(** [load path doc] reads an index saved by {!save} and binds it to
    [doc].  The file bytes pass through the {!Xks_robust.Failpoint}
    site {!read_site}, so tests can inject corruption.
    @raise Failure if the file is not a valid index (corruption reports
    include the damaged word section), or if a posting id falls outside
    [doc] (wrong document).
    @raise Sys_error if the file cannot be read. *)

val load_or_rebuild :
  ?log:(string -> unit) -> ?save_repaired:bool -> string ->
  Xks_xml.Tree.t -> Inverted.t
(** [load_or_rebuild path doc] is {!load}, but a missing, truncated or
    corrupt file degrades to re-indexing [doc] from scratch instead of
    failing: a warning naming the damage goes to [log] (default
    [prerr_endline]) and, when [save_repaired] is [true] (default), the
    rebuilt index is written back over [path].  Never raises [Failure] —
    the rebuilt index is always served. *)

val read_site : string
(** The failpoint site name for index reads, ["persist.read"]. *)

val encode : table -> string
(** The on-disk bytes for rows (what {!save} writes). *)

val decode : string -> table
(** Inverse of {!encode}.
    @raise Failure on malformed bytes — and {e only} [Failure]: any
    truncation, bit flip or garbage of valid bytes is reported cleanly
    with a byte position. *)

val dump : Inverted.t -> table
(** The index contents as rows (also used by the tests). *)

val of_table : Xks_xml.Tree.t -> table -> Inverted.t
(** Rebuild an index value from rows.
    @raise Failure on out-of-range ids or unsorted postings. *)
