type mode = Approx | Exact

type t =
  | Empty
  | Minmax of string * string
  | Words of string list  (* sorted, deduplicated *)

let empty = Empty
let str_min a b = if String.compare a b <= 0 then a else b
let str_max a b = if String.compare a b <= 0 then b else a

let of_words mode ws =
  match ws with
  | [] -> Empty
  | w0 :: rest -> (
      match mode with
      | Approx ->
          let lo, hi =
            List.fold_left
              (fun (lo, hi) w -> (str_min lo w, str_max hi w))
              (w0, w0) rest
          in
          Minmax (lo, hi)
      | Exact -> Words (List.sort_uniq String.compare ws))

let rec merge_sorted a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
      let c = String.compare x y in
      if c < 0 then x :: merge_sorted xs b
      else if c > 0 then y :: merge_sorted a ys
      else x :: merge_sorted xs ys

let merge a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Minmax (alo, ahi), Minmax (blo, bhi) ->
      Minmax (str_min alo blo, str_max ahi bhi)
  | Words a, Words b -> Words (merge_sorted a b)
  | Minmax _, Words _ | Words _, Minmax _ ->
      invalid_arg "Cid.merge: mixing approximate and exact features"

let compare a b =
  match (a, b) with
  | Empty, Empty -> 0
  | Empty, _ -> -1
  | _, Empty -> 1
  | Minmax (alo, ahi), Minmax (blo, bhi) ->
      let c = String.compare alo blo in
      if c <> 0 then c else String.compare ahi bhi
  | Words a, Words b -> List.compare String.compare a b
  | Minmax _, Words _ -> -1
  | Words _, Minmax _ -> 1

let equal a b = compare a b = 0

let is_empty = function Empty -> true | Minmax _ | Words _ -> false

let pp fmt = function
  | Empty -> Format.pp_print_string fmt "()"
  | Minmax (lo, hi) -> Format.fprintf fmt "(%s, %s)" lo hi
  | Words ws ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           Format.pp_print_string)
        ws
