module Dewey = Xks_xml.Dewey
module Table = Xks_relational.Table
module Plan = Xks_relational.Plan
module Value = Xks_relational.Value

type t = { labels : Table.t; elements : Table.t; values : Table.t }

let of_tables (tables : Shredder.tables) =
  let labels =
    Table.create ~indexed:[ "label" ] ~name:"label" [ "label"; "id" ]
  in
  List.iter
    (fun (r : Shredder.label_row) ->
      Table.insert labels [| Value.text r.label_name; Value.int r.label_id |])
    tables.labels;
  let elements =
    Table.create ~indexed:[ "dewey" ] ~name:"element"
      [ "label"; "dewey"; "id"; "level"; "label_path"; "content_feature" ]
  in
  Array.iteri
    (fun id (r : Shredder.element_row) ->
      Table.insert elements
        [|
          Value.text r.e_label;
          Value.text (Dewey.to_string r.e_dewey);
          Value.int id;
          Value.int r.e_level;
          Value.text (String.concat "." (List.map string_of_int r.e_label_path));
          Value.text (Format.asprintf "%a" Cid.pp r.e_content_feature);
        |])
    tables.elements;
  let values =
    Table.create ~indexed:[ "keyword" ] ~name:"value"
      [ "label"; "dewey"; "id"; "attribute"; "keyword" ]
  in
  (* The preorder rank of a value row comes from its element row. *)
  let id_of_dewey = Hashtbl.create (Array.length tables.elements) in
  Array.iteri
    (fun id (r : Shredder.element_row) ->
      Hashtbl.replace id_of_dewey (Dewey.to_string r.e_dewey) id)
    tables.elements;
  List.iter
    (fun (r : Shredder.value_row) ->
      let d = Dewey.to_string r.v_dewey in
      let id =
        match Hashtbl.find_opt id_of_dewey d with
        | Some id -> id
        | None ->
            invalid_arg
              ("Rel_store: value row at Dewey " ^ d ^ " has no element row")
      in
      Table.insert values
        [|
          Value.text r.v_label;
          Value.text d;
          Value.int id;
          Value.text r.v_attribute;
          Value.text r.v_keyword;
        |])
    tables.values;
  { labels; elements; values }

let of_doc ?cid_mode doc = of_tables (Shredder.shred ?cid_mode doc)

let label_table t = t.labels
let element_table t = t.elements
let value_table t = t.values

let keyword_node_ids t w =
  let w = Xks_xml.Tokenizer.normalize w in
  let result =
    Plan.select ~distinct:true ~order_by:[ "id" ] ~columns:[ "id" ]
      ~where:(Plan.Eq ("keyword", Value.text w))
      t.values
  in
  Array.of_list (List.map (fun row -> Value.as_int row.(0)) result.rows)

let postings_via_sql t ws = Array.of_list (List.map (keyword_node_ids t) ws)

let label_path t dewey =
  let result =
    Plan.select ~columns:[ "label_path" ]
      ~where:(Plan.Eq ("dewey", Value.text (Dewey.to_string dewey)))
      t.elements
  in
  match result.rows with
  | [| path |] :: _ ->
      if Value.as_text path = "" then []
      else
        String.split_on_char '.' (Value.as_text path)
        |> List.map int_of_string
  | [] -> raise Not_found
  | _ :: _ -> assert false (* one column projected *)

let label_id t name =
  match Table.lookup t.labels ~column:"label" (Value.text name) with
  | [| _; id |] :: _ -> Some (Value.as_int id)
  | [] -> None
  | _ :: _ -> assert false (* two columns *)
