module Sax = Xks_xml.Sax
module Tokenizer = Xks_xml.Tokenizer

type entry = { ids : Xks_util.Int_vec.t; mutable occurrences : int }

type frame = { node_id : int; text : Buffer.t }

let rows_of feed =
  let entries : (string, entry) Hashtbl.t = Hashtbl.create 4096 in
  let add id w =
    let e =
      match Hashtbl.find_opt entries w with
      | Some e -> e
      | None ->
          let e = { ids = Xks_util.Int_vec.create (); occurrences = 0 } in
          Hashtbl.add entries w e;
          e
    in
    e.occurrences <- e.occurrences + 1;
    (* Ids arrive out of order (text words are attributed at the end
       tag, after the descendants'); postings are sorted once at the
       end. *)
    Xks_util.Int_vec.push e.ids id
  in
  let next_id = ref 0 in
  let stack = ref [] in
  let on_start name attrs =
    let id = !next_id in
    incr next_id;
    stack := { node_id = id; text = Buffer.create 16 } :: !stack;
    let feed_words s = Tokenizer.iter_words (add id) s in
    feed_words name;
    List.iter
      (fun (k, v) ->
        feed_words k;
        feed_words v)
      attrs
  in
  let on_text s =
    match !stack with
    | frame :: _ -> Buffer.add_string frame.text s
    | [] -> assert false (* text only occurs inside the root element *)
  in
  let on_end _ =
    match !stack with
    | frame :: rest ->
        Tokenizer.iter_words (add frame.node_id) (Buffer.contents frame.text);
        stack := rest
    | [] -> assert false (* ends pair with starts *)
  in
  feed (Sax.handler ~on_start ~on_text ~on_end ());
  Hashtbl.fold
    (fun w e acc ->
      let posting =
        Xks_util.Int_vec.to_array e.ids |> Array.to_list
        |> List.sort_uniq Int.compare |> Array.of_list
      in
      (w, e.occurrences, posting) :: acc)
    entries []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let rows_of_string ?limits s = rows_of (fun h -> Sax.parse_string ?limits h s)
let rows_of_file ?limits path = rows_of (fun h -> Sax.parse_file ?limits h path)

let save_file ?limits ~input ~output () =
  let rows = rows_of_file ?limits input in
  let oc = open_out_bin output in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Persist.encode rows);
      List.length rows)
