(** Streaming index construction.

    Builds inverted-index rows straight from the SAX event stream,
    without materialising a {!Xks_xml.Tree.t} — the tree typically costs
    several times the text, so this is the low-memory path for indexing
    very large corpora (index now, parse the tree lazily or on another
    machine).  Node ids are assigned by counting start events, which is
    exactly the preorder numbering {!Xks_xml.Tree.build} produces, so the
    rows are interchangeable with {!Inverted.to_rows}:

    {[
      let rows = Stream_index.rows_of_file "huge.xml" in
      (* ... later, with the document at hand: *)
      let idx = Inverted.of_rows doc rows
    ]}

    Mixed-content text is concatenated per element before tokenisation,
    matching the tree model's text semantics. *)

val rows_of_string :
  ?limits:Xks_robust.Limits.t -> string -> (string * int * int array) list
(** [(word, occurrences, posting)] rows, sorted by word — equal to
    [Inverted.to_rows (Inverted.build (Parser.parse_string s))].
    @raise Xks_xml.Sax.Error on malformed input.
    @raise Xks_robust.Limits.Limit_exceeded when [limits] (default
    {!Xks_robust.Limits.default}) is crossed. *)

val rows_of_file :
  ?limits:Xks_robust.Limits.t -> string -> (string * int * int array) list
(** As {!rows_of_string}, reading from a file.
    @raise Xks_xml.Sax.Error on malformed input.
    @raise Xks_robust.Limits.Limit_exceeded when [limits] is crossed.
    @raise Sys_error if the file cannot be read. *)

val save_file :
  ?limits:Xks_robust.Limits.t -> input:string -> output:string -> unit -> int
(** Stream-index [input] and write the rows in {!Persist} format to
    [output]; returns the number of distinct words. *)
