module Tree = Xks_xml.Tree
module Tokenizer = Xks_xml.Tokenizer

(* Both members are only written while [build] runs; the frozen copies
   below are what the query path reads. *)
(* xksrace: domain_safe written only during build, before the index is shared *)
type entry = { ids : Xks_util.Int_vec.t; mutable occurrences : int }

(* Immutable once constructed: [build]/[of_rows] freeze the growable
   posting vectors into plain arrays before returning, so a [t] can be
   shared read-only across domains (the [Xks_exec] pool relies on this —
   no lock guards the index on the query path).  [entry.occurrences] is
   only written while [build] runs. *)
type stats = {
  nodes : int;
  vocabulary : int;
  total_postings : int;
  avg_posting_len : float;
  max_posting_len : int;
}

type t = {
  doc : Tree.t;  (* xksrace: domain_safe label table frozen once the tree is built *)
  (* xksrace: domain_safe populated by build/of_rows, read-only afterwards *)
  entries : (string, entry) Hashtbl.t;
  (* xksrace: domain_safe populated by build/of_rows, read-only afterwards *)
  frozen : (string, int array) Hashtbl.t;
  approx_cids : Cid.t array;  (* per node id; filled at build, never written *)
  stats : stats;  (* corpus-level aggregates; computed at freeze time *)
}

let empty_posting = [||]

(* Per-node approximate content features, one document pass at build
   time.  [Node_info.construct] used to recompute this per keyword node
   on {e every} query — re-tokenising the node's label, text and
   attributes ([Tree.content_words]) just to take a (min, max) pair.
   That re-tokenisation was the single largest allocation source on the
   cold query path, and under several domains the resulting minor-GC
   stop-the-world barriers were the multicore scaling bottleneck.  The
   word stream here is exactly [Tree.content_words]'s (label name, text,
   attribute keys and values, stop words dropped), so the features are
   identical to the ones previously computed per query. *)
let compute_approx_cids doc =
  Array.init (Tree.size doc) (fun id ->
      Cid.of_words Cid.Approx (Tree.content_words doc (Tree.node doc id)))

let freeze entries =
  let f = Hashtbl.create (Hashtbl.length entries) in
  Hashtbl.iter
    (fun w e -> Hashtbl.add f w (Xks_util.Int_vec.to_array e.ids))
    entries;
  f

(* Corpus aggregates over the frozen postings — paid once per build so
   idf and length-pivot lookups cost nothing per query. *)
let compute_stats doc frozen =
  let vocabulary = Hashtbl.length frozen in
  let total = ref 0 and longest = ref 0 in
  Hashtbl.iter
    (fun _ p ->
      let len = Array.length p in
      total := !total + len;
      if len > !longest then longest := len)
    frozen;
  {
    nodes = Tree.size doc;
    vocabulary;
    total_postings = !total;
    avg_posting_len =
      (if vocabulary = 0 then 0.
       else float_of_int !total /. float_of_int vocabulary);
    max_posting_len = !longest;
  }

let build doc =
  let entries = Hashtbl.create 4096 in
  let index_node (n : Tree.node) =
    let add w =
      let e =
        match Hashtbl.find_opt entries w with
        | Some e -> e
        | None ->
            let e = { ids = Xks_util.Int_vec.create (); occurrences = 0 } in
            Hashtbl.add entries w e;
            e
      in
      e.occurrences <- e.occurrences + 1;
      (* Postings are per node: skip the id if this node was just added
         (tokens of one node arrive consecutively). *)
      let v = e.ids in
      if Xks_util.Int_vec.length v = 0 || Xks_util.Int_vec.last v <> n.id then
        Xks_util.Int_vec.push v n.id
    in
    let feed s = Tokenizer.iter_words add s in
    feed (Tree.label_name doc n);
    feed n.text;
    List.iter
      (fun (k, v) ->
        feed k;
        feed v)
      n.attrs
  in
  Tree.iter index_node doc;
  let frozen = freeze entries in
  {
    doc;
    entries;
    frozen;
    approx_cids = compute_approx_cids doc;
    stats = compute_stats doc frozen;
  }

let doc t = t.doc
let approx_cids t = t.approx_cids
let stats t = t.stats

(* O(1) document frequency: posting length without fetching the list,
   so the ranking layer's idf lookups never tick [Postings_scanned]. *)
let df t w =
  match Hashtbl.find_opt t.frozen (Tokenizer.normalize w) with
  | Some a -> Array.length a
  | None -> 0

let posting t w =
  match Hashtbl.find_opt t.frozen (Tokenizer.normalize w) with
  | Some a ->
      Xks_trace.Trace.add Xks_trace.Trace.Postings_scanned (Array.length a);
      a
  | None -> empty_posting

let postings t ws = Array.of_list (List.map (posting t) ws)
let node_count t w = Array.length (posting t w)

let occurrence_count t w =
  match Hashtbl.find_opt t.entries (Tokenizer.normalize w) with
  | Some e -> e.occurrences
  | None -> 0

let vocabulary t =
  Hashtbl.fold (fun w _ acc -> w :: acc) t.entries []
  |> List.sort String.compare

let vocabulary_size t = Hashtbl.length t.entries

let to_rows t =
  Hashtbl.fold
    (fun w e acc ->
      let posting =
        match Hashtbl.find_opt t.frozen w with
        | Some p -> p
        | None -> assert false
      in
      (w, e.occurrences, posting) :: acc)
    t.entries []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let of_rows doc rows =
  let n = Xks_xml.Tree.size doc in
  let entries = Hashtbl.create (List.length rows) in
  let frozen = Hashtbl.create (List.length rows) in
  List.iter
    (fun (w, occurrences, posting) ->
      if occurrences < Array.length posting then
        failwith "Inverted.of_rows: occurrence count below node count";
      Array.iteri
        (fun i id ->
          if id < 0 || id >= n then failwith "Inverted.of_rows: id out of range";
          if i > 0 && posting.(i - 1) >= id then
            failwith "Inverted.of_rows: posting not strictly increasing")
        posting;
      let ids = Xks_util.Int_vec.create ~capacity:(Array.length posting) () in
      Array.iter (Xks_util.Int_vec.push ids) posting;
      Hashtbl.replace entries w { ids; occurrences };
      Hashtbl.replace frozen w posting)
    rows;
  {
    doc;
    entries;
    frozen;
    approx_cids = compute_approx_cids doc;
    stats = compute_stats doc frozen;
  }

let top_words t n =
  let all =
    Hashtbl.fold (fun w e acc -> (w, e.occurrences) :: acc) t.entries []
  in
  let sorted =
    List.sort
      (fun (wa, ca) (wb, cb) ->
        let c = Int.compare cb ca in
        if c <> 0 then c else String.compare wa wb)
      all
  in
  List.filteri (fun i _ -> i < n) sorted
